#!/usr/bin/env bash
# Local CI gate: everything a PR must pass, in the order that fails fastest.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "CI OK"
