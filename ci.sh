#!/usr/bin/env bash
# Local CI gate: everything a PR must pass, in the order that fails fastest.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> pagen streaming smoke run"
# Stream a small network to disk and check the file holds exactly the
# edge count the run reported (16 bytes per binary edge).
smoke_out="$(mktemp /tmp/pagen_smoke_XXXXXX.bin)"
chaos_clean="$(mktemp /tmp/pagen_chaos_clean_XXXXXX.txt)"
chaos_faulty="$(mktemp /tmp/pagen_chaos_faulty_XXXXXX.txt)"
net_multi="$(mktemp /tmp/pagen_net_multi_XXXXXX.txt)"
net_single="$(mktemp /tmp/pagen_net_single_XXXXXX.txt)"
trap 'rm -f "$smoke_out" "$chaos_clean" "$chaos_faulty" "$chaos_clean.sorted" "$chaos_faulty.sorted" \
    "$net_multi" "$net_single" "$net_multi.sorted" "$net_single.sorted"' EXIT
report="$(cargo run -q -p pa-cli --release -- generate --model pa \
    --n 20000 --x 3 --ranks 4 --seed 7 --out "$smoke_out" --format bin)"
echo "    $report"
reported_edges="$(echo "$report" | sed -n 's/.* \([0-9]\+\) edges.*/\1/p')"
file_bytes="$(stat -c %s "$smoke_out")"
if [ -z "$reported_edges" ] || [ "$file_bytes" -ne "$((reported_edges * 16))" ]; then
    echo "smoke run mismatch: reported $reported_edges edges, file is $file_bytes bytes" >&2
    exit 1
fi

echo "==> pagen chaos smoke run"
# The fault layer's headline invariant, end to end through the binary: a
# run with aggressive fault injection must produce exactly the clean
# run's edge set. Within-rank emission order is timing-dependent, so the
# files are compared as sorted edge sets.
cargo run -q -p pa-cli --release -- generate --model pa \
    --n 20000 --x 3 --ranks 4 --seed 7 --out "$chaos_clean" --format txt
cargo run -q -p pa-cli --release -- generate --model pa \
    --n 20000 --x 3 --ranks 4 --seed 7 --out "$chaos_faulty" --format txt \
    --chaos-profile aggressive --chaos-seed 1 --stall-timeout-ms 60000
sort "$chaos_clean" > "$chaos_clean.sorted"
sort "$chaos_faulty" > "$chaos_faulty.sorted"
if ! cmp -s "$chaos_clean.sorted" "$chaos_faulty.sorted"; then
    echo "chaos smoke mismatch: fault injection changed the edge set" >&2
    exit 1
fi

echo "==> palaunch net smoke run"
# The TCP backend end to end through the real binaries: a 4-process
# localhost world must produce exactly the edge set of a same-seed
# single-process run. Within-rank emission order over sockets depends on
# packet interleaving, so the files are compared as sorted edge sets.
./target/release/palaunch -p 4 --pagen ./target/release/pagen -- \
    generate --model pa --n 20000 --x 4 --scheme lcp --seed 7 \
    --out "$net_multi" --format txt
cargo run -q -p pa-cli --release -- generate --model pa \
    --n 20000 --x 4 --ranks 4 --scheme lcp --seed 7 \
    --out "$net_single" --format txt
sort "$net_multi" > "$net_multi.sorted"
sort "$net_single" > "$net_single.sorted"
if ! cmp -s "$net_multi.sorted" "$net_single.sorted"; then
    echo "net smoke mismatch: 4-process run diverged from single-process run" >&2
    exit 1
fi

echo "CI OK"
