#!/usr/bin/env bash
# Local CI gate: everything a PR must pass, in the order that fails fastest.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> pagen streaming smoke run"
# Stream a small network to disk and check the file holds exactly the
# edge count the run reported (16 bytes per binary edge).
smoke_out="$(mktemp /tmp/pagen_smoke_XXXXXX.bin)"
chaos_clean="$(mktemp /tmp/pagen_chaos_clean_XXXXXX.txt)"
chaos_faulty="$(mktemp /tmp/pagen_chaos_faulty_XXXXXX.txt)"
net_multi="$(mktemp /tmp/pagen_net_multi_XXXXXX.txt)"
net_single="$(mktemp /tmp/pagen_net_single_XXXXXX.txt)"
e3_multi="$(mktemp /tmp/pagen_e3_multi_XXXXXX.txt)"
e3_single="$(mktemp /tmp/pagen_e3_single_XXXXXX.txt)"
nlpa_multi="$(mktemp /tmp/pagen_nlpa_multi_XXXXXX.txt)"
nlpa_single="$(mktemp /tmp/pagen_nlpa_single_XXXXXX.txt)"
rec_multi="$(mktemp /tmp/pagen_rec_multi_XXXXXX.txt)"
rec_single="$(mktemp /tmp/pagen_rec_single_XXXXXX.txt)"
rec_log="$(mktemp /tmp/pagen_rec_log_XXXXXX.txt)"
rec_ckpts="$(mktemp -d /tmp/pagen_rec_ckpts_XXXXXX)"
oc_dir="$(mktemp -d /tmp/pagen_oc_XXXXXX)"
serve_dir=""
restart_dir=""
trap 'rm -f "$smoke_out" "$chaos_clean" "$chaos_faulty" "$chaos_clean.sorted" "$chaos_faulty.sorted" \
    "$net_multi" "$net_single" "$net_multi.sorted" "$net_single.sorted" \
    "$e3_multi" "$e3_single" "$e3_multi.sorted" "$e3_single.sorted" \
    "$nlpa_multi" "$nlpa_single" "$nlpa_multi.sorted" "$nlpa_single.sorted" \
    "$rec_multi" "$rec_single" "$rec_multi.sorted" "$rec_single.sorted" "$rec_log" \
    "$rec_multi".part*; rm -rf "$rec_ckpts" "$oc_dir"; [ -z "$serve_dir" ] || rm -rf "$serve_dir"; \
    [ -z "$restart_dir" ] || rm -rf "$restart_dir"' EXIT
report="$(cargo run -q -p pa-cli --release -- generate --model pa \
    --n 20000 --x 3 --ranks 4 --seed 7 --out "$smoke_out" --format bin)"
echo "    $report"
reported_edges="$(echo "$report" | sed -n 's/.* \([0-9]\+\) edges.*/\1/p')"
file_bytes="$(stat -c %s "$smoke_out")"
if [ -z "$reported_edges" ] || [ "$file_bytes" -ne "$((reported_edges * 16))" ]; then
    echo "smoke run mismatch: reported $reported_edges edges, file is $file_bytes bytes" >&2
    exit 1
fi

echo "==> pagen chaos smoke run"
# The fault layer's headline invariant, end to end through the binary: a
# run with aggressive fault injection must produce exactly the clean
# run's edge set. Within-rank emission order is timing-dependent, so the
# files are compared as sorted edge sets.
cargo run -q -p pa-cli --release -- generate --model pa \
    --n 20000 --x 3 --ranks 4 --seed 7 --out "$chaos_clean" --format txt
cargo run -q -p pa-cli --release -- generate --model pa \
    --n 20000 --x 3 --ranks 4 --seed 7 --out "$chaos_faulty" --format txt \
    --chaos-profile aggressive --chaos-seed 1 --stall-timeout-ms 60000
sort "$chaos_clean" > "$chaos_clean.sorted"
sort "$chaos_faulty" > "$chaos_faulty.sorted"
if ! cmp -s "$chaos_clean.sorted" "$chaos_faulty.sorted"; then
    echo "chaos smoke mismatch: fault injection changed the edge set" >&2
    exit 1
fi

echo "==> palaunch net smoke run"
# The TCP backend end to end through the real binaries: a 4-process
# localhost world must produce exactly the edge set of a same-seed
# single-process run. Within-rank emission order over sockets depends on
# packet interleaving, so the files are compared as sorted edge sets.
./target/release/palaunch -p 4 --pagen ./target/release/pagen -- \
    generate --model pa --n 20000 --x 4 --scheme lcp --seed 7 \
    --out "$net_multi" --format txt
cargo run -q -p pa-cli --release -- generate --model pa \
    --n 20000 --x 4 --ranks 4 --scheme lcp --seed 7 \
    --out "$net_single" --format txt
sort "$net_multi" > "$net_multi.sorted"
sort "$net_single" > "$net_single.sorted"
if ! cmp -s "$net_multi.sorted" "$net_single.sorted"; then
    echo "net smoke mismatch: 4-process run diverged from single-process run" >&2
    exit 1
fi

echo "==> engine3 net smoke run"
# The communication-free engine end to end through the real binaries: a
# 4-process TCP world on engine3 must produce exactly the edge set of a
# same-seed single-process engine3 run (which the determinism suite in
# turn pins to the engine1/engine2 oracles).
./target/release/palaunch -p 4 --pagen ./target/release/pagen -- \
    generate --model pa --n 20000 --x 4 --scheme bcp --seed 7 --engine 3 \
    --out "$e3_multi" --format txt
cargo run -q -p pa-cli --release -- generate --model pa \
    --n 20000 --x 4 --ranks 4 --scheme bcp --seed 7 --engine 3 \
    --out "$e3_single" --format txt
sort "$e3_multi" > "$e3_multi.sorted"
sort "$e3_single" > "$e3_single.sorted"
if ! cmp -s "$e3_multi.sorted" "$e3_single.sorted"; then
    echo "engine3 smoke mismatch: 4-process run diverged from single-process run" >&2
    exit 1
fi

echo "==> nlpa net smoke run"
# The nonlinear-PA model end to end through the real binaries: a
# 4-process TCP world running --model nlpa --alpha 1.5 must produce
# exactly the edge set of a same-seed single-process nlpa run.
./target/release/palaunch -p 4 --pagen ./target/release/pagen -- \
    generate --model nlpa --alpha 1.5 --n 20000 --x 4 --scheme rrp --seed 7 \
    --out "$nlpa_multi" --format txt
cargo run -q -p pa-cli --release -- generate --model nlpa --alpha 1.5 \
    --n 20000 --x 4 --ranks 4 --scheme rrp --seed 7 \
    --out "$nlpa_single" --format txt
sort "$nlpa_multi" > "$nlpa_multi.sorted"
sort "$nlpa_single" > "$nlpa_single.sorted"
if ! cmp -s "$nlpa_multi.sorted" "$nlpa_single.sorted"; then
    echo "nlpa smoke mismatch: 4-process run diverged from single-process run" >&2
    exit 1
fi

echo "==> nlpa exponent-sweep guard"
# exp_nlpa_degree_dist exits non-zero unless the fitted degree exponent
# strictly decreases as alpha grows — i.e. unless --alpha actually
# reaches the draw streams.
cargo run -q -p pa-bench --release --bin exp_nlpa_degree_dist -- \
    --n 100000 --ranks 4 > /dev/null

echo "==> engine3 zero-communication guard"
# exp_engine3_vs_engine2 exits non-zero if engine3 sent any message or
# queued any request — the communication-free property, asserted on the
# real engine through the real bench binary.
cargo run -q -p pa-bench --release --bin exp_engine3_vs_engine2 -- \
    --n 50000 --ranks 4 > /dev/null

echo "==> palaunch crash-recovery smoke run"
# The recovery layer end to end from a shell: a 4-rank checkpointing
# world loses one rank to kill -9 mid-generation; palaunch must restart
# the world (resuming from the last agreed checkpoint epoch), exit 0,
# and the final edge set must still equal a single-process run's. Small
# message buffers slow the run enough to kill it mid-flight without
# changing the generated network.
./target/release/palaunch -p 4 --restart-failed 2 \
    --pagen ./target/release/pagen -- \
    generate --model pa --n 500000 --x 4 --scheme rrp --seed 7 \
    --buffer-cap 64 --service-interval 64 \
    --out "$rec_multi" --format txt \
    --checkpoint-dir "$rec_ckpts" --checkpoint-interval 50000 \
    > "$rec_log" 2>&1 &
launcher=$!
victim=""
for _ in $(seq 1 100); do
    victim="$(pgrep -f "pagen.*$rec_multi.*--rank 2" | head -n 1 || true)"
    [ -n "$victim" ] && break
    sleep 0.05
done
if [ -z "$victim" ]; then
    echo "recovery smoke: never saw rank 2 running (world finished too fast?)" >&2
    cat "$rec_log" >&2
    exit 1
fi
sleep 0.5   # let a few checkpoint epochs commit before the crash
kill -9 "$victim" 2>/dev/null || true
if ! wait "$launcher"; then
    echo "recovery smoke: palaunch did not recover from the killed rank" >&2
    cat "$rec_log" >&2
    exit 1
fi
if ! grep -q "restarting world" "$rec_log"; then
    echo "recovery smoke: no restart happened (rank killed too late?)" >&2
    cat "$rec_log" >&2
    exit 1
fi
cargo run -q -p pa-cli --release -- generate --model pa \
    --n 500000 --x 4 --ranks 4 --scheme rrp --seed 7 \
    --out "$rec_single" --format txt
sort "$rec_multi" > "$rec_multi.sorted"
sort "$rec_single" > "$rec_single.sorted"
if ! cmp -s "$rec_multi.sorted" "$rec_single.sorted"; then
    echo "recovery smoke mismatch: recovered run diverged from single-process run" >&2
    exit 1
fi
if ls "$rec_ckpts"/*.ckpt* >/dev/null 2>&1; then
    echo "recovery smoke: finished job left checkpoints behind" >&2
    exit 1
fi

echo "==> out-of-core smoke run"
# The paged node-table store end to end through the binary: a 4-rank
# engine-3 run under a deliberately tiny --memory-budget (64 KiB of
# 4 KiB pages where the resident F footprint is ~6 MiB — constant
# eviction traffic) must write a byte-identical file to the unbudgeted
# in-memory run, and a successful non-checkpointing run must clean its
# page files up.
cargo run -q -p pa-cli --release -- generate --model pa \
    --n 200000 --x 4 --ranks 4 --scheme rrp --seed 7 --engine 3 \
    --out "$oc_dir/resident.bin" --format bin
cargo run -q -p pa-cli --release -- generate --model pa \
    --n 200000 --x 4 --ranks 4 --scheme rrp --seed 7 --engine 3 \
    --out "$oc_dir/paged.bin" --format bin \
    --memory-budget 64k --page-bytes 4k --store-dir "$oc_dir/store"
if ! cmp -s "$oc_dir/resident.bin" "$oc_dir/paged.bin"; then
    echo "out-of-core smoke mismatch: --memory-budget changed the output bytes" >&2
    exit 1
fi
if [ -d "$oc_dir/store" ]; then
    echo "out-of-core smoke: finished run left page files behind" >&2
    exit 1
fi

echo "==> elastic restart smoke run"
# Elastic gang restart end to end through the real binaries: a 4-rank
# checkpointed world keeps its saved cut (--keep-checkpoints on), then
# a 2-rank launch restarts from it — and the resized run's output must
# be byte-identical to a fresh never-checkpointed 2-rank run (engine 3
# emits in label order, so the comparison is exact bytes, not sets).
./target/release/palaunch -p 4 --pagen ./target/release/pagen -- \
    generate --model pa --n 200000 --x 4 --scheme rrp --seed 7 --engine 3 \
    --out "$oc_dir/world4.bin" --format bin \
    --checkpoint-dir "$oc_dir/world4" --keep-checkpoints on
if ! ls "$oc_dir/world4"/*.ckpt >/dev/null 2>&1; then
    echo "elastic smoke: --keep-checkpoints left no saved world behind" >&2
    exit 1
fi
./target/release/palaunch -p 2 --restart-world "$oc_dir/world4" \
    --pagen ./target/release/pagen -- \
    generate --model pa --n 200000 --x 4 --scheme rrp --seed 7 --engine 3 \
    --out "$oc_dir/resized.bin" --format bin
./target/release/palaunch -p 2 --pagen ./target/release/pagen -- \
    generate --model pa --n 200000 --x 4 --scheme rrp --seed 7 --engine 3 \
    --out "$oc_dir/fresh2.bin" --format bin
if ! cmp -s "$oc_dir/resized.bin" "$oc_dir/fresh2.bin"; then
    echo "elastic smoke mismatch: P=4 -> P=2 restart diverged from a fresh P=2 run" >&2
    exit 1
fi

echo "==> serve soak test"
# The multi-tenant daemon under concurrent load, in-process through the
# CLI layer. #[ignore]d in the default suite (it is a load test), run
# here explicitly.
cargo test -q -p pa-bench --test serve_soak -- --ignored

echo "==> pagen serve smoke run"
# The daemon end to end through the real binary: three concurrent
# fetches of one engine-3 tuple (one interrupted mid-stream and then
# resumed), all byte-identical to a solo run of the same tuple, then a
# clean drain with no temp litter in the jobs dir.
serve_dir="$(mktemp -d /tmp/pagen_serve_smoke_XXXXXX)"
serve_log="$serve_dir/serve.log"
serve_job=(--n 50000 --x 2 --p 0.5 --seed 11 --ranks 2 --scheme rrp --engine 3 --format bin)
serve_addr="127.0.0.1:$(( 20000 + RANDOM % 20000 ))"
./target/release/pagen serve --addr "$serve_addr" \
    --jobs-dir "$serve_dir/jobs" --workers 2 > "$serve_log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do
    (exec 3<>"/dev/tcp/${serve_addr%:*}/${serve_addr#*:}") 2>/dev/null && { exec 3>&-; break; }
    sleep 0.05
done
cargo run -q -p pa-cli --release -- generate --model pa \
    "${serve_job[@]}" --out "$serve_dir/solo.bin"
./target/release/pagen fetch --addr "$serve_addr" \
    "${serve_job[@]}" --out "$serve_dir/f1.bin" &
f1=$!
./target/release/pagen fetch --addr "$serve_addr" \
    "${serve_job[@]}" --out "$serve_dir/f2.bin" &
f2=$!
# The third client dies mid-stream at a deterministic byte...
if ./target/release/pagen fetch --addr "$serve_addr" \
    "${serve_job[@]}" --out "$serve_dir/f3.bin" \
    --stop-after-bytes 100000 --max-attempts 1 > /dev/null 2>&1; then
    echo "serve smoke: interrupted fetch unexpectedly succeeded" >&2
    exit 1
fi
wait "$f1" "$f2"
# ...and resumes from the 100000 bytes it already has.
./target/release/pagen fetch --addr "$serve_addr" \
    "${serve_job[@]}" --out "$serve_dir/f3.bin" --resume on
for f in f1 f2 f3; do
    if ! cmp -s "$serve_dir/solo.bin" "$serve_dir/$f.bin"; then
        echo "serve smoke mismatch: $f.bin diverged from the solo engine-3 run" >&2
        exit 1
    fi
done
./target/release/pagen drain --addr "$serve_addr"
if ! wait "$serve_pid"; then
    echo "serve smoke: daemon did not exit cleanly after drain" >&2
    cat "$serve_log" >&2
    exit 1
fi
if ! grep -q "drained:" "$serve_log"; then
    echo "serve smoke: daemon never printed its drain stats line" >&2
    cat "$serve_log" >&2
    exit 1
fi
if ls "$serve_dir/jobs"/*.tmp* >/dev/null 2>&1; then
    echo "serve smoke: jobs dir holds leftover temp files" >&2
    exit 1
fi
rm -rf "$serve_dir"

echo "==> pagen serve crash-restart smoke run"
# Self-healing end to end through the real binary: SIGKILL the daemon
# after it cached an artifact and while a client holds a partial file,
# restart a new daemon on the same jobs dir, and it must (a) announce
# the recovered artifact and cleaned temp litter on its startup line,
# (b) resume the interrupted fetch byte-identically to a solo run
# WITHOUT re-running the job — its drain line reports 0 jobs run.
restart_dir="$(mktemp -d /tmp/pagen_serve_restart_XXXXXX)"
restart_job=(--n 50000 --x 2 --p 0.5 --seed 23 --ranks 2 --scheme rrp --engine 3 --format bin)
restart_addr="127.0.0.1:$(( 20000 + RANDOM % 20000 ))"
./target/release/pagen serve --addr "$restart_addr" \
    --jobs-dir "$restart_dir/jobs" --workers 2 > "$restart_dir/serve_a.log" 2>&1 &
restart_pid=$!
for _ in $(seq 1 100); do
    (exec 3<>"/dev/tcp/${restart_addr%:*}/${restart_addr#*:}") 2>/dev/null && { exec 3>&-; break; }
    sleep 0.05
done
cargo run -q -p pa-cli --release -- generate --model pa \
    "${restart_job[@]}" --out "$restart_dir/solo.bin"
./target/release/pagen fetch --addr "$restart_addr" \
    "${restart_job[@]}" --out "$restart_dir/full.bin"
# A client dies mid-stream with 100000 of the bytes on disk...
if ./target/release/pagen fetch --addr "$restart_addr" \
    "${restart_job[@]}" --out "$restart_dir/partial.bin" \
    --stop-after-bytes 100000 --max-attempts 1 > /dev/null 2>&1; then
    echo "restart smoke: interrupted fetch unexpectedly succeeded" >&2
    exit 1
fi
# ...and then the daemon itself dies hard: no drain, no cleanup.
kill -9 "$restart_pid" 2>/dev/null || true
wait "$restart_pid" 2>/dev/null || true
# Stage the temp litter an in-flight run would have left behind.
printf junk > "$restart_dir/jobs/0123456789abcdef.5.tmp"
restart_addr_b="127.0.0.1:$(( 20000 + RANDOM % 20000 ))"
./target/release/pagen serve --addr "$restart_addr_b" \
    --jobs-dir "$restart_dir/jobs" --workers 2 > "$restart_dir/serve_b.log" 2>&1 &
restart_pid_b=$!
for _ in $(seq 1 100); do
    (exec 3<>"/dev/tcp/${restart_addr_b%:*}/${restart_addr_b#*:}") 2>/dev/null && { exec 3>&-; break; }
    sleep 0.05
done
# (Captured to a variable: grep -q on the pipe would close it at the
# first match and fail the daemon's client with EPIPE under pipefail.)
restart_status="$(./target/release/pagen serve-status --addr "$restart_addr_b")"
if ! grep -q "1 recovered at startup" <<< "$restart_status"; then
    echo "restart smoke: serve-status does not report the recovered artifact" >&2
    echo "$restart_status" >&2
    exit 1
fi
# Resume the dead client's partial fetch against the restarted daemon.
./target/release/pagen fetch --addr "$restart_addr_b" \
    "${restart_job[@]}" --out "$restart_dir/partial.bin" --resume on
for f in full partial; do
    if ! cmp -s "$restart_dir/solo.bin" "$restart_dir/$f.bin"; then
        echo "restart smoke mismatch: $f.bin diverged from the solo engine-3 run" >&2
        exit 1
    fi
done
./target/release/pagen drain --addr "$restart_addr_b"
if ! wait "$restart_pid_b"; then
    echo "restart smoke: restarted daemon did not exit cleanly after drain" >&2
    cat "$restart_dir/serve_b.log" >&2
    exit 1
fi
if ! grep -q "recovered 1 artifact(s), cleaned 1 stale temp file(s)" "$restart_dir/serve_b.log"; then
    echo "restart smoke: startup line does not report the recovery scan" >&2
    cat "$restart_dir/serve_b.log" >&2
    exit 1
fi
if ! grep -q "drained: 0 job(s) run" "$restart_dir/serve_b.log"; then
    echo "restart smoke: the resumed fetch re-ran instead of hitting the recovered cache" >&2
    cat "$restart_dir/serve_b.log" >&2
    exit 1
fi
if ls "$restart_dir/jobs"/*.tmp* >/dev/null 2>&1; then
    echo "restart smoke: stale temp files survived the restart scan" >&2
    exit 1
fi
rm -rf "$restart_dir"

echo "CI OK"
