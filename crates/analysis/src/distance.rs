//! Distances between empirical degree distributions.
//!
//! Used to quantify how close two generated networks are (e.g. the exact
//! copy-model generator vs. an approximate baseline, or the same model
//! under different processor counts) beyond a single fitted exponent.

use std::collections::BTreeMap;

/// Empirical CDF support: merged sorted degrees with cumulative
/// fractions for both samples.
fn merged_cdfs(a: &[u64], b: &[u64]) -> Vec<(u64, f64, f64)> {
    let hist = |xs: &[u64]| -> BTreeMap<u64, u64> {
        let mut h = BTreeMap::new();
        for &x in xs {
            *h.entry(x).or_insert(0) += 1;
        }
        h
    };
    let (ha, hb) = (hist(a), hist(b));
    let keys: std::collections::BTreeSet<u64> = ha.keys().chain(hb.keys()).copied().collect();
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let (mut ca, mut cb) = (0u64, 0u64);
    keys.into_iter()
        .map(|k| {
            ca += ha.get(&k).copied().unwrap_or(0);
            cb += hb.get(&k).copied().unwrap_or(0);
            (k, ca as f64 / na, cb as f64 / nb)
        })
        .collect()
}

/// Two-sample Kolmogorov–Smirnov statistic: the maximum absolute gap
/// between the empirical CDFs.
///
/// # Panics
///
/// Panics if either sample is empty.
pub fn ks_statistic(a: &[u64], b: &[u64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "KS needs non-empty samples");
    merged_cdfs(a, b)
        .iter()
        .map(|&(_, fa, fb)| (fa - fb).abs())
        .fold(0.0, f64::max)
}

/// Total-variation distance between the two empirical PMFs:
/// `½ Σ_d |p_a(d) − p_b(d)|` in `[0, 1]`.
///
/// # Panics
///
/// Panics if either sample is empty.
pub fn total_variation(a: &[u64], b: &[u64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "TV needs non-empty samples");
    let cdfs = merged_cdfs(a, b);
    let mut tv = 0.0;
    let (mut pa, mut pb) = (0.0, 0.0);
    for &(_, fa, fb) in &cdfs {
        tv += ((fa - pa) - (fb - pb)).abs();
        pa = fa;
        pb = fb;
    }
    tv / 2.0
}

/// Critical KS value at significance α for a two-sample test:
/// `c(α)·√((n_a + n_b)/(n_a·n_b))` with `c(0.05) ≈ 1.358`,
/// `c(0.01) ≈ 1.628`.
///
/// # Panics
///
/// Panics for α other than 0.05 or 0.01 (the only tabulated values).
pub fn ks_critical(alpha: f64, na: usize, nb: usize) -> f64 {
    let c = if (alpha - 0.05).abs() < 1e-12 {
        1.358
    } else if (alpha - 0.01).abs() < 1e-12 {
        1.628
    } else {
        panic!("only alpha = 0.05 or 0.01 are tabulated");
    };
    c * (((na + nb) as f64) / ((na * nb) as f64)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_rng::{Rng64, Xoshiro256pp};

    #[test]
    fn identical_samples_have_zero_distance() {
        let a = vec![1, 2, 2, 3, 5, 8];
        assert_eq!(ks_statistic(&a, &a), 0.0);
        assert_eq!(total_variation(&a, &a), 0.0);
    }

    #[test]
    fn disjoint_samples_have_distance_one() {
        let a = vec![1, 1, 2];
        let b = vec![10, 11, 12];
        assert_eq!(ks_statistic(&a, &b), 1.0);
        assert_eq!(total_variation(&a, &b), 1.0);
    }

    #[test]
    fn ks_known_small_case() {
        // a: CDF jumps to 0.5 at 1, 1.0 at 2; b: 0.5 at 2, 1.0 at 3.
        let a = vec![1, 2];
        let b = vec![2, 3];
        // At degree 1: |0.5 - 0| = 0.5; at 2: |1 - 0.5| = 0.5; at 3: 0.
        assert!((ks_statistic(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tv_bounded_by_ks_relationship() {
        // TV >= KS never holds in general for CDF/PMF pairs, but both
        // must be in [0, 1] and zero iff identical histograms.
        let mut rng = Xoshiro256pp::new(1);
        let a: Vec<u64> = (0..500).map(|_| rng.gen_below(20)).collect();
        let b: Vec<u64> = (0..500).map(|_| rng.gen_below(20) + 1).collect();
        let ks = ks_statistic(&a, &b);
        let tv = total_variation(&a, &b);
        assert!((0.0..=1.0).contains(&ks));
        assert!((0.0..=1.0).contains(&tv));
        assert!(ks > 0.0 && tv > 0.0);
    }

    #[test]
    fn same_distribution_passes_ks_test() {
        // Two independent samples from the same distribution should fall
        // under the 1% critical value (statistically: w.h.p.).
        let mut r1 = Xoshiro256pp::new(5);
        let mut r2 = Xoshiro256pp::new(6);
        let a: Vec<u64> = (0..4000).map(|_| r1.gen_below(50)).collect();
        let b: Vec<u64> = (0..4000).map(|_| r2.gen_below(50)).collect();
        let ks = ks_statistic(&a, &b);
        assert!(
            ks < ks_critical(0.01, a.len(), b.len()),
            "ks = {ks} vs critical {}",
            ks_critical(0.01, a.len(), b.len())
        );
    }

    #[test]
    fn shifted_distribution_fails_ks_test() {
        let mut r1 = Xoshiro256pp::new(5);
        let mut r2 = Xoshiro256pp::new(6);
        let a: Vec<u64> = (0..4000).map(|_| r1.gen_below(50)).collect();
        let b: Vec<u64> = (0..4000).map(|_| r2.gen_below(50) + 5).collect();
        assert!(ks_statistic(&a, &b) > ks_critical(0.01, a.len(), b.len()));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sample_panics() {
        let _ = ks_statistic(&[], &[1]);
    }

    #[test]
    #[should_panic(expected = "tabulated")]
    fn unknown_alpha_panics() {
        let _ = ks_critical(0.1, 10, 10);
    }
}
