//! Analysis toolkit for the `prefattach` experiments.
//!
//! Everything needed to turn generated networks and per-rank load reports
//! into the paper's tables and figures:
//!
//! * [`powerlaw`] — power-law exponent estimation (Figure 4's γ ≈ 2.7):
//!   discrete maximum-likelihood (Clauset–Shalizi–Newman) and the
//!   log–log least-squares slope on a binned histogram.
//! * [`messages`] — the Lemma 3.4 message-count law
//!   `E[M_k] = (1−p)(H_{n−1} − H_k)` and its per-partition aggregates
//!   (the predicted curves behind Figure 7).
//! * [`scaling`] — strong/weak scaling series built from per-rank loads
//!   through the `pa-mpsim` virtual-time cost model (Figures 5 and 6).
//! * [`stats`] — small statistics helpers (linear regression on log–log
//!   axes, summary moments).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distance;
pub mod messages;
pub mod powerlaw;
pub mod report;
pub mod scaling;
pub mod stats;
pub mod theory;
