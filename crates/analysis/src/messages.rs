//! The Lemma 3.4 message-count law and its partition aggregates.
//!
//! Lemma 3.4: the expected number of `request` messages received for node
//! `k` is `E[M_k] = (1−p)(H_{n−1} − H_k)` — early nodes attract far more
//! requests, which is the whole load-balancing story of §3.5. These
//! functions compute the predicted per-node and per-rank values so
//! experiments can overlay measurement against theory (Figure 7's
//! incoming-message panel).

use pa_core::math::harmonic_diff;
use pa_core::partition::Partition;

/// `E[M_k]` — expected requests received for node `k` in an `n`-node,
/// parameter-`p` run (Lemma 3.4).
///
/// # Panics
///
/// Panics if `k >= n`.
pub fn expected_requests_for_node(n: u64, p: f64, k: u64) -> f64 {
    assert!(k < n, "node {k} out of range");
    (1.0 - p) * harmonic_diff(k, n - 1)
}

/// Expected requests received by each rank of `part`: the sum of
/// `E[M_k]` over the rank's nodes.
///
/// Note the one modelling approximation inherited from the paper: the
/// lemma counts *logical* lookups of `F_k`; lookups where `k` lives on
/// the requesting rank never become messages, so for small `P` measured
/// traffic runs below this curve by roughly a factor `1 − 1/P`.
pub fn expected_requests_per_rank<P: Partition>(p: f64, part: &P) -> Vec<f64> {
    let n = part.num_nodes();
    (0..part.nranks())
        .map(|r| {
            part.nodes_of(r)
                .map(|k| expected_requests_for_node(n, p, k))
                .sum()
        })
        .collect()
}

/// Expected requests *sent* by each rank: each node `t > x` sends a
/// request per copy choice that lands remote; before accounting for
/// locality that is `(1−p)·x` per node (§4.6.2: "for each node, a
/// processor sends a request message with probability at most 1 − p").
pub fn expected_requests_sent_per_rank<P: Partition>(p: f64, x: u64, part: &P) -> Vec<f64> {
    (0..part.nranks())
        .map(|r| {
            let nodes = part.nodes_of(r).filter(|&t| t > x).count() as f64;
            nodes * (1.0 - p) * x as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_core::partition::{Rrp, Ucp};

    #[test]
    fn per_node_expectation_decreases_with_label() {
        let n = 10_000;
        let mut prev = f64::INFINITY;
        for k in [1u64, 10, 100, 1000, 9999] {
            let e = expected_requests_for_node(n, 0.5, k);
            assert!(e < prev, "E[M_k] must decrease");
            assert!(e >= 0.0);
            prev = e;
        }
    }

    #[test]
    fn last_node_expects_zero() {
        assert_eq!(expected_requests_for_node(100, 0.5, 99), 0.0);
    }

    #[test]
    fn total_expected_requests_is_consistent() {
        // Σ_k E[M_k] = (1−p) Σ_k (H_{n−1} − H_k) = (1−p)(n−1) after the
        // telescoping identity; check numerically.
        let n = 5_000u64;
        let p = 0.5;
        let total: f64 = (0..n).map(|k| expected_requests_for_node(n, p, k)).sum();
        let expect = (1.0 - p) * (n as f64 - 1.0);
        assert!(
            (total / expect - 1.0).abs() < 1e-6,
            "total {total} vs {expect}"
        );
    }

    #[test]
    fn ucp_rank_zero_dominates() {
        let part = Ucp::new(100_000, 10);
        let per_rank = expected_requests_per_rank(0.5, &part);
        assert!(per_rank[0] > 3.0 * per_rank[9], "{per_rank:?}");
        for w in per_rank.windows(2) {
            assert!(w[0] > w[1], "UCP incoming load must decrease with rank");
        }
    }

    #[test]
    fn rrp_ranks_are_nearly_equal() {
        let part = Rrp::new(100_000, 10);
        let per_rank = expected_requests_per_rank(0.5, &part);
        let max = per_rank.iter().cloned().fold(f64::MIN, f64::max);
        let min = per_rank.iter().cloned().fold(f64::MAX, f64::min);
        // Appendix A.3: difference O(log n) against totals Ω(n/P).
        assert!(max - min < 2.0 * (100_000f64).ln(), "spread {}", max - min);
    }

    #[test]
    fn sent_requests_scale_with_one_minus_p() {
        let part = Ucp::new(1_000, 4);
        let a = expected_requests_sent_per_rank(0.25, 2, &part);
        let b = expected_requests_sent_per_rank(0.75, 2, &part);
        for (x, y) in a.iter().zip(&b) {
            assert!((x / y - 3.0).abs() < 1e-9);
        }
    }
}
