//! Power-law exponent estimation (the γ of Figure 4).
//!
//! Two estimators are provided:
//!
//! * [`fit_mle`] — the discrete maximum-likelihood estimator of Clauset,
//!   Shalizi & Newman (2009):
//!   `γ̂ = 1 + N / Σ ln(d_i / (d_min − ½))` over degrees `d_i >= d_min`.
//!   Robust, the estimator of record for heavy tails.
//! * [`fit_loglog_slope`] — least-squares slope of the log-binned
//!   histogram on log–log axes (what eyeballing Figure 4 amounts to);
//!   noisier but directly comparable to the paper's "measured to be 2.7".

use crate::stats;
use pa_graph::degrees;

/// A fitted power-law exponent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// Estimated exponent γ (positive; degree distribution ∝ d^(−γ)).
    pub gamma: f64,
    /// The cutoff `d_min` the fit used.
    pub dmin: u64,
    /// Number of samples at or above the cutoff.
    pub tail_samples: u64,
}

/// Discrete MLE fit of the tail `d >= dmin`.
///
/// # Panics
///
/// Panics if `dmin < 1` or fewer than 10 samples survive the cutoff.
pub fn fit_mle(degrees: &[u64], dmin: u64) -> PowerLawFit {
    assert!(dmin >= 1, "dmin must be at least 1");
    let shift = dmin as f64 - 0.5;
    let mut count = 0u64;
    let mut log_sum = 0.0;
    for &d in degrees {
        if d >= dmin {
            count += 1;
            log_sum += (d as f64 / shift).ln();
        }
    }
    assert!(
        count >= 10,
        "need at least 10 tail samples above dmin = {dmin}, found {count}"
    );
    PowerLawFit {
        gamma: 1.0 + count as f64 / log_sum,
        dmin,
        tail_samples: count,
    }
}

/// Least-squares slope of the log-binned degree histogram on log–log
/// axes; returns γ as the *negated* slope together with the fit quality.
///
/// # Panics
///
/// Panics if fewer than 3 populated bins exist.
pub fn fit_loglog_slope(degs: &[u64], base: f64) -> (f64, stats::LineFit) {
    let bins = degrees::log_binned_histogram(degs, base);
    let pts: Vec<(f64, f64)> = bins
        .iter()
        .filter(|&&(_, density)| density > 0.0)
        .map(|&(center, density)| (center.ln(), density.ln()))
        .collect();
    assert!(pts.len() >= 3, "need at least 3 populated log bins");
    let fit = stats::linear_fit(&pts);
    (-fit.slope, fit)
}

/// Draw `count` samples from a discrete power law `P(d) ∝ d^(−γ)` for
/// `d >= dmin` by inverse-transform sampling of the continuous
/// approximation (used to test the estimators on known ground truth).
pub fn sample_power_law(
    gamma: f64,
    dmin: u64,
    count: usize,
    rng: &mut impl pa_rng::Rng64,
) -> Vec<u64> {
    assert!(gamma > 1.0, "power law needs gamma > 1");
    let mut out = Vec::with_capacity(count);
    let exp = -1.0 / (gamma - 1.0);
    for _ in 0..count {
        let u = 1.0 - rng.next_f64(); // (0, 1]
        let d = (dmin as f64 - 0.5) * u.powf(exp) + 0.5;
        out.push(d.floor() as u64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_rng::Xoshiro256pp;

    #[test]
    fn mle_recovers_known_gamma() {
        let mut rng = Xoshiro256pp::new(1);
        for true_gamma in [2.0f64, 2.5, 3.0] {
            let samples = sample_power_law(true_gamma, 4, 200_000, &mut rng);
            let fit = fit_mle(&samples, 4);
            assert!(
                (fit.gamma - true_gamma).abs() < 0.05,
                "γ = {true_gamma}: fitted {}",
                fit.gamma
            );
        }
    }

    #[test]
    fn mle_reports_tail_size() {
        let samples = vec![1u64; 100]
            .into_iter()
            .chain(vec![10u64; 50])
            .collect::<Vec<_>>();
        let fit = fit_mle(&samples, 2);
        assert_eq!(fit.tail_samples, 50);
        assert_eq!(fit.dmin, 2);
    }

    #[test]
    #[should_panic(expected = "at least 10 tail samples")]
    fn mle_rejects_thin_tails() {
        let _ = fit_mle(&[5, 6, 7], 2);
    }

    #[test]
    fn loglog_slope_close_to_mle_on_clean_data() {
        let mut rng = Xoshiro256pp::new(9);
        let samples = sample_power_law(2.5, 2, 300_000, &mut rng);
        let mle = fit_mle(&samples, 2);
        let (gamma, fit) = fit_loglog_slope(&samples, 2.0);
        assert!(
            fit.r2 > 0.95,
            "log-log fit should be tight, r2 = {}",
            fit.r2
        );
        assert!(
            (gamma - mle.gamma).abs() < 0.4,
            "binned slope {gamma} vs MLE {}",
            mle.gamma
        );
    }

    #[test]
    fn ba_network_exponent_near_three() {
        // The defining check: copy model at p = ½ is Barabási–Albert,
        // whose asymptotic exponent is 3 (finite-size estimates land
        // between ~2.5 and ~3.2, matching the paper's measured 2.7).
        let cfg = pa_core::PaConfig::new(60_000, 4).with_seed(8);
        let edges = pa_core::seq::copy_model(&cfg);
        let deg = pa_graph::degrees::degree_sequence(60_000, &edges);
        let fit = fit_mle(&deg, 8);
        assert!(
            (2.3..3.5).contains(&fit.gamma),
            "BA exponent out of range: {}",
            fit.gamma
        );
    }

    #[test]
    fn sampler_respects_dmin() {
        let mut rng = Xoshiro256pp::new(3);
        let samples = sample_power_law(2.5, 7, 10_000, &mut rng);
        assert!(samples.iter().all(|&d| d >= 7));
    }
}
