//! One-shot structural report over a generated network.
//!
//! Bundles the workspace's analyses into a single call — the backend of
//! the CLI's `analyze` command and a convenient one-liner for examples.

use crate::{powerlaw, stats};
use pa_graph::{degrees, metrics, Csr, EdgeList};

/// A full structural characterization of a network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkReport {
    /// Number of nodes.
    pub n: u64,
    /// Number of edges.
    pub m: u64,
    /// Degree summary.
    pub deg_min: u64,
    /// Largest degree.
    pub deg_max: u64,
    /// Mean degree (2m/n).
    pub deg_mean: f64,
    /// Degree standard deviation.
    pub deg_std: f64,
    /// Fitted power-law exponent (MLE), if a tail exists.
    pub gamma: Option<f64>,
    /// The cutoff used for the γ fit.
    pub gamma_dmin: Option<u64>,
    /// Number of connected components.
    pub components: usize,
    /// Global clustering coefficient (transitivity).
    pub transitivity: f64,
    /// Degree assortativity, when defined.
    pub assortativity: Option<f64>,
    /// Double-sweep diameter lower bound from node 0, when defined.
    pub diameter_lb: Option<u64>,
    /// Largest core number (degeneracy).
    pub degeneracy: u32,
}

/// Analyze `edges` over nodes `0 .. n`.
///
/// The γ fit uses `dmin = max(4, 2·median degree)` and is omitted when
/// fewer than 50 nodes survive the cutoff (no meaningful tail).
///
/// # Panics
///
/// Panics if `n == 0` or an edge references a node `>= n`.
pub fn analyze(n: u64, edges: &EdgeList) -> NetworkReport {
    assert!(n > 0, "cannot analyze an empty node set");
    let deg = degrees::degree_sequence(n as usize, edges);
    let dstats = degrees::degree_stats(&deg).expect("n > 0");
    let degf: Vec<f64> = deg.iter().map(|&d| d as f64).collect();
    let (_, deg_std) = stats::mean_std(&degf);

    // Median-based cutoff for the tail fit.
    let mut sorted = deg.clone();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let dmin = (2 * median).max(4);
    let tail = deg.iter().filter(|&&d| d >= dmin).count();
    let (gamma, gamma_dmin) = if tail >= 50 {
        let fit = powerlaw::fit_mle(&deg, dmin);
        (Some(fit.gamma), Some(dmin))
    } else {
        (None, None)
    };

    let csr = Csr::from_edges(n as usize, edges);
    NetworkReport {
        n,
        m: edges.len() as u64,
        deg_min: dstats.min,
        deg_max: dstats.max,
        deg_mean: dstats.mean,
        deg_std,
        gamma,
        gamma_dmin,
        components: csr.connected_components(),
        transitivity: metrics::transitivity(&csr),
        assortativity: metrics::degree_assortativity(&csr),
        diameter_lb: metrics::double_sweep_diameter(&csr, 0),
        degeneracy: metrics::core_numbers(&csr).into_iter().max().unwrap_or(0),
    }
}

impl std::fmt::Display for NetworkReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "nodes            {}", self.n)?;
        writeln!(f, "edges            {}", self.m)?;
        writeln!(
            f,
            "degree           min {}, mean {:.2} ± {:.2}, max {}",
            self.deg_min, self.deg_mean, self.deg_std, self.deg_max
        )?;
        match (self.gamma, self.gamma_dmin) {
            (Some(g), Some(dmin)) => {
                writeln!(f, "power law        gamma = {g:.3} (tail d >= {dmin})")?
            }
            _ => writeln!(f, "power law        no meaningful tail")?,
        }
        writeln!(f, "components       {}", self.components)?;
        writeln!(f, "transitivity     {:.5}", self.transitivity)?;
        match self.assortativity {
            Some(r) => writeln!(f, "assortativity    {r:+.4}")?,
            None => writeln!(f, "assortativity    undefined")?,
        }
        match self.diameter_lb {
            Some(d) => writeln!(f, "diameter         >= {d}")?,
            None => writeln!(f, "diameter         undefined from node 0")?,
        }
        write!(f, "degeneracy       {}", self.degeneracy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_core::{seq, PaConfig};

    #[test]
    fn report_on_pa_network_is_coherent() {
        let cfg = PaConfig::new(20_000, 4).with_seed(2);
        let edges = seq::copy_model(&cfg);
        let r = analyze(cfg.n, &edges);
        assert_eq!(r.n, 20_000);
        assert_eq!(r.m, cfg.expected_edges());
        assert_eq!(r.deg_mean, 2.0 * r.m as f64 / r.n as f64);
        assert_eq!(r.components, 1);
        let gamma = r.gamma.expect("PA networks have a tail");
        assert!((2.0..4.0).contains(&gamma));
        assert!(r.assortativity.unwrap() < 0.05, "PA is not assortative");
        assert!(r.degeneracy >= cfg.x as u32);
        assert!(r.diameter_lb.unwrap() >= 3);
    }

    #[test]
    fn report_on_tiny_graph_omits_tail_fit() {
        let edges = EdgeList::from_vec(vec![(0, 1), (1, 2)]);
        let r = analyze(3, &edges);
        assert!(r.gamma.is_none());
        assert_eq!(r.components, 1);
        assert_eq!(r.deg_max, 2);
    }

    #[test]
    fn display_renders_every_line() {
        let edges = EdgeList::from_vec(vec![(0, 1), (1, 2), (2, 0)]);
        let text = analyze(3, &edges).to_string();
        for needle in [
            "nodes",
            "edges",
            "degree",
            "power law",
            "components",
            "transitivity",
            "assortativity",
            "diameter",
            "degeneracy",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    #[should_panic(expected = "empty node set")]
    fn zero_nodes_panics() {
        let _ = analyze(0, &EdgeList::new());
    }
}
