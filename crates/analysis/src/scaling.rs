//! Strong- and weak-scaling series (Figures 5 and 6).
//!
//! Both figures plot derived quantities of per-rank loads: strong scaling
//! fixes the problem size and grows `P`; weak scaling fixes the work per
//! rank. The series here convert measured [`RankLoad`]s through the
//! virtual-time [`CostModel`] into the makespan/speedup numbers the
//! figures report (see DESIGN.md for why simulated time replaces
//! wall-clock on a single-core host).

use pa_mpsim::cost::{CostModel, RankLoad};

/// One row of a strong-scaling table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrongPoint {
    /// Rank count.
    pub nranks: usize,
    /// Simulated parallel runtime (cost-model units).
    pub makespan: f64,
    /// Speedup `T_s / T_p` against the sequential cost.
    pub speedup: f64,
    /// Parallel efficiency `speedup / nranks`.
    pub efficiency: f64,
}

/// Build a strong-scaling point from one run's loads.
pub fn strong_point(model: &CostModel, total_nodes: u64, loads: &[RankLoad]) -> StrongPoint {
    let makespan = model.makespan(loads);
    let speedup = model.speedup(total_nodes, loads);
    StrongPoint {
        nranks: loads.len(),
        makespan,
        speedup,
        efficiency: speedup / loads.len() as f64,
    }
}

/// One row of a weak-scaling table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeakPoint {
    /// Rank count.
    pub nranks: usize,
    /// Problem size of this run.
    pub total_nodes: u64,
    /// Simulated parallel runtime.
    pub makespan: f64,
    /// Runtime normalized to the single-rank baseline (1.0 = perfect
    /// weak scaling).
    pub normalized: f64,
}

/// Build a weak-scaling series from runs whose per-rank work was held
/// constant. `runs[i]` is `(total_nodes, loads)` for the i-th rank count.
///
/// # Panics
///
/// Panics if `runs` is empty.
pub fn weak_series(model: &CostModel, runs: &[(u64, Vec<RankLoad>)]) -> Vec<WeakPoint> {
    assert!(!runs.is_empty(), "weak series needs at least one run");
    let base = model.makespan(&runs[0].1);
    runs.iter()
        .map(|(n, loads)| {
            let makespan = model.makespan(loads);
            WeakPoint {
                nranks: loads.len(),
                total_nodes: *n,
                makespan,
                normalized: makespan / base,
            }
        })
        .collect()
}

/// Render a simple aligned text table (harness output helper).
///
/// `headers.len()` must equal the width of every row.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(nodes: u64) -> RankLoad {
        RankLoad {
            nodes,
            ..Default::default()
        }
    }

    fn pure_compute_model() -> CostModel {
        CostModel {
            t_node: 1.0,
            t_msg: 0.0,
            t_packet: 0.0,
            t_collective: 0.0,
        }
    }

    #[test]
    fn strong_point_on_balanced_loads() {
        let m = pure_compute_model();
        let p = strong_point(&m, 800, &[load(200); 4]);
        assert_eq!(p.nranks, 4);
        assert!((p.speedup - 4.0).abs() < 1e-12);
        assert!((p.efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn strong_point_reflects_imbalance() {
        let m = pure_compute_model();
        let p = strong_point(&m, 800, &[load(500), load(100), load(100), load(100)]);
        assert!(p.speedup < 2.0);
        assert!(p.efficiency < 0.5);
    }

    #[test]
    fn weak_series_normalizes_to_first_run() {
        let m = pure_compute_model();
        let runs = vec![
            (100u64, vec![load(100)]),
            (200, vec![load(100); 2]),
            (400, vec![load(110); 4]), // 10% degradation
        ];
        let series = weak_series(&m, &runs);
        assert_eq!(series[0].normalized, 1.0);
        assert_eq!(series[1].normalized, 1.0);
        assert!((series[2].normalized - 1.1).abs() < 1e-12);
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["P", "speedup"],
            &[
                vec!["1".into(), "1.00".into()],
                vec!["16".into(), "14.91".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("speedup"));
        assert!(lines[3].trim_start().starts_with("16"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = render_table(&["a", "b"], &[vec!["1".into()]]);
    }
}
