//! Small statistics helpers.

/// Result of an ordinary least-squares line fit `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r2: f64,
}

/// Ordinary least squares over `(x, y)` pairs.
///
/// # Panics
///
/// Panics with fewer than two points or zero x-variance.
pub fn linear_fit(points: &[(f64, f64)]) -> LineFit {
    assert!(points.len() >= 2, "need at least two points to fit a line");
    let n = points.len() as f64;
    let (mut sx, mut sy) = (0.0, 0.0);
    for &(x, y) in points {
        sx += x;
        sy += y;
    }
    let (mx, my) = (sx / n, sy / n);
    let (mut sxx, mut sxy, mut syy) = (0.0, 0.0, 0.0);
    for &(x, y) in points {
        sxx += (x - mx) * (x - mx);
        sxy += (x - mx) * (y - my);
        syy += (y - my) * (y - my);
    }
    assert!(sxx > 0.0, "x values are all identical");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    LineFit {
        slope,
        intercept,
        r2,
    }
}

/// Mean and (population) standard deviation.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Max/min ratio of a positive series — the load-imbalance factor used in
/// the Figure 7 discussion (1.0 = perfectly balanced).
///
/// # Panics
///
/// Panics on an empty series or a non-positive minimum.
pub fn imbalance(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "imbalance of an empty series");
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(min > 0.0, "imbalance requires positive loads");
    max / min
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 - 2.0)).collect();
        let fit = linear_fit(&pts);
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 2.0).abs() < 1e-12);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_has_lower_r2() {
        let pts = [(0.0, 0.0), (1.0, 2.0), (2.0, 1.0), (3.0, 3.0)];
        let fit = linear_fit(&pts);
        assert!(fit.r2 < 1.0);
        assert!(fit.slope > 0.0);
    }

    #[test]
    #[should_panic(expected = "two points")]
    fn single_point_panics() {
        let _ = linear_fit(&[(1.0, 1.0)]);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn imbalance_ratio() {
        assert!((imbalance(&[1.0, 2.0, 4.0]) - 4.0).abs() < 1e-12);
        assert!((imbalance(&[3.0, 3.0]) - 1.0).abs() < 1e-12);
    }
}
