//! Closed-form theoretical predictions for the generated models.
//!
//! The Barabási–Albert process with `x` edges per node has the exact
//! asymptotic degree law (Dorogovtsev–Mendes / Bollobás):
//!
//! ```text
//! P(d) = 2·x·(x+1) / (d·(d+1)·(d+2)),   d >= x
//! ```
//!
//! whose tail behaves like `2x² d⁻³` (γ = 3). Having the exact finite-d
//! law — not just the exponent — gives the test suite a sharp
//! goodness-of-fit target for the copy model at `p = ½`, and the
//! experiments a theory overlay for Figure 4.

/// The asymptotic BA probability that a uniformly chosen node has degree
/// `d`, for attachment parameter `x`.
///
/// Returns 0 for `d < x` (every non-seed node is born with degree `x`).
pub fn ba_degree_pmf(x: u64, d: u64) -> f64 {
    if d < x {
        return 0.0;
    }
    let (x, d) = (x as f64, d as f64);
    2.0 * x * (x + 1.0) / (d * (d + 1.0) * (d + 2.0))
}

/// The asymptotic BA survival function `P(degree >= d)`.
///
/// Telescoping the PMF gives the closed form
/// `P(D >= d) = x(x+1) / (d(d+1))` for `d >= x` (and 1 below `x`).
pub fn ba_degree_ccdf(x: u64, d: u64) -> f64 {
    if d <= x {
        return 1.0;
    }
    let (x, d) = (x as f64, d as f64);
    (x * (x + 1.0)) / (d * (d + 1.0))
}

/// Expected copy-model power-law exponent as a function of the direct
/// probability `p` (Kumar et al.): `γ = (2 − p) / (1 − p)`.
///
/// `p = ½` gives γ = 3 (Barabási–Albert); `p → 1` sends γ → ∞ (uniform
/// attachment, exponential tail).
///
/// # Panics
///
/// Panics at `p = 1` where no power law exists.
pub fn copy_model_gamma(p: f64) -> f64 {
    assert!(p < 1.0, "no power-law tail at p = 1");
    (2.0 - p) / (1.0 - p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        for x in [1u64, 3, 8] {
            let total: f64 = (x..200_000).map(|d| ba_degree_pmf(x, d)).sum();
            assert!((total - 1.0).abs() < 1e-3, "x = {x}: sum = {total}");
        }
    }

    #[test]
    fn ccdf_matches_pmf_tail_sum() {
        let x = 4;
        for d in [4u64, 10, 50] {
            let tail: f64 = (d..500_000).map(|dd| ba_degree_pmf(x, dd)).sum();
            let closed = ba_degree_ccdf(x, d);
            assert!((tail - closed).abs() < 1e-4, "d = {d}: {tail} vs {closed}");
        }
    }

    #[test]
    fn pmf_zero_below_x() {
        assert_eq!(ba_degree_pmf(4, 3), 0.0);
        assert!(ba_degree_pmf(4, 4) > 0.0);
    }

    #[test]
    fn tail_exponent_is_three() {
        // PMF(2d)/PMF(d) -> 2^-3 for large d.
        let ratio = ba_degree_pmf(2, 2000) / ba_degree_pmf(2, 1000);
        assert!((ratio - 0.125).abs() < 0.002, "ratio = {ratio}");
    }

    #[test]
    fn gamma_of_half_is_three() {
        assert!((copy_model_gamma(0.5) - 3.0).abs() < 1e-12);
        // Smaller p (more copying) gives heavier tails.
        assert!(copy_model_gamma(0.25) < 3.0);
        assert!(copy_model_gamma(0.75) > 3.0);
    }

    #[test]
    #[should_panic(expected = "p = 1")]
    fn gamma_at_one_panics() {
        let _ = copy_model_gamma(1.0);
    }

    #[test]
    fn generated_network_matches_the_exact_law() {
        // The headline goodness-of-fit: empirical CCDF of a copy-model
        // network at p = ½ vs the closed-form BA law, across two decades
        // of degrees.
        let x = 4u64;
        let n = 100_000u64;
        let cfg = pa_core::PaConfig::new(n, x).with_seed(12);
        let edges = pa_core::seq::copy_model(&cfg);
        let deg = pa_graph::degrees::degree_sequence(n as usize, &edges);
        let ccdf = pa_graph::degrees::ccdf(&deg);
        for &(d, emp) in ccdf.iter().filter(|&&(d, _)| d >= x && d <= 100) {
            let theory = ba_degree_ccdf(x, d);
            assert!(
                (emp / theory - 1.0).abs() < 0.25,
                "d = {d}: empirical {emp:.5} vs theory {theory:.5}"
            );
        }
    }
}
