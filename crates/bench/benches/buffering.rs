//! Message-buffering ablation (§3.5): aggregation amortizes per-packet
//! overhead; capacity 1 disables it entirely.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pa_core::{par, partition::Scheme, GenOptions, PaConfig};
use std::hint::black_box;

fn bench_buffer_capacity(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer_capacity");
    group.sample_size(10);
    let cfg = PaConfig::new(30_000, 4).with_seed(1);
    for &cap in &[1usize, 16, 256, 4096] {
        let opts = GenOptions {
            buffer_capacity: cap,
            service_interval: 64,
            ..GenOptions::default()
        };
        group.bench_with_input(BenchmarkId::new("rrp_p4", cap), &opts, |b, opts| {
            b.iter(|| par::generate(black_box(&cfg), Scheme::Rrp, 4, opts))
        });
    }
    group.finish();
}

fn bench_service_interval(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_interval");
    group.sample_size(10);
    let cfg = PaConfig::new(30_000, 4).with_seed(1);
    for &interval in &[1usize, 16, 256] {
        let opts = GenOptions {
            buffer_capacity: 1024,
            service_interval: interval,
            ..GenOptions::default()
        };
        group.bench_with_input(BenchmarkId::new("rrp_p4", interval), &opts, |b, opts| {
            b.iter(|| par::generate(black_box(&cfg), Scheme::Rrp, 4, opts))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_buffer_capacity, bench_service_interval);
criterion_main!(benches);
