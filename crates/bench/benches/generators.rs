//! Throughput of every generator in the workspace at a common size —
//! the "model zoo" comparison backing the extensions in DESIGN.md §7.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pa_core::{approx_yh, cl, er, par, partition::Scheme, rmat, ws, GenOptions, PaConfig};
use pa_rng::Xoshiro256pp;
use std::hint::black_box;

const N: u64 = 50_000;

fn bench_model_zoo(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);

    let pa_cfg = PaConfig::new(N, 4).with_seed(1);
    group.throughput(Throughput::Elements(pa_cfg.expected_edges()));
    group.bench_function("pa_parallel_p4", |b| {
        b.iter(|| par::generate(black_box(&pa_cfg), Scheme::Rrp, 4, &GenOptions::default()))
    });
    let hub_opts = GenOptions::default().with_hub_cache(N / 4);
    group.bench_function("pa_parallel_p4_hub_quarter", |b| {
        b.iter(|| par::generate(black_box(&pa_cfg), Scheme::Rrp, 4, &hub_opts))
    });
    let nohub_opts = GenOptions::default().without_hub_cache();
    group.bench_function("pa_parallel_p4_hub_off", |b| {
        b.iter(|| par::generate(black_box(&pa_cfg), Scheme::Rrp, 4, &nohub_opts))
    });
    group.bench_function("pa_parallel_p4_engine3", |b| {
        b.iter(|| par::generate3(black_box(&pa_cfg), Scheme::Rrp, 4, &GenOptions::default()))
    });
    let nomemo_opts = GenOptions::default().with_chain_memo(0);
    group.bench_function("pa_parallel_p4_engine3_memo_off", |b| {
        b.iter(|| par::generate3(black_box(&pa_cfg), Scheme::Rrp, 4, &nomemo_opts))
    });
    group.bench_function("pa_streaming_count_p4", |b| {
        // Same engine, zero-materialization path: edges fold into a
        // per-rank counter instead of an edge vector, isolating the
        // allocation/commit cost of materialized output.
        b.iter(|| {
            par::generate_streaming(
                black_box(&pa_cfg),
                Scheme::Rrp,
                4,
                &GenOptions::default(),
                |_| par::CountSink::default(),
            )
        })
    });
    group.bench_function("pa_streaming_count_p4_engine3", |b| {
        b.iter(|| {
            par::generate3_streaming(
                black_box(&pa_cfg),
                Scheme::Rrp,
                4,
                &GenOptions::default(),
                |_| par::CountSink::default(),
            )
        })
    });
    group.bench_function("pa_sequential", |b| {
        b.iter(|| pa_core::seq::copy_model(black_box(&pa_cfg)))
    });
    group.bench_function("pa_approximate_yh_p4", |b| {
        b.iter(|| approx_yh::generate(black_box(&pa_cfg), 4, &approx_yh::YhParams::default()))
    });

    let er_cfg = er::ErConfig::new(N, 8.0 / N as f64).with_seed(1);
    group.bench_function("erdos_renyi_p4", |b| {
        b.iter(|| er::generate_par(black_box(&er_cfg), 4))
    });

    let cl_cfg = cl::ClConfig::new(cl::power_law_weights(N, 3.0, 3.0), 1);
    group.bench_function("chung_lu_p4", |b| {
        b.iter(|| cl::generate_par(black_box(&cl_cfg), 4))
    });

    let ws_cfg = ws::WsConfig::new(N, 8, 0.1).with_seed(1);
    group.bench_function("watts_strogatz_seq", |b| {
        b.iter(|| ws::generate(black_box(&ws_cfg), &mut Xoshiro256pp::new(1)))
    });

    let rmat_cfg = rmat::RmatConfig::graph500(16)
        .with_edges(4 * N)
        .with_seed(1);
    group.bench_function("rmat_p4", |b| {
        b.iter(|| rmat::generate_par(black_box(&rmat_cfg), 4))
    });

    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis");
    group.sample_size(10);
    let cfg = PaConfig::new(N, 4).with_seed(1);
    let edges = pa_core::seq::copy_model(&cfg);
    let csr = pa_graph::Csr::from_edges(N as usize, &edges);
    let deg = pa_graph::degrees::degree_sequence(N as usize, &edges);

    group.bench_function("csr_construction", |b| {
        b.iter(|| pa_graph::Csr::from_edges(N as usize, black_box(&edges)))
    });
    group.bench_function("triangle_count", |b| {
        b.iter(|| pa_graph::metrics::triangle_count(black_box(&csr)))
    });
    group.bench_function("core_numbers", |b| {
        b.iter(|| pa_graph::metrics::core_numbers(black_box(&csr)))
    });
    group.bench_function("powerlaw_mle", |b| {
        b.iter(|| pa_analysis::powerlaw::fit_mle(black_box(&deg), 8))
    });
    group.bench_function("full_report", |b| {
        b.iter(|| pa_analysis::report::analyze(N, black_box(&edges)))
    });
    group.finish();
}

criterion_group!(benches, bench_model_zoo, bench_metrics);
criterion_main!(benches);
