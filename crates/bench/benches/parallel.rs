//! Parallel-engine throughput vs rank count (wall-clock; on a multi-core
//! host this shows real speedup, on this single-core host it measures the
//! runtime's overhead — the scaling *figures* use the cost model instead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pa_core::{par, partition::Scheme, GenOptions, PaConfig};
use std::hint::black_box;

fn bench_engine_by_ranks(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_ranks");
    group.sample_size(10);
    let cfg = PaConfig::new(50_000, 4).with_seed(1);
    group.throughput(Throughput::Elements(cfg.expected_edges()));
    for &ranks in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("rrp", ranks), &ranks, |b, &ranks| {
            b.iter(|| par::generate(black_box(&cfg), Scheme::Rrp, ranks, &GenOptions::default()))
        });
    }
    group.finish();
}

fn bench_engine_x1_vs_general(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_x1");
    group.sample_size(10);
    let cfg = PaConfig::new(50_000, 1).with_seed(1);
    group.throughput(Throughput::Elements(cfg.expected_edges()));
    group.bench_function("algorithm_3_1", |b| {
        b.iter(|| par::generate_x1(black_box(&cfg), Scheme::Rrp, 4, &GenOptions::default()))
    });
    group.bench_function("algorithm_3_2_with_x1", |b| {
        b.iter(|| par::generate(black_box(&cfg), Scheme::Rrp, 4, &GenOptions::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_engine_by_ranks, bench_engine_x1_vs_general);
criterion_main!(benches);
