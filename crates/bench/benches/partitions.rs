//! Partitioning-scheme ablation: owner-lookup cost (Criterion A of §3.5
//! demands O(1)) and whole-run cost per scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pa_core::partition::{build, Partition, Scheme};
use pa_core::{par, GenOptions, PaConfig};
use std::hint::black_box;

fn bench_rank_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_rank_of");
    let n = 10_000_000u64;
    for scheme in Scheme::ALL {
        let part = build(scheme, n, 160);
        group.bench_with_input(BenchmarkId::new("lookup", scheme), &part, |b, part| {
            let mut v = 0u64;
            b.iter(|| {
                v = (v * 2_862_933_555_777_941_757 + 3_037_000_493) % n;
                black_box(part.rank_of(v))
            })
        });
    }
    group.finish();
}

fn bench_partition_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_build");
    group.sample_size(10);
    let n = 10_000_000u64;
    for scheme in Scheme::ALL {
        group.bench_with_input(BenchmarkId::new("build", scheme), &scheme, |b, &s| {
            b.iter(|| build(black_box(s), n, 160))
        });
    }
    group.finish();
}

fn bench_generation_per_scheme(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_generation");
    group.sample_size(10);
    let cfg = PaConfig::new(50_000, 4).with_seed(1);
    for scheme in Scheme::ALL {
        group.bench_with_input(BenchmarkId::new("generate", scheme), &scheme, |b, &s| {
            b.iter(|| par::generate(black_box(&cfg), s, 8, &GenOptions::default()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rank_lookup,
    bench_partition_construction,
    bench_generation_per_scheme
);
criterion_main!(benches);
