//! Packet-pool microbenchmark: message batches streamed between two
//! ranks with receive buffers recycled back to the sender's pool versus
//! dropped (forcing a fresh allocation per batch).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pa_mpsim::{Packet, World};
use std::hint::black_box;

const ROUNDS: usize = 200;
const BATCH: usize = 512;

/// Stream `ROUNDS` batches of `BATCH` words from rank 0 to rank 1.
/// Returns the pool hit count so the two variants are distinguishable.
fn stream(recycle: bool) -> u64 {
    let world = World::new(2);
    let hits = world.run(|mut comm| {
        if comm.rank() == 0 {
            for round in 0..ROUNDS {
                let mut buf = comm.acquire_buffer(1);
                for i in 0..BATCH {
                    buf.push((round * BATCH + i) as u64);
                }
                comm.send_batch(1, buf);
            }
            0
        } else {
            let mut got = 0usize;
            let mut q: Vec<Packet<u64>> = Vec::new();
            while got < ROUNDS * BATCH {
                comm.drain_recv(&mut q);
                for pkt in q.drain(..) {
                    got += pkt.msgs.len();
                    black_box(&pkt.msgs);
                    if recycle {
                        comm.recycle(pkt.src, pkt.msgs);
                    }
                }
            }
            comm.stats().pool_misses
        }
    });
    hits.into_iter().sum()
}

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("packet_pool");
    group.sample_size(20);
    group.throughput(Throughput::Elements((ROUNDS * BATCH) as u64));
    for recycle in [true, false] {
        let label = if recycle { "recycled" } else { "dropped" };
        group.bench_with_input(
            BenchmarkId::new("stream_2ranks", label),
            &recycle,
            |b, &recycle| b.iter(|| stream(black_box(recycle))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pool);
criterion_main!(benches);
