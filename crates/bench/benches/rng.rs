//! Random-number-generation throughput: the per-draw cost bounds the
//! whole generator (each edge consumes three draws).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pa_rng::{CounterRng, Rng64, SplitMix64, Xoshiro256pp};
use std::hint::black_box;

const DRAWS: u64 = 100_000;

fn bench_raw_streams(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng_stream");
    group.throughput(Throughput::Elements(DRAWS));
    group.bench_function("splitmix64", |b| {
        let mut rng = SplitMix64::new(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..DRAWS {
                acc ^= rng.next_u64();
            }
            black_box(acc)
        })
    });
    group.bench_function("xoshiro256pp", |b| {
        let mut rng = Xoshiro256pp::new(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..DRAWS {
                acc ^= rng.next_u64();
            }
            black_box(acc)
        })
    });
    group.bench_function("counter_per_event", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for t in 0..DRAWS {
                let mut rng = CounterRng::for_event(1, t, 0, 0);
                acc ^= rng.next_u64();
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_range_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng_range");
    group.throughput(Throughput::Elements(DRAWS));
    group.bench_function("gen_below_pow2", |b| {
        let mut rng = Xoshiro256pp::new(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..DRAWS {
                acc ^= rng.gen_below(1 << 20);
            }
            black_box(acc)
        })
    });
    group.bench_function("gen_below_odd", |b| {
        let mut rng = Xoshiro256pp::new(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..DRAWS {
                acc ^= rng.gen_below(1_000_003);
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_raw_streams, bench_range_sampling);
criterion_main!(benches);
