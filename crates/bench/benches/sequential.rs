//! Sequential-algorithm comparison (paper §3.1): naive Ω(n²) vs
//! Batagelj–Brandes O(m) vs copy model O(m).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pa_core::{seq, PaConfig};
use pa_rng::Xoshiro256pp;
use std::hint::black_box;

fn bench_small_with_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("seq_small");
    group.sample_size(10);
    for &n in &[1_000u64, 4_000] {
        let cfg = PaConfig::new(n, 4).with_seed(1);
        group.throughput(Throughput::Elements(cfg.expected_edges()));
        group.bench_with_input(BenchmarkId::new("naive", n), &cfg, |b, cfg| {
            b.iter(|| seq::naive(black_box(cfg), &mut Xoshiro256pp::new(1)))
        });
        group.bench_with_input(BenchmarkId::new("batagelj_brandes", n), &cfg, |b, cfg| {
            b.iter(|| seq::batagelj_brandes(black_box(cfg), &mut Xoshiro256pp::new(1)))
        });
        group.bench_with_input(BenchmarkId::new("copy_model", n), &cfg, |b, cfg| {
            b.iter(|| seq::copy_model(black_box(cfg)))
        });
    }
    group.finish();
}

fn bench_linear_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("seq_linear");
    group.sample_size(10);
    for &n in &[20_000u64, 100_000] {
        let cfg = PaConfig::new(n, 4).with_seed(1);
        group.throughput(Throughput::Elements(cfg.expected_edges()));
        group.bench_with_input(BenchmarkId::new("batagelj_brandes", n), &cfg, |b, cfg| {
            b.iter(|| seq::batagelj_brandes(black_box(cfg), &mut Xoshiro256pp::new(1)))
        });
        group.bench_with_input(BenchmarkId::new("copy_model", n), &cfg, |b, cfg| {
            b.iter(|| seq::copy_model(black_box(cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_small_with_naive, bench_linear_algorithms);
criterion_main!(benches);
