//! Theorem 3.3 validation — dependency-chain lengths.
//!
//! The paper proves E\[L_t\] ≤ ln n, max L = O(log n) w.h.p. (their
//! Chernoff yardstick: 5·ln n), and average length ≤ 1/p for constant p.
//! This harness computes exact chain lengths from the deterministic draw
//! streams across an n sweep and a p sweep.
//!
//! ```text
//! cargo run -p pa-bench --release --bin exp_dependency_chains
//! ```

use pa_analysis::scaling::render_table;
use pa_bench::{banner, csv_line, Args};
use pa_core::chains;

fn main() {
    let args = Args::parse();
    let max_n = args.get_u64("maxn", 10_000_000);
    let seed = args.get_u64("seed", 1);

    banner(
        "Theorem 3.3",
        "dependency-chain lengths: mean <= 1/p, max = O(log n)",
    );

    // --- n sweep at p = 1/2. ---
    println!("\nn sweep (p = 0.5):");
    println!("csv,n,mean_dep,max_dep,ln_n,five_ln_n,mean_sel");
    let mut rows = Vec::new();
    let mut n = 1_000u64;
    while n <= max_n {
        let dep = chains::summarize(&chains::dependency_lengths(seed, 0.5, n));
        let sel = chains::summarize(&chains::selection_lengths(seed, 0.5, n));
        let ln_n = (n as f64).ln();
        csv_line(&[
            &n,
            &format!("{:.3}", dep.mean),
            &dep.max,
            &format!("{ln_n:.2}"),
            &format!("{:.2}", 5.0 * ln_n),
            &format!("{:.3}", sel.mean),
        ]);
        rows.push(vec![
            n.to_string(),
            format!("{:.3}", dep.mean),
            dep.max.to_string(),
            format!("{:.1}", 5.0 * ln_n),
            format!("{:.2}", sel.mean),
        ]);
        n *= 10;
    }
    println!();
    println!(
        "{}",
        render_table(&["n", "mean |D|", "max |D|", "5 ln n", "mean |S|"], &rows)
    );

    // --- p sweep at fixed n. ---
    let n = 1_000_000u64;
    println!("p sweep (n = {n}):");
    println!("csv,p,mean_dep,max_dep,bound_1_over_p");
    let mut rows = Vec::new();
    for p in [0.1f64, 0.25, 0.5, 0.75, 0.9] {
        let dep = chains::summarize(&chains::dependency_lengths(seed, p, n));
        csv_line(&[
            &p,
            &format!("{:.3}", dep.mean),
            &dep.max,
            &format!("{:.2}", 1.0 / p),
        ]);
        rows.push(vec![
            p.to_string(),
            format!("{:.3}", dep.mean),
            dep.max.to_string(),
            format!("{:.2}", 1.0 / p),
        ]);
    }
    println!();
    println!(
        "{}",
        render_table(&["p", "mean |D|", "max |D|", "1/p bound"], &rows)
    );
    println!(
        "expected: mean dependency length stays below 1/p and essentially flat\n\
         in n; the max grows like log n and stays under the 5 ln n yardstick."
    );
}
