//! Engine2 vs engine3 ablation — messages, recomputation, wall-clock.
//!
//! Engine2 (Algorithm 3.2) resolves remote dependency chains with
//! request/resolved round trips, softened by the hub cache; engine3
//! re-evaluates the counter-based draw streams locally and sends
//! *nothing*. This experiment runs the same pinned workload through
//! three configurations — engine2 with the hub cache, engine2 without
//! it, and engine3 — and reports per-config message totals,
//! chain-recomputation counters and wall-clock time.
//!
//! The run doubles as a CI guard: if engine3 sends even one
//! point-to-point message or queues a single request the process exits
//! non-zero, so `ci.sh` can assert the communication-free property on
//! every push.
//!
//! ```text
//! cargo run -p pa-bench --release --bin exp_engine3_vs_engine2 -- --n 1000000 --ranks 4
//! ```

use pa_analysis::scaling::render_table;
use pa_bench::{banner, csv_line, Args};
use pa_core::partition::Scheme;
use pa_core::{par, GenOptions, PaConfig};

struct Row {
    label: &'static str,
    msgs: u64,
    requests: u64,
    recomputed: u64,
    memo_hits: u64,
    peak_depth: u64,
    secs: f64,
    edges: u64,
}

fn measure(
    label: &'static str,
    cfg: &PaConfig,
    ranks: usize,
    opts: &GenOptions,
    engine3: bool,
) -> Row {
    let start = std::time::Instant::now();
    let out = if engine3 {
        par::generate3(cfg, Scheme::Rrp, ranks, opts)
    } else {
        par::generate(cfg, Scheme::Rrp, ranks, opts)
    };
    let secs = start.elapsed().as_secs_f64();
    let msgs = out.ranks.iter().map(|r| r.comm.msgs_sent).sum();
    let totals = out.total_counters();
    Row {
        label,
        msgs,
        requests: totals.requests_sent,
        recomputed: totals.chain_rows_recomputed,
        memo_hits: totals.chain_memo_hits,
        peak_depth: totals.chain_peak_depth,
        secs,
        edges: out.edge_list().len() as u64,
    }
}

fn main() {
    let args = Args::parse();
    let n = args.get_u64("n", 1_000_000);
    let x = args.get_u64("x", 4);
    let p = args.get_f64("p", 0.5);
    let seed = args.get_u64("seed", 1);
    let ranks = args.get_u64("ranks", 4) as usize;

    banner(
        "engine3 ablation",
        "communication-free chain recomputation vs Algorithm 3.2's round trips",
    );
    println!("n = {n}, x = {x}, p = {p}, P = {ranks} (RRP)\n");

    let cfg = PaConfig::new(n, x).with_p(p).with_seed(seed);
    let mut rows = vec![
        measure("engine2 hub on", &cfg, ranks, &GenOptions::default(), false),
        measure(
            "engine2 hub off",
            &cfg,
            ranks,
            &GenOptions::default().without_hub_cache(),
            false,
        ),
        measure("engine3", &cfg, ranks, &GenOptions::default(), true),
        measure(
            "engine3 memo full",
            &cfg,
            ranks,
            &GenOptions::default().with_chain_memo(n),
            true,
        ),
    ];
    if n <= 200_000 {
        // Without the memo every chain re-walks to its bottom — work
        // explodes quadratically-ish, so only measure it at small n.
        rows.push(measure(
            "engine3 memo off",
            &cfg,
            ranks,
            &GenOptions::default().with_chain_memo(0),
            true,
        ));
    }

    let edges = rows[0].edges;
    println!("csv,config,msgs_sent,requests_sent,rows_recomputed,memo_hits,peak_depth,seconds");
    let mut table = Vec::new();
    for r in &rows {
        assert_eq!(r.edges, edges, "{}: edge count diverged", r.label);
        csv_line(&[
            &r.label,
            &r.msgs,
            &r.requests,
            &r.recomputed,
            &r.memo_hits,
            &r.peak_depth,
            &format!("{:.3}", r.secs),
        ]);
        table.push(vec![
            r.label.to_string(),
            r.msgs.to_string(),
            r.requests.to_string(),
            r.recomputed.to_string(),
            r.memo_hits.to_string(),
            format!("{:.3}", r.secs),
        ]);
    }
    println!();
    println!(
        "{}",
        render_table(
            &[
                "config",
                "msgs sent",
                "requests",
                "rows recomputed",
                "memo hits",
                "seconds"
            ],
            &table,
        )
    );
    println!(
        "expected: engine2's message count collapses to zero in engine3, which\n\
         instead pays in recomputed chain rows; the memo absorbs most of that\n\
         recomputation (compare the memo-off row)."
    );

    // CI guard: the communication-free property is the whole point.
    for r in &rows {
        if r.label.starts_with("engine3") && (r.msgs != 0 || r.requests != 0) {
            eprintln!(
                "FAIL: {} sent {} message(s) / {} request(s); engine3 must be \
                 communication-free",
                r.label, r.msgs, r.requests
            );
            std::process::exit(1);
        }
    }
    println!("\nguard: engine3 sent 0 messages and 0 requests — OK");
}
