//! Hub-cache ablation — request and message traffic with the replicated
//! low-label cache on vs. off, on the UCP layout it targets (Lemma 3.4:
//! low-label nodes receive the bulk of all requests).
//!
//! Verifies bit-identical edge sets across the two runs, then reports
//! per-run totals: request messages, total messages (including the
//! broadcast overhead the cache pays), packets, and cache counters.
//!
//! ```text
//! cargo run -p pa-bench --release --bin exp_hub_cache -- --n 1000000 --x 4 --ranks 8
//! ```

use pa_analysis::scaling::render_table;
use pa_bench::{banner, csv_line, Args};
use pa_core::par::ParallelOutput;
use pa_core::partition::Scheme;
use pa_core::{par, GenOptions, PaConfig};

fn totals(out: &ParallelOutput) -> (u64, u64, u64) {
    let msgs = out.ranks.iter().map(|r| r.comm.msgs_sent).sum();
    let packets = out.ranks.iter().map(|r| r.comm.packets_sent).sum();
    (out.total_counters().requests_sent, msgs, packets)
}

fn main() {
    let args = Args::parse();
    let n = args.get_u64("n", 1_000_000);
    let x = args.get_u64("x", 4);
    let ranks = args.get_u64("ranks", 8) as usize;
    let seed = args.get_u64("seed", 1);
    let hub_nodes = args.get_u64("hub", n / 4);

    banner(
        "Hub cache",
        "request/message traffic with the replicated hub cache on vs off",
    );
    println!("n = {n}, x = {x}, P = {ranks}, UCP, hub = {hub_nodes} nodes\n");

    let cfg = PaConfig::new(n, x).with_seed(seed);
    let run = |opts: &GenOptions| {
        let started = std::time::Instant::now();
        let out = par::generate(&cfg, Scheme::Ucp, ranks, opts);
        (out, started.elapsed().as_secs_f64())
    };
    let (off, t_off) = run(&GenOptions::default().without_hub_cache());
    let (on, t_on) = run(&GenOptions::default().with_hub_cache(hub_nodes));

    assert_eq!(
        off.edge_list().canonicalized(),
        on.edge_list().canonicalized(),
        "hub cache changed the network"
    );
    println!(
        "edge sets are bit-identical ({} edges)\n",
        off.total_edges()
    );

    let (req_off, msgs_off, pk_off) = totals(&off);
    let (req_on, msgs_on, pk_on) = totals(&on);
    let hub = on.total_counters();

    println!("csv,variant,requests,msgs,packets,hub_hits,hub_deferred,hub_updates,seconds");
    csv_line(&[&"off", &req_off, &msgs_off, &pk_off, &0, &0, &0, &t_off]);
    csv_line(&[
        &"on",
        &req_on,
        &msgs_on,
        &pk_on,
        &hub.hub_hits,
        &hub.hub_deferred,
        &hub.hub_updates,
        &t_on,
    ]);

    let pct = |a: u64, b: u64| 100.0 * (1.0 - a as f64 / b as f64);
    println!();
    println!(
        "{}",
        render_table(
            &["metric", "hub off", "hub on", "change"],
            &[
                vec![
                    "requests sent".into(),
                    req_off.to_string(),
                    req_on.to_string(),
                    format!("{:+.1}%", -pct(req_on, req_off)),
                ],
                vec![
                    "total messages".into(),
                    msgs_off.to_string(),
                    msgs_on.to_string(),
                    format!("{:+.1}%", -pct(msgs_on, msgs_off)),
                ],
                vec![
                    "packets".into(),
                    pk_off.to_string(),
                    pk_on.to_string(),
                    format!("{:+.1}%", -pct(pk_on, pk_off)),
                ],
            ]
        )
    );
    println!(
        "\nhub hits: {} ({} parked for a broadcast), broadcasts installed: {}",
        hub.hub_hits, hub.hub_deferred, hub.hub_updates
    );
    println!(
        "requests drop {:.1}% with the cache on (target: >= 30%)",
        pct(req_on, req_off)
    );
}
