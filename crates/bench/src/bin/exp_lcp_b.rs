//! Ablation — LCP's load constant `b` (Equation 10).
//!
//! The paper leaves `b = 1 + c` unspecified. `b` encodes the ratio of a
//! node's fixed cost to the cost of one incoming request, so the right
//! value depends on the machine's compute/communication ratio
//! (`eq10::b_for`). This harness sweeps `b` and reports the resulting
//! load imbalance and cost-model speedup, showing (a) how sensitive LCP
//! is to mis-calibration and (b) that the workspace default sits near
//! the optimum for the default cost model — with RRP as the
//! parameter-free yardstick.
//!
//! ```text
//! cargo run -p pa-bench --release --bin exp_lcp_b
//! ```

use pa_analysis::scaling::render_table;
use pa_analysis::stats;
use pa_bench::{banner, csv_line, Args};
use pa_core::partition::{eq10, Lcp, Scheme};
use pa_core::{par, GenOptions, PaConfig};
use pa_mpsim::cost::CostModel;

fn main() {
    let args = Args::parse();
    let n = args.get_u64("n", 1_000_000);
    let x = args.get_u64("x", 6);
    let ranks = args.get_u64("ranks", 32) as usize;
    let seed = args.get_u64("seed", 1);

    banner("Ablation", "LCP load constant b (Equation 10)");
    let cfg = PaConfig::new(n, x).with_seed(seed);
    let model = CostModel::per_edge(x);
    // t_msg is already in per-edge node-work units under per_edge(x).
    let derived = eq10::b_for(cfg.p, model.t_msg);
    println!("n = {n}, x = {x}, P = {ranks}; b derived from the cost model: {derived:.1}\n");

    println!("csv,b,imbalance,speedup");
    let mut rows = Vec::new();
    for b in [1.5f64, 2.0, 3.0, 5.0, 8.0, 12.0, 20.0, 50.0] {
        let part = Lcp::with_b(n, ranks, b);
        let out = par::generate_with(&cfg, &part, &GenOptions::default());
        let loads = out.loads();
        let times: Vec<f64> = loads.iter().map(|l| model.rank_time(l)).collect();
        // max/mean rather than max/min: extreme b values can starve a
        // rank of nodes entirely (zero load), and the makespan only
        // cares about the hot end.
        let (mean, _) = stats::mean_std(&times);
        let imbalance = times.iter().cloned().fold(f64::MIN, f64::max) / mean;
        let speedup = model.speedup(n, &loads);
        csv_line(&[&b, &format!("{imbalance:.3}"), &format!("{speedup:.1}")]);
        rows.push(vec![
            format!("{b}"),
            format!("{imbalance:.3}"),
            format!("{speedup:.1}"),
        ]);
    }
    // RRP reference.
    let rrp = par::generate(&cfg, Scheme::Rrp, ranks, &GenOptions::default());
    let rrp_times: Vec<f64> = rrp.loads().iter().map(|l| model.rank_time(l)).collect();
    rows.push(vec![
        "RRP (ref)".into(),
        {
            let (m, _) = stats::mean_std(&rrp_times);
            format!(
                "{:.3}",
                rrp_times.iter().cloned().fold(f64::MIN, f64::max) / m
            )
        },
        format!("{:.1}", model.speedup(n, &rrp.loads())),
    ]);

    println!();
    println!(
        "{}",
        render_table(&["b", "rank-time max/mean", "speedup (model)"], &rows)
    );
    println!(
        "reading: small b over-weights message load (starves low ranks of\n\
         nodes); large b degenerates towards uniform (UCP's hotspot returns).\n\
         RRP needs no such tuning — one reason the paper prefers it."
    );
}
