//! Lemma 3.4 validation — request-message counts.
//!
//! The lemma: node `k` receives `E[M_k] = (1−p)(H_{n−1} − H_k)` request
//! messages. Two checks:
//!
//! 1. *Analytic:* count, from the deterministic draw streams, how many
//!    nodes actually copy from each `k`, binned by label, against the
//!    harmonic prediction.
//! 2. *Engine:* run Algorithm 3.1 under UCP and compare each rank's
//!    measured incoming requests with the lemma's per-rank sum (scaled
//!    by the remote fraction, since same-rank lookups never become
//!    messages).
//!
//! ```text
//! cargo run -p pa-bench --release --bin exp_message_counts
//! ```

use pa_analysis::messages;
use pa_analysis::scaling::render_table;
use pa_bench::{banner, csv_line, Args};
use pa_core::partition::{Scheme, Ucp};
use pa_core::{par, seq, GenOptions, PaConfig};

fn main() {
    let args = Args::parse();
    let n = args.get_u64("n", 1_000_000);
    let p = args.get_f64("p", 0.5);
    let seed = args.get_u64("seed", 1);
    let ranks = args.get_u64("ranks", 16) as usize;

    banner(
        "Lemma 3.4",
        "E[M_k] = (1-p)(H_(n-1) - H_k) request messages per node",
    );
    println!("n = {n}, p = {p}\n");

    // --- Analytic check: count actual copy-lookups per node. ---
    let mut lookups = vec![0u32; n as usize];
    for t in 2..n {
        let c = seq::draw_choice(seed, p, 1, t, 0, 0);
        if !c.direct {
            lookups[c.k as usize] += 1;
        }
    }
    println!("binned lookup counts vs harmonic prediction:");
    println!("csv,bin_start,bin_end,measured_mean,predicted_mean");
    let mut rows = Vec::new();
    let mut lo = 1u64;
    while lo < n {
        let hi = (lo * 4).min(n);
        let measured: f64 =
            (lo..hi).map(|k| lookups[k as usize] as f64).sum::<f64>() / (hi - lo) as f64;
        let predicted: f64 = (lo..hi)
            .map(|k| messages::expected_requests_for_node(n, p, k))
            .sum::<f64>()
            / (hi - lo) as f64;
        csv_line(&[
            &lo,
            &hi,
            &format!("{measured:.4}"),
            &format!("{predicted:.4}"),
        ]);
        rows.push(vec![
            format!("[{lo}, {hi})"),
            format!("{measured:.3}"),
            format!("{predicted:.3}"),
        ]);
        lo = hi;
    }
    println!();
    println!(
        "{}",
        render_table(&["label bin", "measured E[M_k]", "predicted"], &rows)
    );

    // --- Engine check: per-rank incoming requests under UCP. ---
    println!("engine measurement (Algorithm 3.1, UCP, P = {ranks}):");
    let cfg = PaConfig::new(n, 1).with_p(p).with_seed(seed);
    let out = par::generate_x1(&cfg, Scheme::Ucp, ranks, &GenOptions::default());
    let part = Ucp::new(n, ranks);
    let predicted = messages::expected_requests_per_rank(p, &part);
    println!("csv,rank,measured_in,predicted_upper_bound");
    let mut rows = Vec::new();
    for (r, pred) in out.ranks.iter().zip(&predicted) {
        let measured = r.counters.requests_served + r.counters.requests_queued;
        csv_line(&[&r.rank, &measured, &format!("{pred:.0}")]);
        if r.rank % (ranks / 8).max(1) == 0 {
            rows.push(vec![
                r.rank.to_string(),
                measured.to_string(),
                format!("{pred:.0}"),
            ]);
        }
    }
    println!();
    println!(
        "{}",
        render_table(&["rank", "measured incoming", "lemma upper bound"], &rows)
    );
    println!(
        "expected: measured counts track the harmonic curve (slightly below\n\
         the bound because same-rank lookups never become messages), and drop\n\
         steeply with rank — the UCP imbalance of Figure 7(c)."
    );
}
