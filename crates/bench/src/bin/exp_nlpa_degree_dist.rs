//! Nonlinear-PA degree distribution — does α actually move the exponent?
//!
//! The nlpa surrogate re-weights the copy model's direct-vs-copy coin to
//! `p_eff = p^α`, which predicts a degree exponent `γ ≈ 1 + 1/(1 − p_eff)`:
//! sub-linear kernels (α < 1) thin the tail (larger γ), super-linear ones
//! (α > 1) thicken it (smaller γ). This experiment generates the same
//! workload at a sweep of exponents through the communication-free engine,
//! fits γ two ways (discrete MLE and a log-binned log–log slope), and
//! prints measured-vs-predicted rows.
//!
//! The run doubles as a CI guard: the fitted γ must *strictly decrease*
//! as α grows — if a code change flattens the sweep (e.g. α stops
//! reaching the draw stream), the process exits non-zero.
//!
//! ```text
//! cargo run -p pa-bench --release --bin exp_nlpa_degree_dist -- --n 200000 --ranks 4
//! ```

use pa_analysis::powerlaw;
use pa_bench::{banner, csv_line, Args};
use pa_core::{par, partition::Scheme, GenOptions, PaConfig};
use pa_graph::degrees;

struct Row {
    alpha: f64,
    p_eff: f64,
    predicted: f64,
    mle: f64,
    slope: f64,
    r2: f64,
    max_degree: u64,
    secs: f64,
}

fn main() {
    let args = Args::parse();
    let n = args.get_u64("n", 200_000);
    let x = args.get_u64("x", 4);
    let p = args.get_f64("p", 0.5);
    let ranks = args.get_u64("ranks", 4) as usize;
    let seed = args.get_u64("seed", 1);

    banner(
        "nlpa exponent sweep",
        "degree exponent γ as a function of the nlpa kernel exponent α",
    );
    println!("n = {n}, x = {x}, p = {p}, P = {ranks} (RRP, engine 3)\n");

    let cfg = PaConfig::new(n, x).with_p(p).with_seed(seed);
    let dmin = (2 * x).max(4);
    let alphas = [0.5f64, 1.0, 1.5];

    let mut rows = Vec::new();
    for alpha in alphas {
        let opts = GenOptions::default().with_alpha(alpha);
        let start = std::time::Instant::now();
        let out = par::generate3(&cfg, Scheme::Rrp, ranks, &opts);
        let secs = start.elapsed().as_secs_f64();
        let deg = degrees::degree_sequence(n as usize, &out.edge_list());
        let mle = powerlaw::fit_mle(&deg, dmin);
        let (slope_gamma, fit) = powerlaw::fit_loglog_slope(&deg, 2.0);
        let p_eff = p.powf(alpha);
        rows.push(Row {
            alpha,
            p_eff,
            predicted: 1.0 + 1.0 / (1.0 - p_eff),
            mle: mle.gamma,
            slope: slope_gamma,
            r2: fit.r2,
            max_degree: degrees::degree_stats(&deg).expect("non-empty degrees").max,
            secs,
        });
    }

    println!("csv,alpha,p_eff,gamma_predicted,gamma_mle,gamma_slope,r2,max_degree,seconds");
    for r in &rows {
        csv_line(&[
            &format!("{:.2}", r.alpha),
            &format!("{:.4}", r.p_eff),
            &format!("{:.3}", r.predicted),
            &format!("{:.3}", r.mle),
            &format!("{:.3}", r.slope),
            &format!("{:.3}", r.r2),
            &r.max_degree,
            &format!("{:.3}", r.secs),
        ]);
    }

    println!(
        "\ntheory: γ ≈ 1 + 1/(1 − p^α); the sweep must be strictly\n\
         monotone — larger α, heavier tail, smaller fitted γ."
    );

    let mut ok = true;
    for w in rows.windows(2) {
        let (lo, hi) = (&w[0], &w[1]);
        if hi.mle >= lo.mle {
            eprintln!(
                "FAIL: MLE γ did not decrease from α = {} ({:.3}) to α = {} ({:.3})",
                lo.alpha, lo.mle, hi.alpha, hi.mle
            );
            ok = false;
        }
        if hi.max_degree <= lo.max_degree {
            eprintln!(
                "FAIL: max degree did not grow from α = {} ({}) to α = {} ({})",
                lo.alpha, lo.max_degree, hi.alpha, hi.max_degree
            );
            ok = false;
        }
    }
    if !ok {
        eprintln!("nlpa exponent sweep violated monotonicity — α is not reaching the draws");
        std::process::exit(1);
    }
    println!("\nγ decreases strictly across the α sweep — nlpa exponent verified.");
}
