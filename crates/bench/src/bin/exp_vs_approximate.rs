//! Exact vs approximate distributed PA generation (the paper's §1
//! motivation against Yoo–Henderson-style algorithms).
//!
//! Generates the same network with the exact Algorithm 3.2 and with the
//! sample-exchange approximation at several control-parameter settings,
//! then measures each degree distribution against the closed-form BA law
//! (γ from MLE, KS distance to the exact generator's degrees).
//!
//! ```text
//! cargo run -p pa-bench --release --bin exp_vs_approximate
//! ```

use pa_analysis::{distance, powerlaw, scaling::render_table};
use pa_bench::{banner, csv_line, Args};
use pa_core::approx_yh::{self, YhParams};
use pa_core::{par, partition::Scheme, GenOptions, PaConfig};
use pa_graph::degrees;

fn main() {
    let args = Args::parse();
    let n = args.get_u64("n", 200_000);
    let x = args.get_u64("x", 4);
    let ranks = args.get_u64("ranks", 8) as usize;
    let seed = args.get_u64("seed", 1);

    banner(
        "Exact vs approximate",
        "degree-distribution accuracy of exact Algorithm 3.2 vs a Yoo-Henderson-style approximation",
    );
    println!("n = {n}, x = {x}, P = {ranks}\n");

    let cfg = PaConfig::new(n, x).with_seed(seed);
    let exact = par::generate(&cfg, Scheme::Rrp, ranks, &GenOptions::default()).edge_list();
    let exact_deg = degrees::degree_sequence(n as usize, &exact);
    let dmin = 2 * x;
    let exact_fit = powerlaw::fit_mle(&exact_deg, dmin);

    println!("csv,generator,sync_interval,sample_size,gamma,ks_vs_exact");
    csv_line(&[
        &"exact",
        &"-",
        &"-",
        &format!("{:.3}", exact_fit.gamma),
        &"0.000",
    ]);
    let mut rows = vec![vec![
        "exact (Alg. 3.2)".to_string(),
        format!("{:.3}", exact_fit.gamma),
        "0.000".into(),
    ]];

    let settings = [(2048u64, 4usize), (512, 16), (64, 64), (8, 512)];
    for (sync_interval, sample_size) in settings {
        let params = YhParams {
            sync_interval,
            sample_size,
        };
        let approx = approx_yh::generate(&cfg, ranks, &params);
        let deg = degrees::degree_sequence(n as usize, &approx);
        let fit = powerlaw::fit_mle(&deg, dmin);
        let ks = distance::ks_statistic(&deg, &exact_deg);
        csv_line(&[
            &"approx",
            &sync_interval,
            &sample_size,
            &format!("{:.3}", fit.gamma),
            &format!("{ks:.4}"),
        ]);
        rows.push(vec![
            format!("approx (sync={sync_interval}, sample={sample_size})"),
            format!("{:.3}", fit.gamma),
            format!("{ks:.4}"),
        ]);
    }

    println!();
    println!(
        "{}",
        render_table(&["generator", "gamma (MLE)", "KS vs exact"], &rows)
    );
    println!(
        "reading: the approximation's accuracy depends on its control\n\
         parameters (staleness and sample size) — the tuning burden the\n\
         paper's exact algorithm removes. Theory: gamma = 3 for BA."
    );
}
