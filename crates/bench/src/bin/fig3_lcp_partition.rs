//! Figure 3 — node distribution among processors: exact solution of the
//! nonlinear load Equation 10 vs. LCP's linear approximation.
//!
//! ```text
//! cargo run -p pa-bench --release --bin fig3_lcp_partition -- --n 1000000 --ranks 100
//! ```

use pa_analysis::scaling::render_table;
use pa_bench::{banner, csv_line, Args};
use pa_core::partition::eq10;
use pa_core::partition::{Lcp, Partition};

fn main() {
    let args = Args::parse();
    let n = args.get_u64("n", 1_000_000);
    let ranks = args.get_u64("ranks", 100) as usize;
    let b = args.get_f64("b", eq10::DEFAULT_B);

    banner(
        "Figure 3",
        "nodes per processor: exact Eq. 10 solution vs linear approximation (LCP)",
    );
    println!("n = {n}, P = {ranks}, b = {b}\n");

    let exact = eq10::solve_boundaries(n, ranks, b);
    let lcp = Lcp::with_b(n, ranks, b);
    let (a, d) = lcp.params();
    println!("fitted linear model: nodes(rank i) = {a:.2} + {d:.4}·i\n");

    let mut rows = Vec::new();
    let mut max_rel_err: f64 = 0.0;
    println!("csv,rank,exact_nodes,lcp_nodes");
    for i in 0..ranks {
        let exact_size = exact[i + 1] - exact[i];
        let lcp_size = lcp.size_of(i);
        csv_line(&[&i, &exact_size, &lcp_size]);
        if exact_size > 0 {
            let rel = (lcp_size as f64 - exact_size as f64).abs() / exact_size as f64;
            max_rel_err = max_rel_err.max(rel);
        }
        // Keep the text table readable: every tenth rank.
        if i % (ranks / 10).max(1) == 0 || i == ranks - 1 {
            rows.push(vec![
                i.to_string(),
                exact_size.to_string(),
                lcp_size.to_string(),
            ]);
        }
    }
    println!();
    println!(
        "{}",
        render_table(&["rank", "exact (Eq. 10)", "LCP (linear)"], &rows)
    );
    println!(
        "max relative deviation of the linear approximation: {:.2}%",
        100.0 * max_rel_err
    );
    println!(
        "paper: Figure 3 plots the exact Eq. 10 solution against its linear\n\
         approximation; the approximation is what LCP deploys (O(1) rank\n\
         lookups). The exact curve is mildly convex — the harmonic per-node\n\
         load makes the fit coarsest at the first/last ranks — but the\n\
         resulting *load* balance remains close to ideal (see fig7's LCP\n\
         panel), which is the property the scheme is built for."
    );
}
