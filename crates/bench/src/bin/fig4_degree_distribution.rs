//! Figure 4 — log–log degree distribution of a generated PA network and
//! its power-law exponent (the paper measures γ ≈ 2.7 at n = 10⁹, x = 4;
//! we default to n = 10⁶ on this host — pass --n to scale up).
//!
//! ```text
//! cargo run -p pa-bench --release --bin fig4_degree_distribution -- --n 1000000 --x 4
//! ```

use pa_analysis::powerlaw;
use pa_bench::{banner, csv_line, Args};
use pa_core::{par, partition::Scheme, GenOptions, PaConfig};
use pa_graph::degrees;

fn main() {
    let args = Args::parse();
    let n = args.get_u64("n", 1_000_000);
    let x = args.get_u64("x", 4);
    let p = args.get_f64("p", 0.5);
    let ranks = args.get_u64("ranks", 8) as usize;
    let seed = args.get_u64("seed", 1);

    banner(
        "Figure 4",
        "degree distribution (log-log) of the parallel PA generator",
    );
    println!("n = {n}, x = {x}, p = {p}, P = {ranks} (paper: n = 1e9, x = 4)\n");

    let cfg = PaConfig::new(n, x).with_p(p).with_seed(seed);
    let start = std::time::Instant::now();
    let out = par::generate(&cfg, Scheme::Rrp, ranks, &GenOptions::default());
    let gen_time = start.elapsed();
    let edges = out.edge_list();
    println!(
        "generated {} edges in {:.2}s (wall, single-core host)\n",
        edges.len(),
        gen_time.as_secs_f64()
    );

    let deg = degrees::degree_sequence(n as usize, &edges);
    let stats = degrees::degree_stats(&deg).expect("non-empty degrees");
    println!(
        "degrees: min = {}, mean = {:.2}, max = {}",
        stats.min, stats.mean, stats.max
    );

    // Log-binned histogram — the plotted series.
    println!("\ncsv,degree_bin_center,density");
    for (center, density) in degrees::log_binned_histogram(&deg, 2.0) {
        csv_line(&[&format!("{center:.2}"), &format!("{density:.4}")]);
    }

    // Exponent estimates.
    let dmin = (2 * x).max(4);
    let mle = powerlaw::fit_mle(&deg, dmin);
    let (slope_gamma, fit) = powerlaw::fit_loglog_slope(&deg, 2.0);
    println!();
    println!(
        "power-law exponent gamma: MLE = {:.3} (dmin = {}, tail = {} nodes)",
        mle.gamma, mle.dmin, mle.tail_samples
    );
    println!(
        "                          log-log slope = {:.3} (r² = {:.4})",
        slope_gamma, fit.r2
    );
    println!(
        "\npaper: measured gamma = 2.7 at n = 1e9; theory for BA is gamma -> 3.\n\
         Expect the finite-size estimate here to land in the same 2.5–3.2 band,\n\
         confirming the heavy tail the paper's Figure 4 shows."
    );
}
