//! Figure 5 — strong scaling: speedup vs processor count for the three
//! partitioning schemes (paper: n = 10⁹, x = 6, P = 1..768).
//!
//! On this single-core host wall-clock speedup is unobservable, so the
//! speedup column comes from the virtual-time cost model applied to the
//! *measured* per-rank loads (see DESIGN.md §2); the load counts
//! themselves are exact.
//!
//! ```text
//! cargo run -p pa-bench --release --bin fig5_strong_scaling -- --n 200000 --x 6
//! ```

use pa_analysis::scaling::{render_table, strong_point};
use pa_bench::{banner, csv_line, Args};
use pa_core::{par, partition::Scheme, GenOptions, PaConfig};
use pa_mpsim::cost::CostModel;

fn main() {
    let args = Args::parse();
    let n = args.get_u64("n", 10_000_000);
    let x = args.get_u64("x", 6);
    let max_p = args.get_u64("maxp", 128) as usize;
    let seed = args.get_u64("seed", 1);

    banner("Figure 5", "strong scaling of the parallel PA algorithm");
    println!("n = {n}, x = {x} (paper: n = 1e9, x = 6, P up to 768)\n");

    let cfg = PaConfig::new(n, x).with_seed(seed);
    let model = CostModel::per_edge(x);
    let opts = GenOptions::default();

    let mut sweep = vec![1usize];
    while *sweep.last().unwrap() * 2 <= max_p {
        sweep.push(sweep.last().unwrap() * 2);
    }

    let mut rows = Vec::new();
    println!("csv,scheme,ranks,makespan,speedup,efficiency,wall_seconds");
    for &ranks in &sweep {
        let mut row = vec![ranks.to_string()];
        for scheme in Scheme::ALL {
            let start = std::time::Instant::now();
            let out = par::generate(&cfg, scheme, ranks, &opts);
            let wall = start.elapsed().as_secs_f64();
            assert_eq!(out.total_edges() as u64, cfg.expected_edges());
            let point = strong_point(&model, n, &out.loads());
            csv_line(&[
                &scheme,
                &ranks,
                &format!("{:.0}", point.makespan),
                &format!("{:.2}", point.speedup),
                &format!("{:.3}", point.efficiency),
                &format!("{wall:.2}"),
            ]);
            row.push(format!("{:.1}", point.speedup));
        }
        rows.push(row);
    }
    println!();
    println!(
        "{}",
        render_table(&["P", "UCP speedup", "LCP speedup", "RRP speedup"], &rows)
    );
    println!(
        "paper: speedups grow almost linearly with P; LCP and RRP beat UCP\n\
         because UCP's rank 0 absorbs the incoming-request hotspot."
    );
}
