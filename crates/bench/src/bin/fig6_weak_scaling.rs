//! Figure 6 — weak scaling: simulated runtime vs processor count with
//! the per-processor problem size held constant (paper: 10⁷ edges per
//! processor, P = 16..768).
//!
//! ```text
//! cargo run -p pa-bench --release --bin fig6_weak_scaling -- --nodes-per-rank 10000 --x 6
//! ```

use pa_analysis::scaling::{render_table, weak_series};
use pa_bench::{banner, csv_line, Args};
use pa_core::{par, partition::Scheme, GenOptions, PaConfig};
use pa_mpsim::cost::{CostModel, RankLoad};

fn main() {
    let args = Args::parse();
    let nodes_per_rank = args.get_u64("nodes-per-rank", 100_000);
    let x = args.get_u64("x", 6);
    let max_p = args.get_u64("maxp", 64) as usize;
    let seed = args.get_u64("seed", 1);

    banner("Figure 6", "weak scaling of the parallel PA algorithm");
    println!(
        "{nodes_per_rank} nodes/rank, x = {x} → {} edges/rank (paper: 1e7 edges/proc)\n",
        nodes_per_rank * x
    );

    let model = CostModel::per_edge(x);
    let opts = GenOptions::default();
    // Start at P = 4: like the paper's sweep (16..768), the baseline is
    // a genuinely communicating run — a 1-rank run has no messages at
    // all and would make every later point look artificially slow.
    let min_p = args.get_u64("minp", 4) as usize;
    let mut sweep = vec![min_p];
    while *sweep.last().unwrap() * 2 <= max_p {
        sweep.push(sweep.last().unwrap() * 2);
    }

    println!("csv,scheme,ranks,total_nodes,makespan,normalized,wall_seconds");
    let mut per_scheme: Vec<Vec<String>> = Vec::new();
    for scheme in Scheme::ALL {
        let mut runs: Vec<(u64, Vec<RankLoad>)> = Vec::new();
        let mut walls = Vec::new();
        for &ranks in &sweep {
            let n = nodes_per_rank * ranks as u64;
            let cfg = PaConfig::new(n, x).with_seed(seed);
            let start = std::time::Instant::now();
            let out = par::generate(&cfg, scheme, ranks, &opts);
            walls.push(start.elapsed().as_secs_f64());
            assert_eq!(out.total_edges() as u64, cfg.expected_edges());
            runs.push((n, out.loads()));
        }
        let series = weak_series(&model, &runs);
        let mut col = Vec::new();
        for (point, wall) in series.iter().zip(&walls) {
            csv_line(&[
                &scheme,
                &point.nranks,
                &point.total_nodes,
                &format!("{:.0}", point.makespan),
                &format!("{:.3}", point.normalized),
                &format!("{wall:.2}"),
            ]);
            col.push(format!("{:.3}", point.normalized));
        }
        per_scheme.push(col);
    }

    println!();
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            vec![
                p.to_string(),
                per_scheme[0][i].clone(),
                per_scheme[1][i].clone(),
                per_scheme[2][i].clone(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "P",
                "UCP runtime (norm.)",
                "LCP runtime (norm.)",
                "RRP runtime (norm.)"
            ],
            &rows
        )
    );
    println!(
        "paper: LCP and RRP stay almost flat (ideal weak scaling); UCP climbs\n\
         because its hotspot rank's message load grows with the total problem."
    );
}
