//! Figure 7 — per-processor node and message distribution for UCP, LCP
//! and RRP (paper: n = 10⁸, x = 10, P = 160; we default to n = 10⁶).
//!
//! Panels: (a) nodes per processor, (b) outgoing request messages,
//! (c) incoming request messages, (d) total load = nodes + incoming +
//! outgoing (§4.6.3's unit measure).
//!
//! ```text
//! cargo run -p pa-bench --release --bin fig7_load_balance -- --n 1000000 --ranks 160
//! ```

use pa_analysis::scaling::render_table;
use pa_analysis::stats;
use pa_bench::{banner, csv_line, Args};
use pa_core::{par, partition::Scheme, GenOptions, PaConfig};

fn main() {
    let args = Args::parse();
    let n = args.get_u64("n", 1_000_000);
    let x = args.get_u64("x", 10);
    let ranks = args.get_u64("ranks", 160) as usize;
    let seed = args.get_u64("seed", 1);

    banner("Figure 7", "node and message distribution per processor");
    println!("n = {n}, x = {x}, P = {ranks} (paper: n = 1e8, x = 10, P = 160)\n");

    let cfg = PaConfig::new(n, x).with_seed(seed);
    // Figure 7 characterizes the paper's uncached request traffic, so run
    // with the hub cache disabled.
    let opts = GenOptions::default().without_hub_cache();

    println!("csv,scheme,rank,nodes,requests_out,requests_in,total_load,packets_out,packets_in");
    let mut summary_rows = Vec::new();
    for scheme in Scheme::ALL {
        let out = par::generate(&cfg, scheme, ranks, &opts);
        assert_eq!(out.total_edges() as u64, cfg.expected_edges());
        let mut loads = Vec::with_capacity(ranks);
        for r in &out.ranks {
            let requests_out = r.counters.requests_sent;
            let requests_in = r.counters.requests_served + r.counters.requests_queued;
            let total = r.counters.nodes + requests_out + requests_in;
            csv_line(&[
                &scheme,
                &r.rank,
                &r.counters.nodes,
                &requests_out,
                &requests_in,
                &total,
                &r.comm.packets_sent,
                &r.comm.packets_recv,
            ]);
            loads.push(total as f64);
        }
        let (mean, std) = stats::mean_std(&loads);
        let imbalance = stats::imbalance(&loads);
        let max = loads.iter().cloned().fold(f64::MIN, f64::max);
        summary_rows.push(vec![
            scheme.to_string(),
            format!("{mean:.0}"),
            format!("{std:.0}"),
            format!("{max:.0}"),
            format!("{imbalance:.2}"),
        ]);
    }

    println!();
    println!(
        "{}",
        render_table(
            &["scheme", "mean load", "std", "max load", "max/min"],
            &summary_rows
        )
    );
    println!(
        "paper: RRP distributes load almost perfectly, LCP is close, and UCP\n\
         is badly skewed (its low ranks receive the bulk of the requests)."
    );
}
