//! §4.5 — generating the largest network this host can hold (the paper's
//! headline: 50 billion edges, n = 1e9, x = 5, in 123 s on 768 procs).
//!
//! Generates the biggest run that fits here, reports throughput, and
//! extrapolates to the paper's configuration for context.
//!
//! ```text
//! cargo run -p pa-bench --release --bin table_large_network -- --n 10000000 --x 5
//! ```

use pa_analysis::scaling::render_table;
use pa_bench::{banner, csv_line, Args};
use pa_core::{par, partition::Scheme, GenOptions, PaConfig};

fn main() {
    let args = Args::parse();
    let n = args.get_u64("n", 10_000_000);
    let x = args.get_u64("x", 5);
    let ranks = args.get_u64("ranks", 8) as usize;
    let seed = args.get_u64("seed", 1);

    banner(
        "Table (§4.5)",
        "largest-network generation with the RRP scheme",
    );
    println!(
        "n = {n}, x = {x}, P = {ranks} (paper: n = 1e9, x = 5, P = 768 → 50B edges in 123 s)\n"
    );

    let cfg = PaConfig::new(n, x).with_seed(seed);
    let start = std::time::Instant::now();
    let out = par::generate(&cfg, Scheme::Rrp, ranks, &GenOptions::default());
    let wall = start.elapsed().as_secs_f64();
    let edges = out.total_edges() as u64;
    assert_eq!(edges, cfg.expected_edges());

    let throughput = edges as f64 / wall;
    let paper_edges = 50_000_000_000f64;
    let paper_procs = 768.0;
    let our_cores = 1.0; // this host
                         // Per-core throughput scaled to the paper's processor count.
    let extrapolated = paper_edges / (throughput / our_cores * paper_procs);

    println!("csv,edges,wall_seconds,edges_per_second");
    csv_line(&[&edges, &format!("{wall:.2}"), &format!("{throughput:.0}")]);
    println!();
    println!(
        "{}",
        render_table(
            &["quantity", "this run", "paper"],
            &[
                vec!["edges".into(), edges.to_string(), "50B".into()],
                vec![
                    "processors".into(),
                    format!("{ranks} ranks / 1 core"),
                    "768".into()
                ],
                vec!["wall time (s)".into(), format!("{wall:.1}"), "123".into()],
                vec![
                    "edges/s/core".into(),
                    format!("{throughput:.2e}"),
                    format!("{:.2e}", paper_edges / 123.0 / paper_procs),
                ],
            ]
        )
    );
    println!(
        "extrapolation: at this per-core rate, 768 perfectly scaling cores\n\
         would generate the paper's 50B-edge network in ≈ {extrapolated:.0} s\n\
         (paper measured 123 s on 2013-era 2.6 GHz Sandy Bridge with real\n\
         InfiniBand latencies; a per-core advantage of roughly an order of\n\
         magnitude for a modern core plus in-process channels is expected,\n\
         and the naive extrapolation ignores all communication loss)."
    );
}
