//! Shared harness plumbing for the experiment binaries.
//!
//! Each `src/bin/fig*.rs` / `src/bin/exp_*.rs` binary regenerates one
//! table or figure of the paper (see DESIGN.md §5 for the index). They
//! all print self-describing text tables plus machine-readable CSV lines
//! prefixed with `csv,` so results can be grepped straight into a
//! plotting tool:
//!
//! ```text
//! cargo run -p pa-bench --release --bin fig5_strong_scaling | grep ^csv,
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

/// Minimal `--key value` / `--key=value` argument parser for the
/// experiment binaries (clap stays off the dependency list).
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parse the process arguments.
    ///
    /// # Panics
    ///
    /// Panics on a positional (non `--key`) argument.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    ///
    /// # Panics
    ///
    /// Panics on malformed arguments.
    pub fn from_args<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut values = HashMap::new();
        let mut iter = iter.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let key = arg
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("expected --key, got {arg:?}"));
            if let Some((k, v)) = key.split_once('=') {
                values.insert(k.to_string(), v.to_string());
            } else {
                let v = iter
                    .next()
                    .unwrap_or_else(|| panic!("missing value for --{key}"));
                values.insert(key.to_string(), v);
            }
        }
        Self { values }
    }

    /// Look up a `u64` flag with a default.
    ///
    /// # Panics
    ///
    /// Panics if the value does not parse.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} must be an integer, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// Look up an `f64` flag with a default.
    ///
    /// # Panics
    ///
    /// Panics if the value does not parse.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} must be a number, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// Look up a string flag with a default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

/// Emit one machine-readable CSV record (prefixed so it survives mixed
/// with the human-readable tables).
pub fn csv_line(fields: &[&dyn std::fmt::Display]) {
    let joined = fields
        .iter()
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join(",");
    println!("csv,{joined}");
}

/// Print the standard experiment banner.
pub fn banner(figure: &str, description: &str) {
    println!("=== {figure} — {description} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::from_args(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_separated_and_equals_forms() {
        let a = args(&["--n", "100", "--x=4", "--scheme", "rrp"]);
        assert_eq!(a.get_u64("n", 0), 100);
        assert_eq!(a.get_u64("x", 0), 4);
        assert_eq!(a.get_str("scheme", ""), "rrp");
    }

    #[test]
    fn defaults_apply_when_missing() {
        let a = args(&[]);
        assert_eq!(a.get_u64("n", 42), 42);
        assert_eq!(a.get_f64("p", 0.5), 0.5);
        assert_eq!(a.get_str("scheme", "ucp"), "ucp");
    }

    #[test]
    #[should_panic(expected = "missing value")]
    fn dangling_key_panics() {
        let _ = args(&["--n"]);
    }

    #[test]
    #[should_panic(expected = "must be an integer")]
    fn bad_integer_panics() {
        let a = args(&["--n", "abc"]);
        let _ = a.get_u64("n", 0);
    }
}
