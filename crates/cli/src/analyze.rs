//! `pagen analyze` — structural report of a stored network.

use crate::args::{Args, CliError};
use pa_analysis::report;
use pa_graph::{container, io, EdgeList};
use std::io::Write;

pub(crate) fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let path = args.str_required("in")?;
    let format = args.str("format", "pag");

    let (n, edges) = match format.as_str() {
        "pag" => {
            let (meta, shards) = container::read_file(&path).map_err(CliError::io)?;
            let edges = EdgeList::concat(shards);
            let n = if meta.n > 0 {
                meta.n
            } else {
                edges.max_node().map_or(1, |m| m + 1)
            };
            writeln!(out, "container attributes:").map_err(CliError::io)?;
            for (k, v) in &meta.attrs {
                writeln!(out, "  {k} = {v}").map_err(CliError::io)?;
            }
            writeln!(out).map_err(CliError::io)?;
            (n, edges)
        }
        "bin" | "txt" => {
            let edges = if format == "bin" {
                io::read_binary_file(&path).map_err(CliError::io)?
            } else {
                io::read_text_file(&path).map_err(CliError::io)?
            };
            let inferred = edges.max_node().map_or(1, |m| m + 1);
            let n = args.u64("n", inferred)?;
            if edges.max_node().is_some_and(|m| m >= n) {
                return Err(CliError::usage(format!(
                    "--n {n} is smaller than the largest node id in the file"
                )));
            }
            (n, edges)
        }
        other => {
            return Err(CliError::usage(format!(
                "unknown format {other:?} (expected pag, bin or txt)"
            )))
        }
    };
    args.finish()?;

    if n == 0 {
        return Err(CliError::usage("graph has no nodes"));
    }
    let report = report::analyze(n, &edges);
    writeln!(out, "{report}").map_err(CliError::io)
}
