//! Flag parsing and error type for the CLI.

use std::collections::HashMap;

/// A user-facing CLI failure.
#[derive(Debug)]
pub struct CliError {
    message: String,
}

impl CliError {
    /// Usage / validation error.
    pub fn usage(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Wrap an I/O error.
    pub fn io(err: std::io::Error) -> Self {
        Self {
            message: format!("i/o error: {err}"),
        }
    }

    /// The message shown to the user.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// Split `argv` into the subcommand and its parsed flags.
///
/// # Errors
///
/// Errors when no subcommand is given or flags are malformed.
pub fn split_command(argv: &[String]) -> Result<(String, Args), CliError> {
    let mut iter = argv.iter();
    let command = iter
        .next()
        .ok_or_else(|| CliError::usage(format!("missing command\n\n{}", crate::usage())))?
        .clone();
    let args = Args::parse(iter.cloned())?;
    Ok((command, args))
}

/// Parsed `--key value` flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    /// Keys the command actually read — used to flag typos.
    consumed: std::cell::RefCell<std::collections::HashSet<String>>,
}

impl Args {
    /// Parse a flag stream (`--key value` or `--key=value`).
    ///
    /// # Errors
    ///
    /// Errors on positional arguments or dangling keys.
    pub fn parse(iter: impl IntoIterator<Item = String>) -> Result<Self, CliError> {
        let mut values = HashMap::new();
        let mut iter = iter.into_iter();
        while let Some(arg) = iter.next() {
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| CliError::usage(format!("expected --flag, got {arg:?}")))?;
            if let Some((k, v)) = key.split_once('=') {
                values.insert(k.to_string(), v.to_string());
            } else {
                let v = iter
                    .next()
                    .ok_or_else(|| CliError::usage(format!("missing value for --{key}")))?;
                values.insert(key.to_string(), v);
            }
        }
        Ok(Self {
            values,
            consumed: Default::default(),
        })
    }

    fn raw(&self, key: &str) -> Option<&String> {
        self.consumed.borrow_mut().insert(key.to_string());
        self.values.get(key)
    }

    /// String flag with default.
    pub fn str(&self, key: &str, default: &str) -> String {
        self.raw(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Required string flag.
    ///
    /// # Errors
    ///
    /// Errors when the flag is absent.
    pub fn str_required(&self, key: &str) -> Result<String, CliError> {
        self.raw(key)
            .cloned()
            .ok_or_else(|| CliError::usage(format!("missing required flag --{key}")))
    }

    /// `u64` flag with default.
    ///
    /// # Errors
    ///
    /// Errors when the value does not parse.
    pub fn u64(&self, key: &str, default: u64) -> Result<u64, CliError> {
        match self.raw(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::usage(format!("--{key} must be an integer, got {v:?}"))),
        }
    }

    /// `f64` flag with default.
    ///
    /// # Errors
    ///
    /// Errors when the value does not parse.
    pub fn f64(&self, key: &str, default: f64) -> Result<f64, CliError> {
        match self.raw(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::usage(format!("--{key} must be a number, got {v:?}"))),
        }
    }

    /// After a command has read its flags, reject any leftovers (typos).
    ///
    /// # Errors
    ///
    /// Errors when an unknown flag was supplied.
    pub fn finish(&self) -> Result<(), CliError> {
        let consumed = self.consumed.borrow();
        let mut unknown: Vec<&String> = self
            .values
            .keys()
            .filter(|k| !consumed.contains(*k))
            .collect();
        unknown.sort();
        if unknown.is_empty() {
            Ok(())
        } else {
            Err(CliError::usage(format!(
                "unknown flag(s): {}",
                unknown
                    .iter()
                    .map(|k| format!("--{k}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(list: &[&str]) -> Args {
        Args::parse(list.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn parses_both_flag_forms() {
        let a = parse(&["--n", "5", "--scheme=rrp"]);
        assert_eq!(a.u64("n", 0).unwrap(), 5);
        assert_eq!(a.str("scheme", ""), "rrp");
    }

    #[test]
    fn defaults_and_required() {
        let a = parse(&[]);
        assert_eq!(a.u64("n", 7).unwrap(), 7);
        assert!(a.str_required("in").is_err());
    }

    #[test]
    fn rejects_positional() {
        assert!(Args::parse(["boom".to_string()]).is_err());
    }

    #[test]
    fn finish_flags_typos() {
        let a = parse(&["--nodez", "5"]);
        let _ = a.u64("n", 0);
        let err = a.finish().unwrap_err();
        assert!(err.message().contains("--nodez"));
    }

    #[test]
    fn finish_accepts_consumed() {
        let a = parse(&["--n", "5"]);
        let _ = a.u64("n", 0);
        assert!(a.finish().is_ok());
    }

    #[test]
    fn split_extracts_command() {
        let argv: Vec<String> = ["generate", "--n", "5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (cmd, args) = split_command(&argv).unwrap();
        assert_eq!(cmd, "generate");
        assert_eq!(args.u64("n", 0).unwrap(), 5);
    }
}
