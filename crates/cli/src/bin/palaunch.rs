//! `palaunch` binary: thin wrapper over [`pa_cli::launch`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match pa_cli::launch::run(&argv) {
        Ok(code) => std::process::exit(code),
        Err(err) => {
            eprintln!("palaunch: {}", err.message());
            std::process::exit(2);
        }
    }
}
