//! `pagen chains` — dependency-chain statistics (Theorem 3.3).

use crate::args::{Args, CliError};
use pa_core::chains;
use std::io::Write;

pub(crate) fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let n = args.u64("n", 1_000_000)?;
    let p = args.f64("p", 0.5)?;
    let seed = args.u64("seed", 0)?;
    args.finish()?;
    if n < 2 {
        return Err(CliError::usage("--n must be at least 2"));
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(CliError::usage("--p must lie in [0, 1]"));
    }

    let dep = chains::summarize(&chains::dependency_lengths(seed, p, n));
    let sel = chains::summarize(&chains::selection_lengths(seed, p, n));
    let ln_n = (n as f64).ln();
    writeln!(out, "dependency chains over n = {n}, p = {p} (seed {seed})").map_err(CliError::io)?;
    writeln!(
        out,
        "  dependency: mean {:.3} (bound 1/p = {:.3}), max {} (bound 5 ln n = {:.1})",
        dep.mean,
        if p > 0.0 { 1.0 / p } else { f64::INFINITY },
        dep.max,
        5.0 * ln_n
    )
    .map_err(CliError::io)?;
    writeln!(
        out,
        "  selection:  mean {:.3} (≈ ln n = {:.3}), max {}",
        sel.mean, ln_n, sel.max
    )
    .map_err(CliError::io)
}
