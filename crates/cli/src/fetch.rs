//! `pagen fetch` and `pagen drain` — the serve daemon's clients.
//!
//! `fetch` names a job by the same flags `generate` takes, asks a
//! daemon for its artifact, and streams it to `--out`, transparently
//! reconnecting with capped backoff and resuming from the last byte on
//! disk. `--resume on` continues a previously-interrupted fetch of the
//! *same* tuple instead of starting over. `drain` tells a daemon to
//! wind down cleanly; `serve-status` prints its health snapshot.

use std::io::Write;
use std::time::Duration;

use crate::args::{Args, CliError};
use crate::generate::{parse_engine, parse_model_kind, parse_scheme, validated};
use crate::serve::spec_from_raw;
use pa_core::job::JobDescriptor;
use pa_graph::io::EdgeFormat;
use pa_net::serve::{fetch, FetchError, FetchOptions, RejectCode};

/// Build the job descriptor from `generate`-style flags.
fn parse_job(args: &Args) -> Result<JobDescriptor, CliError> {
    let n = args.u64("n", 100_000)?;
    let x = args.u64("x", 4)?;
    let p = args.f64("p", 0.5)?;
    let seed = args.u64("seed", 0)?;
    let ranks = args.u64("ranks", 4)?;
    let scheme = parse_scheme(&args.str("scheme", "rrp"))?;
    let engine = parse_engine(args)?;
    let model = parse_model_kind(args)?;
    let format = match args.str("format", "bin").as_str() {
        "bin" => EdgeFormat::Binary,
        "txt" => EdgeFormat::Text,
        other => {
            return Err(CliError::usage(format!(
                "unknown format {other:?} (the serve protocol streams bin or txt)"
            )))
        }
    };
    let desc = JobDescriptor {
        cfg: validated(n, x, p, seed)?,
        scheme,
        engine,
        model,
        ranks: u32::try_from(ranks)
            .map_err(|_| CliError::usage(format!("--ranks {ranks} does not fit in u32")))?,
        format,
    };
    desc.validate().map_err(CliError::usage)?;
    Ok(desc)
}

pub(crate) fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let addr = args.str_required("addr")?;
    let out_path = args.str("out", "fetched.bin");
    let desc = parse_job(args)?;
    let mut opts = FetchOptions::new(&addr, spec_from_raw(&desc.to_raw()), &out_path);
    opts.resume = match args.str("resume", "off").as_str() {
        "on" => true,
        "off" => false,
        other => {
            return Err(CliError::usage(format!(
                "--resume must be on or off, got {other:?}"
            )))
        }
    };
    opts.max_attempts = args.u64("max-attempts", u64::from(opts.max_attempts))? as u32;
    if opts.max_attempts == 0 {
        return Err(CliError::usage("--max-attempts must be positive"));
    }
    opts.backoff_initial =
        Duration::from_millis(args.u64("backoff-ms", opts.backoff_initial.as_millis() as u64)?);
    opts.backoff_cap =
        Duration::from_millis(args.u64("backoff-cap-ms", opts.backoff_cap.as_millis() as u64)?);
    let jitter_seed = args.u64("backoff-seed", 0)?;
    if jitter_seed != 0 {
        opts.backoff_seed = Some(jitter_seed);
    }
    opts.connect_timeout = Duration::from_millis(args.u64(
        "connect-timeout-ms",
        opts.connect_timeout.as_millis() as u64,
    )?);
    opts.io_timeout =
        Duration::from_millis(args.u64("io-timeout-ms", opts.io_timeout.as_millis() as u64)?);
    // Deterministic crash simulation for tests and smoke scripts: the
    // local sink fails once the file holds exactly this many bytes.
    let stop_after = args.u64("stop-after-bytes", 0)?;
    if stop_after != 0 {
        opts.stop_after_bytes = Some(stop_after);
    }
    args.finish()?;

    let report = fetch(&opts).map_err(|e| match e {
        FetchError::Sink(e) => CliError::io(e),
        other => CliError::usage(other.to_string()),
    })?;
    writeln!(
        out,
        "fetched job {:016x}: {} byte(s) -> {out_path} ({} transferred, resumed from {}, \
         {} attempt(s), checksum {:016x})",
        report.job_id,
        report.total,
        report.transferred,
        report.resumed_from,
        report.attempts,
        report.checksum
    )
    .map_err(CliError::io)?;
    Ok(())
}

pub(crate) fn drain(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let addr = args.str_required("addr")?;
    let timeout = Duration::from_millis(args.u64("timeout-ms", 10_000)?);
    args.finish()?;
    let (running, dropped) = pa_net::serve::drain(&addr, timeout)
        .map_err(|e| CliError::usage(format!("drain of {addr} failed: {e}")))?;
    writeln!(
        out,
        "drain acknowledged by {addr}: {running} job(s) finishing, {dropped} queued job(s) dropped"
    )
    .map_err(CliError::io)?;
    Ok(())
}

pub(crate) fn status(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let addr = args.str_required("addr")?;
    let timeout = Duration::from_millis(args.u64("timeout-ms", 10_000)?);
    args.finish()?;
    let status = pa_net::serve::status(&addr, timeout)
        .map_err(|e| CliError::usage(format!("status of {addr} failed: {e}")))?;
    let s = &status.stats;
    writeln!(
        out,
        "serve daemon at {addr}{}:\n\
         \x20 queue:   {} queued, {} running, {} connection(s), {} worker(s) ({} wedged)\n\
         \x20 cache:   {} artifact(s), {} byte(s) ({} recovered at startup, {} temp cleaned, \
         {} evicted)\n\
         \x20 jobs:    {} admitted, {} run, {} coalesced, {} failed ({} timed out), {} drained\n\
         \x20 faults:  {} worker panic(s)\n\
         \x20 streams: {} byte(s) streamed",
        if status.draining { " (draining)" } else { "" },
        status.queued,
        status.running,
        status.active_conns,
        status.workers,
        status.workers_wedged,
        status.cache_artifacts,
        status.cache_bytes,
        s.jobs_recovered,
        s.tmp_cleaned,
        s.jobs_evicted,
        s.jobs_admitted,
        s.jobs_run,
        s.jobs_coalesced,
        s.jobs_failed,
        s.jobs_timed_out,
        s.jobs_drained,
        s.worker_panics,
        s.bytes_streamed
    )
    .map_err(CliError::io)?;
    // Per-code reject counters, only the codes actually seen: the lines
    // a flapping client's operator greps for first.
    writeln!(out, "  rejects: {} total", s.rejects).map_err(CliError::io)?;
    for code in RejectCode::ALL {
        let count = s.rejects_for(code);
        if count > 0 {
            writeln!(out, "    {:>12}: {count}", code.name()).map_err(CliError::io)?;
        }
    }
    Ok(())
}
