//! `pagen generate` — build a network and write it to disk.

use crate::args::{Args, CliError};
use crate::stats::{MergedStats, StatsFlags};
use pa_core::partition::Scheme;
use pa_core::{cl, er, par, rmat, ws, GenOptions, PaConfig};
use pa_graph::{container, io, EdgeList};
use pa_rng::Xoshiro256pp;
use std::io::Write;

pub(crate) fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    match args.str("backend", "mpsim").as_str() {
        "mpsim" => {}
        // One rank of a multi-process TCP world (normally under palaunch).
        "tcp" => return crate::netgen::run(args, out),
        other => {
            return Err(CliError::usage(format!(
                "unknown backend {other:?} (expected mpsim or tcp)"
            )))
        }
    }
    let model = args.str("model", "pa");
    let seed = args.u64("seed", 0)?;
    let path = args.str("out", "graph.pag");
    let format = args.str("format", "pag");

    let started = std::time::Instant::now();

    // The PA-family models writing a raw edge file need no global view
    // of the edges, so they stream each rank straight to disk instead of
    // materializing per-rank edge vectors (see `stream_pa_to_disk`).
    if matches!(model.as_str(), "pa" | "nlpa") && matches!(format.as_str(), "bin" | "txt") {
        let (cfg, scheme, ranks, opts, engine) = parse_pa_params(args, seed)?;
        let stats_flags = StatsFlags::parse(args)?;
        args.finish()?;
        let edge_format = match format.as_str() {
            "bin" => io::EdgeFormat::Binary,
            _ => io::EdgeFormat::Text,
        };
        let (total_edges, comms) = stream_pa_to_disk(
            &cfg,
            scheme,
            ranks,
            &opts,
            engine,
            std::path::Path::new(&path),
            edge_format,
        )?;
        cleanup_store(&opts.store, ranks);
        writeln!(
            out,
            "generated {model}: {} nodes, {total_edges} edges in {:.2}s -> {path} ({format}, streamed)",
            cfg.n,
            started.elapsed().as_secs_f64()
        )
        .map_err(CliError::io)?;
        return stats_flags.emit(&MergedStats::from_local(&comms), out);
    }

    let mut pa_stats: Option<(StatsFlags, Vec<pa_mpsim::CommStats>)> = None;
    let (n, shards, attrs): (u64, Vec<EdgeList>, Vec<(String, String)>) = match model.as_str() {
        "pa" | "nlpa" => {
            let (cfg, scheme, ranks, opts, engine) = parse_pa_params(args, seed)?;
            let flags = StatsFlags::parse(args)?;
            let result = match engine {
                1 => par::generate_x1(&cfg, scheme, ranks, &opts),
                2 => par::generate(&cfg, scheme, ranks, &opts),
                3 => par::generate3(&cfg, scheme, ranks, &opts),
                _ => unreachable!("parse_pa_params validated the engine"),
            };
            pa_stats = Some((flags, result.ranks.iter().map(|r| r.comm.clone()).collect()));
            cleanup_store(&opts.store, ranks);
            let shards = result.ranks.into_iter().map(|r| r.edges).collect();
            let mut attrs = vec![
                (
                    "model".into(),
                    match opts.model {
                        pa_core::ModelKind::Pa => "preferential-attachment".to_string(),
                        pa_core::ModelKind::Nlpa { .. } => {
                            "nonlinear-preferential-attachment".to_string()
                        }
                    },
                ),
                ("x".into(), cfg.x.to_string()),
                ("p".into(), cfg.p.to_string()),
                ("scheme".into(), scheme.to_string()),
                ("ranks".into(), ranks.to_string()),
                ("engine".into(), engine.to_string()),
            ];
            if let pa_core::ModelKind::Nlpa { alpha } = opts.model {
                attrs.push(("alpha".into(), alpha.to_string()));
            }
            (cfg.n, shards, attrs)
        }
        "er" => {
            let n = args.u64("n", 100_000)?;
            let p = args.f64("p", 0.0001)?;
            let ranks = args.u64("ranks", 4)? as usize;
            let cfg = er::ErConfig::new(n, p).with_seed(seed);
            let edges = er::generate_par(&cfg, ranks.max(1));
            (
                n,
                vec![edges],
                vec![
                    ("model".into(), "erdos-renyi".into()),
                    ("p".into(), p.to_string()),
                ],
            )
        }
        "ws" => {
            let n = args.u64("n", 100_000)?;
            let x = args.u64("x", 2)?;
            let beta = args.f64("p", 0.1)?;
            let cfg = ws::WsConfig::new(n, 2 * x, beta).with_seed(seed);
            let edges = ws::generate(&cfg, &mut Xoshiro256pp::new(seed));
            (
                n,
                vec![edges],
                vec![
                    ("model".into(), "watts-strogatz".into()),
                    ("k".into(), (2 * x).to_string()),
                    ("beta".into(), beta.to_string()),
                ],
            )
        }
        "cl" => {
            let n = args.u64("n", 100_000)?;
            let mean = args.u64("x", 4)? as f64;
            let gamma = args.f64("gamma", 2.8)?;
            let ranks = args.u64("ranks", 4)? as usize;
            let cfg = cl::ClConfig::new(cl::power_law_weights(n, gamma, mean), seed);
            let edges = cl::generate_par(&cfg, ranks.max(1));
            (
                n,
                vec![edges],
                vec![
                    ("model".into(), "chung-lu".into()),
                    ("gamma".into(), gamma.to_string()),
                    ("mean_degree".into(), mean.to_string()),
                ],
            )
        }
        "rmat" => {
            let scale = args.u64("scale", 18)? as u32;
            if scale == 0 || scale > 62 {
                return Err(CliError::usage("--scale must be in 1..=62"));
            }
            let mut cfg = rmat::RmatConfig::graph500(scale).with_seed(seed);
            let edges_flag = args.u64("edges", cfg.edges)?;
            cfg = cfg.with_edges(edges_flag);
            let ranks = args.u64("ranks", 4)? as usize;
            let edges = rmat::generate_par(&cfg, ranks.max(1));
            (
                cfg.n(),
                vec![edges],
                vec![
                    ("model".into(), "rmat".into()),
                    ("scale".into(), scale.to_string()),
                ],
            )
        }
        other => {
            return Err(CliError::usage(format!(
                "unknown model {other:?} (expected pa, nlpa, er, ws, cl or rmat)"
            )))
        }
    };
    args.finish()?;

    let total_edges: usize = shards.iter().map(EdgeList::len).sum();
    match format.as_str() {
        "pag" => {
            let mut meta = container::Meta::new(n).with("seed", seed);
            for (k, v) in attrs {
                meta.attrs.insert(k, v);
            }
            container::write_file(&path, &meta, &shards).map_err(CliError::io)?;
        }
        "bin" => {
            let merged = EdgeList::concat(shards);
            io::write_binary_file(&path, &merged).map_err(CliError::io)?;
        }
        "txt" => {
            let merged = EdgeList::concat(shards);
            io::write_text_file(&path, &merged).map_err(CliError::io)?;
        }
        other => {
            return Err(CliError::usage(format!(
                "unknown format {other:?} (expected pag, bin or txt)"
            )))
        }
    }
    writeln!(
        out,
        "generated {model}: {n} nodes, {total_edges} edges in {:.2}s -> {path} ({format})",
        started.elapsed().as_secs_f64()
    )
    .map_err(CliError::io)?;
    if let Some((flags, comms)) = pa_stats {
        flags.emit(&MergedStats::from_local(&comms), out)?;
    }
    Ok(())
}

/// Parse the `pa` model's parameters: config, scheme, rank count, knobs,
/// and the engine selection.
fn parse_pa_params(
    args: &Args,
    seed: u64,
) -> Result<(PaConfig, Scheme, usize, GenOptions, u8), CliError> {
    let n = args.u64("n", 100_000)?;
    let x = args.u64("x", 4)?;
    let p = args.f64("p", 0.5)?;
    let ranks = args.u64("ranks", 4)? as usize;
    let scheme = parse_scheme(&args.str("scheme", "rrp"))?;
    if ranks == 0 {
        return Err(CliError::usage("--ranks must be positive"));
    }
    let engine = parse_engine(args)?;
    if engine == 1 && x != 1 {
        return Err(CliError::usage(
            "--engine 1 implements Algorithm 3.1 and requires --x 1",
        ));
    }
    let cfg = validated(n, x, p, seed)?;
    let default_store_dir = format!("{}.store", args.str("out", "graph.pag"));
    let opts = parse_gen_options(args)?
        .with_model(parse_model_kind(args)?)
        .with_store(parse_store_spec(args, &default_store_dir)?);
    if let Some(hub) = opts.hub_cache_nodes {
        if hub > n {
            return Err(CliError::usage(format!(
                "--hub-cache {hub} exceeds n = {n} (use auto or off)"
            )));
        }
    }
    Ok((cfg, scheme, ranks, opts, engine))
}

/// Parse a byte size: a plain integer with an optional `k`, `m` or `g`
/// suffix (binary units — KiB, MiB, GiB).
pub(crate) fn parse_byte_size(key: &str, v: &str) -> Result<u64, CliError> {
    let s = v.trim().to_ascii_lowercase();
    let (digits, mul) = match s.strip_suffix(['k', 'm', 'g']) {
        Some(d) => {
            let mul = match s.as_bytes()[s.len() - 1] {
                b'k' => 1u64 << 10,
                b'm' => 1 << 20,
                _ => 1 << 30,
            };
            (d, mul)
        }
        None => (s.as_str(), 1u64),
    };
    let bytes: u64 = digits.parse().map_err(|_| {
        CliError::usage(format!(
            "--{key} must be a byte count with an optional k/m/g suffix, got {v:?}"
        ))
    })?;
    bytes
        .checked_mul(mul)
        .ok_or_else(|| CliError::usage(format!("--{key}: {v} overflows")))
}

/// Parse `--memory-budget <bytes[k|m|g]>`, `--page-bytes <bytes[k|m|g]>`
/// and `--store-dir <dir>` into a
/// node-table store spec. No budget means fully resident tables, and
/// `--store-dir` alone is rejected (it would silently change nothing).
pub(crate) fn parse_store_spec(
    args: &Args,
    default_dir: &str,
) -> Result<pa_core::store::StoreSpec, CliError> {
    let budget = args.str("memory-budget", "");
    let dir = args.str("store-dir", "");
    if budget.is_empty() {
        if !dir.is_empty() {
            return Err(CliError::usage(
                "--store-dir needs --memory-budget (resident runs keep no page files)",
            ));
        }
        if !args.str("page-bytes", "").is_empty() {
            return Err(CliError::usage(
                "--page-bytes needs --memory-budget (resident runs have no pages)",
            ));
        }
        return Ok(pa_core::store::StoreSpec::Resident);
    }
    let bytes = parse_byte_size("memory-budget", &budget)?;
    if bytes == 0 {
        return Err(CliError::usage("--memory-budget must be positive"));
    }
    let dir = if dir.is_empty() {
        default_dir.to_string()
    } else {
        dir
    };
    let mut spec = pa_core::store::StoreSpec::paged(dir, bytes);
    let page = args.str("page-bytes", "");
    if !page.is_empty() {
        let page_bytes = parse_byte_size("page-bytes", &page)?;
        if page_bytes < 8 {
            return Err(CliError::usage("--page-bytes must be at least 8"));
        }
        spec = spec.with_page_bytes(page_bytes as usize);
    }
    Ok(spec)
}

/// Remove the page files a paged run left behind (and its directory, if
/// now empty). Runs that checkpoint keep their pages — a saved world's
/// paged checkpoints reference them — so only non-checkpointing paths
/// call this.
pub(crate) fn cleanup_store(store: &pa_core::store::StoreSpec, ranks: usize) {
    if let pa_core::store::StoreSpec::Paged(spec) = store {
        for rank in 0..ranks {
            pa_core::store::clean_rank_pages(&spec.dir, rank);
        }
        let _ = std::fs::remove_dir(&spec.dir);
    }
}

/// Parse the attachment model: `--model pa` (default) or `--model nlpa`
/// with its `--alpha` exponent. Invalid `--alpha` values (negative, NaN,
/// infinite) fail here with the model's own diagnostic instead of
/// panicking inside the engines. Callers dispatch on the model string
/// first, so anything that is not `nlpa` is the classical copy model.
pub(crate) fn parse_model_kind(args: &Args) -> Result<pa_core::ModelKind, CliError> {
    if args.str("model", "pa") != "nlpa" {
        return Ok(pa_core::ModelKind::Pa);
    }
    let kind = pa_core::ModelKind::Nlpa {
        alpha: args.f64("alpha", 1.0)?,
    };
    kind.check()
        .map_err(|e| CliError::usage(format!("--alpha: {e}")))?;
    Ok(kind)
}

/// Parse `--engine 1|2|3` (default 2, the general Algorithm 3.2).
pub(crate) fn parse_engine(args: &Args) -> Result<u8, CliError> {
    match args.u64("engine", 2)? {
        e @ 1..=3 => Ok(e as u8),
        other => Err(CliError::usage(format!(
            "--engine must be 1 (Alg. 3.1, x = 1 only), 2 (Alg. 3.2) or \
             3 (communication-free chain recomputation), got {other}"
        ))),
    }
}

/// Stream a PA network to `path` without ever materializing the edges:
/// each rank writes its own `{path}.part{rank}` through a chunked
/// [`par::StreamingWriterSink`], and the parts are concatenated in rank
/// order afterwards. Peak resident memory is the engines' `O(n/P)` slot
/// state plus one write chunk per rank, regardless of edge count.
///
/// Returns the total number of edges written plus the per-rank
/// communication ledgers (for `--stats` / `--stats-json`).
///
/// This is the single streaming code path shared by `pagen generate`
/// and the `pagen serve` job runner — sharing it is what guarantees a
/// served artifact is byte-identical to a solo run of the same tuple.
pub(crate) fn stream_pa_to_disk(
    cfg: &PaConfig,
    scheme: Scheme,
    ranks: usize,
    opts: &GenOptions,
    engine: u8,
    path: &std::path::Path,
    edge_format: io::EdgeFormat,
) -> Result<(u64, Vec<pa_mpsim::CommStats>), CliError> {
    let part_path = |rank: usize| {
        let mut p = path.as_os_str().to_owned();
        p.push(format!(".part{rank}"));
        std::path::PathBuf::from(p)
    };

    // Pre-create the per-rank files so creation errors surface before any
    // rank spawns; each rank thread then takes its own handle.
    let mut files = Vec::with_capacity(ranks);
    for rank in 0..ranks {
        let f = std::fs::File::create(part_path(rank)).map_err(CliError::io)?;
        files.push(std::sync::Mutex::new(Some(f)));
    }

    let make_sink = |rank: usize| {
        let f = files[rank]
            .lock()
            .expect("file handoff poisoned")
            .take()
            .expect("sink built twice for one rank");
        par::StreamingWriterSink::new(f, edge_format)
    };
    let outputs = match engine {
        1 => par::generate_x1_streaming(cfg, scheme, ranks, opts, make_sink),
        2 => par::generate_streaming(cfg, scheme, ranks, opts, make_sink),
        3 => par::generate3_streaming(cfg, scheme, ranks, opts, make_sink),
        _ => unreachable!("callers validate the engine"),
    };

    let cleanup = |err: CliError| {
        for rank in 0..ranks {
            let _ = std::fs::remove_file(part_path(rank));
        }
        err
    };

    let mut total_edges = 0u64;
    let mut comms = Vec::with_capacity(outputs.len());
    for o in outputs {
        total_edges += o.sink.finish().map_err(|e| cleanup(CliError::io(e)))?;
        comms.push(o.comm);
    }

    // Concatenate the parts in rank order into the final file.
    let merged = std::fs::File::create(path).map_err(|e| cleanup(CliError::io(e)))?;
    let mut merged = std::io::BufWriter::new(merged);
    for rank in 0..ranks {
        let mut part =
            std::fs::File::open(part_path(rank)).map_err(|e| cleanup(CliError::io(e)))?;
        std::io::copy(&mut part, &mut merged).map_err(|e| cleanup(CliError::io(e)))?;
    }
    merged
        .into_inner()
        .map_err(|e| cleanup(CliError::io(e.into_error())))?
        .sync_all()
        .map_err(|e| cleanup(CliError::io(e)))?;
    for rank in 0..ranks {
        std::fs::remove_file(part_path(rank)).map_err(CliError::io)?;
    }
    Ok((total_edges, comms))
}

/// Engine tuning knobs shared by the `pa` model: buffering, service
/// cadence, idle-wait timing, and the hub cache.
pub(crate) fn parse_gen_options(args: &Args) -> Result<GenOptions, CliError> {
    let mut opts = GenOptions::default();
    opts.buffer_capacity = args.u64("buffer-cap", opts.buffer_capacity as u64)? as usize;
    if opts.buffer_capacity == 0 {
        return Err(CliError::usage("--buffer-cap must be positive"));
    }
    opts.service_interval = args.u64("service-interval", opts.service_interval as u64)? as usize;
    if opts.service_interval == 0 {
        return Err(CliError::usage("--service-interval must be positive"));
    }
    let default_idle_us = opts.idle_wait.as_micros() as u64;
    let idle_us = args.u64("idle-wait-us", default_idle_us)?;
    if idle_us == 0 {
        return Err(CliError::usage("--idle-wait-us must be positive"));
    }
    opts.idle_wait = std::time::Duration::from_micros(idle_us);
    opts.idle_flush_interval =
        args.u64("idle-flush-interval", opts.idle_flush_interval as u64)? as usize;
    if opts.idle_flush_interval == 0 {
        return Err(CliError::usage("--idle-flush-interval must be positive"));
    }
    match args.str("hub-cache", "auto").as_str() {
        "auto" => {}
        "off" => opts = opts.without_hub_cache(),
        nodes => {
            let nodes: u64 = nodes.parse().map_err(|_| {
                CliError::usage(format!(
                    "--hub-cache must be auto, off or a node count, got {nodes:?}"
                ))
            })?;
            opts = opts.with_hub_cache(nodes);
        }
    }
    let chaos_seed = args.u64("chaos-seed", 0)?;
    match args.str("chaos-profile", "off").as_str() {
        "off" => {}
        "light" => opts = opts.with_fault_plan(pa_core::FaultPlan::light(chaos_seed)),
        "aggressive" => opts = opts.with_fault_plan(pa_core::FaultPlan::aggressive(chaos_seed)),
        other => {
            return Err(CliError::usage(format!(
                "--chaos-profile must be off, light or aggressive, got {other:?}"
            )))
        }
    }
    let stall_ms = args.u64("stall-timeout-ms", 0)?;
    if stall_ms > 0 {
        opts = opts.with_stall_timeout(std::time::Duration::from_millis(stall_ms));
    } else if opts.fault_plan.is_some() {
        // Chaos without a watchdog turns any injection bug into a hung
        // process; default to a generous timeout that real runs never hit.
        opts = opts.with_stall_timeout(std::time::Duration::from_secs(120));
    }
    let memo = args.u64("chain-memo", opts.chain_memo_nodes)?;
    opts = opts.with_chain_memo(memo);
    Ok(opts)
}

pub(crate) fn validated(n: u64, x: u64, p: f64, seed: u64) -> Result<PaConfig, CliError> {
    if x == 0 || n <= x {
        return Err(CliError::usage("need n > x >= 1"));
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(CliError::usage("--p must lie in [0, 1]"));
    }
    Ok(PaConfig { n, x, p, seed })
}

pub(crate) fn parse_scheme(s: &str) -> Result<Scheme, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "ucp" => Ok(Scheme::Ucp),
        "lcp" => Ok(Scheme::Lcp),
        "rrp" => Ok(Scheme::Rrp),
        "bcp" => Ok(Scheme::Bcp),
        other => Err(CliError::usage(format!(
            "unknown scheme {other:?} (expected ucp, lcp, rrp or bcp)"
        ))),
    }
}
