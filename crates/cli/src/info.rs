//! `pagen info` — inspect a PAG container header, or (with `--n` and no
//! `--in`) estimate per-rank resident memory for a planned run.

use crate::args::{Args, CliError};
use pa_core::partition::{self, Partition};
use pa_graph::container;
use std::io::Write;

pub(crate) fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let path = args.str("in", "");
    if path.is_empty() {
        return estimate(args, out);
    }
    args.finish()?;
    let (meta, shard_counts) = container::read_meta_file(&path).map_err(CliError::io)?;
    writeln!(out, "PAG container: {path}").map_err(CliError::io)?;
    writeln!(out, "nodes:  {}", meta.n).map_err(CliError::io)?;
    writeln!(
        out,
        "edges:  {} in {} shard(s)",
        shard_counts.iter().sum::<u64>(),
        shard_counts.len()
    )
    .map_err(CliError::io)?;
    if !shard_counts.is_empty() {
        let min = shard_counts.iter().min().unwrap();
        let max = shard_counts.iter().max().unwrap();
        writeln!(out, "shards: {min}..{max} edges each").map_err(CliError::io)?;
    }
    for (k, v) in &meta.attrs {
        writeln!(out, "attr:   {k} = {v}").map_err(CliError::io)?;
    }
    Ok(())
}

/// One table's contribution to the estimate: its name, resident bytes,
/// and bytes under the paged store's cache budget (`None` for state that
/// never pages).
struct TableLine {
    name: &'static str,
    resident: u64,
    budgeted: Option<u64>,
}

/// `pagen info --n <N>` (no `--in`): per-rank resident-memory estimate
/// for a planned `(n, x, ranks, scheme, engine)` run, and what
/// `--memory-budget` would cap the pageable share at. The estimate
/// covers the engines' per-node state — the `O(n/P)` term that dominates
/// at scale — not transient message buffers.
fn estimate(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let n = match args.u64("n", 0)? {
        0 => {
            return Err(CliError::usage(
                "pagen info needs --in <file> (inspect a container) or --n <nodes> \
                 (estimate per-rank memory for a planned run)",
            ))
        }
        n => n,
    };
    let x = args.u64("x", 4)?;
    let ranks = args.u64("ranks", 4)? as usize;
    if ranks == 0 {
        return Err(CliError::usage("--ranks must be positive"));
    }
    let scheme = crate::generate::parse_scheme(&args.str("scheme", "rrp"))?;
    let engine = crate::generate::parse_engine(args)?;
    if n <= x || x == 0 {
        return Err(CliError::usage("need n > x >= 1"));
    }
    if engine == 1 && x != 1 {
        return Err(CliError::usage(
            "--engine 1 implements Algorithm 3.1 and requires --x 1",
        ));
    }
    let budget = args.str("memory-budget", "");
    let budget_bytes = if budget.is_empty() {
        None
    } else {
        Some(crate::generate::parse_byte_size("memory-budget", &budget)?)
    };
    let page_bytes = pa_core::store::DEFAULT_PAGE_BYTES as u64;
    let hub_nodes = match args.str("hub-cache", "auto").as_str() {
        "off" => 0,
        "auto" => pa_core::DEFAULT_HUB_CACHE_NODES.min(n),
        v => v.parse::<u64>().map_err(|_| {
            CliError::usage(format!(
                "--hub-cache must be auto, off or a node count, got {v:?}"
            ))
        })?,
    };
    let memo_nodes = args.u64("chain-memo", pa_core::DEFAULT_CHAIN_MEMO_NODES)?;
    args.finish()?;

    // The largest rank bounds every rank's table sizes.
    let part = partition::build(scheme, n, ranks);
    let size = (0..ranks).map(|r| part.size_of(r)).max().unwrap_or(0);
    let slots = size * x;

    // A paged table's cache holds `budget/page` frames but never fewer
    // than two pages, mirroring `StoreSpec::scaled`.
    let capped = |share: u64, table_slots: u64| {
        let table_bytes = table_slots * 8;
        Some(share.max(2 * page_bytes).min(table_bytes))
    };

    // Per-engine table inventory: which per-node state pages to disk
    // (the store-backed tables) and which stays resident regardless.
    let lines: Vec<TableLine> = match engine {
        1 => vec![TableLine {
            name: "F table (1 slot/node)",
            resident: size * 8,
            budgeted: budget_bytes.and_then(|b| capped(b, size)),
        }],
        2 => {
            // The general engine splits one budget across three tables
            // by slot weight: f and attempts get slots each, next_e
            // gets size.
            let total = slots * 2 + size;
            vec![
                TableLine {
                    name: "F table (x slots/node)",
                    resident: slots * 8,
                    budgeted: budget_bytes.and_then(|b| capped(b * slots / total, slots)),
                },
                TableLine {
                    name: "attempt counters",
                    resident: slots * 8,
                    budgeted: budget_bytes.and_then(|b| capped(b * slots / total, slots)),
                },
                TableLine {
                    name: "node cursors",
                    resident: size * 8,
                    budgeted: budget_bytes.and_then(|b| capped(b * size / total, size)),
                },
                TableLine {
                    name: "hub cache (replicated)",
                    resident: hub_nodes * x * 8,
                    budgeted: None,
                },
            ]
        }
        _ => vec![
            TableLine {
                name: "F table (x slots/node)",
                resident: slots * 8,
                budgeted: budget_bytes.and_then(|b| capped(b, slots)),
            },
            TableLine {
                name: "node cursors (u32)",
                resident: size * 4,
                budgeted: None,
            },
            TableLine {
                name: "chain memo (worst case)",
                resident: memo_nodes.min(size) * x * 8,
                budgeted: None,
            },
        ],
    };

    writeln!(
        out,
        "per-rank memory estimate: n={n} x={x} ranks={ranks} scheme={scheme} engine={engine}"
    )
    .map_err(CliError::io)?;
    writeln!(out, "largest rank: {size} nodes ({slots} F slots)").map_err(CliError::io)?;
    let mut resident_total = 0u64;
    let mut budgeted_total = 0u64;
    for l in &lines {
        resident_total += l.resident;
        budgeted_total += l.budgeted.unwrap_or(l.resident);
        match l.budgeted {
            Some(b) => writeln!(
                out,
                "  {:<28} {:>14}   {:>14} paged",
                l.name,
                human(l.resident),
                human(b)
            ),
            None => writeln!(out, "  {:<28} {:>14}", l.name, human(l.resident)),
        }
        .map_err(CliError::io)?;
    }
    match budget_bytes {
        Some(b) => writeln!(
            out,
            "total: {} resident | {} under --memory-budget {}",
            human(resident_total),
            human(budgeted_total),
            human(b)
        ),
        None => writeln!(
            out,
            "total: {} resident (add --memory-budget <bytes[k|m|g]> to see the paged plan)",
            human(resident_total)
        ),
    }
    .map_err(CliError::io)?;
    Ok(())
}

/// Render a byte count with a binary-unit suffix.
fn human(bytes: u64) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit + 1 < UNITS.len() {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.1} {}", UNITS[unit])
    }
}
