//! `pagen info` — inspect a PAG container header without reading edges.

use crate::args::{Args, CliError};
use pa_graph::container;
use std::io::Write;

pub(crate) fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let path = args.str_required("in")?;
    args.finish()?;
    let (meta, shard_counts) = container::read_meta_file(&path).map_err(CliError::io)?;
    writeln!(out, "PAG container: {path}").map_err(CliError::io)?;
    writeln!(out, "nodes:  {}", meta.n).map_err(CliError::io)?;
    writeln!(
        out,
        "edges:  {} in {} shard(s)",
        shard_counts.iter().sum::<u64>(),
        shard_counts.len()
    )
    .map_err(CliError::io)?;
    if !shard_counts.is_empty() {
        let min = shard_counts.iter().min().unwrap();
        let max = shard_counts.iter().max().unwrap();
        writeln!(out, "shards: {min}..{max} edges each").map_err(CliError::io)?;
    }
    for (k, v) in &meta.attrs {
        writeln!(out, "attr:   {k} = {v}").map_err(CliError::io)?;
    }
    Ok(())
}
