//! `palaunch` — run a `P`-process TCP world on one host.
//!
//! ```text
//! palaunch -p 4 -- generate --model pa --n 100000 --x 4 --out g.bin --format bin
//! ```
//!
//! The launcher allocates `P` distinct loopback ports, spawns `P`
//! copies of `pagen` with the world description injected
//! (`--backend tcp --rank R --world P --peers ...` appended to the
//! user's arguments), prefixes every line of child output with
//! `[rank R]`, and waits. The first child to fail gets the remaining
//! children killed and the job exits nonzero naming the failed rank —
//! a dead rank never leaves the launcher hanging.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use crate::args::CliError;

/// A parsed launcher invocation.
#[derive(Debug)]
pub struct LaunchPlan {
    /// Number of processes (ranks) to start.
    pub ranks: usize,
    /// The `pagen` binary to run (default: next to `palaunch` itself).
    pub pagen: PathBuf,
    /// Everything after `--`: the `pagen` command line shared by all
    /// ranks (before the injected world flags).
    pub child_args: Vec<String>,
    /// How many times a failed world is restarted (`--restart-failed`).
    /// 0 (the default) fails fast exactly as before; restarts > 0 only
    /// recover work when the child command checkpoints
    /// (`--checkpoint-dir`) — otherwise each attempt starts over.
    pub restart_failed: usize,
    /// A saved world's checkpoint directory to elastically restart from
    /// (`--restart-world`): the committed prefix is re-partitioned onto
    /// this launch's `-p` rank count. Appended to every child command.
    pub restart_world: Option<String>,
}

/// Parse `palaunch` arguments: `-p`/`--ranks` and `--pagen` before a
/// mandatory `--`, the shared `pagen` command line after it.
///
/// # Errors
///
/// Errors on unknown flags, a missing `--`, or an empty child command.
pub fn parse(argv: &[String]) -> Result<LaunchPlan, CliError> {
    let mut ranks = 2usize;
    let mut pagen: Option<PathBuf> = None;
    let mut restart_failed = 0usize;
    let mut restart_world: Option<String> = None;
    let mut iter = argv.iter();
    let child_args: Vec<String> = loop {
        match iter.next().map(String::as_str) {
            Some("--") => break iter.cloned().collect(),
            Some("-p") | Some("--ranks") => {
                let v = iter
                    .next()
                    .ok_or_else(|| CliError::usage("missing value for -p/--ranks"))?;
                ranks = v
                    .parse()
                    .map_err(|_| CliError::usage(format!("-p must be an integer, got {v:?}")))?;
            }
            Some("--restart-failed") => {
                let v = iter
                    .next()
                    .ok_or_else(|| CliError::usage("missing value for --restart-failed"))?;
                restart_failed = v.parse().map_err(|_| {
                    CliError::usage(format!("--restart-failed must be an integer, got {v:?}"))
                })?;
            }
            Some("--restart-world") => {
                let v = iter
                    .next()
                    .ok_or_else(|| CliError::usage("missing value for --restart-world"))?;
                restart_world = Some(v.clone());
            }
            Some("--pagen") => {
                let v = iter
                    .next()
                    .ok_or_else(|| CliError::usage("missing value for --pagen"))?;
                pagen = Some(PathBuf::from(v));
            }
            Some("-h") | Some("--help") => return Err(CliError::usage(usage())),
            Some(other) => {
                return Err(CliError::usage(format!(
                    "unknown launcher flag {other:?}\n\n{}",
                    usage()
                )))
            }
            None => {
                return Err(CliError::usage(format!(
                    "missing `--` before the pagen command\n\n{}",
                    usage()
                )))
            }
        }
    };
    if ranks == 0 {
        return Err(CliError::usage("-p must be at least 1"));
    }
    if child_args.is_empty() {
        return Err(CliError::usage("empty pagen command after `--`"));
    }
    let pagen = match pagen {
        Some(p) => p,
        None => default_pagen()?,
    };
    Ok(LaunchPlan {
        ranks,
        pagen,
        child_args,
        restart_failed,
        restart_world,
    })
}

/// `palaunch` usage text.
pub fn usage() -> &'static str {
    "palaunch — run a multi-process pagen world on this host

USAGE:
    palaunch [-p <ranks>] [--pagen <path>] [--restart-failed <N>] -- <pagen args ...>

    -p, --ranks <P>        number of processes to launch (default 2)
    --pagen <path>         pagen binary (default: next to palaunch)
    --restart-failed <N>   after a rank failure, restart the whole world
                           up to N times with capped backoff (default 0 =
                           fail fast). Pair with `generate
                           --checkpoint-dir <dir>` so restarted attempts
                           resume from the last checkpoint instead of
                           starting over; restarts inject `--resume auto
                           --restart-epoch <attempt>` and fresh ports.
    --restart-world <dir>  elastically restart the saved world in <dir>
                           (a finished `--keep-checkpoints on` run) on
                           THIS launch's -p rank count: its committed
                           prefix is re-partitioned and generation
                           continues from the saved cut. The graph
                           parameters (--n/--x/--p/--seed) must match the
                           saved run; -p, --scheme and --engine may
                           change. Appends `--restart-world <dir>` to
                           every child command.

The pagen command after `--` is run P times with
`--backend tcp --rank R --world P --peers <allocated ports>` appended;
child output is prefixed with [rank R]."
}

/// `pagen` sitting next to the running `palaunch` binary.
fn default_pagen() -> Result<PathBuf, CliError> {
    let me = std::env::current_exe().map_err(CliError::io)?;
    let candidate = me.with_file_name(format!("pagen{}", std::env::consts::EXE_SUFFIX));
    if candidate.exists() {
        Ok(candidate)
    } else {
        Err(CliError::usage(format!(
            "pagen not found at {} — pass --pagen <path>",
            candidate.display()
        )))
    }
}

/// Allocate `n` distinct loopback `host:port` addresses by binding
/// ephemeral listeners simultaneously and releasing them. The children
/// re-bind the ports; the window in between is the usual localhost
/// launcher trade-off, absorbed by the children's connect retries.
fn allocate_ports(n: usize) -> Result<Vec<String>, CliError> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0"))
        .collect::<Result<_, _>>()
        .map_err(CliError::io)?;
    listeners
        .iter()
        .map(|l| l.local_addr().map(|a| a.to_string()))
        .collect::<Result<_, _>>()
        .map_err(CliError::io)
}

/// Forward every line of `reader` to our own stream, prefixed with the
/// rank. Stdout and stderr each get one forwarding thread per child.
fn prefix_lines(
    rank: usize,
    reader: impl std::io::Read + Send + 'static,
    to_stderr: bool,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut lines = BufReader::new(reader).lines();
        while let Some(Ok(line)) = lines.next() {
            if to_stderr {
                eprintln!("[rank {rank}] {line}");
            } else {
                println!("[rank {rank}] {line}");
            }
        }
    })
}

/// Execute a launch plan; returns the job's exit code (0 iff every rank
/// of some attempt exited 0). With `--restart-failed N`, a failed world
/// is torn down completely and relaunched — up to `N` times, with
/// capped exponential backoff, fresh ports, and the restart attempt
/// injected as `--restart-epoch` (plus `--resume auto`) so checkpointed
/// child commands pick up from their last saved epoch.
///
/// # Errors
///
/// Errors when the world cannot be spawned at all; per-rank failures
/// are reported on stderr and through the exit code (or a restart)
/// instead.
pub fn execute(plan: &LaunchPlan) -> Result<i32, CliError> {
    let mut attempt = 0usize;
    let mut backoff = pa_net::Backoff::new(Duration::from_millis(200), Duration::from_secs(2));
    loop {
        let code = run_world_once(plan, attempt)?;
        if code == 0 || attempt >= plan.restart_failed {
            return Ok(code);
        }
        attempt += 1;
        let delay = backoff.next_delay();
        eprintln!(
            "palaunch: restarting world (attempt {attempt} of {}) after {delay:?} backoff",
            plan.restart_failed
        );
        std::thread::sleep(delay);
    }
}

/// Spawn, supervise, and reap one world (one launch attempt).
fn run_world_once(plan: &LaunchPlan, attempt: usize) -> Result<i32, CliError> {
    // Fresh ports every attempt: the previous attempt's sockets may
    // still sit in TIME_WAIT, and a straggler child could otherwise
    // squat on an address the new world needs.
    let peers = allocate_ports(plan.ranks)?;
    let mut children: Vec<Option<Child>> = Vec::with_capacity(plan.ranks);
    let mut forwarders = Vec::new();
    for rank in 0..plan.ranks {
        let mut cmd = Command::new(&plan.pagen);
        cmd.args(&plan.child_args)
            .arg("--backend")
            .arg("tcp")
            .arg("--rank")
            .arg(rank.to_string())
            .arg("--world")
            .arg(plan.ranks.to_string())
            .arg("--peers")
            .arg(peers.join(","));
        if let Some(dir) = &plan.restart_world {
            // Appended after the user's args, so it wins on conflicts.
            cmd.arg("--restart-world").arg(dir);
        }
        if attempt > 0 {
            // Later flags win over user-provided ones: restarts resume
            // from checkpoints, and the bumped restart epoch keeps
            // stale ranks of earlier attempts out of the new mesh.
            cmd.arg("--restart-epoch")
                .arg(attempt.to_string())
                .arg("--resume")
                .arg("auto");
        }
        cmd.stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        let mut child = cmd.spawn().map_err(|e| {
            // A failed spawn leaves earlier ranks running; reap them.
            for c in children.iter_mut().flatten() {
                let _ = c.kill();
                let _ = c.wait();
            }
            CliError::usage(format!("spawning {} failed: {e}", plan.pagen.display()))
        })?;
        forwarders.push(prefix_lines(
            rank,
            child.stdout.take().expect("piped"),
            false,
        ));
        forwarders.push(prefix_lines(
            rank,
            child.stderr.take().expect("piped"),
            true,
        ));
        children.push(Some(child));
    }

    // Wait for all ranks; on the first failure, kill the survivors.
    let mut exit_code = 0i32;
    let mut failed_rank: Option<usize> = None;
    let mut remaining = plan.ranks;
    while remaining > 0 {
        for rank in 0..plan.ranks {
            let Some(child) = children[rank].as_mut() else {
                continue;
            };
            match child.try_wait() {
                Ok(Some(status)) => {
                    if !status.success() && failed_rank.is_none() {
                        failed_rank = Some(rank);
                        exit_code = status.code().unwrap_or(1);
                        for (other, slot) in children.iter_mut().enumerate() {
                            if other != rank {
                                if let Some(c) = slot.as_mut() {
                                    let _ = c.kill();
                                }
                            }
                        }
                    }
                    children[rank] = None;
                    remaining -= 1;
                }
                Ok(None) => {}
                Err(e) => {
                    return Err(CliError::usage(format!("waiting on rank {rank}: {e}")));
                }
            }
        }
        if remaining > 0 {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    for f in forwarders {
        let _ = f.join();
    }
    if let Some(rank) = failed_rank {
        let mut err = std::io::stderr().lock();
        let _ = writeln!(
            err,
            "palaunch: rank {rank} exited with code {exit_code}; remaining ranks killed"
        );
        if exit_code == 0 {
            exit_code = 1;
        }
    }
    Ok(exit_code)
}

/// Entry point for the `palaunch` binary.
///
/// # Errors
///
/// Errors on unusable arguments or an unspawnable world.
pub fn run(argv: &[String]) -> Result<i32, CliError> {
    let plan = parse(argv)?;
    execute(&plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_extracts_ranks_and_child_args() {
        let plan = parse(&argv(&[
            "-p",
            "4",
            "--pagen",
            "/bin/true",
            "--",
            "generate",
            "--n",
            "100",
        ]))
        .unwrap();
        assert_eq!(plan.ranks, 4);
        assert_eq!(plan.pagen, PathBuf::from("/bin/true"));
        assert_eq!(plan.child_args, argv(&["generate", "--n", "100"]));
    }

    #[test]
    fn parse_accepts_long_form() {
        let plan = parse(&argv(&["--ranks", "3", "--pagen", "/bin/true", "--", "x"])).unwrap();
        assert_eq!(plan.ranks, 3);
    }

    #[test]
    fn parse_reads_restart_failed() {
        let plan = parse(&argv(&[
            "-p",
            "2",
            "--restart-failed",
            "3",
            "--pagen",
            "/bin/true",
            "--",
            "x",
        ]))
        .unwrap();
        assert_eq!(plan.restart_failed, 3);
        // Default fails fast.
        let plan = parse(&argv(&["--pagen", "/bin/true", "--", "x"])).unwrap();
        assert_eq!(plan.restart_failed, 0);
        assert!(parse(&argv(&["--restart-failed", "x", "--", "x"])).is_err());
    }

    #[test]
    fn parse_reads_restart_world() {
        let plan = parse(&argv(&[
            "-p",
            "2",
            "--restart-world",
            "/tmp/world4",
            "--pagen",
            "/bin/true",
            "--",
            "x",
        ]))
        .unwrap();
        assert_eq!(plan.restart_world.as_deref(), Some("/tmp/world4"));
        let plan = parse(&argv(&["--pagen", "/bin/true", "--", "x"])).unwrap();
        assert!(plan.restart_world.is_none());
        assert!(parse(&argv(&["--restart-world"])).is_err());
    }

    #[test]
    fn parse_rejects_missing_separator_and_empty_command() {
        assert!(parse(&argv(&["-p", "2"])).is_err());
        assert!(parse(&argv(&["-p", "2", "--"])).is_err());
        assert!(parse(&argv(&["-p", "0", "--", "x"])).is_err());
        assert!(parse(&argv(&["--bogus", "1", "--", "x"])).is_err());
    }

    #[test]
    fn allocate_ports_are_distinct() {
        let ports = allocate_ports(8).unwrap();
        let mut unique = ports.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 8, "{ports:?}");
    }
}
