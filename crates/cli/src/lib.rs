//! `pagen` — the command-line front end of the `prefattach` workspace.
//!
//! ```text
//! pagen generate --model pa --n 1000000 --x 4 --ranks 8 --out g.pag
//! pagen analyze  --in g.pag
//! pagen info     --in g.pag
//! pagen chains   --n 1000000 --p 0.5
//! pagen serve    --addr 127.0.0.1:9900 --jobs-dir jobs
//! pagen fetch    --addr 127.0.0.1:9900 --n 1000000 --x 4 --out g.bin
//! pagen drain    --addr 127.0.0.1:9900
//! pagen serve-status --addr 127.0.0.1:9900
//! palaunch -p 4 -- generate --n 1000000 --x 4 --out g.bin --format bin
//! ```
//!
//! The `pagen` binary is a thin wrapper over [`run`], and `palaunch`
//! over [`launch::run`], so the whole command surface is exercised by
//! ordinary unit and integration tests. `--backend tcp` turns one
//! `pagen generate` invocation into one *rank* of a multi-process world
//! (see `pa-net`); `palaunch` spawns and supervises such a world on the
//! local host.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
mod args;
mod chains;
mod fetch;
mod generate;
mod info;
pub mod launch;
mod netgen;
mod serve;
mod stats;

pub use args::{Args, CliError};

/// Execute a full command line (without the program name). Output goes
/// to `out`; returns `Err` with a user-facing message on failure.
///
/// # Errors
///
/// Returns a [`CliError`] describing invalid usage, unknown flags, or
/// I/O failures.
pub fn run(argv: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let (command, args) = args::split_command(argv)?;
    match command.as_str() {
        "generate" => generate::run(&args, out),
        "analyze" => analyze::run(&args, out),
        "info" => info::run(&args, out),
        "chains" => chains::run(&args, out),
        "serve" => serve::run(&args, out),
        "fetch" => fetch::run(&args, out),
        "drain" => fetch::drain(&args, out),
        "serve-status" => fetch::status(&args, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{}", usage()).map_err(CliError::io)?;
            Ok(())
        }
        other => Err(CliError::usage(format!(
            "unknown command {other:?}\n\n{}",
            usage()
        ))),
    }
}

/// Top-level usage text.
pub fn usage() -> &'static str {
    "pagen — scale-free network generation (SC'13 reproduction)

USAGE:
    pagen <COMMAND> [--flag value ...]

COMMANDS:
    generate   Generate a network and write it to disk
               --model pa|nlpa|er|ws|cl|rmat (default pa)
               --n <nodes> (default 100000)      --x <edges/node> (default 4)
               --p <copy prob> (default 0.5)     --seed <u64> (default 0)
               --ranks <P> (default 4)           --scheme ucp|lcp|rrp|bcp (default rrp)
               --out <file> (default graph.pag)  --format pag|bin|txt (default pag)
               --alpha <f64> (nlpa exponent, default 1.0; 1.0 is exactly pa)
               --engine 1|2|3 (default 2; 1 needs x=1, 3 recomputes
                          dependency chains locally and sends no messages)
               engine/model support: engines 2 and 3 run pa and nlpa on
                          every backend; engine 1 runs pa and nlpa with
                          x=1 on mpsim only (the tcp wire format does
                          not carry its x=1 messages)
               pa tuning: --buffer-cap <msgs> (default 4096)
                          --service-interval <nodes> (default 4096)
                          --hub-cache auto|off|<nodes> (default auto)
                          --chain-memo <nodes> (engine 3 memo rows; default 1048576, 0 off)
                          --idle-wait-us <µs> (default 200)
                          --idle-flush-interval <waits> (default 16)
               pa chaos:  --chaos-profile off|light|aggressive (default off)
                          --chaos-seed <u64> (default 0)
                          --stall-timeout-ms <ms> (default: off; 120000 under chaos)
               pa stats:  --stats on|off (default off)  --stats-json <path>
               backend:   --backend mpsim|tcp (default mpsim)
                          tcp runs this invocation as ONE rank of a
                          multi-process world (usually via palaunch):
                          --rank <R> --world <P> --peers host:port,...
                          --connect-timeout-ms <ms> (default 30000)
               recovery:  --checkpoint-dir <dir> (default: checkpoints off)
                          --checkpoint-interval <labels> (default n/8)
                          --resume auto|off (default off)
                          --restart-epoch <k> (injected by palaunch restarts)
               er:   --p is the edge probability
               ws:   --x is half the lattice degree, --p the rewiring beta
               cl:   --gamma <exponent> (default 2.8), --x the mean degree
               rmat: --scale <log2 n>, --edges <m> (defaults 18, 16n)
    analyze    Structural report of a stored network
               --in <file>  --format pag|bin|txt (default pag)
               --n <nodes>  (required for bin/txt; inferred for pag)
    info       Print a PAG container's header without reading edges
               --in <file>
    chains     Dependency-chain statistics (Theorem 3.3)
               --n <nodes> (default 1000000)  --p <prob> (default 0.5)
               --seed <u64> (default 0)
    serve      Run the generation-as-a-service daemon (stop with drain)
               --addr <host:port> (default 127.0.0.1:9900)
               --jobs-dir <dir> (default pagen-jobs)
               --queue-cap <jobs> (default 16)    --workers <threads> (default 2)
               --chunk-kb <KiB> (default 256)     --retry-after-ms <ms> (default 200)
               --request-timeout-ms <ms> (default 10000)
               --max-ranks <P> (default 64)       --max-nodes <n> (default 2^32)
               healing:   --job-timeout-ms <ms> (default 0 = no deadline;
                              overdue runs fail retryably, workers replaced)
                          --max-conns <k> (default 64; beyond it clients
                              get a retryable overloaded rejection)
                          --cache-bytes <B[k|m|g]> (default unlimited;
                              LRU-evicts cached artifacts over the quota)
                          --max-job-failures <k> (default 3, 0 = unlimited;
                              per-tuple failure budget until restart)
    fetch      Submit a job to a serve daemon and stream its artifact
               --addr <host:port> (required)      --out <file> (default fetched.bin)
               job:   --n --x --p --seed --ranks --scheme --engine
                      --model pa|nlpa --alpha     --format bin|txt (default bin)
                      (same byte-identity tuple as generate; the file an
                      uninterrupted fetch writes equals a solo generate)
               retry: --resume on|off (default off; on continues --out)
                      --max-attempts <k> (default 8)
                      --backoff-ms / --backoff-cap-ms (default 50 / 2000)
                      --backoff-seed <u64> (0 = no jitter)
                      --connect-timeout-ms / --io-timeout-ms
    drain      Wind a serve daemon down cleanly
               --addr <host:port> (required)  --timeout-ms <ms> (default 10000)
    serve-status  Print a serve daemon's health snapshot (queue, workers,
               cache, per-code rejects)
               --addr <host:port> (required)  --timeout-ms <ms> (default 10000)
    help       Show this text

Multi-process runs: `palaunch [-p <ranks>] -- generate ...` spawns the
world on this host and injects the tcp backend flags (see palaunch -h)."
}
