//! `pagen` binary: thin wrapper over [`pa_cli::run`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if let Err(err) = pa_cli::run(&argv, &mut out) {
        eprintln!("pagen: {}", err.message());
        std::process::exit(2);
    }
}
