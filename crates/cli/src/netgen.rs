//! `pagen generate --backend tcp` — one rank of a multi-process run.
//!
//! Every process runs the same command line plus its own `--rank`; the
//! world is described by `--world` and the `--peers` table (normally
//! injected by `palaunch`, or written by hand for multi-host runs).
//! Each rank streams its partition's edges to `{out}.part{rank}`; after
//! the final barrier rank 0 concatenates the parts into `{out}` in rank
//! order — byte-identical to what a single-process streamed run of the
//! same seed writes — and prints the one summary line. Ranks above 0
//! print nothing on success.

use std::io::Write;

use pa_core::par::{self, Msg};
use pa_core::partition;
use pa_graph::io as gio;
use pa_mpsim::Transport;
use pa_net::{TcpConfig, TcpTransport};

use crate::args::{Args, CliError};
use crate::generate::{parse_gen_options, parse_scheme, validated};
use crate::stats::{MergedStats, StatsFlags};

pub(crate) fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let model = args.str("model", "pa");
    if model != "pa" {
        return Err(CliError::usage(format!(
            "--backend tcp only supports --model pa, got {model:?}"
        )));
    }
    let seed = args.u64("seed", 0)?;
    let path = args.str("out", "graph.bin");
    let format = args.str("format", "bin");
    let edge_format = match format.as_str() {
        "bin" => gio::EdgeFormat::Binary,
        "txt" => gio::EdgeFormat::Text,
        other => {
            return Err(CliError::usage(format!(
                "--backend tcp streams per-rank files, so --format must be bin or txt, \
                 got {other:?}"
            )))
        }
    };

    // Model parameters — identical to the in-process pa path, except the
    // rank count comes from the world description, not --ranks.
    let n = args.u64("n", 100_000)?;
    let x = args.u64("x", 4)?;
    let p = args.f64("p", 0.5)?;
    let scheme = parse_scheme(&args.str("scheme", "rrp"))?;
    let cfg = validated(n, x, p, seed)?;
    let mut opts = parse_gen_options(args)?;
    if opts.fault_plan.is_some() {
        return Err(CliError::usage(
            "--chaos-profile is not supported with --backend tcp \
             (fault injection wraps in-process transports only)",
        ));
    }
    if opts.stall_timeout.is_none() {
        // A wedged (but not dead) peer must fail the run, not hang it;
        // dead peers are detected faster by the transport itself.
        opts = opts.with_stall_timeout(std::time::Duration::from_secs(120));
    }

    // World description.
    let rank = args.u64("rank", u64::MAX)?;
    let world = args.u64("world", 0)?;
    let peers_flag = args.str_required("peers").map_err(|_| {
        CliError::usage(
            "--backend tcp needs --rank <R>, --world <P> and --peers <host:port,...> \
             (hint: `palaunch -p P -- generate ...` injects all three)",
        )
    })?;
    if rank == u64::MAX {
        return Err(CliError::usage("--backend tcp needs --rank <R>"));
    }
    if world == 0 {
        return Err(CliError::usage("--backend tcp needs --world <P> >= 1"));
    }
    let peers: Vec<String> = peers_flag.split(',').map(str::to_string).collect();
    let connect_ms = args.u64("connect-timeout-ms", 30_000)?;
    let stats_flags = StatsFlags::parse(args)?;
    args.finish()?;

    let rank = rank as usize;
    let world = world as usize;
    let mut tcp = TcpConfig::new(rank, world, peers);
    tcp.connect_timeout = std::time::Duration::from_millis(connect_ms.max(1));

    let started = std::time::Instant::now();
    let mut t: TcpTransport<Msg> =
        TcpTransport::connect(tcp).map_err(|e| CliError::usage(format!("rank {rank}: {e}")))?;

    let part = partition::build(scheme, cfg.n, world);
    let part_path = |r: usize| format!("{path}.part{r}");
    let file = std::fs::File::create(part_path(rank)).map_err(CliError::io)?;
    let sink = par::StreamingWriterSink::new(file, edge_format);
    let (sink, _counters) = par::generate_rank_streaming(&cfg, &part, &opts, &mut t, sink);
    let edges = sink.finish().map_err(CliError::io)?;

    // Publish completion before anyone merges, then merge the ledgers.
    // Every rank runs the same flags (palaunch injects one command
    // line), so skipping the stats collectives is uniform.
    t.barrier();
    let total_edges = t.allreduce_sum(edges);
    let merged = stats_flags
        .wanted()
        .then(|| MergedStats::over_transport(&t, t.stats()));

    if rank == 0 {
        // Concatenate `{out}.part{0..world}` in rank order. This needs
        // every part visible on rank 0's filesystem — true for palaunch
        // (one host) and for shared-filesystem clusters.
        let merge = || -> std::io::Result<()> {
            let merged_file = std::fs::File::create(&path)?;
            let mut w = std::io::BufWriter::new(merged_file);
            for r in 0..world {
                let mut part_file = std::fs::File::open(part_path(r)).map_err(|e| {
                    std::io::Error::new(
                        e.kind(),
                        format!(
                            "{} (rank {r}'s part not visible on rank 0 — \
                             distributed runs need a shared filesystem to merge)",
                            part_path(r)
                        ),
                    )
                })?;
                std::io::copy(&mut part_file, &mut w)?;
            }
            w.into_inner().map_err(|e| e.into_error())?.sync_all()?;
            for r in 0..world {
                std::fs::remove_file(part_path(r))?;
            }
            Ok(())
        };
        merge().map_err(CliError::io)?;
        writeln!(
            out,
            "generated pa: {n} nodes, {total_edges} edges in {:.2}s -> {path} \
             ({format}, tcp x {world} processes)",
            started.elapsed().as_secs_f64()
        )
        .map_err(CliError::io)?;
        if let Some(merged) = &merged {
            stats_flags.emit(merged, out)?;
        }
    }
    Ok(())
}
