//! `pagen generate --backend tcp` — one rank of a multi-process run.
//!
//! Every process runs the same command line plus its own `--rank`; the
//! world is described by `--world` and the `--peers` table (normally
//! injected by `palaunch`, or written by hand for multi-host runs).
//! Each rank streams its partition's edges to `{out}.part{rank}`; after
//! the final barrier rank 0 concatenates the parts into `{out}` in rank
//! order — byte-identical to what a single-process streamed run of the
//! same seed writes — and prints the one summary line. Ranks above 0
//! print nothing on success.

use std::io::Write;

use pa_core::par::{self, EdgeSink, Msg};
use pa_core::partition;
use pa_graph::io as gio;
use pa_mpsim::Transport;
use pa_net::{TcpConfig, TcpTransport};

use crate::args::{Args, CliError};
use crate::generate::{parse_engine, parse_gen_options, parse_model_kind, parse_scheme, validated};
use crate::stats::{MergedStats, StatsFlags};

pub(crate) fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let model = args.str("model", "pa");
    if !matches!(model.as_str(), "pa" | "nlpa") {
        return Err(CliError::usage(format!(
            "--backend tcp only supports --model pa or nlpa, got {model:?}"
        )));
    }
    let seed = args.u64("seed", 0)?;
    let path = args.str("out", "graph.bin");
    let format = args.str("format", "bin");
    let edge_format = match format.as_str() {
        "bin" => gio::EdgeFormat::Binary,
        "txt" => gio::EdgeFormat::Text,
        other => {
            return Err(CliError::usage(format!(
                "--backend tcp streams per-rank files, so --format must be bin or txt, \
                 got {other:?}"
            )))
        }
    };

    // Model parameters — identical to the in-process pa path, except the
    // rank count comes from the world description, not --ranks.
    let n = args.u64("n", 100_000)?;
    let x = args.u64("x", 4)?;
    let p = args.f64("p", 0.5)?;
    let scheme = parse_scheme(&args.str("scheme", "rrp"))?;
    let engine = parse_engine(args)?;
    if engine == 1 {
        return Err(CliError::usage(
            "--backend tcp supports --engine 2 or 3 (engine 1 uses the \
             x = 1 wire format, which the TCP rank path does not carry)",
        ));
    }
    let cfg = validated(n, x, p, seed)?;
    let mut opts = parse_gen_options(args)?.with_model(parse_model_kind(args)?);
    if opts.fault_plan.is_some() {
        return Err(CliError::usage(
            "--chaos-profile is not supported with --backend tcp \
             (fault injection wraps in-process transports only)",
        ));
    }
    if opts.stall_timeout.is_none() {
        // A wedged (but not dead) peer must fail the run, not hang it;
        // dead peers are detected faster by the transport itself.
        opts = opts.with_stall_timeout(std::time::Duration::from_secs(120));
    }

    // World description.
    let rank = args.u64("rank", u64::MAX)?;
    let world = args.u64("world", 0)?;
    let peers_flag = args.str_required("peers").map_err(|_| {
        CliError::usage(
            "--backend tcp needs --rank <R>, --world <P> and --peers <host:port,...> \
             (hint: `palaunch -p P -- generate ...` injects all three)",
        )
    })?;
    if rank == u64::MAX {
        return Err(CliError::usage("--backend tcp needs --rank <R>"));
    }
    if world == 0 {
        return Err(CliError::usage("--backend tcp needs --world <P> >= 1"));
    }
    let peers: Vec<String> = peers_flag.split(',').map(str::to_string).collect();
    let connect_ms = args.u64("connect-timeout-ms", 30_000)?;

    // Checkpoint/restart: `--checkpoint-dir` switches on epoch-aligned
    // checkpoints; `--resume auto` (injected by `palaunch` on restart
    // attempts) agrees on a common saved epoch world-wide and continues
    // from it; `--restart-epoch` is the launch-attempt generation
    // carried in the HELLO handshake so stale ranks from a previous
    // attempt cannot wire into the restarted world.
    let ckpt_dir = args.str("checkpoint-dir", "");
    let mut ckpt_interval = args.u64("checkpoint-interval", n.div_ceil(8).max(1))?;
    let resume_mode = args.str("resume", "off");
    let restart_epoch = args.u64("restart-epoch", 0)?;
    if !matches!(resume_mode.as_str(), "auto" | "off") {
        return Err(CliError::usage(format!(
            "--resume must be auto or off, got {resume_mode:?}"
        )));
    }
    if ckpt_dir.is_empty() && resume_mode == "auto" {
        return Err(CliError::usage("--resume auto needs --checkpoint-dir"));
    }
    // `--keep-checkpoints on` leaves the finished run's checkpoints (and
    // a paged store's page files) on disk — the saved world a later
    // `--restart-world` run re-partitions.
    let keep_checkpoints = match args.str("keep-checkpoints", "off").as_str() {
        "on" => true,
        "off" => false,
        other => {
            return Err(CliError::usage(format!(
                "--keep-checkpoints must be on or off, got {other:?}"
            )))
        }
    };

    // Elastic gang restart: `--restart-world <dir>` names a saved
    // world's kept checkpoint directory; its committed prefix is
    // re-partitioned onto THIS world's rank count, scheme and engine.
    // The network identity (n, x, p, seed, model) must match — those
    // define the graph — but the world shape is free to change.
    let restart_world = args.str("restart-world", "");
    let world_ckpt = if restart_world.is_empty() {
        None
    } else {
        if restart_world == ckpt_dir {
            return Err(CliError::usage(
                "--restart-world must differ from --checkpoint-dir (the restarted \
                 run's own checkpoints would overwrite the world it restarts from)",
            ));
        }
        let w = par::WorldCheckpoint::load(std::path::Path::new(&restart_world))
            .map_err(|e| CliError::usage(format!("--restart-world {restart_world}: {e}")))?;
        let m = w.meta();
        if (m.n, m.x, m.p_bits, m.seed) != (cfg.n, cfg.x, cfg.p.to_bits(), cfg.seed)
            || m.model_id != opts.model.id()
            || m.alpha_bits != opts.model.alpha_bits()
        {
            return Err(CliError::usage(format!(
                "--restart-world: the saved world is a different network \
                 (saved n={} x={} seed={}; this command asks for n={} x={} seed={})",
                m.n, m.x, m.seed, cfg.n, cfg.x, cfg.seed
            )));
        }
        // The epoch grid is part of the saved cut: adopt its interval so
        // the synthesized resume point lands on an epoch boundary.
        ckpt_interval = m.interval;
        opts = opts.with_checkpoint_interval(m.interval);
        Some(w)
    };
    if !ckpt_dir.is_empty() {
        if ckpt_interval == 0 {
            return Err(CliError::usage("--checkpoint-interval must be at least 1"));
        }
        opts = opts.with_checkpoint_interval(ckpt_interval);
    }

    // Out-of-core node tables. When checkpointing, the page files must
    // live with the checkpoints — a saved world's paged checkpoints
    // reference them by directory — so the store dir is pinned there.
    let store_spec = {
        let default_dir = if ckpt_dir.is_empty() {
            format!("{path}.store")
        } else {
            ckpt_dir.clone()
        };
        let spec = crate::generate::parse_store_spec(args, &default_dir)?;
        if let pa_core::store::StoreSpec::Paged(p) = &spec {
            if !ckpt_dir.is_empty() && p.dir != std::path::Path::new(&ckpt_dir) {
                return Err(CliError::usage(
                    "--store-dir must equal --checkpoint-dir when checkpointing (a \
                     saved world's checkpoints reference its page files)",
                ));
            }
            if !restart_world.is_empty() && p.dir == std::path::Path::new(&restart_world) {
                return Err(CliError::usage(
                    "--store-dir must differ from --restart-world (the new run's \
                     pages would clobber the saved world's)",
                ));
            }
        }
        spec
    };
    opts = opts.with_store(store_spec);

    let stats_flags = StatsFlags::parse(args)?;
    args.finish()?;

    let rank = rank as usize;
    let world = world as usize;
    let mut tcp = TcpConfig::new(rank, world, peers);
    tcp.connect_timeout = std::time::Duration::from_millis(connect_ms.max(1));
    tcp.epoch = restart_epoch;
    let bootstrap_coll_timeout = tcp.collective_timeout;

    let started = std::time::Instant::now();
    let mut t: TcpTransport<Msg> =
        TcpTransport::connect(tcp).map_err(|e| CliError::usage(format!("rank {rank}: {e}")))?;
    // A wedged collective should fire on the engine's stall budget, not
    // block for the full bootstrap-time backstop.
    if let Some(stall) = opts.stall_timeout {
        t.set_collective_timeout(stall.min(bootstrap_coll_timeout));
    }

    let part = partition::build(scheme, cfg.n, world);
    let part_path = |r: usize| format!("{path}.part{r}");

    let store = if ckpt_dir.is_empty() {
        None
    } else {
        let meta = par::CheckpointMeta {
            world: world as u32,
            n: cfg.n,
            x: cfg.x,
            p_bits: cfg.p.to_bits(),
            seed: cfg.seed,
            scheme_id: scheme.id(),
            engine_id: engine,
            model_id: opts.model.id(),
            interval: ckpt_interval,
            alpha_bits: opts.model.alpha_bits(),
        };
        Some(par::CheckpointStore::new(&ckpt_dir, rank as u32, meta).map_err(CliError::io)?)
    };

    // Agree on a common resume point: a rank with no usable checkpoint
    // votes 0 (fresh start), a rank whose newest saved epoch is `e`
    // votes `e + 1`; the world-wide minimum picks an epoch every rank
    // can replay from (epoch skew across ranks is at most 1, and each
    // rank retains its last two epochs).
    let vote = match (&store, resume_mode.as_str()) {
        (Some(s), "auto") => s.latest().map_or(0, |e| e + 1),
        _ => 0,
    };
    let agreed = t.allreduce_min(vote);
    let (sink, saved) = if agreed == 0 {
        let file = std::fs::File::create(part_path(rank)).map_err(CliError::io)?;
        let mut sink = par::StreamingWriterSink::new(file, edge_format);
        match &world_ckpt {
            None => (sink, None),
            Some(w) => {
                // Elastic restart: replay this rank's share of the saved
                // world's committed prefix in deterministic order, then
                // resume generation from the synthesized cut. (A crash
                // *after* the restart checkpoints under its own
                // --checkpoint-dir resumes from those instead: the vote
                // above comes back nonzero and this branch is skipped.)
                w.write_part_prefix(&part, rank, &mut sink);
                let (edges, bytes) = sink.checkpoint_mark().map_err(CliError::io)?;
                let payload = w.payload_for(&part, rank, engine);
                let saved = w.resume_point(payload, edges, bytes);
                (sink, Some(saved))
            }
        }
    } else {
        use std::io::Seek;
        let epoch = agreed - 1;
        let store = store.as_ref().expect("agreed > 0 implies a store");
        let saved = store.load(epoch).ok_or_else(|| {
            CliError::usage(format!(
                "rank {rank}: cannot resume — checkpoint for epoch {epoch} is missing or \
                 invalid in {ckpt_dir}"
            ))
        })?;
        // Truncate the part file back to the committed byte watermark
        // (dropping whatever a crashed epoch half-wrote) and append.
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(part_path(rank))
            .map_err(CliError::io)?;
        file.set_len(saved.bytes).map_err(CliError::io)?;
        file.seek(std::io::SeekFrom::End(0)).map_err(CliError::io)?;
        (
            par::StreamingWriterSink::resume(file, edge_format, saved.edges, saved.bytes),
            Some(saved),
        )
    };

    let (sink, _counters) = match engine {
        2 => par::generate_rank_streaming_recoverable(
            &cfg,
            &part,
            &opts,
            &mut t,
            sink,
            store.as_ref(),
            saved.as_ref(),
        ),
        3 => par::generate_rank3_streaming_recoverable(
            &cfg,
            &part,
            &opts,
            &mut t,
            sink,
            store.as_ref(),
            saved.as_ref(),
        ),
        _ => unreachable!("engine validated above"),
    };
    let edges = sink.finish().map_err(CliError::io)?;

    // Publish completion before anyone merges, then merge the ledgers.
    // Every rank runs the same flags (palaunch injects one command
    // line), so skipping the stats collectives is uniform.
    t.barrier();
    // The job is complete world-wide: drop this rank's checkpoints so a
    // later launch in the same directory cannot resume a finished run —
    // unless the user asked to keep the saved world for a later
    // `--restart-world` resize.
    if !keep_checkpoints {
        if let Some(store) = &store {
            store.clear();
        }
        if let pa_core::store::StoreSpec::Paged(spec) = &opts.store {
            pa_core::store::clean_rank_pages(&spec.dir, rank);
            let _ = std::fs::remove_dir(&spec.dir);
        }
    }
    let total_edges = t.allreduce_sum(edges);
    let merged = stats_flags
        .wanted()
        .then(|| MergedStats::over_transport(&t, t.stats()));

    if rank == 0 {
        // Concatenate `{out}.part{0..world}` in rank order. This needs
        // every part visible on rank 0's filesystem — true for palaunch
        // (one host) and for shared-filesystem clusters.
        let merge = || -> std::io::Result<()> {
            let merged_file = std::fs::File::create(&path)?;
            let mut w = std::io::BufWriter::new(merged_file);
            for r in 0..world {
                let mut part_file = std::fs::File::open(part_path(r)).map_err(|e| {
                    std::io::Error::new(
                        e.kind(),
                        format!(
                            "{} (rank {r}'s part not visible on rank 0 — \
                             distributed runs need a shared filesystem to merge)",
                            part_path(r)
                        ),
                    )
                })?;
                std::io::copy(&mut part_file, &mut w)?;
            }
            w.into_inner().map_err(|e| e.into_error())?.sync_all()?;
            for r in 0..world {
                std::fs::remove_file(part_path(r))?;
            }
            Ok(())
        };
        merge().map_err(CliError::io)?;
        writeln!(
            out,
            "generated {model}: {n} nodes, {total_edges} edges in {:.2}s -> {path} \
             ({format}, tcp x {world} processes)",
            started.elapsed().as_secs_f64()
        )
        .map_err(CliError::io)?;
        if let Some(merged) = &merged {
            stats_flags.emit(merged, out)?;
        }
    }
    Ok(())
}
