//! `pagen serve` — run the generation-as-a-service daemon.
//!
//! The daemon glue: `pa-net::serve` owns sockets, queueing and
//! streaming; this module supplies the [`JobRunner`] that maps a wire
//! [`JobSpec`] onto the engines via `pa-core::job::JobDescriptor` and
//! produces artifacts through the *same* streaming writer as
//! `pagen generate --format bin|txt` — which is what makes a served
//! artifact byte-identical to a solo run of the same parameter tuple.

use std::io::Write;
use std::path::Path;
use std::time::Duration;

use crate::args::{Args, CliError};
use pa_core::job::{JobDescriptor, RawJob};
use pa_core::GenOptions;
use pa_net::serve::{JobRunner, JobSpec, ServeConfig, Server};

/// Convert the wire tuple to `pa-core`'s raw form (same fields, owned by
/// different layers — `pa-net` must not depend on `pa-core`).
pub(crate) fn raw_from_spec(spec: &JobSpec) -> RawJob {
    RawJob {
        n: spec.n,
        x: spec.x,
        p_bits: spec.p_bits,
        seed: spec.seed,
        alpha_bits: spec.alpha_bits,
        ranks: spec.ranks,
        scheme_id: spec.scheme_id,
        engine_id: spec.engine_id,
        model_id: spec.model_id,
        format_id: spec.format_id,
    }
}

/// Inverse of [`raw_from_spec`].
pub(crate) fn spec_from_raw(raw: &RawJob) -> JobSpec {
    JobSpec {
        n: raw.n,
        x: raw.x,
        p_bits: raw.p_bits,
        seed: raw.seed,
        alpha_bits: raw.alpha_bits,
        ranks: raw.ranks,
        scheme_id: raw.scheme_id,
        engine_id: raw.engine_id,
        model_id: raw.model_id,
        format_id: raw.format_id,
    }
}

/// The production job runner: validates via [`JobDescriptor`] and
/// generates through [`crate::generate::stream_pa_to_disk`].
struct EngineRunner {
    /// Admission caps protecting the daemon from jobs sized to hurt it;
    /// violations are named `bad-request` rejections, not failures.
    max_ranks: u32,
    max_nodes: u64,
}

impl EngineRunner {
    fn descriptor(&self, spec: &JobSpec) -> Result<JobDescriptor, String> {
        let desc = JobDescriptor::from_raw(&raw_from_spec(spec))?;
        if desc.ranks > self.max_ranks {
            return Err(format!(
                "ranks = {} exceeds this server's cap of {} (--max-ranks)",
                desc.ranks, self.max_ranks
            ));
        }
        if desc.cfg.n > self.max_nodes {
            return Err(format!(
                "n = {} exceeds this server's cap of {} (--max-nodes)",
                desc.cfg.n, self.max_nodes
            ));
        }
        Ok(desc)
    }
}

impl JobRunner for EngineRunner {
    fn validate(&self, spec: &JobSpec) -> Result<(), String> {
        self.descriptor(spec).map(|_| ())
    }

    fn run(&self, spec: &JobSpec, out: &Path) -> Result<(), String> {
        let desc = self.descriptor(spec)?;
        crate::generate::stream_pa_to_disk(
            &desc.cfg,
            desc.scheme,
            desc.ranks as usize,
            &desc.gen_options(GenOptions::default()),
            desc.engine,
            out,
            desc.format,
        )
        .map(|_| ())
        .map_err(|e| e.to_string())
    }
}

pub(crate) fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let addr = args.str("addr", "127.0.0.1:9900");
    let jobs_dir = args.str("jobs-dir", "pagen-jobs");
    let mut cfg = ServeConfig::new(&jobs_dir);
    cfg.queue_cap = args.u64("queue-cap", cfg.queue_cap as u64)? as usize;
    cfg.workers = args.u64("workers", cfg.workers as u64)? as usize;
    let chunk_kb = args.u64("chunk-kb", (cfg.chunk_bytes >> 10) as u64)?;
    if chunk_kb == 0 {
        return Err(CliError::usage("--chunk-kb must be positive"));
    }
    cfg.chunk_bytes = (chunk_kb << 10) as usize;
    cfg.retry_after = Duration::from_millis(args.u64("retry-after-ms", 200)?);
    cfg.request_timeout = Duration::from_millis(args.u64("request-timeout-ms", 10_000)?);
    if cfg.request_timeout.is_zero() {
        return Err(CliError::usage("--request-timeout-ms must be positive"));
    }
    // 0 = no deadline: engines have no way to report forward progress
    // mid-run, so a deadline is only meaningful if the operator knows
    // how long the largest admitted tuple should take.
    let job_timeout = args.u64("job-timeout-ms", 0)?;
    if job_timeout != 0 {
        cfg.job_timeout = Some(Duration::from_millis(job_timeout));
    }
    cfg.max_conns = args.u64("max-conns", cfg.max_conns as u64)? as usize;
    if cfg.max_conns == 0 {
        return Err(CliError::usage("--max-conns must be positive"));
    }
    let cache = args.str("cache-bytes", "");
    if !cache.is_empty() {
        cfg.cache_bytes = crate::generate::parse_byte_size("cache-bytes", &cache)?;
        if cfg.cache_bytes == 0 {
            return Err(CliError::usage("--cache-bytes must be positive"));
        }
    }
    cfg.max_job_failures = args.u64("max-job-failures", u64::from(cfg.max_job_failures))? as u32;
    let runner = EngineRunner {
        max_ranks: args.u64("max-ranks", 64)? as u32,
        max_nodes: args.u64("max-nodes", 1 << 32)?,
    };
    args.finish()?;

    let server = Server::bind(&addr, cfg, runner)
        .map_err(|e| CliError::usage(format!("cannot start serve daemon on {addr}: {e}")))?;
    // The startup-scan counts let restart smoke tests (and operators)
    // confirm a crash-restart actually recovered the cache.
    let recovered = server.stats();
    writeln!(
        out,
        "serving on {} (jobs in {jobs_dir}; recovered {} artifact(s), cleaned {} stale temp \
         file(s)); send `pagen drain --addr {}` to stop",
        server.addr(),
        recovered.jobs_recovered,
        recovered.tmp_cleaned,
        server.addr()
    )
    .map_err(CliError::io)?;
    out.flush().map_err(CliError::io)?;

    // Blocks until a DRAIN_REQ arrives and all in-flight work finishes.
    let stats = server.join();
    writeln!(
        out,
        "drained: {} job(s) run, {} coalesced, {} rejected, {} dropped by drain, {} byte(s) \
         streamed, {} failed ({} timed out), {} evicted, {} worker panic(s)",
        stats.jobs_run,
        stats.jobs_coalesced,
        stats.rejects,
        stats.jobs_drained,
        stats.bytes_streamed,
        stats.jobs_failed,
        stats.jobs_timed_out,
        stats.jobs_evicted,
        stats.worker_panics
    )
    .map_err(CliError::io)?;
    Ok(())
}
