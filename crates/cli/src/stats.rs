//! Merged communication statistics: one world-wide summary instead of
//! `P` per-rank ledgers.
//!
//! The in-process backends hand the CLI every rank's [`CommStats`]
//! directly; the TCP backend cannot (each rank is its own process), so
//! the totals travel through the transport's allreduce/allgather — the
//! same collectives the engines already rely on. Either way the result
//! is a [`MergedStats`], rendered as a human summary and, with
//! `--stats-json`, as a hand-written JSON object (no serialization
//! dependency in this workspace).

use std::io::Write;

use pa_mpsim::{CommStats, Transport};

use crate::args::{Args, CliError};

/// What the user asked to see.
pub(crate) struct StatsFlags {
    /// `--stats on`: print the merged summary.
    pub summary: bool,
    /// `--stats-json <path>`: also write the merged stats as JSON.
    pub json: Option<String>,
}

impl StatsFlags {
    /// Read `--stats` / `--stats-json`.
    pub fn parse(args: &Args) -> Result<Self, CliError> {
        let summary = match args.str("stats", "off").as_str() {
            "on" => true,
            "off" => false,
            other => {
                return Err(CliError::usage(format!(
                    "--stats must be on or off, got {other:?}"
                )))
            }
        };
        let json = match args.str("stats-json", "") {
            p if p.is_empty() => None,
            p => Some(p),
        };
        Ok(StatsFlags { summary, json })
    }

    /// Whether any reporting was requested at all.
    pub fn wanted(&self) -> bool {
        self.summary || self.json.is_some()
    }

    /// Render and/or write `merged` as requested.
    pub fn emit(&self, merged: &MergedStats, out: &mut dyn Write) -> Result<(), CliError> {
        if self.summary {
            merged.render(out).map_err(CliError::io)?;
        }
        if let Some(path) = &self.json {
            std::fs::write(path, merged.to_json()).map_err(CliError::io)?;
        }
        Ok(())
    }
}

/// World-wide communication totals (the union of every rank's
/// [`CommStats`]) plus the per-rank traffic breakdown the paper's
/// load-balance figures plot.
pub(crate) struct MergedStats {
    pub world: usize,
    pub totals: CommStats,
    /// Per-rank `msgs_sent + msgs_recv`, by rank.
    pub per_rank_msgs: Vec<u64>,
}

impl MergedStats {
    /// Merge in-process: all ranks' ledgers are in hand.
    pub fn from_local(stats: &[CommStats]) -> Self {
        let mut totals = CommStats::new(stats.len());
        for s in stats {
            totals.merge(s);
        }
        MergedStats {
            world: stats.len(),
            totals,
            per_rank_msgs: stats.iter().map(CommStats::total_msgs).collect(),
        }
    }

    /// Merge across processes: every rank contributes its own ledger
    /// through the transport's collectives. **Every rank must call
    /// this**, in the same program position (it is a collective); each
    /// gets the same totals back.
    pub fn over_transport<M>(t: &impl Transport<M>, own: &CommStats) -> Self {
        let mut totals = CommStats::new(t.nranks());
        totals.msgs_sent = t.allreduce_sum(own.msgs_sent);
        totals.msgs_recv = t.allreduce_sum(own.msgs_recv);
        totals.packets_sent = t.allreduce_sum(own.packets_sent);
        totals.packets_recv = t.allreduce_sum(own.packets_recv);
        totals.pool_hits = t.allreduce_sum(own.pool_hits);
        totals.pool_misses = t.allreduce_sum(own.pool_misses);
        totals.bufs_recycled = t.allreduce_sum(own.bufs_recycled);
        totals.faults_injected = t.allreduce_sum(own.faults_injected);
        totals.retransmitted = t.allreduce_sum(own.retransmitted);
        totals.deduped = t.allreduce_sum(own.deduped);
        MergedStats {
            world: t.nranks(),
            totals,
            per_rank_msgs: t.allgather_u64(own.total_msgs()),
        }
    }

    /// Human-readable summary (one block, stable line prefixes so tests
    /// can grep it).
    pub fn render(&self, out: &mut dyn Write) -> std::io::Result<()> {
        let t = &self.totals;
        writeln!(
            out,
            "comm stats ({} rank(s)): {} msgs sent / {} recv in {} / {} packets",
            self.world, t.msgs_sent, t.msgs_recv, t.packets_sent, t.packets_recv
        )?;
        let acquires = t.pool_hits + t.pool_misses;
        if acquires > 0 {
            writeln!(
                out,
                "  pool: {} hits / {} misses ({:.1}% hit), {} buffers recycled",
                t.pool_hits,
                t.pool_misses,
                100.0 * t.pool_hits as f64 / acquires as f64,
                t.bufs_recycled
            )?;
        }
        if t.faults_injected + t.retransmitted + t.deduped > 0 {
            writeln!(
                out,
                "  faults: {} injected, {} retransmitted, {} deduped",
                t.faults_injected, t.retransmitted, t.deduped
            )?;
        }
        let max = self.per_rank_msgs.iter().copied().max().unwrap_or(0);
        let mean =
            self.per_rank_msgs.iter().sum::<u64>() as f64 / self.per_rank_msgs.len().max(1) as f64;
        writeln!(
            out,
            "  per-rank msgs: {:?} (imbalance max/mean {:.2})",
            self.per_rank_msgs,
            if mean > 0.0 { max as f64 / mean } else { 1.0 }
        )
    }

    /// The merged stats as a JSON object (hand-written; the workspace
    /// has no serialization dependency).
    pub fn to_json(&self) -> String {
        let t = &self.totals;
        let per_rank: Vec<String> = self.per_rank_msgs.iter().map(u64::to_string).collect();
        format!(
            concat!(
                "{{\n",
                "  \"world\": {},\n",
                "  \"msgs_sent\": {},\n",
                "  \"msgs_recv\": {},\n",
                "  \"packets_sent\": {},\n",
                "  \"packets_recv\": {},\n",
                "  \"pool_hits\": {},\n",
                "  \"pool_misses\": {},\n",
                "  \"bufs_recycled\": {},\n",
                "  \"faults_injected\": {},\n",
                "  \"retransmitted\": {},\n",
                "  \"deduped\": {},\n",
                "  \"per_rank_msgs\": [{}]\n",
                "}}\n"
            ),
            self.world,
            t.msgs_sent,
            t.msgs_recv,
            t.packets_sent,
            t.packets_recv,
            t.pool_hits,
            t.pool_misses,
            t.bufs_recycled,
            t.faults_injected,
            t.retransmitted,
            t.deduped,
            per_rank.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MergedStats {
        let mut a = CommStats::new(2);
        a.on_send(1, 10);
        a.on_recv(1, 4);
        let mut b = CommStats::new(2);
        b.on_send(0, 4);
        b.on_recv(0, 10);
        MergedStats::from_local(&[a, b])
    }

    #[test]
    fn from_local_sums_ranks() {
        let m = sample();
        assert_eq!(m.world, 2);
        assert_eq!(m.totals.msgs_sent, 14);
        assert_eq!(m.totals.msgs_recv, 14);
        assert_eq!(m.per_rank_msgs, vec![14, 14]);
    }

    #[test]
    fn render_is_greppable() {
        let mut out = Vec::new();
        sample().render(&mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("comm stats (2 rank(s))"), "{s}");
        assert!(s.contains("14 msgs sent / 14 recv"), "{s}");
        assert!(s.contains("per-rank msgs"), "{s}");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let j = sample().to_json();
        assert!(j.starts_with("{\n"), "{j}");
        assert!(j.trim_end().ends_with('}'), "{j}");
        assert!(j.contains("\"msgs_sent\": 14"), "{j}");
        assert!(j.contains("\"per_rank_msgs\": [14, 14]"), "{j}");
        // Balanced braces/brackets, no trailing commas before closers.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(!j.contains(",\n}"), "{j}");
    }

    #[test]
    fn stats_flags_parse() {
        let args = Args::parse(
            ["--stats", "on", "--stats-json", "/tmp/x.json"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        let f = StatsFlags::parse(&args).unwrap();
        assert!(f.summary);
        assert_eq!(f.json.as_deref(), Some("/tmp/x.json"));
        assert!(f.wanted());

        let none = Args::parse(std::iter::empty()).unwrap();
        let f = StatsFlags::parse(&none).unwrap();
        assert!(!f.wanted());

        let bad = Args::parse(["--stats", "loud"].iter().map(|s| s.to_string())).unwrap();
        assert!(StatsFlags::parse(&bad).is_err());
    }
}
