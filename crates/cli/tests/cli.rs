//! End-to-end tests of the `pagen` command surface (driving [`pa_cli::run`]
//! directly, which is exactly what the binary does).

use pa_cli::run;

fn exec(args: &[&str]) -> Result<String, String> {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    match run(&argv, &mut out) {
        Ok(()) => Ok(String::from_utf8(out).unwrap()),
        Err(e) => Err(e.message().to_string()),
    }
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("pagen_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

#[test]
fn generate_analyze_info_pipeline() {
    let path = tmp("pipeline.pag");
    let gen = exec(&[
        "generate", "--model", "pa", "--n", "5000", "--x", "3", "--ranks", "4", "--scheme", "lcp",
        "--seed", "7", "--out", &path,
    ])
    .unwrap();
    assert!(gen.contains("5000 nodes"));
    assert!(gen.contains("pag"));

    let info = exec(&["info", "--in", &path]).unwrap();
    assert!(info.contains("nodes:  5000"));
    assert!(info.contains("4 shard(s)"));
    assert!(info.contains("model = preferential-attachment"));
    assert!(info.contains("scheme = LCP"));

    let report = exec(&["analyze", "--in", &path]).unwrap();
    assert!(report.contains("edges            14994"), "{report}");
    assert!(report.contains("components       1"));
    assert!(report.contains("power law"));
}

#[test]
fn generate_binary_and_text_formats() {
    for format in ["bin", "txt"] {
        let path = tmp(&format!("g.{format}"));
        exec(&[
            "generate", "--model", "pa", "--n", "500", "--x", "2", "--out", &path, "--format",
            format,
        ])
        .unwrap();
        let report = exec(&["analyze", "--in", &path, "--format", format, "--n", "500"]).unwrap();
        assert!(
            report.contains("edges            997"),
            "{format}: {report}"
        );
    }
}

#[test]
fn streamed_binary_output_matches_materialized_run() {
    // pa + bin routes through the streaming writer: the file must hold
    // exactly the edge set a materialized run produces, the reported
    // count must match the file size, and no part files may remain.
    let bin = tmp("streamed.bin");
    let pag = tmp("streamed.pag");
    let common = [
        "--model", "pa", "--n", "3000", "--x", "3", "--ranks", "4", "--scheme", "rrp", "--seed",
        "11",
    ];
    let mut gen_bin: Vec<&str> = vec!["generate"];
    gen_bin.extend_from_slice(&common);
    gen_bin.extend_from_slice(&["--out", &bin, "--format", "bin"]);
    let msg = exec(&gen_bin).unwrap();
    assert!(msg.contains("streamed"), "{msg}");

    let mut gen_pag: Vec<&str> = vec!["generate"];
    gen_pag.extend_from_slice(&common);
    gen_pag.extend_from_slice(&["--out", &pag, "--format", "pag"]);
    exec(&gen_pag).unwrap();

    let streamed = pa_graph::io::read_binary_file(&bin).unwrap();
    let (_, shards) = pa_graph::container::read_file(&pag).unwrap();
    let materialized = pa_graph::EdgeList::concat(shards);
    assert_eq!(streamed.canonicalized(), materialized.canonicalized());

    let file_len = std::fs::metadata(&bin).unwrap().len();
    assert_eq!(file_len, streamed.len() as u64 * 16);
    let reported = msg
        .split_whitespace()
        .find_map(|w| w.parse::<u64>().ok().filter(|&e| e > 3000))
        .unwrap();
    assert_eq!(reported, streamed.len() as u64);

    for rank in 0..4 {
        assert!(
            !std::path::Path::new(&format!("{bin}.part{rank}")).exists(),
            "part file {rank} left behind"
        );
    }
}

#[test]
fn all_models_generate() {
    for (model, extra) in [
        ("er", vec!["--p", "0.002"]),
        ("ws", vec!["--x", "2", "--p", "0.1"]),
        ("cl", vec!["--gamma", "3.0", "--x", "3"]),
    ] {
        let path = tmp(&format!("{model}.pag"));
        let mut args = vec!["generate", "--model", model, "--n", "2000", "--out", &path];
        args.extend(extra.iter());
        let msg = exec(&args).unwrap_or_else(|e| panic!("{model}: {e}"));
        assert!(msg.contains("2000 nodes"), "{model}: {msg}");
        let info = exec(&["info", "--in", &path]).unwrap();
        assert!(info.contains("attr:   model"), "{model}: {info}");
    }
    // R-MAT sizes by scale.
    let path = tmp("rmat.pag");
    let msg = exec(&[
        "generate", "--model", "rmat", "--scale", "10", "--edges", "4000", "--out", &path,
    ])
    .unwrap();
    assert!(msg.contains("1024 nodes"), "{msg}");
}

#[test]
fn chains_prints_theorem_bounds() {
    let out = exec(&["chains", "--n", "100000", "--p", "0.5"]).unwrap();
    assert!(out.contains("dependency: mean"));
    assert!(out.contains("bound 1/p"));
    assert!(out.contains("selection:"));
}

#[test]
fn help_lists_commands() {
    let out = exec(&["help"]).unwrap();
    for cmd in ["generate", "analyze", "info", "chains"] {
        assert!(out.contains(cmd));
    }
}

#[test]
fn error_paths_are_user_facing() {
    // Unknown command.
    let err = exec(&["frobnicate"]).unwrap_err();
    assert!(err.contains("unknown command"));
    // Unknown model.
    let err = exec(&["generate", "--model", "nope"]).unwrap_err();
    assert!(err.contains("unknown model"));
    // Typo'd flag.
    let err = exec(&["chains", "--nn", "5"]).unwrap_err();
    assert!(err.contains("unknown flag"));
    // Bad scheme.
    let err = exec(&["generate", "--scheme", "zigzag"]).unwrap_err();
    assert!(err.contains("unknown scheme"));
    // Missing required flag.
    let err = exec(&["analyze"]).unwrap_err();
    assert!(err.contains("--in"));
    // Degenerate model parameters.
    let err = exec(&["generate", "--n", "3", "--x", "5"]).unwrap_err();
    assert!(err.contains("n > x"));
    // Missing file.
    let err = exec(&["info", "--in", &tmp("does_not_exist.pag")]).unwrap_err();
    assert!(err.contains("i/o error"));
}

#[test]
fn analyze_rejects_undersized_n() {
    let path = tmp("undersized.bin");
    exec(&[
        "generate", "--model", "pa", "--n", "100", "--x", "1", "--out", &path, "--format", "bin",
    ])
    .unwrap();
    let err = exec(&["analyze", "--in", &path, "--format", "bin", "--n", "5"]).unwrap_err();
    assert!(err.contains("smaller than the largest"));
}

#[test]
fn pa_generation_via_cli_is_reproducible() {
    let a = tmp("repro_a.pag");
    let b = tmp("repro_b.pag");
    for path in [&a, &b] {
        exec(&[
            "generate", "--model", "pa", "--n", "3000", "--x", "1", "--seed", "99", "--out", path,
        ])
        .unwrap();
    }
    let (_, sa) = pa_graph::container::read_file(&a).unwrap();
    let (_, sb) = pa_graph::container::read_file(&b).unwrap();
    let ea = pa_graph::EdgeList::concat(sa).canonicalized();
    let eb = pa_graph::EdgeList::concat(sb).canonicalized();
    assert_eq!(ea, eb);
}

#[test]
fn pa_tuning_flags_do_not_change_the_network() {
    // The engine knobs (buffering, cadence, hub cache) are pure
    // performance levers; the generated network must be identical.
    let base = tmp("tuned_base.pag");
    let tuned = tmp("tuned_knobs.pag");
    exec(&[
        "generate", "--model", "pa", "--n", "4000", "--x", "3", "--seed", "13", "--ranks", "4",
        "--out", &base,
    ])
    .unwrap();
    exec(&[
        "generate",
        "--model",
        "pa",
        "--n",
        "4000",
        "--x",
        "3",
        "--seed",
        "13",
        "--ranks",
        "4",
        "--buffer-cap",
        "64",
        "--service-interval",
        "16",
        "--hub-cache",
        "1000",
        "--idle-wait-us",
        "50",
        "--idle-flush-interval",
        "4",
        "--out",
        &tuned,
    ])
    .unwrap();
    let (_, sa) = pa_graph::container::read_file(&base).unwrap();
    let (_, sb) = pa_graph::container::read_file(&tuned).unwrap();
    assert_eq!(
        pa_graph::EdgeList::concat(sa).canonicalized(),
        pa_graph::EdgeList::concat(sb).canonicalized()
    );
}

#[test]
fn hub_cache_flag_accepts_off_and_rejects_garbage() {
    let path = tmp("huboff.pag");
    exec(&[
        "generate",
        "--model",
        "pa",
        "--n",
        "1000",
        "--x",
        "2",
        "--hub-cache",
        "off",
        "--out",
        &path,
    ])
    .unwrap();
    let err = exec(&[
        "generate",
        "--model",
        "pa",
        "--n",
        "1000",
        "--hub-cache",
        "sometimes",
        "--out",
        &path,
    ])
    .unwrap_err();
    assert!(err.contains("--hub-cache"), "{err}");
}

#[test]
fn chaos_profile_does_not_change_the_network() {
    // The acceptance invariant of the fault layer, end to end through the
    // CLI: a chaos run writes exactly the edges of the clean run.
    let clean = tmp("chaos_clean.pag");
    let chaos = tmp("chaos_faulty.pag");
    exec(&[
        "generate", "--model", "pa", "--n", "3000", "--x", "3", "--seed", "29", "--ranks", "4",
        "--out", &clean,
    ])
    .unwrap();
    exec(&[
        "generate",
        "--model",
        "pa",
        "--n",
        "3000",
        "--x",
        "3",
        "--seed",
        "29",
        "--ranks",
        "4",
        "--chaos-profile",
        "aggressive",
        "--chaos-seed",
        "5",
        "--stall-timeout-ms",
        "60000",
        "--out",
        &chaos,
    ])
    .unwrap();
    let (_, sa) = pa_graph::container::read_file(&clean).unwrap();
    let (_, sb) = pa_graph::container::read_file(&chaos).unwrap();
    assert_eq!(
        pa_graph::EdgeList::concat(sa).canonicalized(),
        pa_graph::EdgeList::concat(sb).canonicalized()
    );
}

#[test]
fn chaos_profile_rejects_garbage() {
    let err = exec(&[
        "generate",
        "--model",
        "pa",
        "--n",
        "1000",
        "--chaos-profile",
        "catastrophic",
        "--out",
        &tmp("chaosbad.pag"),
    ])
    .unwrap_err();
    assert!(err.contains("--chaos-profile"), "{err}");
}

#[test]
fn zero_valued_tuning_flags_are_rejected() {
    for flag in [
        "--buffer-cap",
        "--service-interval",
        "--idle-wait-us",
        "--idle-flush-interval",
    ] {
        let err = exec(&[
            "generate",
            "--model",
            "pa",
            "--n",
            "1000",
            flag,
            "0",
            "--out",
            &tmp("zero.pag"),
        ])
        .unwrap_err();
        assert!(err.contains(flag), "{flag}: {err}");
    }
}

#[test]
fn engine3_produces_the_same_network_as_engine2() {
    // --engine selects the strategy, never the result: engines 2 and 3
    // must write byte-identical edge sets (and bcp must be accepted).
    let e2 = tmp("engine2.bin");
    let e3 = tmp("engine3.bin");
    let common = [
        "--model", "pa", "--n", "4000", "--x", "3", "--ranks", "4", "--scheme", "bcp", "--seed",
        "23", "--format", "bin",
    ];
    for (engine, path) in [("2", &e2), ("3", &e3)] {
        let mut argv: Vec<&str> = vec!["generate"];
        argv.extend_from_slice(&common);
        argv.extend_from_slice(&["--engine", engine, "--out", path]);
        let msg = exec(&argv).unwrap();
        assert!(msg.contains("4000 nodes"), "{msg}");
    }
    let a = pa_graph::io::read_binary_file(&e2).unwrap();
    let b = pa_graph::io::read_binary_file(&e3).unwrap();
    assert_eq!(a.canonicalized(), b.canonicalized());
}

#[test]
fn engine_flag_rejects_bad_values() {
    let err = exec(&[
        "generate",
        "--model",
        "pa",
        "--n",
        "1000",
        "--engine",
        "4",
        "--out",
        &tmp("e4.pag"),
    ])
    .unwrap_err();
    assert!(err.contains("--engine"), "{err}");

    // Engine 1 is the x = 1 specialization; any other x must be refused.
    let err = exec(&[
        "generate",
        "--model",
        "pa",
        "--n",
        "1000",
        "--x",
        "3",
        "--engine",
        "1",
        "--out",
        &tmp("e1.pag"),
    ])
    .unwrap_err();
    assert!(err.contains("x"), "{err}");
}

#[test]
fn nlpa_alpha_one_matches_pa() {
    // --model nlpa --alpha 1.0 must route through the same draw stream
    // as --model pa: same edge set through engine 2 (whose streamed byte
    // order varies with thread timing), byte-identical files through the
    // communication-free engine 3 (whose commit order is label order).
    let common = [
        "--n", "2000", "--x", "3", "--ranks", "4", "--scheme", "rrp", "--seed", "9", "--format",
        "bin",
    ];
    let run_one = |model_flags: &[&str], engine: &str, out: &str| {
        let mut argv: Vec<&str> = vec!["generate"];
        argv.extend_from_slice(model_flags);
        argv.extend_from_slice(&common);
        argv.extend_from_slice(&["--engine", engine, "--out", out]);
        exec(&argv).unwrap();
    };
    for engine in ["2", "3"] {
        let pa = tmp(&format!("nlpa_vs_pa_pa_e{engine}.bin"));
        let nl = tmp(&format!("nlpa_vs_pa_nl_e{engine}.bin"));
        run_one(&["--model", "pa"], engine, &pa);
        run_one(&["--model", "nlpa", "--alpha", "1.0"], engine, &nl);
        let a = pa_graph::io::read_binary_file(&pa).unwrap();
        let b = pa_graph::io::read_binary_file(&nl).unwrap();
        assert_eq!(a.canonicalized(), b.canonicalized(), "engine {engine}");
        if engine == "3" {
            assert_eq!(
                std::fs::read(&pa).unwrap(),
                std::fs::read(&nl).unwrap(),
                "engine 3 streams in label order; files must match byte-for-byte"
            );
        }
    }
}

#[test]
fn nlpa_records_its_exponent_in_the_container() {
    let path = tmp("nlpa_meta.pag");
    let msg = exec(&[
        "generate", "--model", "nlpa", "--alpha", "1.5", "--n", "3000", "--x", "2", "--ranks", "2",
        "--seed", "3", "--out", &path,
    ])
    .unwrap();
    assert!(msg.contains("generated nlpa"), "{msg}");
    let info = exec(&["info", "--in", &path]).unwrap();
    assert!(info.contains("nonlinear-preferential-attachment"), "{info}");
    assert!(info.contains("alpha = 1.5"), "{info}");
}

#[test]
fn nlpa_works_through_every_engine() {
    // Engines 2 and 3 must agree on the nlpa edge set; engine 1 runs the
    // x = 1 specialization of the same model.
    let e2 = tmp("nlpa_e2.bin");
    let e3 = tmp("nlpa_e3.bin");
    for (engine, out) in [("2", &e2), ("3", &e3)] {
        exec(&[
            "generate", "--model", "nlpa", "--alpha", "0.5", "--n", "4000", "--x", "2", "--ranks",
            "4", "--seed", "5", "--engine", engine, "--out", out, "--format", "bin",
        ])
        .unwrap();
    }
    let a = pa_graph::io::read_binary_file(&e2).unwrap();
    let b = pa_graph::io::read_binary_file(&e3).unwrap();
    assert_eq!(a.canonicalized(), b.canonicalized());

    let msg = exec(&[
        "generate",
        "--model",
        "nlpa",
        "--alpha",
        "1.5",
        "--n",
        "1000",
        "--x",
        "1",
        "--ranks",
        "2",
        "--engine",
        "1",
        "--out",
        &tmp("nlpa_e1.pag"),
    ])
    .unwrap();
    assert!(msg.contains("1000 nodes"), "{msg}");
}

#[test]
fn nlpa_rejects_bad_alpha_values() {
    for (alpha, needle) in [("-1.0", "non-negative"), ("nan", "NaN"), ("inf", "finite")] {
        let err = exec(&[
            "generate",
            "--model",
            "nlpa",
            "--alpha",
            alpha,
            "--n",
            "100",
            "--x",
            "1",
            "--out",
            &tmp("nlpa_bad.pag"),
        ])
        .unwrap_err();
        assert!(err.contains(needle), "alpha {alpha}: {err}");
        assert!(err.contains("--alpha"), "alpha {alpha}: {err}");
    }
    // Not a number at all: the flag parser's own diagnostic.
    let err = exec(&[
        "generate",
        "--model",
        "nlpa",
        "--alpha",
        "fast",
        "--n",
        "100",
        "--x",
        "1",
        "--out",
        &tmp("nlpa_bad.pag"),
    ])
    .unwrap_err();
    assert!(err.contains("--alpha must be a number"), "{err}");
}

#[test]
fn alpha_without_nlpa_is_flagged_as_unknown() {
    let err = exec(&[
        "generate",
        "--model",
        "pa",
        "--alpha",
        "1.5",
        "--n",
        "100",
        "--x",
        "1",
        "--out",
        &tmp("pa_alpha.pag"),
    ])
    .unwrap_err();
    assert!(err.contains("--alpha"), "{err}");
}

#[test]
fn chain_memo_rejects_non_integer_values() {
    for bad in ["-1", "many", "1.5"] {
        let err = exec(&[
            "generate",
            "--model",
            "pa",
            "--n",
            "100",
            "--x",
            "1",
            "--chain-memo",
            bad,
            "--out",
            &tmp("memo_bad.pag"),
        ])
        .unwrap_err();
        assert!(
            err.contains("--chain-memo must be an integer"),
            "{bad}: {err}"
        );
    }
}
