//! End-to-end tests of the multi-process TCP backend through the real
//! binaries: `palaunch` supervising a world of `pagen --backend tcp`
//! ranks, connect-failure exits, and mid-run crash diagnostics.

use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const PAGEN: &str = env!("CARGO_BIN_EXE_pagen");
const PALAUNCH: &str = env!("CARGO_BIN_EXE_palaunch");

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("pagen_net_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

/// Bind-and-release `n` loopback addresses (same trick as palaunch).
fn ports(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect()
}

/// Wait for `child` with a deadline; kill it and panic on overrun.
fn wait_bounded(child: &mut Child, what: &str, limit: Duration) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            return status;
        }
        assert!(
            start.elapsed() < limit,
            "{what} still running after {limit:?} — killing it"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn read_canonical(path: &str) -> pa_graph::EdgeList {
    pa_graph::io::read_binary_file(path)
        .unwrap()
        .canonicalized()
}

/// Find the pid of the live `pagen` child running `--rank <rank>` with
/// `--out <out_path>` by scanning `/proc` (Linux-only, like the rest of
/// this file's process plumbing). The out path disambiguates from other
/// concurrently running tests.
fn find_rank_pid(out_path: &str, rank: usize) -> Option<u32> {
    let want = rank.to_string();
    for entry in std::fs::read_dir("/proc").ok()?.flatten() {
        let name = entry.file_name();
        let Ok(pid) = name.to_string_lossy().parse::<u32>() else {
            continue;
        };
        let Ok(raw) = std::fs::read(entry.path().join("cmdline")) else {
            continue;
        };
        let args: Vec<&str> = raw
            .split(|b| *b == 0)
            .map(|s| std::str::from_utf8(s).unwrap_or(""))
            .collect();
        if args.contains(&out_path) && args.windows(2).any(|w| w[0] == "--rank" && w[1] == want) {
            return Some(pid);
        }
    }
    None
}

#[test]
fn palaunch_matches_single_process_for_every_scheme() {
    for scheme in ["ucp", "lcp", "rrp"] {
        for x in ["1", "4"] {
            let multi = tmp(&format!("multi_{scheme}_x{x}.bin"));
            let single = tmp(&format!("single_{scheme}_x{x}.bin"));
            let common = [
                "generate", "--model", "pa", "--n", "20000", "--x", x, "--scheme", scheme,
                "--seed", "13", "--format", "bin",
            ];

            let out = Command::new(PALAUNCH)
                .args(["-p", "4", "--pagen", PAGEN, "--"])
                .args(common)
                .args(["--out", &multi])
                .output()
                .unwrap();
            assert!(
                out.status.success(),
                "{scheme} x{x}: palaunch failed\nstdout: {}\nstderr: {}",
                String::from_utf8_lossy(&out.stdout),
                String::from_utf8_lossy(&out.stderr)
            );
            let stdout = String::from_utf8_lossy(&out.stdout);
            assert!(stdout.contains("[rank 0] generated pa"), "{stdout}");

            let out = Command::new(PAGEN)
                .args(common)
                .args(["--ranks", "4", "--out", &single])
                .output()
                .unwrap();
            assert!(out.status.success(), "{scheme} x{x}: single-process failed");

            // Within-rank emission order over TCP depends on packet
            // interleaving, so the files are compared as canonical edge
            // lists — the same standard the seeded oracles use.
            assert_eq!(
                read_canonical(&multi),
                read_canonical(&single),
                "{scheme} x{x}: multi-process edge set diverged"
            );
            for r in 0..4 {
                assert!(
                    !std::path::Path::new(&format!("{multi}.part{r}")).exists(),
                    "{scheme} x{x}: part file {r} left behind"
                );
            }
        }
    }
}

#[test]
fn palaunch_merges_stats_from_all_ranks() {
    let out_path = tmp("stats.bin");
    let json_path = tmp("stats.json");
    let out = Command::new(PALAUNCH)
        .args(["-p", "2", "--pagen", PAGEN, "--"])
        .args([
            "generate",
            "--model",
            "pa",
            "--n",
            "10000",
            "--x",
            "4",
            "--scheme",
            "lcp",
            "--seed",
            "5",
            "--format",
            "bin",
            "--out",
            &out_path,
            "--stats",
            "on",
            "--stats-json",
            &json_path,
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("[rank 0] comm stats (2 rank(s))"),
        "{stdout}"
    );
    assert!(stdout.contains("per-rank msgs"), "{stdout}");
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"world\": 2"), "{json}");
    assert!(json.contains("\"per_rank_msgs\": ["), "{json}");
}

#[test]
fn in_process_backend_reports_stats_too() {
    let out_path = tmp("local_stats.pag");
    let json_path = tmp("local_stats.json");
    let out = Command::new(PAGEN)
        .args([
            "generate",
            "--model",
            "pa",
            "--n",
            "5000",
            "--x",
            "3",
            "--ranks",
            "4",
            "--out",
            &out_path,
            "--stats",
            "on",
            "--stats-json",
            &json_path,
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("comm stats (4 rank(s))"), "{stdout}");
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"world\": 4"), "{json}");
}

#[test]
fn connecting_to_a_dead_peer_exits_nonzero_and_names_the_rank() {
    // Allocate an address for rank 0 but never run it; rank 1 must give
    // up after its connect timeout with a clear diagnostic, not hang.
    let peers = ports(2).join(",");
    let started = Instant::now();
    let mut child = Command::new(PAGEN)
        .args([
            "generate",
            "--model",
            "pa",
            "--n",
            "1000",
            "--backend",
            "tcp",
            "--rank",
            "1",
            "--world",
            "2",
            "--peers",
            &peers,
            "--connect-timeout-ms",
            "600",
            "--out",
            &tmp("dead.bin"),
            "--format",
            "bin",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let status = wait_bounded(&mut child, "rank 1 vs dead rank 0", Duration::from_secs(15));
    let out = child.wait_with_output().unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!status.success(), "expected failure, got {status:?}");
    assert!(
        started.elapsed() < Duration::from_secs(15),
        "took {:?} to fail",
        started.elapsed()
    );
    assert!(stderr.contains("rank 0"), "stderr: {stderr}");
    assert!(stderr.contains("unreachable"), "stderr: {stderr}");
}

#[test]
fn killing_a_rank_mid_run_fails_the_survivor_with_a_diagnostic() {
    // A 2-rank world big enough to still be generating half a second in
    // (a dev-profile run of this size takes multiple seconds); rank 1 is
    // killed mid-flight and rank 0 must abort naming it, not hang.
    let peers = ports(2).join(",");
    let out_path = tmp("killed.bin");
    let spawn = |rank: &str| {
        Command::new(PAGEN)
            .args([
                "generate",
                "--model",
                "pa",
                "--n",
                "500000",
                "--x",
                "4",
                "--scheme",
                "lcp",
                "--backend",
                "tcp",
                "--rank",
                rank,
                "--world",
                "2",
                "--peers",
                &peers,
                "--out",
                &out_path,
                "--format",
                "bin",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap()
    };
    let mut rank0 = spawn("0");
    let mut rank1 = spawn("1");
    std::thread::sleep(Duration::from_millis(500));
    rank1.kill().unwrap();
    let _ = rank1.wait();

    let status = wait_bounded(
        &mut rank0,
        "rank 0 after peer death",
        Duration::from_secs(60),
    );
    let out = rank0.wait_with_output().unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!status.success(), "rank 0 ignored its peer's death");
    assert!(
        stderr.contains("rank 1"),
        "diagnostic does not name the dead rank: {stderr}"
    );
    for r in 0..2 {
        let _ = std::fs::remove_file(format!("{out_path}.part{r}"));
    }
}

#[test]
fn palaunch_kills_survivors_when_one_rank_fails() {
    // Rank processes that fail fast (unknown flag) must take the job
    // down: nonzero exit plus a supervisor line naming a failed rank.
    let out = Command::new(PALAUNCH)
        .args(["-p", "2", "--pagen", PAGEN, "--"])
        .args(["generate", "--definitely-not-a-flag", "1"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("exited with code"), "stderr: {stderr}");
    assert!(
        stderr.contains("remaining ranks killed"),
        "stderr: {stderr}"
    );
    // Without --restart-failed the default is fail-fast: no retries.
    assert!(!stderr.contains("restarting world"), "stderr: {stderr}");
}

#[test]
fn palaunch_restart_failed_recovers_from_kill9_with_identical_output() {
    // The headline recovery scenario: a 4-rank checkpointing world, one
    // rank SIGKILLed from outside mid-generation, `--restart-failed`
    // relaunching the world (resuming from the last agreed checkpoint
    // epoch when one exists), and the final merged file canonically
    // equal to an uninterrupted single-process run of the same seed.
    let out_path = tmp("recover.bin");
    let single = tmp("recover_single.bin");
    let ckpt_dir = tmp("recover_ckpts");
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    std::fs::create_dir_all(&ckpt_dir).unwrap();
    let common = [
        "generate", "--model", "pa", "--n", "500000", "--x", "4", "--scheme", "rrp", "--seed",
        "99", "--format", "bin",
    ];

    let mut child = Command::new(PALAUNCH)
        .args(["-p", "4", "--restart-failed", "2", "--pagen", PAGEN, "--"])
        .args(common)
        .args([
            "--out",
            &out_path,
            "--checkpoint-dir",
            &ckpt_dir,
            "--checkpoint-interval",
            "30000",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();

    // Give the world time to get going (and, usually, commit a few
    // checkpoint epochs — a dev-profile run of this size takes multiple
    // seconds), then SIGKILL rank 2 from outside the supervisor.
    std::thread::sleep(Duration::from_millis(900));
    let victim = (0..40)
        .find_map(|_| {
            let pid = find_rank_pid(&out_path, 2);
            if pid.is_none() {
                std::thread::sleep(Duration::from_millis(100));
            }
            pid
        })
        .expect("rank 2 should still be running ~1s into the run");
    let killed = Command::new("kill")
        .args(["-9", &victim.to_string()])
        .status()
        .unwrap();
    assert!(killed.success(), "kill -9 {victim} failed");

    let status = wait_bounded(
        &mut child,
        "palaunch with --restart-failed",
        Duration::from_secs(180),
    );
    let out = child.wait_with_output().unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        status.success(),
        "recovery run failed\nstderr: {stderr}\nstdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(
        stderr.contains("palaunch: rank 2 exited with code"),
        "stderr: {stderr}"
    );
    assert!(
        stderr.contains("restarting world (attempt 1 of 2)"),
        "stderr: {stderr}"
    );

    let out = Command::new(PAGEN)
        .args(common)
        .args(["--ranks", "4", "--out", &single])
        .output()
        .unwrap();
    assert!(out.status.success(), "single-process reference run failed");
    assert_eq!(
        read_canonical(&out_path),
        read_canonical(&single),
        "recovered edge set diverged from the uninterrupted run"
    );

    // A finished job leaves neither part files nor checkpoints behind.
    for r in 0..4 {
        assert!(
            !std::path::Path::new(&format!("{out_path}.part{r}")).exists(),
            "part file {r} left behind"
        );
    }
    let leftovers: Vec<String> = std::fs::read_dir(&ckpt_dir)
        .unwrap()
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.contains("ckpt"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "checkpoints left behind: {leftovers:?}"
    );
}

#[test]
fn tcp_backend_rejects_incomplete_worlds_and_chaos() {
    let run = |extra: &[&str]| {
        let mut args = vec!["generate", "--model", "pa", "--backend", "tcp"];
        args.extend_from_slice(extra);
        Command::new(PAGEN).args(&args).output().unwrap()
    };

    let out = run(&[]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--peers"), "{stderr}");
    assert!(stderr.contains("palaunch"), "{stderr}");

    let out = run(&[
        "--rank",
        "0",
        "--world",
        "2",
        "--peers",
        "a:1,b:2",
        "--chaos-profile",
        "light",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("chaos"), "{stderr}");
}
