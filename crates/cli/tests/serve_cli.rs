//! End-to-end tests of `pagen serve` / `fetch` / `drain` through the
//! real binary, plus the cross-crate pin of the canonical job encoding
//! (pa-net's wire-side `JobSpec` vs pa-core's engine-side
//! `JobDescriptor` must agree byte for byte, or a client would fetch a
//! different artifact than the daemon generates).

use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use pa_core::job::JobDescriptor;
use pa_core::{ModelKind, PaConfig};
use pa_graph::io::EdgeFormat;
use pa_net::serve::JobSpec;

const PAGEN: &str = env!("CARGO_BIN_EXE_pagen");

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pagen_serve_cli_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Bind-and-release a loopback port (same trick as palaunch).
fn free_addr() -> String {
    let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    l.local_addr().unwrap().to_string()
}

/// Wait for `child` with a deadline; kill it and panic on overrun.
fn wait_bounded(child: &mut Child, what: &str, limit: Duration) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            return status;
        }
        assert!(
            start.elapsed() < limit,
            "{what} still running after {limit:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Block until a TCP connect to `addr` succeeds (the daemon is up).
fn wait_listening(addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if std::net::TcpStream::connect(addr).is_ok() {
            return;
        }
        assert!(Instant::now() < deadline, "daemon never listened on {addr}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn pagen(args: &[&str]) -> std::process::Output {
    Command::new(PAGEN).args(args).output().unwrap()
}

fn assert_ok(out: &std::process::Output, what: &str) -> String {
    assert!(
        out.status.success(),
        "{what} failed: {}\n{}",
        String::from_utf8_lossy(&out.stderr),
        String::from_utf8_lossy(&out.stdout)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

// ---------------------------------------------------------------------
// Cross-crate canonical-encoding pin.
// ---------------------------------------------------------------------

/// The one property the whole serve stack hangs on: both crates derive
/// the same 48 canonical bytes — hence the same job id — from the same
/// parameters. Drift here would silently key a client's request to a
/// different artifact than the daemon generates.
#[test]
fn job_spec_and_job_descriptor_agree_on_canonical_bytes_and_id() {
    let cases = [
        (
            JobDescriptor {
                cfg: PaConfig::new(50_000, 4).with_seed(42).with_p(0.5),
                scheme: pa_core::partition::Scheme::Rrp,
                engine: 2,
                model: ModelKind::Pa,
                ranks: 4,
                format: EdgeFormat::Binary,
            },
            JobSpec {
                n: 50_000,
                x: 4,
                p_bits: 0.5f64.to_bits(),
                seed: 42,
                alpha_bits: 0,
                ranks: 4,
                scheme_id: 2,
                engine_id: 2,
                model_id: 0,
                format_id: 1,
            },
        ),
        (
            JobDescriptor {
                cfg: PaConfig::new(1_000, 1).with_seed(7).with_p(0.25),
                scheme: pa_core::partition::Scheme::Lcp,
                engine: 3,
                model: ModelKind::Nlpa { alpha: 1.5 },
                ranks: 8,
                format: EdgeFormat::Text,
            },
            JobSpec {
                n: 1_000,
                x: 1,
                p_bits: 0.25f64.to_bits(),
                seed: 7,
                alpha_bits: 1.5f64.to_bits(),
                ranks: 8,
                scheme_id: 1,
                engine_id: 3,
                model_id: 1,
                format_id: 0,
            },
        ),
    ];
    for (desc, spec) in cases {
        desc.validate().unwrap();
        assert_eq!(
            desc.canonical_bytes().to_vec(),
            spec.canonical_bytes().to_vec(),
            "canonical encodings diverged for {desc:?}"
        );
        assert_eq!(desc.job_id(), spec.job_id());
    }
}

// ---------------------------------------------------------------------
// The daemon through the real binary.
// ---------------------------------------------------------------------

/// One daemon lifetime exercising the full client surface: fetch equals
/// a solo engine-3 run byte for byte, a repeat fetch is served from
/// cache and stays identical, an interrupted fetch resumes to the same
/// bytes, and `pagen drain` shuts the daemon down cleanly with its
/// stats line and no stray temp files.
#[test]
fn serve_fetch_resume_drain_round_trip() {
    let dir = tmp_dir("round_trip");
    let jobs = dir.join("jobs");
    let addr = free_addr();
    let mut daemon = Command::new(PAGEN)
        .args([
            "serve",
            "--addr",
            &addr,
            "--jobs-dir",
            jobs.to_str().unwrap(),
            "--workers",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    wait_listening(&addr);

    // Engine 3 recomputes chains locally in label order, so its solo
    // output is byte-reproducible — the only engine where comparing a
    // fetched artifact against an independent solo run is meaningful.
    let job: &[&str] = &[
        "--n", "20000", "--x", "2", "--p", "0.5", "--seed", "11", "--ranks", "2", "--scheme",
        "rrp", "--engine", "3", "--format", "bin",
    ];
    let solo = dir.join("solo.bin");
    let mut gen_args = vec!["generate", "--model", "pa", "--out", solo.to_str().unwrap()];
    gen_args.extend_from_slice(job);
    assert_ok(&pagen(&gen_args), "solo generate");
    let solo_bytes = std::fs::read(&solo).unwrap();
    assert!(!solo_bytes.is_empty());

    let fetched = dir.join("fetched.bin");
    let mut fetch_args = vec!["fetch", "--addr", &addr, "--out", fetched.to_str().unwrap()];
    fetch_args.extend_from_slice(job);
    let line = assert_ok(&pagen(&fetch_args), "first fetch");
    assert!(line.contains("fetched job"), "{line:?}");
    assert_eq!(
        std::fs::read(&fetched).unwrap(),
        solo_bytes,
        "fetched artifact must equal the solo engine-3 run byte for byte"
    );

    // Same tuple again into a fresh file: served from cache, identical.
    let again = dir.join("again.bin");
    let mut again_args = vec!["fetch", "--addr", &addr, "--out", again.to_str().unwrap()];
    again_args.extend_from_slice(job);
    assert_ok(&pagen(&again_args), "cached fetch");
    assert_eq!(std::fs::read(&again).unwrap(), solo_bytes);

    // Interrupt a fetch mid-stream at a deterministic byte, then resume.
    let resumed = dir.join("resumed.bin");
    let cut = (solo_bytes.len() / 3).to_string();
    let mut cut_args = vec![
        "fetch",
        "--addr",
        &addr,
        "--out",
        resumed.to_str().unwrap(),
        "--stop-after-bytes",
        &cut,
        "--max-attempts",
        "1",
    ];
    cut_args.extend_from_slice(job);
    let out = pagen(&cut_args);
    assert!(!out.status.success(), "interrupted fetch must fail");
    assert_eq!(
        std::fs::metadata(&resumed).unwrap().len().to_string(),
        cut,
        "the cut leaves exactly --stop-after-bytes bytes on disk"
    );
    let mut resume_args = vec![
        "fetch",
        "--addr",
        &addr,
        "--out",
        resumed.to_str().unwrap(),
        "--resume",
        "on",
    ];
    resume_args.extend_from_slice(job);
    let line = assert_ok(&pagen(&resume_args), "resumed fetch");
    assert!(line.contains(&format!("resumed from {cut}")), "{line:?}");
    assert_eq!(
        std::fs::read(&resumed).unwrap(),
        solo_bytes,
        "resumed fetch must reproduce the artifact byte for byte"
    );

    // Drain: daemon acknowledges, finishes, exits 0 with its stats line.
    let line = assert_ok(&pagen(&["drain", "--addr", &addr]), "drain");
    assert!(line.contains("drain acknowledged"), "{line:?}");
    let status = wait_bounded(&mut daemon, "pagen serve", Duration::from_secs(20));
    assert!(status.success(), "daemon must exit cleanly after drain");
    let mut daemon_out = String::new();
    std::io::Read::read_to_string(daemon.stdout.as_mut().unwrap(), &mut daemon_out).unwrap();
    assert!(daemon_out.contains("serving on"), "{daemon_out:?}");
    assert!(daemon_out.contains("drained:"), "{daemon_out:?}");

    // The jobs dir holds exactly the one finished artifact — no .tmp
    // litter from the run.
    let leftovers: Vec<String> = std::fs::read_dir(&jobs)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(leftovers.len(), 1, "jobs dir: {leftovers:?}");
    assert!(leftovers[0].ends_with(".art"), "jobs dir: {leftovers:?}");
}

/// Crash-restart through the real binary: daemon A caches an artifact
/// and is SIGKILLed; daemon B on the same jobs directory announces the
/// recovered cache on its startup line, `pagen serve-status` reflects
/// it over the wire, a re-fetch is byte-identical without re-running
/// (the drain line reports `0 job(s) run`), and planted temp litter is
/// gone.
#[test]
fn killed_daemon_restart_recovers_cache_and_serve_status_reports_it() {
    let dir = tmp_dir("restart");
    let jobs = dir.join("jobs");
    let job: &[&str] = &[
        "--n", "20000", "--x", "2", "--p", "0.5", "--seed", "11", "--ranks", "2", "--scheme",
        "rrp", "--engine", "3", "--format", "bin",
    ];

    let addr_a = free_addr();
    let mut daemon_a = Command::new(PAGEN)
        .args([
            "serve",
            "--addr",
            &addr_a,
            "--jobs-dir",
            jobs.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    wait_listening(&addr_a);
    let first = dir.join("first.bin");
    let mut fetch_args = vec!["fetch", "--addr", &addr_a, "--out", first.to_str().unwrap()];
    fetch_args.extend_from_slice(job);
    assert_ok(&pagen(&fetch_args), "fetch before the crash");
    let first_bytes = std::fs::read(&first).unwrap();

    // Hard kill — no drain, no cleanup — then stage the temp litter an
    // in-flight run would have left behind.
    daemon_a.kill().unwrap();
    daemon_a.wait().unwrap();
    std::fs::write(jobs.join("0123456789abcdef.5.tmp"), b"junk").unwrap();

    let addr_b = free_addr();
    let mut daemon_b = Command::new(PAGEN)
        .args([
            "serve",
            "--addr",
            &addr_b,
            "--jobs-dir",
            jobs.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    wait_listening(&addr_b);

    let status_line = assert_ok(&pagen(&["serve-status", "--addr", &addr_b]), "serve-status");
    assert!(
        status_line.contains("1 recovered at startup"),
        "{status_line:?}"
    );
    assert!(status_line.contains("1 temp cleaned"), "{status_line:?}");

    let second = dir.join("second.bin");
    let mut refetch = vec![
        "fetch",
        "--addr",
        &addr_b,
        "--out",
        second.to_str().unwrap(),
    ];
    refetch.extend_from_slice(job);
    assert_ok(&pagen(&refetch), "fetch after the restart");
    assert_eq!(
        std::fs::read(&second).unwrap(),
        first_bytes,
        "the restarted daemon must serve the pre-crash artifact byte for byte"
    );

    assert_ok(&pagen(&["drain", "--addr", &addr_b]), "drain");
    let status = wait_bounded(
        &mut daemon_b,
        "pagen serve (restarted)",
        Duration::from_secs(20),
    );
    assert!(status.success());
    let mut daemon_out = String::new();
    std::io::Read::read_to_string(daemon_b.stdout.as_mut().unwrap(), &mut daemon_out).unwrap();
    assert!(
        daemon_out.contains("recovered 1 artifact(s), cleaned 1 stale temp file(s)"),
        "{daemon_out:?}"
    );
    assert!(
        daemon_out.contains("drained: 0 job(s) run"),
        "the re-fetch must come from the recovered cache, not a re-run: {daemon_out:?}"
    );
    let leftovers: Vec<String> = std::fs::read_dir(&jobs)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "stale temp files survived: {leftovers:?}"
    );
}

/// The daemon enforces its own caps: a job above `--max-nodes` is
/// rejected by name before any work is queued, and the daemon stays
/// healthy for well-formed jobs afterwards.
#[test]
fn serve_rejects_jobs_beyond_its_caps() {
    let dir = tmp_dir("caps");
    let addr = free_addr();
    let mut daemon = Command::new(PAGEN)
        .args([
            "serve",
            "--addr",
            &addr,
            "--jobs-dir",
            dir.join("jobs").to_str().unwrap(),
            "--max-nodes",
            "1000",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    wait_listening(&addr);

    let big = dir.join("big.bin");
    let out = pagen(&[
        "fetch",
        "--addr",
        &addr,
        "--out",
        big.to_str().unwrap(),
        "--n",
        "2000",
        "--x",
        "1",
        "--seed",
        "1",
        "--ranks",
        "1",
        "--engine",
        "3",
    ]);
    assert!(!out.status.success(), "over-cap job must be rejected");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--max-nodes"), "{err:?}");

    let small = dir.join("small.bin");
    assert_ok(
        &pagen(&[
            "fetch",
            "--addr",
            &addr,
            "--out",
            small.to_str().unwrap(),
            "--n",
            "900",
            "--x",
            "1",
            "--seed",
            "1",
            "--ranks",
            "1",
            "--engine",
            "3",
        ]),
        "in-cap fetch after a rejection",
    );
    assert!(std::fs::metadata(&small).unwrap().len() > 0);

    assert_ok(&pagen(&["drain", "--addr", &addr]), "drain");
    assert!(wait_bounded(&mut daemon, "pagen serve", Duration::from_secs(20)).success());
}
