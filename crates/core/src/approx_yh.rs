//! A Yoo–Henderson-style *approximate* distributed PA generator — the
//! baseline the paper positions itself against.
//!
//! Yoo & Henderson ("Parallel Generation of Massive Scale-Free Graphs",
//! 2010) was the only prior distributed-memory PA algorithm. The paper's
//! critique (§1): (i) it approximates the attachment distribution rather
//! than sampling it exactly, and (ii) its accuracy depends on several
//! control parameters that must be tuned by repeated runs.
//!
//! Since the original is not public, this module implements the closest
//! synthetic equivalent exercising the same design space (see DESIGN.md
//! §2): a bulk-synchronous generator where each rank attaches against
//! its **local** repeated-endpoints list plus periodically exchanged
//! **samples** of the other ranks' lists. Two control parameters govern
//! the accuracy/communication trade-off, exactly the knobs the paper
//! complains about:
//!
//! * `sync_interval` — rounds between sample exchanges (staleness);
//! * `sample_size` — nodes sampled from each remote list (sampling
//!   error).
//!
//! The `exp_vs_approximate` harness quantifies the resulting degree-
//! distribution bias against the exact algorithm.

use crate::partition::{Partition, Rrp};
use crate::{Node, PaConfig};
use pa_graph::EdgeList;
use pa_mpsim::{Comm, World};
use pa_rng::{Rng64, Xoshiro256pp};
use std::time::Duration;

/// Control parameters of the approximate generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct YhParams {
    /// Generation rounds between sample exchanges.
    pub sync_interval: u64,
    /// Sample size sent to every other rank at each exchange.
    pub sample_size: usize,
}

impl Default for YhParams {
    fn default() -> Self {
        Self {
            sync_interval: 64,
            sample_size: 256,
        }
    }
}

/// One rank's view of a remote rank's degree mass.
#[derive(Debug, Clone)]
struct RemoteView {
    /// Total repeated-list length at the remote rank (its degree mass).
    mass: u64,
    /// Uniform sample of that list.
    sample: Vec<Node>,
}

/// A sample-exchange message.
#[derive(Debug, Clone)]
pub(crate) struct SampleMsg {
    mass: u64,
    sample: Vec<Node>,
}

/// Generate a PA network approximately on `nranks` ranks.
///
/// The output is a *simple* graph with the exact PA edge count, but its
/// degree distribution only approaches the true attachment law as
/// `sync_interval` shrinks and `sample_size` grows.
///
/// # Panics
///
/// Panics on invalid `cfg`, `nranks == 0`, or `sample_size == 0`.
pub fn generate(cfg: &PaConfig, nranks: usize, params: &YhParams) -> EdgeList {
    cfg.validate();
    assert!(params.sample_size > 0, "sample_size must be positive");
    assert!(params.sync_interval > 0, "sync_interval must be positive");
    let part = Rrp::new(cfg.n, nranks);
    let world = World::new(nranks);
    let parts = world.run(|mut comm: Comm<SampleMsg>| rank_main(cfg, &part, params, &mut comm));
    EdgeList::concat(parts)
}

fn rank_main(
    cfg: &PaConfig,
    part: &Rrp,
    params: &YhParams,
    comm: &mut Comm<SampleMsg>,
) -> EdgeList {
    let rank = comm.rank();
    let nranks = comm.nranks();
    let x = cfg.x;
    let mut rng = Xoshiro256pp::seed_from(cfg.seed, rank as u64);
    let mut edges = EdgeList::new();
    // Local repeated-endpoints list: every endpoint of a locally created
    // edge (this is where the approximation enters — remote degree mass
    // is only visible through the exchanged samples).
    let mut local_list: Vec<Node> = Vec::new();
    let mut views: Vec<Option<RemoteView>> = vec![None; nranks];

    // Seed clique, emitted by the owner of the higher endpoint.
    for i in (0..x).filter(|&v| part.rank_of(v) == rank) {
        for j in 0..i {
            edges.push(i, j);
            local_list.push(i);
            local_list.push(j);
        }
    }
    // The generation proceeds in global rounds; round r creates node
    // r·P + rank on this rank (RRP layout keeps rounds aligned with
    // node labels so candidates are always older than the new node).
    let rounds = cfg.n.div_ceil(nranks as u64);
    let mut targets: Vec<Node> = Vec::with_capacity(x as usize);
    for round in 0..rounds {
        if round % params.sync_interval == 0 {
            exchange_samples(comm, &local_list, params.sample_size, &mut views);
        }
        let t = round * nranks as u64 + rank as u64;
        if t < x || t >= cfg.n {
            continue;
        }
        targets.clear();
        if t == x {
            targets.extend(0..x);
        } else {
            let mut guard = 0u32;
            while (targets.len() as u64) < x {
                let cand = draw_candidate(&mut rng, t, &local_list, &views, rank);
                let ok = cand.is_some_and(|c| c < t && !targets.contains(&c));
                if let (true, Some(c)) = (ok, cand) {
                    targets.push(c);
                } else {
                    guard += 1;
                    if guard > 50 {
                        // Fallback: uniform attachment keeps the graph
                        // valid when the views are too stale/empty —
                        // precisely the failure mode exact algorithms
                        // avoid.
                        let c = rng.gen_range(0, t);
                        if !targets.contains(&c) {
                            targets.push(c);
                        }
                    }
                }
            }
        }
        for &v in &targets {
            edges.push(t, v);
            local_list.push(t);
            local_list.push(v);
        }
    }
    comm.barrier();
    edges
}

/// Degree-proportional draw against the stitched local + sampled view.
fn draw_candidate(
    rng: &mut impl Rng64,
    t: Node,
    local_list: &[Node],
    views: &[Option<RemoteView>],
    rank: usize,
) -> Option<Node> {
    // Select a source list with probability proportional to the degree
    // mass it represents.
    let local_mass = local_list.len() as u64;
    let mut total = local_mass;
    for (r, v) in views.iter().enumerate() {
        if r != rank {
            if let Some(v) = v {
                total += v.mass;
            }
        }
    }
    if total == 0 {
        // Nothing known yet: uniform over existing nodes.
        return if t > 0 {
            Some(rng.gen_range(0, t))
        } else {
            None
        };
    }
    let mut pick = rng.gen_below(total);
    if pick < local_mass {
        return Some(local_list[pick as usize]);
    }
    pick -= local_mass;
    for (r, v) in views.iter().enumerate() {
        if r == rank {
            continue;
        }
        if let Some(v) = v {
            if pick < v.mass {
                if v.sample.is_empty() {
                    return None;
                }
                let idx = rng.gen_below(v.sample.len() as u64) as usize;
                return Some(v.sample[idx]);
            }
            pick -= v.mass;
        }
    }
    None
}

/// Bulk-synchronous sample exchange: everyone samples its local list and
/// sends it to everyone else.
fn exchange_samples(
    comm: &mut Comm<SampleMsg>,
    local_list: &[Node],
    sample_size: usize,
    views: &mut [Option<RemoteView>],
) {
    let nranks = comm.nranks();
    if nranks == 1 {
        return;
    }
    comm.barrier();
    // Deterministic stride sample of the local list (cheap, unbiased
    // enough for a list whose order is generation order).
    let sample: Vec<Node> = if local_list.is_empty() {
        Vec::new()
    } else {
        let stride = (local_list.len() / sample_size).max(1);
        local_list
            .iter()
            .step_by(stride)
            .take(sample_size)
            .copied()
            .collect()
    };
    let me = comm.rank();
    for dest in 0..nranks {
        if dest != me {
            comm.send(
                dest,
                SampleMsg {
                    mass: local_list.len() as u64,
                    sample: sample.clone(),
                },
            );
        }
    }
    let mut got = 0;
    while got < nranks - 1 {
        if let Some(pkt) = comm.recv_timeout(Duration::from_secs(30)) {
            for msg in pkt.msgs {
                views[pkt.src] = Some(RemoteView {
                    mass: msg.mass,
                    sample: msg.sample,
                });
                got += 1;
            }
        } else {
            panic!("sample exchange timed out");
        }
    }
    comm.barrier();
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_graph::validate;

    #[test]
    fn produces_valid_simple_graph_with_exact_edge_count() {
        let cfg = PaConfig::new(2_000, 3).with_seed(7);
        let edges = generate(&cfg, 4, &YhParams::default());
        validate::assert_valid_pa_network(cfg.n, cfg.x, &edges);
    }

    #[test]
    fn single_rank_also_works() {
        let cfg = PaConfig::new(500, 2).with_seed(1);
        let edges = generate(&cfg, 1, &YhParams::default());
        validate::assert_valid_pa_network(cfg.n, cfg.x, &edges);
    }

    #[test]
    fn is_deterministic_per_seed_and_world() {
        let cfg = PaConfig::new(800, 2).with_seed(3);
        let a = generate(&cfg, 3, &YhParams::default());
        let b = generate(&cfg, 3, &YhParams::default());
        assert_eq!(a.canonicalized(), b.canonicalized());
    }

    #[test]
    fn produces_heavy_tail_but_biased_versus_exact() {
        // The approximation should still look scale-free-ish (hubs), yet
        // differ measurably from the exact generator — that gap is the
        // point of the paper's exact algorithm.
        let n = 20_000u64;
        let cfg = PaConfig::new(n, 4).with_seed(5);
        let approx = generate(
            &cfg,
            4,
            &YhParams {
                sync_interval: 256,
                sample_size: 16,
            },
        );
        let exact = crate::seq::copy_model(&cfg);
        let da = pa_graph::degrees::degree_sequence(n as usize, &approx);
        let de = pa_graph::degrees::degree_sequence(n as usize, &exact);
        let sa = pa_graph::degrees::degree_stats(&da).unwrap();
        assert!(sa.max > 10 * sa.mean as u64, "still has hubs");
        // Same mean by construction (same edge count).
        let se = pa_graph::degrees::degree_stats(&de).unwrap();
        assert_eq!(sa.mean, se.mean);
    }

    #[test]
    fn tighter_parameters_reduce_the_bias() {
        // KS distance to the exact network should shrink as the control
        // parameters tighten — the tuning burden the paper criticizes.
        let n = 10_000u64;
        let cfg = PaConfig::new(n, 4).with_seed(11);
        let exact = crate::seq::copy_model(&cfg);
        let de = pa_graph::degrees::degree_sequence(n as usize, &exact);
        let ks_for = |params: &YhParams| {
            let approx = generate(&cfg, 4, params);
            let da = pa_graph::degrees::degree_sequence(n as usize, &approx);
            pa_analysis_ks(&da, &de)
        };
        let loose = ks_for(&YhParams {
            sync_interval: 1024,
            sample_size: 4,
        });
        let tight = ks_for(&YhParams {
            sync_interval: 8,
            sample_size: 1024,
        });
        assert!(
            tight < loose,
            "tight params should approximate better: tight {tight} vs loose {loose}"
        );
    }

    /// Two-sample KS on degree sequences (local copy to avoid a circular
    /// dev-dependency on pa-analysis).
    fn pa_analysis_ks(a: &[u64], b: &[u64]) -> f64 {
        use std::collections::BTreeMap;
        let hist = |xs: &[u64]| {
            let mut h = BTreeMap::new();
            for &v in xs {
                *h.entry(v).or_insert(0u64) += 1;
            }
            h
        };
        let (ha, hb) = (hist(a), hist(b));
        let keys: std::collections::BTreeSet<u64> = ha.keys().chain(hb.keys()).copied().collect();
        let (mut ca, mut cb, mut best) = (0u64, 0u64, 0.0f64);
        for k in keys {
            ca += ha.get(&k).copied().unwrap_or(0);
            cb += hb.get(&k).copied().unwrap_or(0);
            let gap = (ca as f64 / a.len() as f64 - cb as f64 / b.len() as f64).abs();
            best = best.max(gap);
        }
        best
    }
}
