//! Selection- and dependency-chain analytics (paper §3.4).
//!
//! For `x = 1`, node `t`'s choice either connects directly (making `t`
//! *independent*) or copies `F_k`, making `t` *depend* on `k`. Chained
//! dependencies are what the parallel algorithm has to wait out, so the
//! paper proves they stay short: `E[L_t] = H_{t−1} ≤ ln n` for the
//! selection chain, dependency chains bounded by `O(log n)` w.h.p.
//! (Theorem 3.3), and average dependency length at most `1/p`.
//!
//! Because every draw is a pure function of `(seed, t)`, chain lengths
//! can be computed analytically — no engine run needed — with one dynamic
//! programming pass over the nodes.

use crate::seq::draw_choice;

/// Dependency-chain length `|D_t|` for every node of an `x = 1` network:
/// `out[t] = 1` if `t` is independent (direct choice, or node 1 whose
/// attachment is fixed), else `1 + out[k]`. Entries 0 and 1 are the
/// boundary nodes (`out[0] = 0` by convention: node 0 never attaches).
pub fn dependency_lengths(seed: u64, p: f64, n: u64) -> Vec<u32> {
    assert!(n >= 2, "need at least nodes 0 and 1");
    let mut len = vec![0u32; n as usize];
    len[1] = 1;
    for t in 2..n {
        let c = draw_choice(seed, p, 1, t, 0, 0);
        len[t as usize] = if c.direct { 1 } else { 1 + len[c.k as usize] };
    }
    len
}

/// Selection-chain length `|S_t|` for every node: the full uniform-pick
/// chain down to node 1 regardless of the direct/copy coin.
/// `out[1] = 1`; `out[0] = 0` by convention.
pub fn selection_lengths(seed: u64, p: f64, n: u64) -> Vec<u32> {
    assert!(n >= 2, "need at least nodes 0 and 1");
    let mut len = vec![0u32; n as usize];
    len[1] = 1;
    for t in 2..n {
        let c = draw_choice(seed, p, 1, t, 0, 0);
        len[t as usize] = 1 + len[c.k as usize];
    }
    len
}

/// Summary of a chain-length population (nodes `1 .. n`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainSummary {
    /// Mean length.
    pub mean: f64,
    /// Maximum length.
    pub max: u32,
    /// Number of chains summarized.
    pub count: u64,
}

/// Summarize chain lengths, ignoring the node-0 placeholder.
pub fn summarize(lengths: &[u32]) -> ChainSummary {
    let body = &lengths[1..];
    let count = body.len() as u64;
    let sum: u64 = body.iter().map(|&l| l as u64).sum();
    ChainSummary {
        mean: sum as f64 / count as f64,
        max: body.iter().copied().max().unwrap_or(0),
        count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math;

    #[test]
    fn dependency_never_exceeds_selection() {
        let (seed, p, n) = (9, 0.5, 5_000);
        let dep = dependency_lengths(seed, p, n);
        let sel = selection_lengths(seed, p, n);
        for t in 1..n as usize {
            assert!(dep[t] <= sel[t], "node {t}: {} > {}", dep[t], sel[t]);
            assert!(dep[t] >= 1);
        }
    }

    #[test]
    fn dependency_matches_target_resolution() {
        // Walking the chain manually must agree with the DP lengths.
        let (seed, p, n) = (4, 0.5, 2_000u64);
        let dep = dependency_lengths(seed, p, n);
        for t in [2u64, 17, 500, 1999] {
            let mut cur = t;
            let mut steps = 1u32;
            loop {
                if cur == 1 {
                    break;
                }
                let c = draw_choice(seed, p, 1, cur, 0, 0);
                if c.direct {
                    break;
                }
                steps += 1;
                cur = c.k;
            }
            assert_eq!(dep[t as usize], steps, "node {t}");
        }
    }

    #[test]
    fn average_dependency_bounded_by_inverse_p() {
        // E[L] <= 1/p for constant p (paper §3.4). Allow slack for noise.
        for p in [0.3f64, 0.5, 0.8] {
            let dep = dependency_lengths(42, p, 50_000);
            let s = summarize(&dep);
            assert!(
                s.mean <= 1.0 / p + 0.2,
                "p = {p}: mean {} exceeds 1/p = {}",
                s.mean,
                1.0 / p
            );
        }
    }

    #[test]
    fn max_dependency_is_logarithmic() {
        // Theorem 3.3: L_max = O(log n) w.h.p. — use the paper's own
        // 5·ln n yardstick.
        let n = 100_000u64;
        let dep = dependency_lengths(7, 0.5, n);
        let s = summarize(&dep);
        assert!(
            (s.max as f64) <= 5.0 * (n as f64).ln(),
            "max chain {} vs 5 ln n = {}",
            s.max,
            5.0 * (n as f64).ln()
        );
    }

    #[test]
    fn selection_mean_tracks_harmonic() {
        // E[|S_t|] = 1 + H_{t−1}; averaged over t it stays within a few
        // percent of the harmonic prediction.
        let n = 50_000u64;
        let sel = selection_lengths(3, 0.5, n);
        let s = summarize(&sel);
        let predicted: f64 =
            (1..n).map(|t| 1.0 + math::harmonic(t - 1)).sum::<f64>() / (n - 1) as f64;
        assert!(
            (s.mean / predicted - 1.0).abs() < 0.05,
            "mean {} vs predicted {predicted}",
            s.mean
        );
    }

    #[test]
    fn p_one_gives_unit_chains() {
        let dep = dependency_lengths(1, 1.0, 1000);
        assert!(dep[1..].iter().all(|&l| l == 1));
    }

    #[test]
    fn summary_counts_exclude_node_zero() {
        let s = summarize(&[0, 1, 3]);
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 3);
        assert_eq!(s.mean, 2.0);
    }
}
