//! Extension: Chung–Lu random graphs with given expected degrees
//! (paper reference \[23\], Miller & Hagberg, WAW 2011).
//!
//! Each candidate edge `(i, j)` appears independently with probability
//! `min(1, w_i·w_j / S)` where `S = Σ w`. The Miller–Hagberg algorithm
//! samples a whole row in expected time proportional to its output by
//! combining geometric skipping with probability *rejection thinning*:
//! with weights sorted in non-increasing order the per-edge probability
//! is non-increasing along the row, so one can skip with the current
//! probability bound and accept with the true-to-bound ratio.
//!
//! Like the Erdős–Rényi extension, rows draw from per-row counter
//! streams, so row partitioning parallelizes with zero communication and
//! the output is independent of the rank count.

use crate::partition::{Partition, Ucp};
use crate::Node;
use pa_graph::EdgeList;
use pa_mpsim::World;
use pa_rng::{CounterRng, Rng64};

/// Configuration of a Chung–Lu network.
#[derive(Debug, Clone, PartialEq)]
pub struct ClConfig {
    /// Expected degree of every node, sorted in non-increasing order.
    weights: Vec<f64>,
    /// Σ w, cached.
    total: f64,
    /// Whether any weight had to be capped at √S.
    capped: bool,
    /// RNG seed.
    pub seed: u64,
}

impl ClConfig {
    /// Build from expected degrees. The weights are sorted internally
    /// (non-increasing), relabelling nodes by decreasing weight —
    /// standard for this model, where labels carry no meaning — and
    /// **capped** at `√S` (iterated to a fixpoint) so every pair
    /// probability `w_i·w_j/S` is a true probability. Capping slightly
    /// under-honors the expected degree of extreme hubs; uncapped
    /// sequences are honored exactly in expectation.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains non-finite or negative
    /// values, or sums to zero.
    pub fn new(mut weights: Vec<f64>, seed: u64) -> Self {
        assert!(!weights.is_empty(), "need at least one node");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        weights.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap());
        let mut total: f64 = weights.iter().sum();
        assert!(total > 0.0, "total weight must be positive");
        // Cap at sqrt(S) until stable (the "erased" feasibility fix);
        // afterwards every w_i·w_j/S <= 1 by construction.
        let mut capped = false;
        loop {
            let cap = total.sqrt();
            if weights[0] <= cap {
                break;
            }
            capped = true;
            for w in weights.iter_mut() {
                if *w > cap {
                    *w = cap;
                } else {
                    break; // sorted: the rest are already below the cap
                }
            }
            total = weights.iter().sum();
        }
        Self {
            weights,
            total,
            capped,
            seed,
        }
    }

    /// True when no weight had to be capped, i.e. every pair probability
    /// was below one as given — the regime in which expected degrees are
    /// honored exactly.
    pub fn is_degree_faithful(&self) -> bool {
        !self.capped
    }

    /// Number of nodes.
    pub fn n(&self) -> u64 {
        self.weights.len() as u64
    }

    /// The (sorted) expected-degree sequence.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Expected number of edges `½ Σ_{i≠j} w_i w_j / S ≈ S/2` (exact up
    /// to the excluded diagonal).
    pub fn expected_edges(&self) -> f64 {
        let sq: f64 = self.weights.iter().map(|w| w * w).sum();
        (self.total * self.total - sq) / (2.0 * self.total)
    }
}

/// Power-law expected-degree sequence `w_i ∝ (i+1)^(−1/(γ−1))`, scaled
/// so the mean weight is `mean_deg` — the standard way to drive Chung–Lu
/// towards a scale-free target.
///
/// # Panics
///
/// Panics unless `gamma > 2` and `n >= 1`.
pub fn power_law_weights(n: u64, gamma: f64, mean_deg: f64) -> Vec<f64> {
    assert!(gamma > 2.0, "need gamma > 2 for a finite mean");
    assert!(n >= 1, "need at least one node");
    let exp = -1.0 / (gamma - 1.0);
    let raw: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(exp)).collect();
    let mean: f64 = raw.iter().sum::<f64>() / n as f64;
    raw.into_iter().map(|w| w * mean_deg / mean).collect()
}

/// Sample row `i` (edges `(i, j)` for `j > i`): Miller–Hagberg skipping.
fn sample_row(cfg: &ClConfig, i: usize, edges: &mut EdgeList) {
    let n = cfg.weights.len();
    let wi = cfg.weights[i];
    if wi == 0.0 || i + 1 >= n {
        return;
    }
    let mut rng = CounterRng::for_event(cfg.seed, i as u64, 0, 0);
    let mut j = i + 1;
    // Current probability bound: rows are sorted, so p_ij ≤ p at all
    // later j once set from the current position.
    let mut p = (wi * cfg.weights[j] / cfg.total).min(1.0);
    while j < n && p > 0.0 {
        if p < 1.0 {
            // Geometric skip with the bound p.
            let r = rng.next_f64();
            let skip = ((1.0 - r).ln() / (1.0 - p).ln()).floor() as usize;
            j += skip;
            if j >= n {
                break;
            }
        }
        // Accept with the true probability relative to the bound.
        let q = (wi * cfg.weights[j] / cfg.total).min(1.0);
        if rng.next_f64() < q / p {
            edges.push(i as Node, j as Node);
        }
        p = q;
        j += 1;
    }
}

/// Generate sequentially.
pub fn generate_seq(cfg: &ClConfig) -> EdgeList {
    let mut edges = EdgeList::with_capacity(cfg.expected_edges() as usize + 16);
    for i in 0..cfg.weights.len() {
        sample_row(cfg, i, &mut edges);
    }
    edges
}

/// Generate on `nranks` ranks (row-partitioned, zero communication);
/// equal to [`generate_seq`] up to edge order.
///
/// # Panics
///
/// Panics if `nranks == 0`.
pub fn generate_par(cfg: &ClConfig, nranks: usize) -> EdgeList {
    let part = Ucp::new(cfg.n(), nranks);
    let world = World::new(nranks);
    let parts: Vec<EdgeList> = world.run(|comm: pa_mpsim::Comm<()>| {
        let mut edges = EdgeList::new();
        for u in part.nodes_of(comm.rank()) {
            sample_row(cfg, u as usize, &mut edges);
        }
        edges
    });
    EdgeList::concat(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_graph::degrees;

    #[test]
    fn parallel_equals_sequential() {
        let cfg = ClConfig::new(power_law_weights(2_000, 2.5, 4.0), 3);
        assert!(!cfg.is_degree_faithful(), "heavy-tailed weights get capped");
        let reference = generate_seq(&cfg).canonicalized();
        for nranks in [1usize, 3, 8] {
            assert_eq!(generate_par(&cfg, nranks).canonicalized(), reference);
        }
    }

    #[test]
    fn graph_is_simple() {
        let cfg = ClConfig::new(power_law_weights(1_000, 2.8, 5.0), 1);
        let edges = generate_seq(&cfg);
        assert!(pa_graph::validate::check_simple(1_000, &edges).is_empty());
    }

    #[test]
    fn edge_count_matches_expectation() {
        let cfg = ClConfig::new(power_law_weights(5_000, 3.0, 3.0), 7);
        assert!(cfg.is_degree_faithful());
        let m = generate_seq(&cfg).len() as f64;
        let expect = cfg.expected_edges();
        assert!(
            (m - expect).abs() < 6.0 * expect.sqrt(),
            "m = {m}, expected {expect}"
        );
    }

    #[test]
    fn expected_degrees_are_honored() {
        // Average degree of the heaviest and lightest deciles should
        // track their weights.
        let n = 4_000u64;
        let cfg = ClConfig::new(power_law_weights(n, 3.0, 3.0), 5);
        assert!(cfg.is_degree_faithful());
        let edges = generate_seq(&cfg);
        let deg = degrees::degree_sequence(n as usize, &edges);
        let decile = (n / 10) as usize;
        let mean = |r: std::ops::Range<usize>| {
            let len = r.len() as f64;
            let (dsum, wsum) = r.fold((0.0, 0.0), |(d, w), i| {
                (d + deg[i] as f64, w + cfg.weights()[i])
            });
            (dsum / len, wsum / len)
        };
        let (d_top, w_top) = mean(0..decile);
        let (d_bot, w_bot) = mean((n as usize - decile)..n as usize);
        assert!(
            (d_top / w_top - 1.0).abs() < 0.15,
            "top decile: degree {d_top:.2} vs weight {w_top:.2}"
        );
        assert!(
            (d_bot / w_bot - 1.0).abs() < 0.25,
            "bottom decile: degree {d_bot:.2} vs weight {w_bot:.2}"
        );
    }

    #[test]
    fn uniform_weights_reduce_to_er() {
        // All weights equal w: p = w²/(nw) = w/n for every pair.
        let n = 2_000usize;
        let w = 5.0;
        let cfg = ClConfig::new(vec![w; n], 11);
        let m = generate_seq(&cfg).len() as f64;
        let p = w / n as f64;
        let expect = p * (n * (n - 1) / 2) as f64;
        assert!(
            (m - expect).abs() < 6.0 * expect.sqrt(),
            "m = {m} vs {expect}"
        );
    }

    #[test]
    fn power_law_weights_have_requested_mean() {
        let w = power_law_weights(10_000, 2.5, 7.0);
        let mean: f64 = w.iter().sum::<f64>() / w.len() as f64;
        assert!((mean - 7.0).abs() < 1e-9);
        // And they decay.
        assert!(w[0] > w[9_999]);
    }

    #[test]
    fn oversized_weights_are_capped_to_feasibility() {
        let cfg = ClConfig::new(vec![100.0, 1.0, 1.0], 0);
        assert!(!cfg.is_degree_faithful(), "capping must be reported");
        // Feasibility restored: every pair probability is at most one.
        assert!(cfg.weights()[0] * cfg.weights()[0] <= cfg.weights().iter().sum::<f64>() + 1e-9);
        // Untouched weights survive.
        assert_eq!(cfg.weights()[1], 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_weight_panics() {
        let _ = ClConfig::new(vec![f64::NAN, 1.0], 0);
    }
}
