//! Model and engine configuration.

/// Parameters of a preferential-attachment network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaConfig {
    /// Number of nodes `n`; nodes are labelled `0 .. n`.
    pub n: u64,
    /// Edges contributed by each new node (`x` in the paper). The first
    /// `x` nodes form the seed clique.
    pub x: u64,
    /// Copy-model direct-connection probability `p`. `p = ½` reproduces
    /// the Barabási–Albert degree-proportional attachment exactly; other
    /// values shift the power-law exponent (Kumar et al.).
    pub p: f64,
    /// RNG seed. All randomness is a pure function of `(seed, node, edge,
    /// attempt)`, so runs are reproducible and — for `x = 1` — identical
    /// across any processor count or partitioning scheme.
    pub seed: u64,
}

impl PaConfig {
    /// Configuration with `p = ½` and seed 0.
    ///
    /// # Panics
    ///
    /// Panics unless `n > x >= 1` (the model needs a seed clique of `x`
    /// nodes plus at least one attaching node).
    pub fn new(n: u64, x: u64) -> Self {
        let cfg = Self {
            n,
            x,
            p: 0.5,
            seed: 0,
        };
        cfg.validate();
        cfg
    }

    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the copy-model probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    pub fn with_p(mut self, p: f64) -> Self {
        self.p = p;
        self.validate();
        self
    }

    /// Check internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters (degenerate `n`/`x`, `p` outside
    /// `[0, 1]` or NaN).
    pub fn validate(&self) {
        assert!(self.x >= 1, "x must be at least 1");
        assert!(
            self.n > self.x,
            "n = {} must exceed x = {} (seed clique plus one attaching node)",
            self.n,
            self.x
        );
        assert!(
            self.p >= 0.0 && self.p <= 1.0,
            "p = {} must lie in [0, 1]",
            self.p
        );
    }

    /// Total number of edges the model produces:
    /// `x(x−1)/2` clique edges + `x` edges for every node `t >= x`.
    pub fn expected_edges(&self) -> u64 {
        self.x * (self.x - 1) / 2 + (self.n - self.x) * self.x
    }
}

/// Default hub-cache size in *nodes* when [`GenOptions::hub_cache_nodes`]
/// is `None` (the cache holds `min(hub_cache_nodes, n) · x` slots).
pub const DEFAULT_HUB_CACHE_NODES: u64 = 4096;

/// Default chain-memo capacity in *nodes* for the communication-free
/// engine (engine3): roughly how many recomputed rows each rank keeps
/// to deduplicate shared chain suffixes (the engine clamps it to `n`
/// and rounds up to a power of two — direct-mapped slots). The memo is
/// a pure-function cache, so its size never affects the generated
/// network — only the amount of redundant recomputation, which grows
/// steeply once hot low-label rows stop fitting; hence a generous
/// default (`x = 4` at the full default size costs ~40 MB per rank).
pub const DEFAULT_CHAIN_MEMO_NODES: u64 = 1 << 20;

/// Tuning knobs for the parallel engines.
///
/// (`Eq` is not derived: [`GenOptions::fault_plan`] carries the fault
/// schedule's `f64` probabilities. `Copy` is not derived:
/// [`GenOptions::store`] carries a directory path.)
#[derive(Debug, Clone, PartialEq)]
pub struct GenOptions {
    /// Message-buffer capacity per destination (the paper's message
    /// aggregation, §3.5). 1 disables buffering: every logical message is
    /// its own packet.
    pub buffer_capacity: usize,
    /// How many local nodes to generate between servicing rounds of the
    /// incoming-message queue. Small values favour latency (shorter
    /// dependency waits), large values favour throughput.
    pub service_interval: usize,
    /// Number of low-label "hub" nodes whose committed `F` slots every
    /// rank replicates (general engine only). Lemma 3.4 concentrates
    /// request traffic on exactly these nodes, so a small cache absorbs a
    /// large share of remote lookups without changing the output. `None`
    /// uses [`DEFAULT_HUB_CACHE_NODES`]; `Some(0)` disables the cache.
    pub hub_cache_nodes: Option<u64>,
    /// How long the completion loop blocks on an empty message queue
    /// before re-checking the termination predicate.
    pub idle_wait: std::time::Duration,
    /// Flush outgoing buffers after this many consecutive *idle*
    /// completion-loop iterations (iterations that saw traffic always
    /// flush). Larger values spare quiescent ranks the per-iteration
    /// flush scan.
    pub idle_flush_interval: usize,
    /// Seeded fault-injection schedule. When set, every rank's transport
    /// is wrapped in a [`pa_mpsim::FaultTransport`] that delays,
    /// reorders, duplicates and drops-with-recovery packets according to
    /// the plan — the generated edge set must not change (the chaos
    /// suite's invariant). `None` runs on the clean transport.
    pub fault_plan: Option<pa_mpsim::FaultPlan>,
    /// Stall watchdog: if the global outstanding-work counter stops
    /// moving for this long while work remains, every rank dumps its
    /// progress state (comm stats, outstanding count, waiter depths) and
    /// panics instead of hanging. `None` disables the watchdog (the
    /// default — clean transports cannot stall).
    pub stall_timeout: Option<std::time::Duration>,
    /// Checkpoint epoch length in *node labels*: the driver splits the
    /// label range `[0, n)` into epochs of this many labels and runs each
    /// to global quiescence (barrier-aligned), snapshotting engine state
    /// at every boundary when a checkpoint store is attached. Because
    /// every copy-model dependency points to a **lower** label, a
    /// finished epoch leaves no waiter state and no tracked traffic in
    /// flight — exactly the consistent cut a checkpoint needs. `None`
    /// runs the whole range as a single epoch (no extra barriers).
    pub checkpoint_interval: Option<u64>,
    /// Chain-memo capacity in *nodes* for engine3's local recomputation:
    /// each rank memoizes this many recently resolved remote rows
    /// (FIFO-evicted) so chains sharing a suffix are walked once, not
    /// once per referencing edge. `0` disables the memo. Because every
    /// memoized row is a pure function of the seed, the memo size cannot
    /// change the generated network (pinned by the determinism suite).
    pub chain_memo_nodes: u64,
    /// Which attachment model to generate (see [`crate::ModelKind`]).
    /// The default is the paper's copy model; `Nlpa { alpha }` re-weights
    /// the direct-vs-copy coin to `p^alpha` (nonlinear preferential
    /// attachment surrogate), with `alpha = 1` bit-identical to `Pa`.
    pub model: crate::ModelKind,
    /// Where each rank keeps its node tables (committed `F` slots,
    /// attempt counters, node cursors): RAM-resident, or spilled to
    /// fixed-size page files under a byte budget so `n` is bounded by
    /// disk instead of memory (see [`crate::store`]). Because every
    /// table read returns the identical committed values either way,
    /// the store backend can never change the generated network — only
    /// its memory footprint.
    pub store: crate::store::StoreSpec,
}

impl Default for GenOptions {
    fn default() -> Self {
        Self {
            buffer_capacity: 4096,
            service_interval: 4096,
            hub_cache_nodes: None,
            idle_wait: std::time::Duration::from_micros(200),
            idle_flush_interval: 16,
            fault_plan: None,
            stall_timeout: None,
            checkpoint_interval: None,
            chain_memo_nodes: DEFAULT_CHAIN_MEMO_NODES,
            model: crate::ModelKind::Pa,
            store: crate::store::StoreSpec::Resident,
        }
    }
}

impl GenOptions {
    /// Replace the hub-cache size (in nodes); `0` disables the cache.
    #[must_use]
    pub fn with_hub_cache(mut self, nodes: u64) -> Self {
        self.hub_cache_nodes = Some(nodes);
        self
    }

    /// Disable the hub cache, restoring the paper's pure request/resolved
    /// protocol (useful when measuring the uncached message-count laws).
    #[must_use]
    pub fn without_hub_cache(self) -> Self {
        self.with_hub_cache(0)
    }

    /// Run every rank's traffic through a fault-injecting transport
    /// driven by `plan` (see [`pa_mpsim::FaultTransport`]).
    #[must_use]
    pub fn with_fault_plan(mut self, plan: pa_mpsim::FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Arm the stall watchdog: panic with a progress report if no global
    /// progress happens for `timeout` while work remains.
    #[must_use]
    pub fn with_stall_timeout(mut self, timeout: std::time::Duration) -> Self {
        self.stall_timeout = Some(timeout);
        self
    }

    /// Split the run into checkpoint epochs of `interval` node labels
    /// (see [`GenOptions::checkpoint_interval`]).
    #[must_use]
    pub fn with_checkpoint_interval(mut self, interval: u64) -> Self {
        self.checkpoint_interval = Some(interval);
        self
    }

    /// Replace the engine3 chain-memo capacity (in nodes); `0` disables
    /// the memo (see [`GenOptions::chain_memo_nodes`]).
    #[must_use]
    pub fn with_chain_memo(mut self, nodes: u64) -> Self {
        self.chain_memo_nodes = nodes;
        self
    }

    /// Replace the attachment model (see [`crate::ModelKind`]).
    #[must_use]
    pub fn with_model(mut self, model: crate::ModelKind) -> Self {
        self.model = model;
        self
    }

    /// Select nonlinear preferential attachment with exponent `alpha`
    /// (shorthand for `with_model(ModelKind::Nlpa { alpha })`).
    #[must_use]
    pub fn with_alpha(self, alpha: f64) -> Self {
        self.with_model(crate::ModelKind::Nlpa { alpha })
    }

    /// Replace the node-table store backend (see [`GenOptions::store`]
    /// and [`crate::store::StoreSpec`]).
    #[must_use]
    pub fn with_store(mut self, store: crate::store::StoreSpec) -> Self {
        self.store = store;
        self
    }

    /// Page the node tables to `dir` under `budget_bytes` of cache per
    /// rank (shorthand for `with_store(StoreSpec::paged(..))`).
    #[must_use]
    pub fn with_memory_budget(self, dir: impl Into<std::path::PathBuf>, budget_bytes: u64) -> Self {
        self.with_store(crate::store::StoreSpec::paged(dir, budget_bytes))
    }

    /// Effective hub-cache size in nodes for an `n`-node run.
    pub fn hub_nodes(&self, n: u64) -> u64 {
        self.hub_cache_nodes
            .unwrap_or(DEFAULT_HUB_CACHE_NODES)
            .min(n)
    }

    /// Validate option values.
    ///
    /// # Panics
    ///
    /// Panics if any knob that must be positive is zero, or if the
    /// model parameters are invalid (negative, NaN or non-finite
    /// `alpha`; see [`crate::ModelKind::check`]).
    pub fn validate(&self) {
        assert!(
            self.buffer_capacity > 0,
            "buffer_capacity must be positive (1 disables aggregation; \
             0 would make every flush a no-op and the run could not send)"
        );
        assert!(
            self.service_interval > 0,
            "service_interval must be positive"
        );
        assert!(
            !self.idle_wait.is_zero(),
            "idle_wait must be positive (a zero wait busy-spins)"
        );
        assert!(
            self.idle_flush_interval > 0,
            "idle_flush_interval must be positive"
        );
        if let Some(plan) = &self.fault_plan {
            plan.validate();
        }
        if let Some(timeout) = self.stall_timeout {
            assert!(
                !timeout.is_zero(),
                "stall_timeout must be positive (a zero timeout fires immediately)"
            );
        }
        if let Some(interval) = self.checkpoint_interval {
            assert!(
                interval > 0,
                "checkpoint_interval must be positive (use None for a single epoch)"
            );
        }
        self.store.validate();
        self.model.validate();
    }

    /// Validate option values against a concrete run of `n` nodes.
    ///
    /// Everything [`GenOptions::validate`] checks, plus the knobs whose
    /// legal range depends on the network size. The generate entry points
    /// call this so misconfigurations fail before any rank spawns.
    ///
    /// # Panics
    ///
    /// Panics if a positive knob is zero, or if an *explicit*
    /// `hub_cache_nodes` exceeds `n` (there are only `n` nodes to cache;
    /// asking for more is a unit mix-up — e.g. passing a slot count where
    /// a node count is expected. The `None` default is capped at `n`
    /// silently instead).
    pub fn validate_for(&self, n: u64) {
        self.validate();
        if let Some(hub) = self.hub_cache_nodes {
            assert!(
                hub <= n,
                "hub_cache_nodes = {hub} exceeds the network size n = {n}; \
                 the hub cache replicates low-label *nodes*, so at most n make sense \
                 (use None to auto-size, or Some(0) to disable)"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = PaConfig::new(100, 3);
        assert_eq!(cfg.p, 0.5);
        assert_eq!(cfg.seed, 0);
        cfg.validate();
        GenOptions::default().validate();
    }

    #[test]
    fn builder_chains() {
        let cfg = PaConfig::new(10, 2).with_seed(9).with_p(0.25);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.p, 0.25);
    }

    #[test]
    fn expected_edges_matches_model() {
        assert_eq!(PaConfig::new(10, 1).expected_edges(), 9);
        assert_eq!(PaConfig::new(10, 3).expected_edges(), 3 + 21);
        assert_eq!(
            PaConfig::new(10, 3).expected_edges() as usize,
            pa_graph::validate::expected_pa_edges(10, 3)
        );
    }

    #[test]
    #[should_panic(expected = "must exceed x")]
    fn n_not_greater_than_x_panics() {
        let _ = PaConfig::new(3, 3);
    }

    #[test]
    #[should_panic(expected = "x must be at least 1")]
    fn zero_x_panics() {
        let _ = PaConfig::new(3, 0);
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn bad_p_panics() {
        let _ = PaConfig::new(10, 1).with_p(1.5);
    }

    #[test]
    fn extreme_p_values_allowed() {
        let _ = PaConfig::new(10, 1).with_p(0.0);
        let _ = PaConfig::new(10, 1).with_p(1.0);
    }

    #[test]
    fn hub_cache_size_resolution() {
        let opts = GenOptions::default();
        assert_eq!(opts.hub_nodes(1_000_000), DEFAULT_HUB_CACHE_NODES);
        assert_eq!(opts.hub_nodes(100), 100, "capped at n");
        assert_eq!(opts.clone().with_hub_cache(64).hub_nodes(1_000_000), 64);
        assert_eq!(opts.without_hub_cache().hub_nodes(1_000_000), 0);
    }

    #[test]
    fn fault_plan_and_stall_timeout_builders() {
        let plan = pa_mpsim::FaultPlan::light(7);
        let opts = GenOptions::default()
            .with_fault_plan(plan)
            .with_stall_timeout(std::time::Duration::from_secs(5));
        assert_eq!(opts.fault_plan, Some(plan));
        assert_eq!(opts.stall_timeout, Some(std::time::Duration::from_secs(5)));
        opts.validate();
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn invalid_fault_plan_rejected_by_validate() {
        let plan = pa_mpsim::FaultPlan {
            p_drop: 2.0,
            ..pa_mpsim::FaultPlan::none(0)
        };
        GenOptions {
            fault_plan: Some(plan),
            ..GenOptions::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "stall_timeout must be positive")]
    fn zero_stall_timeout_panics() {
        GenOptions::default()
            .with_stall_timeout(std::time::Duration::ZERO)
            .validate();
    }

    #[test]
    fn chain_memo_builder() {
        assert_eq!(
            GenOptions::default().chain_memo_nodes,
            DEFAULT_CHAIN_MEMO_NODES
        );
        let opts = GenOptions::default().with_chain_memo(0);
        assert_eq!(opts.chain_memo_nodes, 0, "0 disables the memo");
        opts.validate();
        assert_eq!(GenOptions::default().with_chain_memo(7).chain_memo_nodes, 7);
    }

    #[test]
    fn checkpoint_interval_builder() {
        let opts = GenOptions::default().with_checkpoint_interval(1_000);
        assert_eq!(opts.checkpoint_interval, Some(1_000));
        opts.validate();
        assert_eq!(GenOptions::default().checkpoint_interval, None);
    }

    #[test]
    #[should_panic(expected = "checkpoint_interval must be positive")]
    fn zero_checkpoint_interval_panics() {
        GenOptions::default().with_checkpoint_interval(0).validate();
    }

    #[test]
    #[should_panic(expected = "idle_flush_interval")]
    fn zero_idle_flush_interval_panics() {
        GenOptions {
            idle_flush_interval: 0,
            ..GenOptions::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "buffer_capacity must be positive")]
    fn zero_buffer_capacity_panics() {
        GenOptions {
            buffer_capacity: 0,
            ..GenOptions::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "exceeds the network size")]
    fn hub_cache_larger_than_n_panics() {
        GenOptions::default().with_hub_cache(101).validate_for(100);
    }

    #[test]
    fn validate_for_accepts_boundary_and_default_hub_sizes() {
        // Explicit cache of exactly n nodes is legal ...
        GenOptions::default().with_hub_cache(100).validate_for(100);
        // ... as are the disabled cache and the auto-sized default, even
        // when the default exceeds n (it caps silently).
        GenOptions::default().without_hub_cache().validate_for(100);
        GenOptions::default().validate_for(DEFAULT_HUB_CACHE_NODES / 2);
    }

    #[test]
    #[should_panic(expected = "buffer_capacity must be positive")]
    fn validate_for_also_checks_size_independent_knobs() {
        GenOptions {
            buffer_capacity: 0,
            ..GenOptions::default()
        }
        .validate_for(100);
    }

    #[test]
    fn model_builders() {
        assert_eq!(GenOptions::default().model, crate::ModelKind::Pa);
        let opts = GenOptions::default().with_alpha(1.5);
        assert_eq!(opts.model, crate::ModelKind::Nlpa { alpha: 1.5 });
        opts.validate();
        let opts = GenOptions::default().with_model(crate::ModelKind::Pa);
        assert_eq!(opts.model, crate::ModelKind::Pa);
        GenOptions::default().with_alpha(0.0).validate_for(100);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_alpha_rejected_by_validate() {
        GenOptions::default().with_alpha(-0.5).validate();
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_alpha_rejected_by_validate_for() {
        GenOptions::default().with_alpha(f64::NAN).validate_for(100);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_alpha_rejected_by_validate() {
        GenOptions::default()
            .with_alpha(f64::INFINITY)
            .validate_for(100);
    }
}
