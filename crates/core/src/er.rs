//! Extension: parallel Erdős–Rényi G(n, p) generation.
//!
//! The paper's conclusion calls for "scalable parallel algorithms for
//! other classes of random networks"; Erdős–Rényi is the canonical first
//! target, and — unlike preferential attachment — its edges are mutually
//! independent, so the Batagelj–Brandes geometric-skip sampler
//! parallelizes embarrassingly: partition the rows (each node `u` owns
//! its candidate edges `(u, v)` with `v < u`) and let each rank sample
//! its rows with no communication at all. Rows draw from per-row counter
//! streams, so the generated graph is independent of the rank count.

use crate::partition::{Partition, Ucp};
use crate::Node;
use pa_graph::EdgeList;
use pa_mpsim::World;
use pa_rng::{CounterRng, Rng64};

/// Configuration of a G(n, p) network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErConfig {
    /// Number of nodes.
    pub n: u64,
    /// Independent edge probability.
    pub p: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ErConfig {
    /// Create a configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `n >= 1` and `0 <= p <= 1`.
    pub fn new(n: u64, p: f64) -> Self {
        assert!(n >= 1, "need at least one node");
        assert!((0.0..=1.0).contains(&p), "p must lie in [0, 1]");
        Self { n, p, seed: 0 }
    }

    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Expected number of edges, `p · n(n−1)/2`.
    pub fn expected_edges(&self) -> f64 {
        self.p * (self.n as f64) * (self.n as f64 - 1.0) / 2.0
    }
}

/// Sample row `u` (edges `(u, v)` with `v < u`) with geometric skipping:
/// instead of `u` Bernoulli trials, jump straight to the next success
/// with `skip = ⌊ln(1−U) / ln(1−p)⌋` (Batagelj & Brandes 2005).
fn sample_row(cfg: &ErConfig, u: Node, edges: &mut EdgeList) {
    if cfg.p <= 0.0 {
        return;
    }
    if cfg.p >= 1.0 {
        for v in 0..u {
            edges.push(u, v);
        }
        return;
    }
    let mut rng = CounterRng::for_event(cfg.seed, u, 0, 0);
    let log1p = (1.0 - cfg.p).ln();
    let mut v: u64 = 0;
    loop {
        let r = rng.next_f64();
        // ln(1−r) is finite: next_f64 < 1.
        let skip = ((1.0 - r).ln() / log1p).floor() as u64;
        v = v.saturating_add(skip);
        if v >= u {
            break;
        }
        edges.push(u, v);
        v += 1;
    }
}

/// Generate G(n, p) sequentially.
pub fn generate_seq(cfg: &ErConfig) -> EdgeList {
    let mut edges = EdgeList::with_capacity(cfg.expected_edges() as usize + 16);
    for u in 0..cfg.n {
        sample_row(cfg, u, &mut edges);
    }
    edges
}

/// Generate G(n, p) on `nranks` ranks (row-partitioned, zero
/// communication). The concatenated output equals [`generate_seq`] up to
/// edge order.
///
/// # Panics
///
/// Panics if `nranks == 0`.
pub fn generate_par(cfg: &ErConfig, nranks: usize) -> EdgeList {
    let part = Ucp::new(cfg.n, nranks);
    let world = World::new(nranks);
    let parts: Vec<EdgeList> = world.run(|comm: pa_mpsim::Comm<()>| {
        let mut edges = EdgeList::new();
        for u in part.nodes_of(comm.rank()) {
            sample_row(cfg, u, &mut edges);
        }
        edges
    });
    EdgeList::concat(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_equals_sequential_for_any_rank_count() {
        let cfg = ErConfig::new(2_000, 0.01).with_seed(5);
        let reference = generate_seq(&cfg).canonicalized();
        for nranks in [1usize, 2, 5, 8] {
            assert_eq!(
                generate_par(&cfg, nranks).canonicalized(),
                reference,
                "P = {nranks}"
            );
        }
    }

    #[test]
    fn edge_count_matches_expectation() {
        let cfg = ErConfig::new(3_000, 0.02).with_seed(1);
        let m = generate_seq(&cfg).len() as f64;
        let expect = cfg.expected_edges();
        let sigma = (expect * (1.0 - cfg.p)).sqrt();
        assert!(
            (m - expect).abs() < 6.0 * sigma,
            "m = {m}, expected {expect} ± {sigma}"
        );
    }

    #[test]
    fn graph_is_simple() {
        let cfg = ErConfig::new(1_000, 0.05).with_seed(9);
        let edges = generate_seq(&cfg);
        assert!(pa_graph::validate::check_simple(1_000, &edges).is_empty());
    }

    #[test]
    fn p_zero_and_one_extremes() {
        let empty = generate_seq(&ErConfig::new(100, 0.0));
        assert!(empty.is_empty());
        let full = generate_seq(&ErConfig::new(50, 1.0));
        assert_eq!(full.len(), 50 * 49 / 2);
    }

    #[test]
    fn degree_distribution_is_binomial_not_heavy_tailed() {
        // Contrast with PA: ER max degree stays near the mean.
        let cfg = ErConfig::new(5_000, 0.004).with_seed(3);
        let edges = generate_seq(&cfg);
        let deg = pa_graph::degrees::degree_sequence(5_000, &edges);
        let stats = pa_graph::degrees::degree_stats(&deg).unwrap();
        assert!(
            (stats.max as f64) < stats.mean * 4.0 + 20.0,
            "ER should have no hubs: max {} mean {}",
            stats.max,
            stats.mean
        );
    }
}
