//! Generation-job descriptors for the serving layer.
//!
//! `pagen serve` turns the batch generator into a service: a client
//! submits the full parameter tuple of a run and streams the resulting
//! edge file back. This module owns the *meaning* of that tuple on the
//! engine side — which [`PaConfig`]/[`GenOptions`]/[`Scheme`]/engine a
//! raw wire descriptor selects — while `pa-net::serve` owns its wire
//! encoding. The two agree on one **canonical byte encoding** (see
//! [`JobDescriptor::canonical_bytes`]) whose FNV-1a digest is the
//! **job id**: jobs with identical parameters hash to the same id on
//! every host and every build, which is what makes results cacheable,
//! coalescable (concurrent submits of one tuple run once) and safely
//! resumable.
//!
//! **Resume tokens.** A dropped stream needs no server-side session
//! state to resume: the token is just `(job id, durable byte offset)`,
//! the same byte-watermark coordinates
//! [`pa_graph::io::EdgeWriter::checkpoint`] records for crash
//! recovery. A client re-submits the descriptor with the offset it has
//! and receives exactly the missing suffix — of the server's *cached
//! artifact*, which is immutable once generated. The generated edge
//! **set** is a pure function of the descriptor for every engine;
//! the byte *order* additionally is for engine 3 (label-order local
//! recomputation), while engines 1 and 2 emit in resolution order,
//! which varies run to run. Serving stays consistent either way
//! because resumes always continue one immutable artifact, and the
//! whole-artifact checksum turns any cross-run divergence (e.g. a
//! server restart that re-ran an engine-2 job) into a named error
//! instead of a silently stitched hybrid.
//!
//! Note that `ranks` *is* part of the tuple: the generated edge **set**
//! is independent of the rank count, but the on-disk byte order
//! interleaves per-rank partitions in rank order, so byte-identical
//! streams require the same `ranks` value.

use crate::partition::Scheme;
use crate::{GenOptions, ModelKind, PaConfig};
use pa_graph::io::{EdgeFormat, Fnv1a};

/// Length of the canonical job encoding: five `u64` fields, one `u32`,
/// four id bytes.
pub const JOB_CANONICAL_LEN: usize = 48;

/// The raw (wire-shaped) form of a job: plain numbers, no invariants.
///
/// This is the shape descriptors cross process boundaries in;
/// [`JobDescriptor::from_raw`] is the *only* way back to typed form and
/// rejects every invalid combination with a named error (never a
/// panic — these fields arrive from the network).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawJob {
    /// Number of nodes `n`.
    pub n: u64,
    /// Edges per new node `x`.
    pub x: u64,
    /// Copy-model probability `p` as IEEE-754 bits (exact identity).
    pub p_bits: u64,
    /// RNG seed.
    pub seed: u64,
    /// Model parameter as IEEE-754 bits (0 for the parameter-free `pa`).
    pub alpha_bits: u64,
    /// Rank count the edge stream is laid out for.
    pub ranks: u32,
    /// [`Scheme::id`] discriminant.
    pub scheme_id: u8,
    /// Engine selector (1, 2 or 3).
    pub engine_id: u8,
    /// [`ModelKind::id`] discriminant.
    pub model_id: u8,
    /// [`EdgeFormat::id`] discriminant.
    pub format_id: u8,
}

/// A validated generation job: everything that determines the output
/// bytes of a run, and nothing that does not (tuning knobs like buffer
/// sizes change timing, never bytes, so they stay server-side).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobDescriptor {
    /// Model parameters (`n`, `x`, `p`, seed).
    pub cfg: PaConfig,
    /// Partitioning scheme.
    pub scheme: Scheme,
    /// Engine (1, 2 or 3).
    pub engine: u8,
    /// Attachment model.
    pub model: ModelKind,
    /// Rank count the stream's per-rank sections are concatenated for.
    pub ranks: u32,
    /// On-disk edge encoding.
    pub format: EdgeFormat,
}

impl JobDescriptor {
    /// Validate every cross-field rule, with named errors.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated rule: the
    /// mirrors of [`PaConfig::validate`]'s panics, engine range and the
    /// engine-1 `x = 1` constraint, model parameter checks, and a
    /// positive rank count.
    pub fn validate(&self) -> Result<(), String> {
        let cfg = &self.cfg;
        if cfg.x == 0 {
            return Err("x must be at least 1".into());
        }
        if cfg.n <= cfg.x {
            return Err(format!(
                "n = {} must exceed x = {} (seed clique plus one attaching node)",
                cfg.n, cfg.x
            ));
        }
        if !cfg.p.is_finite() || !(0.0..=1.0).contains(&cfg.p) {
            return Err(format!("p = {} must lie in [0, 1]", cfg.p));
        }
        if !(1..=3).contains(&self.engine) {
            return Err(format!("engine must be 1, 2 or 3, got {}", self.engine));
        }
        if self.engine == 1 && cfg.x != 1 {
            return Err(format!(
                "engine 1 (Algorithm 3.1) requires x = 1, got x = {}",
                cfg.x
            ));
        }
        if self.ranks == 0 {
            return Err("ranks must be at least 1".into());
        }
        self.model.check()?;
        Ok(())
    }

    /// The engine options this job runs under: `base` (the server's
    /// tuning knobs) with the job's model applied. Only the model
    /// reaches the draw streams; every other knob is byte-neutral.
    #[must_use]
    pub fn gen_options(&self, base: GenOptions) -> GenOptions {
        base.with_model(self.model)
    }

    /// The canonical encoding job identity is hashed over: every field
    /// little-endian, fixed order, fixed width. `pa-net`'s wire
    /// `JobSpec` encodes the identical bytes, so client, server and
    /// engine all derive the same [`JobDescriptor::job_id`] — pinned by
    /// a cross-crate test in `pa-cli`.
    pub fn canonical_bytes(&self) -> [u8; JOB_CANONICAL_LEN] {
        let raw = self.to_raw();
        let mut out = [0u8; JOB_CANONICAL_LEN];
        out[0..8].copy_from_slice(&raw.n.to_le_bytes());
        out[8..16].copy_from_slice(&raw.x.to_le_bytes());
        out[16..24].copy_from_slice(&raw.p_bits.to_le_bytes());
        out[24..32].copy_from_slice(&raw.seed.to_le_bytes());
        out[32..40].copy_from_slice(&raw.alpha_bits.to_le_bytes());
        out[40..44].copy_from_slice(&raw.ranks.to_le_bytes());
        out[44] = raw.scheme_id;
        out[45] = raw.engine_id;
        out[46] = raw.model_id;
        out[47] = raw.format_id;
        out
    }

    /// Stable job identity: FNV-1a over [`JobDescriptor::canonical_bytes`].
    pub fn job_id(&self) -> u64 {
        Fnv1a::hash(&self.canonical_bytes())
    }

    /// Lower to the raw wire-shaped form.
    pub fn to_raw(&self) -> RawJob {
        RawJob {
            n: self.cfg.n,
            x: self.cfg.x,
            p_bits: self.cfg.p.to_bits(),
            seed: self.cfg.seed,
            alpha_bits: self.model.alpha_bits(),
            ranks: self.ranks,
            scheme_id: self.scheme.id(),
            engine_id: self.engine,
            model_id: self.model.id(),
            format_id: self.format.id(),
        }
    }

    /// Lift a raw descriptor into typed, validated form.
    ///
    /// # Errors
    ///
    /// Named errors for unknown scheme/model/format discriminants, a
    /// model-parameter field inconsistent with its model (`pa` with
    /// nonzero `alpha_bits` would silently lose the parameter on the
    /// round trip), and everything [`JobDescriptor::validate`] rejects.
    pub fn from_raw(raw: &RawJob) -> Result<Self, String> {
        let scheme = Scheme::from_id(raw.scheme_id)
            .ok_or_else(|| format!("unknown scheme id {}", raw.scheme_id))?;
        let format = EdgeFormat::from_id(raw.format_id)
            .ok_or_else(|| format!("unknown edge-format id {}", raw.format_id))?;
        let model = match raw.model_id {
            0 => {
                if raw.alpha_bits != 0 {
                    return Err(format!(
                        "model pa carries no alpha, but alpha_bits = {:#x}",
                        raw.alpha_bits
                    ));
                }
                ModelKind::Pa
            }
            1 => ModelKind::Nlpa {
                alpha: f64::from_bits(raw.alpha_bits),
            },
            other => return Err(format!("unknown model id {other}")),
        };
        let desc = JobDescriptor {
            cfg: PaConfig {
                n: raw.n,
                x: raw.x,
                p: f64::from_bits(raw.p_bits),
                seed: raw.seed,
            },
            scheme,
            engine: raw.engine_id,
            model,
            ranks: raw.ranks,
            format,
        };
        desc.validate()?;
        Ok(desc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobDescriptor {
        JobDescriptor {
            cfg: PaConfig::new(10_000, 4).with_seed(7),
            scheme: Scheme::Rrp,
            engine: 2,
            model: ModelKind::Pa,
            ranks: 4,
            format: EdgeFormat::Binary,
        }
    }

    #[test]
    fn raw_round_trip_preserves_identity() {
        let d = sample();
        let back = JobDescriptor::from_raw(&d.to_raw()).unwrap();
        assert_eq!(back, d);
        assert_eq!(back.job_id(), d.job_id());

        let nlpa = JobDescriptor {
            model: ModelKind::Nlpa { alpha: 1.5 },
            ..sample()
        };
        let back = JobDescriptor::from_raw(&nlpa.to_raw()).unwrap();
        assert_eq!(back, nlpa);
    }

    #[test]
    fn job_id_is_sensitive_to_every_field() {
        let base = sample();
        let variants = [
            JobDescriptor {
                cfg: PaConfig {
                    n: 10_001,
                    ..base.cfg
                },
                ..base
            },
            JobDescriptor {
                cfg: PaConfig { x: 5, ..base.cfg },
                ..base
            },
            JobDescriptor {
                cfg: PaConfig {
                    p: 0.25,
                    ..base.cfg
                },
                ..base
            },
            JobDescriptor {
                cfg: PaConfig {
                    seed: 8,
                    ..base.cfg
                },
                ..base
            },
            JobDescriptor {
                scheme: Scheme::Lcp,
                ..base
            },
            JobDescriptor { engine: 3, ..base },
            JobDescriptor {
                model: ModelKind::Nlpa { alpha: 1.0 },
                ..base
            },
            JobDescriptor { ranks: 8, ..base },
            JobDescriptor {
                format: EdgeFormat::Text,
                ..base
            },
        ];
        for v in variants {
            assert_ne!(v.job_id(), base.job_id(), "{v:?} collided with base");
        }
    }

    #[test]
    fn canonical_layout_is_pinned() {
        // The byte layout is wire identity: if this test moves, the
        // serve protocol version must be bumped.
        let d = sample();
        let bytes = d.canonical_bytes();
        assert_eq!(bytes.len(), JOB_CANONICAL_LEN);
        assert_eq!(&bytes[0..8], &10_000u64.to_le_bytes());
        assert_eq!(&bytes[8..16], &4u64.to_le_bytes());
        assert_eq!(&bytes[16..24], &0.5f64.to_bits().to_le_bytes());
        assert_eq!(&bytes[24..32], &7u64.to_le_bytes());
        assert_eq!(&bytes[32..40], &0u64.to_le_bytes());
        assert_eq!(&bytes[40..44], &4u32.to_le_bytes());
        assert_eq!(&bytes[44..48], &[2, 2, 0, 1]);
    }

    #[test]
    fn validate_names_each_violation() {
        let check = |d: JobDescriptor, needle: &str| {
            let err = d.validate().unwrap_err();
            assert!(err.contains(needle), "{err:?} missing {needle:?}");
        };
        let base = sample();
        check(
            JobDescriptor {
                cfg: PaConfig { x: 0, ..base.cfg },
                ..base
            },
            "x must be",
        );
        check(
            JobDescriptor {
                cfg: PaConfig {
                    n: 4,
                    x: 4,
                    ..base.cfg
                },
                ..base
            },
            "must exceed",
        );
        check(
            JobDescriptor {
                cfg: PaConfig { p: 1.5, ..base.cfg },
                ..base
            },
            "[0, 1]",
        );
        check(
            JobDescriptor {
                cfg: PaConfig {
                    p: f64::NAN,
                    ..base.cfg
                },
                ..base
            },
            "[0, 1]",
        );
        check(JobDescriptor { engine: 4, ..base }, "engine must be");
        check(JobDescriptor { engine: 1, ..base }, "requires x = 1");
        check(JobDescriptor { ranks: 0, ..base }, "ranks");
        check(
            JobDescriptor {
                model: ModelKind::Nlpa { alpha: -1.0 },
                ..base
            },
            "non-negative",
        );
    }

    #[test]
    fn from_raw_rejects_bad_discriminants() {
        let raw = sample().to_raw();
        let bad = |f: fn(&mut RawJob), needle: &str| {
            let mut r = raw;
            f(&mut r);
            let err = JobDescriptor::from_raw(&r).unwrap_err();
            assert!(err.contains(needle), "{err:?} missing {needle:?}");
        };
        bad(|r| r.scheme_id = 9, "unknown scheme");
        bad(|r| r.model_id = 9, "unknown model");
        bad(|r| r.format_id = 9, "unknown edge-format");
        bad(|r| r.alpha_bits = 1, "carries no alpha");
        bad(|r| r.engine_id = 0, "engine must be");
    }

    #[test]
    fn gen_options_applies_the_model_only() {
        let d = JobDescriptor {
            model: ModelKind::Nlpa { alpha: 1.5 },
            ..sample()
        };
        let base = GenOptions::default().with_chain_memo(77);
        let opts = d.gen_options(base);
        assert_eq!(opts.model, ModelKind::Nlpa { alpha: 1.5 });
        assert_eq!(opts.chain_memo_nodes, 77, "tuning knobs pass through");
    }
}
