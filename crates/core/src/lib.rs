//! Preferential-attachment network generators — sequential and
//! distributed-memory parallel — reproducing Alam, Khan & Marathe,
//! *Distributed-Memory Parallel Algorithms for Generating Massive
//! Scale-free Networks Using Preferential Attachment Model*, SC'13.
//!
//! # The model
//!
//! A preferential-attachment (PA) network over nodes `0 .. n` starts from
//! a clique on the first `x` nodes; every later node `t` attaches `x` new
//! edges to existing nodes, chosen with probability proportional to their
//! current degree. The resulting degree distribution is a power law
//! (Barabási–Albert). Rather than sampling degrees directly, the paper
//! builds on the **copy model** (Kumar et al., FOCS'00): to pick node
//! `t`'s target, draw `k` uniformly from the existing nodes, then
//!
//! * with probability `p` connect to `k` itself ("direct"),
//! * with probability `1 − p` connect to `F_k` — the node `k` attached to
//!   ("copy").
//!
//! For `p = ½` this is exactly degree-proportional attachment, and —
//! crucially — the draw of `k` needs no global degree state, which is
//! what makes an exact distributed algorithm possible: only the `F_k`
//! lookups ever cross processor boundaries, as asynchronous
//! `request`/`resolved` messages (Algorithms 3.1 and 3.2 of the paper).
//!
//! # Crate layout
//!
//! * [`PaConfig`] — model parameters `(n, x, p, seed)`.
//! * [`seq`] — sequential generators: the naive Θ(n²) degree-scan, the
//!   Batagelj–Brandes O(m) repeated-nodes list, and the copy model (the
//!   parallel algorithm's reference semantics).
//! * [`partition`] — the paper's three node-partitioning schemes (UCP,
//!   LCP, RRP) plus the nonlinear load-balance Equation 10 solver behind
//!   LCP.
//! * [`par`] — the parallel engines over the `pa-mpsim` message-passing
//!   runtime: [`par::generate_x1`] (Algorithm 3.1) and
//!   [`par::generate`] (Algorithm 3.2), with per-rank load and traffic
//!   reports.
//! * [`chains`] — selection/dependency-chain analytics (Theorem 3.3).
//! * [`approx_yh`] — a Yoo–Henderson-style *approximate* distributed
//!   baseline, reproducing the prior work the paper argues against.
//! * [`er`], [`ws`], [`cl`], [`rmat`] — extension generators (parallel
//!   Erdős–Rényi, Watts–Strogatz, Chung–Lu, R-MAT) reusing the same
//!   substrates, answering the paper's closing call for "other classes
//!   of random networks".
//!
//! # Quick start
//!
//! ```
//! use pa_core::{PaConfig, par, partition::Scheme};
//!
//! let cfg = PaConfig::new(10_000, 4).with_seed(1);
//! let out = par::generate(&cfg, Scheme::Rrp, 4, &Default::default());
//! let edges = out.edge_list();
//! assert_eq!(edges.len(), 4 * 3 / 2 + (10_000 - 4) * 4);
//! pa_graph::validate::assert_valid_pa_network(10_000, 4, &edges);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx_yh;
pub mod chains;
pub mod cl;
mod config;
pub mod er;
pub mod job;
pub mod math;
mod model;
pub mod par;
pub mod partition;
pub mod rmat;
pub mod seq;
pub mod store;
pub mod ws;

pub use config::{GenOptions, PaConfig, DEFAULT_CHAIN_MEMO_NODES, DEFAULT_HUB_CACHE_NODES};
pub use model::{Model, ModelKind};

/// The fault-injection schedule consumed by [`GenOptions::fault_plan`]
/// (re-exported from `pa-mpsim` so callers configuring chaos runs don't
/// need a direct dependency).
pub use pa_mpsim::FaultPlan;

/// A node identifier (re-exported from `pa-graph`).
pub type Node = pa_graph::Node;

/// Sentinel for an unresolved attachment slot (`NILL` in the paper).
pub(crate) const NILL: Node = Node::MAX;
