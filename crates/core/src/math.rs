//! Harmonic numbers and related special functions.
//!
//! The paper's load-balance analysis is written in terms of harmonic
//! numbers: the expected number of request messages received for node `k`
//! is `(1−p)(H_{n−1} − H_k)` (Lemma 3.4), and the LCP partition boundaries
//! solve a nonlinear system in `H_{n_i}` (Equation 10).

/// Euler–Mascheroni constant.
pub const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// Threshold below which [`harmonic`] sums exactly.
const EXACT_LIMIT: u64 = 128;

/// The `k`-th harmonic number `H_k = Σ_{i=1..k} 1/i`, with `H_0 = 0`.
///
/// Exact summation for small `k`; for larger `k` the asymptotic expansion
/// `ln k + γ + 1/(2k) − 1/(12k²) + 1/(120k⁴)` (error `O(k⁻⁶)`, far below
/// `f64` noise at the crossover).
pub fn harmonic(k: u64) -> f64 {
    if k == 0 {
        return 0.0;
    }
    if k <= EXACT_LIMIT {
        return (1..=k).map(|i| 1.0 / i as f64).sum();
    }
    let kf = k as f64;
    let k2 = kf * kf;
    kf.ln() + EULER_GAMMA + 1.0 / (2.0 * kf) - 1.0 / (12.0 * k2) + 1.0 / (120.0 * k2 * k2)
}

/// `H_b − H_a` for `a <= b`, computed stably (both terms through the same
/// evaluation path so the cancellation error stays tiny).
///
/// # Panics
///
/// Panics if `a > b`.
pub fn harmonic_diff(a: u64, b: u64) -> f64 {
    assert!(a <= b, "harmonic_diff requires a <= b");
    if b <= EXACT_LIMIT {
        return ((a + 1)..=b).map(|i| 1.0 / i as f64).sum();
    }
    harmonic(b) - harmonic(a)
}

/// Base-2 logarithm of `n` as used in the chain-length bounds
/// (`log 0` and `log 1` clamp to 0).
pub fn log2_clamped(n: u64) -> f64 {
    if n <= 1 {
        0.0
    } else {
        (n as f64).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_exact() {
        assert_eq!(harmonic(0), 0.0);
        assert_eq!(harmonic(1), 1.0);
        assert!((harmonic(2) - 1.5).abs() < 1e-15);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-15);
    }

    #[test]
    fn approximation_agrees_with_exact_sum_at_crossover() {
        // Sum H_k exactly a little past the crossover and compare.
        let mut exact = 0.0;
        for i in 1..=1000u64 {
            exact += 1.0 / i as f64;
            let approx = harmonic(i);
            assert!(
                (approx - exact).abs() < 1e-10,
                "H_{i}: exact {exact}, approx {approx}"
            );
        }
    }

    #[test]
    fn harmonic_is_monotone() {
        let mut prev = 0.0;
        for k in [1u64, 10, 100, 1000, 1_000_000, 1_000_000_000] {
            let h = harmonic(k);
            assert!(h > prev);
            prev = h;
        }
    }

    #[test]
    fn large_value_matches_asymptotics() {
        // H_1e9 ≈ ln(1e9) + γ = 20.7233 + 0.5772 ≈ 21.3005.
        let h = harmonic(1_000_000_000);
        assert!((h - 21.300_481_5).abs() < 1e-6, "H_1e9 = {h}");
    }

    #[test]
    fn diff_matches_direct_subtraction() {
        for (a, b) in [(0u64, 5u64), (10, 200), (500, 501), (7, 7)] {
            let d = harmonic_diff(a, b);
            let direct = harmonic(b) - harmonic(a);
            assert!((d - direct).abs() < 1e-12, "diff({a},{b})");
        }
    }

    #[test]
    #[should_panic(expected = "a <= b")]
    fn diff_rejects_reversed() {
        let _ = harmonic_diff(5, 3);
    }

    #[test]
    fn log2_clamps() {
        assert_eq!(log2_clamped(0), 0.0);
        assert_eq!(log2_clamped(1), 0.0);
        assert_eq!(log2_clamped(8), 3.0);
    }
}
