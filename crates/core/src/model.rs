//! The attachment-model abstraction over the counter-based draw streams.
//!
//! Every engine in this workspace — the sequential reference generator,
//! Algorithm 3.1's request/resolved protocol, Algorithm 3.2's in-order
//! slots, and engine3's local chain recomputation — consumes attachment
//! randomness through exactly one interface: a *model* maps the event key
//! `(seed, node, edge, attempt)` to a [`Choice`], and the engine resolves
//! that choice into a concrete target (directly, over the wire, or by
//! recomputing the referenced row). Keeping the mapping pure and
//! counter-addressed is what makes the engines interchangeable *and*
//! model-generic: a new model plugs in here and inherits every resolution
//! mechanism, every partition scheme, chaos injection, and
//! checkpoint/restart for free.
//!
//! Two models ship today:
//!
//! * [`ModelKind::Pa`] — the paper's copy model (Kumar et al.): draw
//!   `k ∈ [x, t)` uniformly, connect directly with probability `p`, else
//!   copy `F_k(l)`. `p = ½` is exactly degree-proportional attachment.
//! * [`ModelKind::Nlpa`] — nonlinear preferential attachment with
//!   exponent `α` (after Allendorf–Meyer–Penschuck–Tran): attachment
//!   proportional to `degree^α` shifts the power-law tail. This
//!   implementation is a *redirection surrogate*: the copy-model
//!   direct-vs-copy coin is re-weighted to `p_eff = p^α`, preserving the
//!   pure `(seed, node, edge, attempt)` draw streams (an exact
//!   `degree^α` kernel needs global degree state, which no exact
//!   distributed algorithm can afford). `α = 1` *is* the copy model —
//!   bit-identical, special-cased so no float rounding can intrude —
//!   `α = 0` degenerates to uniform attachment (`p_eff = 1`, every
//!   choice direct), and `α > 1` copies more, thickening the hub tail
//!   and lowering the empirical degree exponent `γ ≈ 1 + 1/(1 − p_eff)`.

use crate::seq::{draw_choice_keyed, Choice};
use crate::{Node, PaConfig};
use pa_rng::EventKeys;

/// Which attachment model a run generates (selected via
/// [`crate::GenOptions::model`], `pagen --model pa|nlpa`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ModelKind {
    /// The paper's linear copy model.
    #[default]
    Pa,
    /// Nonlinear preferential attachment with exponent `alpha`
    /// (redirection surrogate; `alpha = 1.0` is bit-identical to
    /// [`ModelKind::Pa`]).
    Nlpa {
        /// The attachment-kernel exponent `α ≥ 0`.
        alpha: f64,
    },
}

impl ModelKind {
    /// Stable discriminant for checkpoint identity (a checkpoint taken
    /// under one model must never resume under another).
    pub fn id(&self) -> u8 {
        match self {
            ModelKind::Pa => 0,
            ModelKind::Nlpa { .. } => 1,
        }
    }

    /// The model parameter as raw IEEE-754 bits for exact checkpoint
    /// identity comparison (0 for the parameter-free copy model).
    pub fn alpha_bits(&self) -> u64 {
        match self {
            ModelKind::Pa => 0,
            ModelKind::Nlpa { alpha } => alpha.to_bits(),
        }
    }

    /// Short name, as the CLI spells it.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Pa => "pa",
            ModelKind::Nlpa { .. } => "nlpa",
        }
    }

    /// Human-readable validation error, if the parameters are invalid.
    ///
    /// # Errors
    ///
    /// `alpha` must be finite and non-negative: NaN has no ordering
    /// (`p^NaN` poisons every draw), infinities collapse `p_eff` to a
    /// degenerate 0/1 coin, and a negative exponent would *invert* the
    /// preference (small-degree nodes favoured), which the redirection
    /// surrogate cannot represent.
    pub fn check(&self) -> Result<(), String> {
        match *self {
            ModelKind::Pa => Ok(()),
            ModelKind::Nlpa { alpha } => {
                if alpha.is_nan() {
                    Err("alpha must be a number, got NaN".into())
                } else if !alpha.is_finite() {
                    Err(format!("alpha = {alpha} must be finite"))
                } else if alpha < 0.0 {
                    Err(format!("alpha = {alpha} must be non-negative"))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Panicking form of [`ModelKind::check`], for the `GenOptions`
    /// validation path.
    ///
    /// # Panics
    ///
    /// Panics with the [`ModelKind::check`] message on invalid
    /// parameters.
    pub fn validate(&self) {
        if let Err(why) = self.check() {
            panic!("{why}");
        }
    }
}

/// A [`ModelKind`] resolved against a concrete [`PaConfig`]: the engines'
/// one stop for attachment draws. `Copy` and a handful of words — every
/// engine embeds one by value.
///
/// The resolution folds the model into a single *effective* direct
/// probability, so the downstream draw consumes the identical three-value
/// stream (`k`, coin, `l`) for every model: draw streams stay aligned
/// across models, engines recompute each other's rows without knowing
/// which model is running, and `nlpa(α = 1)` is byte-for-byte the copy
/// model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Model {
    kind: ModelKind,
    x: u64,
    seed: u64,
    p_eff: f64,
}

impl Model {
    /// Resolve `kind` against `cfg`.
    ///
    /// # Panics
    ///
    /// Panics on invalid model parameters (see [`ModelKind::validate`]).
    pub fn resolve(cfg: &PaConfig, kind: ModelKind) -> Self {
        kind.validate();
        let p_eff = match kind {
            ModelKind::Pa => cfg.p,
            // α = 1 must not round-trip through powf: bit-identity with
            // the copy model is a pinned test invariant, not a float
            // coincidence. (powf(0, 0) = 1 keeps p = 0 ∧ α = 0 on the
            // uniform-attachment branch, consistent with the k^0 kernel.)
            ModelKind::Nlpa { alpha: 1.0 } => cfg.p,
            ModelKind::Nlpa { alpha } => cfg.p.powf(alpha),
        };
        Model {
            kind,
            x: cfg.x,
            seed: cfg.seed,
            p_eff,
        }
    }

    /// Which model this is.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// The effective direct-connection probability the draws consume.
    pub fn p_eff(&self) -> f64 {
        self.p_eff
    }

    /// Hoist the `(seed, t)` key prefix for node `t`'s draws (one mix
    /// per node instead of three per event; see [`EventKeys`]).
    #[inline]
    pub fn keys_for(&self, t: Node) -> EventKeys {
        EventKeys::for_node(self.seed, t)
    }

    /// Draw the [`Choice`] for attachment event `(t, e, attempt)`.
    ///
    /// # Panics
    ///
    /// Panics if `t <= x` (seed-clique nodes and node `x` do not draw).
    pub fn draw(&self, t: Node, e: u32, attempt: u32) -> Choice {
        assert!(t > self.x, "node {t} does not draw (x = {})", self.x);
        self.draw_keyed(&self.keys_for(t), t, e, attempt)
    }

    /// [`Model::draw`] with the key prefix already hoisted.
    #[inline]
    pub fn draw_keyed(&self, keys: &EventKeys, t: Node, e: u32, attempt: u32) -> Choice {
        draw_choice_keyed(keys, self.p_eff, self.x, t, e, attempt)
    }

    /// Batch-draw the attempt-0 [`Choice`]s for node `t`'s whole edge
    /// row into `out` (cleared first) — the engines' hot path.
    pub fn draw_row(&self, keys: &EventKeys, t: Node, out: &mut Vec<Choice>) {
        debug_assert!(t > self.x, "node {t} does not draw (x = {})", self.x);
        out.clear();
        out.reserve(self.x as usize);
        for e in 0..self.x as u32 {
            out.push(self.draw_keyed(keys, t, e, 0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PaConfig {
        PaConfig::new(1_000, 4).with_seed(41)
    }

    #[test]
    fn pa_model_matches_the_raw_draw_functions() {
        let m = Model::resolve(&cfg(), ModelKind::Pa);
        let keys = m.keys_for(100);
        for e in 0..4u32 {
            for attempt in [0u32, 1, 7] {
                assert_eq!(
                    m.draw_keyed(&keys, 100, e, attempt),
                    crate::seq::draw_choice(41, 0.5, 4, 100, e, attempt)
                );
                assert_eq!(
                    m.draw(100, e, attempt),
                    m.draw_keyed(&keys, 100, e, attempt)
                );
            }
        }
        let mut row = Vec::new();
        m.draw_row(&keys, 100, &mut row);
        assert_eq!(row.len(), 4);
        for (e, c) in row.iter().enumerate() {
            assert_eq!(*c, m.draw(100, e as u32, 0));
        }
    }

    #[test]
    fn alpha_one_is_bitwise_the_copy_model() {
        let pa = Model::resolve(&cfg(), ModelKind::Pa);
        let nlpa = Model::resolve(&cfg(), ModelKind::Nlpa { alpha: 1.0 });
        assert_eq!(pa.p_eff().to_bits(), nlpa.p_eff().to_bits());
        for t in [5u64, 17, 999] {
            let (ka, kb) = (pa.keys_for(t), nlpa.keys_for(t));
            for e in 0..4u32 {
                assert_eq!(pa.draw_keyed(&ka, t, e, 0), nlpa.draw_keyed(&kb, t, e, 0));
            }
        }
    }

    #[test]
    fn alpha_reweights_the_effective_probability() {
        let c = cfg();
        let half = Model::resolve(&c, ModelKind::Nlpa { alpha: 0.5 });
        let heavy = Model::resolve(&c, ModelKind::Nlpa { alpha: 1.5 });
        // p = 0.5: α < 1 raises p_eff (more direct, thinner tail),
        // α > 1 lowers it (more copying, heavier tail).
        assert!(half.p_eff() > 0.5 && half.p_eff() < 1.0);
        assert!(heavy.p_eff() < 0.5 && heavy.p_eff() > 0.0);
        // α = 0 is uniform attachment regardless of p (k^0 kernel),
        // including at the p = 0 corner (powf(0, 0) = 1).
        let uni = Model::resolve(&c, ModelKind::Nlpa { alpha: 0.0 });
        assert_eq!(uni.p_eff(), 1.0);
        let zero_p = PaConfig::new(100, 2).with_p(0.0);
        assert_eq!(
            Model::resolve(&zero_p, ModelKind::Nlpa { alpha: 0.0 }).p_eff(),
            1.0
        );
    }

    #[test]
    fn ids_and_names_are_stable() {
        assert_eq!(ModelKind::Pa.id(), 0);
        assert_eq!(ModelKind::Nlpa { alpha: 1.5 }.id(), 1);
        assert_eq!(ModelKind::Pa.alpha_bits(), 0);
        assert_eq!(
            ModelKind::Nlpa { alpha: 1.5 }.alpha_bits(),
            1.5f64.to_bits()
        );
        assert_eq!(ModelKind::Pa.name(), "pa");
        assert_eq!(ModelKind::Nlpa { alpha: 0.5 }.name(), "nlpa");
        assert_eq!(ModelKind::default(), ModelKind::Pa);
    }

    #[test]
    fn check_rejects_bad_alpha_with_readable_messages() {
        assert!(ModelKind::Nlpa { alpha: 0.0 }.check().is_ok());
        assert!(ModelKind::Nlpa { alpha: 2.5 }.check().is_ok());
        let nan = ModelKind::Nlpa { alpha: f64::NAN }.check().unwrap_err();
        assert!(nan.contains("NaN"), "{nan}");
        let inf = ModelKind::Nlpa {
            alpha: f64::INFINITY,
        }
        .check()
        .unwrap_err();
        assert!(inf.contains("finite"), "{inf}");
        let neg = ModelKind::Nlpa { alpha: -0.5 }.check().unwrap_err();
        assert!(neg.contains("non-negative"), "{neg}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn resolve_panics_on_negative_alpha() {
        let _ = Model::resolve(&cfg(), ModelKind::Nlpa { alpha: -1.0 });
    }

    #[test]
    #[should_panic(expected = "does not draw")]
    fn seed_nodes_do_not_draw() {
        let m = Model::resolve(&cfg(), ModelKind::Pa);
        let _ = m.draw(4, 0, 0);
    }
}
