//! Epoch-numbered checkpoint files for the parallel engines.
//!
//! A checkpoint captures one rank's engine state at an epoch boundary —
//! a barrier-aligned cut where the driver has proven global quiescence
//! (every node below the epoch's upper label is committed world-wide,
//! all waiter tables are empty, no tracked traffic is in flight; see
//! DESIGN.md §5f). Because the copy-model RNG is a pure function of
//! `(seed, node, edge, attempt)`, no RNG stream position needs saving:
//! the engine payload plus the sink watermark is the complete state.
//!
//! Files are written atomically (`rank{r}.epoch{e}.ckpt.tmp` → rename)
//! so a crash mid-write never leaves a half checkpoint with a valid
//! name, and every load re-verifies an FNV-1a checksum plus the full
//! run identity (world size, model parameters, partition scheme,
//! engine, epoch interval) so a checkpoint from a *different* run can
//! never be resumed into this one. The store retains the last **two**
//! epochs per rank: barrier structure bounds inter-rank epoch skew at
//! one, so the globally agreed resume epoch (the minimum across ranks)
//! is always still on disk.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use pa_mpsim::wire::{get_u32, get_u64, get_u8};

/// Magic number at the head of every checkpoint file (`"PACK"`).
const MAGIC: u32 = 0x4b43_4150;
/// Checkpoint format version. Version 2 added the attachment-model
/// identity (`model_id`, `alpha_bits`) to the header; version-1 files
/// are rejected on load (treated as absent) rather than resumed under a
/// guessed model.
const VERSION: u32 = 2;

/// Identity of a run, embedded in every checkpoint and re-verified on
/// load so stale or foreign checkpoints are rejected instead of
/// silently corrupting a resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// World size (number of ranks).
    pub world: u32,
    /// Model size `n`.
    pub n: u64,
    /// Edges per node `x`.
    pub x: u64,
    /// Copy-model probability `p`, as raw IEEE-754 bits (exact compare).
    pub p_bits: u64,
    /// RNG seed.
    pub seed: u64,
    /// Partition-scheme discriminant (caller-defined; the CLI uses the
    /// scheme's index in [`crate::partition::Scheme::ALL`]).
    pub scheme_id: u8,
    /// Engine discriminant (caller-defined; the CLI uses 2 for the
    /// general engine).
    pub engine_id: u8,
    /// Attachment-model discriminant ([`crate::ModelKind::id`]): a
    /// checkpoint taken under one model must never resume under another.
    pub model_id: u8,
    /// Epoch length in node labels ([`crate::GenOptions::checkpoint_interval`]).
    pub interval: u64,
    /// Model parameter as raw IEEE-754 bits
    /// ([`crate::ModelKind::alpha_bits`]; 0 for the parameter-free copy
    /// model) — exact compare, like `p_bits`.
    pub alpha_bits: u64,
}

/// One rank's checkpoint as read back from disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SavedCheckpoint {
    /// Epoch number (epoch `e` covers labels `[e·I, min((e+1)·I, n))`).
    pub epoch: u64,
    /// Exclusive upper label of the finished epoch.
    pub hi: u64,
    /// Edges committed to this rank's sink at the cut.
    pub edges: u64,
    /// Bytes written to this rank's part file at the cut (0 when the
    /// sink has no byte-addressed backing).
    pub bytes: u64,
    /// Opaque engine payload (the strategy's serialized snapshot).
    pub payload: Vec<u8>,
}

/// A per-rank directory of epoch-numbered checkpoint files.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    rank: u32,
    meta: CheckpointMeta,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// A checkpoint file parsed **without** a run identity to compare
/// against — the elastic-restart reader's view. `CheckpointStore::load`
/// demands an exact identity match; elastic restart instead validates
/// field by field, because the world size (and the partition scheme and
/// engine) legitimately change across a re-partition.
#[derive(Debug, Clone)]
pub(crate) struct RawCheckpoint {
    /// The rank that wrote the file.
    pub rank: u32,
    /// The identity of the run that wrote it.
    pub meta: CheckpointMeta,
    /// The checkpoint itself.
    pub saved: SavedCheckpoint,
}

/// Parse and checksum-verify one checkpoint file with no identity to
/// compare against. `None` on any defect — an unreadable checkpoint is
/// treated as absent, exactly like [`CheckpointStore::load`].
pub(crate) fn read_raw_checkpoint(path: &Path) -> Option<RawCheckpoint> {
    let buf = fs::read(path).ok()?;
    if buf.len() < 8 {
        return None;
    }
    let (body, sum_bytes) = buf.split_at(buf.len() - 8);
    let sum = u64::from_le_bytes(sum_bytes.try_into().ok()?);
    if fnv1a(body) != sum {
        return None;
    }
    let mut r: &[u8] = body;
    if get_u32(&mut r)? != MAGIC || get_u32(&mut r)? != VERSION {
        return None;
    }
    let rank = get_u32(&mut r)?;
    let world = get_u32(&mut r)?;
    let epoch = get_u64(&mut r)?;
    let hi = get_u64(&mut r)?;
    let meta = CheckpointMeta {
        world,
        n: get_u64(&mut r)?,
        x: get_u64(&mut r)?,
        p_bits: get_u64(&mut r)?,
        seed: get_u64(&mut r)?,
        scheme_id: get_u8(&mut r)?,
        engine_id: get_u8(&mut r)?,
        model_id: get_u8(&mut r)?,
        interval: get_u64(&mut r)?,
        alpha_bits: get_u64(&mut r)?,
    };
    let edges = get_u64(&mut r)?;
    let bytes = get_u64(&mut r)?;
    let len = get_u64(&mut r)? as usize;
    if r.len() != len {
        return None;
    }
    Some(RawCheckpoint {
        rank,
        meta,
        saved: SavedCheckpoint {
            epoch,
            hi,
            edges,
            bytes,
            payload: r.to_vec(),
        },
    })
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint directory for `rank`.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created.
    pub fn new(dir: impl Into<PathBuf>, rank: u32, meta: CheckpointMeta) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir, rank, meta })
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn file_name(&self, epoch: u64) -> PathBuf {
        self.dir
            .join(format!("rank{}.epoch{}.ckpt", self.rank, epoch))
    }

    /// Write the checkpoint for `epoch` atomically and prune every
    /// retained epoch older than `epoch - 1` (keep-last-two).
    ///
    /// # Errors
    ///
    /// Surfaces any I/O failure; a failed save leaves at most a `.tmp`
    /// file behind, never a valid-named partial checkpoint.
    pub fn save(
        &self,
        epoch: u64,
        hi: u64,
        edges: u64,
        bytes: u64,
        payload: &[u8],
    ) -> io::Result<()> {
        let mut buf = Vec::with_capacity(128 + payload.len());
        put_u32(&mut buf, MAGIC);
        put_u32(&mut buf, VERSION);
        put_u32(&mut buf, self.rank);
        put_u32(&mut buf, self.meta.world);
        put_u64(&mut buf, epoch);
        put_u64(&mut buf, hi);
        put_u64(&mut buf, self.meta.n);
        put_u64(&mut buf, self.meta.x);
        put_u64(&mut buf, self.meta.p_bits);
        put_u64(&mut buf, self.meta.seed);
        buf.push(self.meta.scheme_id);
        buf.push(self.meta.engine_id);
        buf.push(self.meta.model_id);
        put_u64(&mut buf, self.meta.interval);
        put_u64(&mut buf, self.meta.alpha_bits);
        put_u64(&mut buf, edges);
        put_u64(&mut buf, bytes);
        put_u64(&mut buf, payload.len() as u64);
        buf.extend_from_slice(payload);
        let sum = fnv1a(&buf);
        put_u64(&mut buf, sum);

        let tmp = self
            .dir
            .join(format!("rank{}.epoch{}.ckpt.tmp", self.rank, epoch));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.file_name(epoch))?;

        for old in self.epochs_on_disk() {
            if old + 1 < epoch {
                let _ = fs::remove_file(self.file_name(old));
            }
        }
        Ok(())
    }

    /// Epoch numbers of this rank's checkpoint files currently on disk
    /// (by name only; contents are validated by [`CheckpointStore::load`]).
    fn epochs_on_disk(&self) -> Vec<u64> {
        let prefix = format!("rank{}.epoch", self.rank);
        let mut out = Vec::new();
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return out;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix(&prefix) else {
                continue;
            };
            let Some(num) = rest.strip_suffix(".ckpt") else {
                continue;
            };
            if let Ok(e) = num.parse::<u64>() {
                out.push(e);
            }
        }
        out.sort_unstable();
        out
    }

    /// Remove every checkpoint file this rank holds in the store —
    /// called after a run completes so a later launch in the same
    /// directory cannot resume past the end of a finished job.
    pub fn clear(&self) {
        for epoch in self.epochs_on_disk() {
            let _ = fs::remove_file(self.file_name(epoch));
        }
    }

    /// The newest epoch with a *valid* checkpoint on disk, or `None`.
    /// Corrupt or mismatched files are skipped, not errors.
    pub fn latest(&self) -> Option<u64> {
        let mut epochs = self.epochs_on_disk();
        epochs.reverse();
        epochs.into_iter().find(|&e| self.load(e).is_some())
    }

    /// Load and validate the checkpoint for `epoch`. Any failure —
    /// missing file, bad checksum, foreign run identity — yields
    /// `None`: an unusable checkpoint is treated as absent.
    pub fn load(&self, epoch: u64) -> Option<SavedCheckpoint> {
        let raw = read_raw_checkpoint(&self.file_name(epoch))?;
        if raw.rank != self.rank || raw.meta != self.meta || raw.saved.epoch != epoch {
            return None;
        }
        Some(raw.saved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> CheckpointMeta {
        CheckpointMeta {
            world: 4,
            n: 3_000,
            x: 4,
            p_bits: 0.5f64.to_bits(),
            seed: 41,
            scheme_id: 1,
            engine_id: 2,
            model_id: 0,
            interval: 500,
            alpha_bits: 0,
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pa_core_ckpt_{tag}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trips() {
        let dir = scratch("round_trip");
        let store = CheckpointStore::new(&dir, 2, meta()).unwrap();
        let payload = vec![7u8, 8, 9, 250];
        store.save(3, 2_000, 8_123, 129_968, &payload).unwrap();
        let saved = store.load(3).expect("valid checkpoint loads");
        assert_eq!(
            saved,
            SavedCheckpoint {
                epoch: 3,
                hi: 2_000,
                edges: 8_123,
                bytes: 129_968,
                payload,
            }
        );
        assert_eq!(store.latest(), Some(3));
        assert!(store.load(4).is_none(), "absent epoch is None");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn keeps_only_the_last_two_epochs() {
        let dir = scratch("prune");
        let store = CheckpointStore::new(&dir, 0, meta()).unwrap();
        for e in 0..5 {
            store.save(e, (e + 1) * 500, e * 10, 0, &[e as u8]).unwrap();
        }
        assert!(store.load(2).is_none(), "epoch 2 pruned");
        assert!(store.load(3).is_some(), "epoch 3 retained (latest - 1)");
        assert!(store.load(4).is_some(), "epoch 4 retained (latest)");
        assert_eq!(store.latest(), Some(4));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_foreign_files_are_treated_as_absent() {
        let dir = scratch("corrupt");
        let store = CheckpointStore::new(&dir, 1, meta()).unwrap();
        store.save(0, 500, 10, 0, &[1, 2, 3]).unwrap();

        // Flip a payload byte: the checksum must reject the file.
        let path = dir.join("rank1.epoch0.ckpt");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load(0).is_none(), "corrupt checkpoint rejected");
        assert_eq!(store.latest(), None);

        // A checkpoint from a different run identity must not load.
        store.save(0, 500, 10, 0, &[1, 2, 3]).unwrap();
        let other = CheckpointStore::new(&dir, 1, CheckpointMeta { seed: 99, ..meta() }).unwrap();
        assert!(other.load(0).is_none(), "foreign seed rejected");
        assert!(store.load(0).is_some(), "matching identity still loads");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_model_identity_is_rejected() {
        let dir = scratch("model");
        let store = CheckpointStore::new(&dir, 0, meta()).unwrap();
        store.save(0, 500, 10, 0, &[1, 2, 3]).unwrap();
        // A checkpoint taken under PA must not resume under nlpa (or
        // under nlpa with a different alpha).
        let nlpa = CheckpointStore::new(
            &dir,
            0,
            CheckpointMeta {
                model_id: 1,
                alpha_bits: 1.5f64.to_bits(),
                ..meta()
            },
        )
        .unwrap();
        assert!(nlpa.load(0).is_none(), "foreign model rejected");
        let other_alpha = CheckpointStore::new(
            &dir,
            0,
            CheckpointMeta {
                alpha_bits: 0.5f64.to_bits(),
                ..meta()
            },
        )
        .unwrap();
        assert!(other_alpha.load(0).is_none(), "foreign alpha rejected");
        assert!(store.load(0).is_some(), "matching model still loads");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ranks_do_not_collide_in_a_shared_directory() {
        let dir = scratch("shared");
        let a = CheckpointStore::new(&dir, 0, meta()).unwrap();
        let b = CheckpointStore::new(&dir, 1, meta()).unwrap();
        a.save(0, 500, 1, 0, &[0]).unwrap();
        b.save(1, 1_000, 2, 0, &[1]).unwrap();
        assert_eq!(a.latest(), Some(0));
        assert_eq!(b.latest(), Some(1));
        assert_eq!(a.load(0).unwrap().payload, vec![0]);
        assert_eq!(b.load(1).unwrap().payload, vec![1]);
        let _ = fs::remove_dir_all(&dir);
    }
}
