//! Distributed degree computation — analysis "in place" (paper §3.2).
//!
//! After a distributed generation run, each rank holds only the edges
//! its own nodes created; a node's *degree* also includes the edges that
//! chose it as a target, which live on other ranks. This module computes
//! exact degrees without ever gathering the graph: every rank scans its
//! local edges, credits local endpoints directly, and sends remote
//! endpoints (buffered) to their owners. One barrier separates the send
//! phase from the drain phase — the channels are fully enqueued by then,
//! so a non-blocking drain is complete.

use crate::partition::Partition;
use crate::Node;
use pa_graph::EdgeList;
use pa_mpsim::{BufferedComm, Comm, World};

/// Per-rank exact degrees of a distributed edge set.
///
/// `rank_edges[r]` must contain the edges created by rank `r`'s nodes
/// (e.g. `ParallelOutput::ranks[r].edges`). Returns, per rank, the
/// degree of each of its nodes in ascending local order.
///
/// # Panics
///
/// Panics if `rank_edges.len() != part.nranks()` or an edge endpoint is
/// out of range.
pub fn distributed_degrees<P: Partition>(part: &P, rank_edges: &[EdgeList]) -> Vec<Vec<u64>> {
    assert_eq!(
        rank_edges.len(),
        part.nranks(),
        "need one edge list per rank"
    );
    let world = World::new(part.nranks());
    world.run(|mut comm: Comm<Node>| {
        let rank = comm.rank();
        let mut deg = vec![0u64; part.size_of(rank) as usize];
        let mut buf = BufferedComm::new(comm.nranks(), 4096);
        let credit =
            |deg: &mut Vec<u64>, buf: &mut BufferedComm<Node>, comm: &mut Comm<Node>, v: Node| {
                let owner = part.rank_of(v);
                if owner == rank {
                    deg[part.local_index(v) as usize] += 1;
                } else {
                    buf.push(comm, owner, v);
                }
            };
        for (u, v) in rank_edges[rank].iter() {
            credit(&mut deg, &mut buf, &mut comm, u);
            credit(&mut deg, &mut buf, &mut comm, v);
        }
        buf.flush_all(&mut comm);
        // All sends are enqueued once every rank passes the barrier.
        comm.barrier();
        while let Some(pkt) = comm.try_recv() {
            for v in pkt.msgs {
                debug_assert_eq!(part.rank_of(v), rank);
                deg[part.local_index(v) as usize] += 1;
            }
        }
        // Nobody may exit (dropping its receiver) while another rank
        // could still be draining — but since all traffic was enqueued
        // before the first barrier, draining cannot generate new sends,
        // so exiting now is safe.
        deg
    })
}

/// Stitch per-rank degrees back into global node order.
pub fn merge_degrees<P: Partition>(part: &P, per_rank: &[Vec<u64>]) -> Vec<u64> {
    let mut out = vec![0u64; part.num_nodes() as usize];
    for (rank, degs) in per_rank.iter().enumerate() {
        for (idx, &d) in degs.iter().enumerate() {
            out[part.node_at(rank, idx as u64) as usize] = d;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{build, Scheme};
    use crate::{par, GenOptions, PaConfig};

    #[test]
    fn matches_centralized_degree_sequence_for_all_schemes() {
        let cfg = PaConfig::new(4_000, 3).with_seed(6);
        for scheme in Scheme::ALL {
            let out = par::generate(&cfg, scheme, 5, &GenOptions::default());
            let part = build(scheme, cfg.n, 5);
            let rank_edges: Vec<_> = out.ranks.iter().map(|r| r.edges.clone()).collect();
            let per_rank = distributed_degrees(&part, &rank_edges);
            let merged = merge_degrees(&part, &per_rank);
            let reference = pa_graph::degrees::degree_sequence(cfg.n as usize, &out.edge_list());
            assert_eq!(merged, reference, "{scheme}");
        }
    }

    #[test]
    fn handles_empty_ranks() {
        let part = build(Scheme::Rrp, 6, 8);
        let mut rank_edges = vec![EdgeList::new(); 8];
        rank_edges[1].push(1, 0); // rank 1 owns node 1 under RRP
        let per_rank = distributed_degrees(&part, &rank_edges);
        let merged = merge_degrees(&part, &per_rank);
        assert_eq!(merged, vec![1, 1, 0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "one edge list per rank")]
    fn wrong_shard_count_panics() {
        let part = build(Scheme::Ucp, 10, 2);
        let _ = distributed_degrees(&part, &[EdgeList::new()]);
    }
}
