//! The unified engine driver.
//!
//! Algorithms 3.1 and 3.2 are one message-driven state machine: sweep the
//! rank's nodes in ascending order, service incoming traffic every few
//! nodes, flush `resolved` buffers promptly (§3.5.2), park on an empty
//! queue instead of spinning, and loop until the global outstanding-work
//! detector reports quiescence. PR-1 carried that loop twice — once per
//! engine, copy-pasted and hard-wired to the concrete `pa_mpsim::Comm`.
//!
//! [`run`] is that loop written once, generic over
//!
//! * the [`Transport`] carrying the messages (threaded world, loopback,
//!   eventually a real MPI binding), and
//! * a [`Strategy`] supplying the algorithm-specific state machine — the
//!   strategies, their wire schemas, and their private state (hub
//!   replica, waiter tables) all live in [`super::strategy`]; this
//!   module knows nothing about any particular algorithm or model.
//!
//! The loop structure — and with it the determinism argument (in-order
//! slot commits giving every attempt the sequential generator's exact
//! visibility) — therefore lives in exactly one place.
//!
//! # Checkpoint epochs
//!
//! With [`crate::GenOptions::checkpoint_interval`] set, the label range
//! `[0, n)` splits into epochs of `interval` labels and the loop above
//! runs once per epoch: register the epoch's slots, barrier, sweep the
//! epoch's local nodes, and drive its completion loop to quiescence.
//! Because every copy-model dependency points to a **lower** label
//! (`k ∈ [x, t)`), requests never reference a later epoch, so epoch-`i`
//! quiescence means every node below the epoch's upper label `hi` is
//! committed *world-wide* and all waiter structures are provably empty —
//! a consistent cut with no tracked traffic in flight. That cut is where
//! [`Strategy::snapshot`] captures the engine for a crash-recoverable
//! checkpoint ([`super::checkpoint`]). The only messages that may
//! straddle the cut are untracked hub broadcasts; a restored engine
//! compensates by falling back to request/resolved for pre-cut hub
//! misses (the values are committed, so answers are identical).
//! Epoch boundaries are pure functions of `(n, interval)`, so the cut —
//! and the output — is bit-identical with and without checkpointing.

use pa_mpsim::{BufferedComm, Packet, Transport};

use super::checkpoint::{CheckpointStore, SavedCheckpoint};
use super::strategy::Strategy;
use crate::partition::Partition;
use crate::GenOptions;

/// The driver's communication bundle, handed to every [`Strategy`] hook.
///
/// Owns the two outgoing message buffers of §3.5 (requests and
/// resolutions, with their distinct flush disciplines) and the
/// termination handle; borrows the transport.
pub(super) struct Net<'t, M, T: Transport<M>> {
    pub comm: &'t mut T,
    req: BufferedComm<M>,
    res: BufferedComm<M>,
    term: pa_mpsim::TerminationHandle,
}

impl<'t, M: Send, T: Transport<M>> Net<'t, M, T> {
    /// Queue a `request`-class message for `dest` (flushed at sweep end).
    #[inline]
    pub fn send_req(&mut self, dest: usize, msg: M) {
        self.req.push(&mut *self.comm, dest, msg);
    }

    /// Queue a `resolved`-class message for `dest` (flushed after every
    /// processed batch — the §3.5.2 no-linger rule).
    #[inline]
    pub fn send_res(&mut self, dest: usize, msg: M) {
        self.res.push(&mut *self.comm, dest, msg);
    }

    /// Mark `n` units of outstanding work resolved.
    #[inline]
    pub fn complete(&self, n: u64) {
        self.term.complete(n);
    }

    fn flush_res(&mut self) {
        self.res.flush_all(&mut *self.comm);
    }

    fn flush_all(&mut self) {
        self.req.flush_all(&mut *self.comm);
        self.res.flush_all(&mut *self.comm);
    }
}

/// Run `algo` to global quiescence on this rank; returns it with every
/// local slot committed and every waiter drained.
pub(super) fn run<P, T, A>(part: &P, x: u64, opts: &GenOptions, comm: &mut T, algo: A) -> A
where
    P: Partition,
    T: Transport<A::Msg>,
    A: Strategy,
{
    run_recoverable(part, x, opts, comm, algo, None, None)
}

/// [`run`], with checkpointing: when `store` is set, every epoch
/// boundary (except the final one) writes an atomic checkpoint of the
/// engine + sink watermark; when `resume` is set, the engine state is
/// restored first and generation continues from the epoch after the
/// saved one. Callers are responsible for positioning the sink at the
/// saved watermark (truncating part files) before calling.
pub(super) fn run_recoverable<P, T, A>(
    part: &P,
    x: u64,
    opts: &GenOptions,
    comm: &mut T,
    mut algo: A,
    store: Option<&CheckpointStore>,
    resume: Option<&SavedCheckpoint>,
) -> A
where
    P: Partition,
    T: Transport<A::Msg>,
    A: Strategy,
{
    let rank = comm.rank();
    let n = part.num_nodes();
    let interval = opts.checkpoint_interval;
    let nepochs = interval.map_or(1, |i| n.div_ceil(i).max(1));
    let epoch_hi = |e: u64| interval.map_or(n, |i| ((e + 1) * i).min(n));
    let epoch_lo = |e: u64| interval.map_or(0, |i| e * i);

    let mut start_epoch = 0u64;
    let mut resume_hi = 0u64;
    if let Some(saved) = resume {
        assert!(
            interval.is_some(),
            "resume requires GenOptions::checkpoint_interval"
        );
        assert_eq!(
            saved.hi,
            epoch_hi(saved.epoch),
            "rank {rank}: checkpoint epoch {} boundary disagrees with the \
             configured interval — resuming would corrupt the output",
            saved.epoch
        );
        algo.restore(saved.hi, &saved.payload)
            .unwrap_or_else(|why| panic!("rank {rank}: checkpoint restore failed: {why}"));
        start_epoch = saved.epoch + 1;
        resume_hi = saved.hi;
    }

    let mut net = Net {
        req: BufferedComm::new(comm.nranks(), opts.buffer_capacity),
        res: BufferedComm::new(comm.nranks(), opts.buffer_capacity),
        term: comm.termination(),
        comm,
    };

    // One ascending pass over the rank's nodes, shared by all epochs
    // (each epoch consumes its `[lo, hi)` slice); resumed labels below
    // the checkpoint cut are already committed and skipped entirely.
    let mut nodes = part
        .nodes_of(rank)
        .filter(|&t| t > x && t >= resume_hi)
        .peekable();
    let mut rxq: Vec<Packet<A::Msg>> = Vec::new();

    for epoch in start_epoch..nepochs {
        let (lo, hi) = (epoch_lo(epoch), epoch_hi(epoch));

        // --- Initialization: seed edges and slot registration. ---
        let pending = algo.register(lo, hi);
        net.term.add(pending);
        // No rank may observe the counter before everyone registered.
        net.comm.barrier();
        algo.attach_seed_node(&mut net, lo, hi);

        // --- Generation sweep over the epoch's local nodes. ---
        let mut since_service = 0usize;
        while let Some(&t) = nodes.peek() {
            if t >= hi {
                break;
            }
            nodes.next();
            algo.start_node(&mut net, t);
            algo.drain_local(&mut net);
            since_service += 1;
            if since_service >= opts.service_interval {
                since_service = 0;
                service(&mut algo, &mut net, &mut rxq);
                // §3.5.2: resolved messages must not linger in buffers.
                net.flush_res();
                // Let other ranks advance their sweeps: on an oversubscribed
                // host this keeps per-rank progress in lockstep, as it would
                // be with one core per rank.
                std::thread::yield_now();
            }
        }
        // End-of-sweep flush: requests may now wait for nobody.
        net.flush_all();

        // --- Completion loop: service traffic until global quiescence. ---
        // Iterations that made progress flush immediately; quiescent ranks
        // only re-scan their buffers every `idle_flush_interval` waits, and
        // park on the transport instead of spinning (see the Transport
        // receive contract).
        //
        // The stall watchdog measures *global* progress through the shared
        // outstanding-work counter: as long as any rank commits slots the
        // counter moves and every rank's timer resets, so only a genuinely
        // wedged world (e.g. a message lost by an unreliable transport with
        // recovery off) trips it — and then it trips on every rank, which is
        // what lets the scoped world join instead of hanging.
        let mut watchdog = opts
            .stall_timeout
            .map(|limit| (std::time::Instant::now(), net.term.outstanding(), limit));
        let mut idle_iters = 0usize;
        while !net.term.is_done() {
            if service(&mut algo, &mut net, &mut rxq) {
                idle_iters = 0;
                net.flush_all();
                if let Some((last_progress, _, _)) = &mut watchdog {
                    *last_progress = std::time::Instant::now();
                }
            } else if !net.term.is_done() {
                idle_iters += 1;
                if idle_iters >= opts.idle_flush_interval {
                    idle_iters = 0;
                    net.flush_all();
                }
                if let Some(pkt) = net.comm.recv_timeout(opts.idle_wait) {
                    idle_iters = 0;
                    let mut msgs = pkt.msgs;
                    algo.handle_msgs(&mut net, pkt.src, &mut msgs);
                    net.comm.recycle(pkt.src, msgs);
                    algo.drain_local(&mut net);
                    net.flush_all();
                    if let Some((last_progress, _, _)) = &mut watchdog {
                        *last_progress = std::time::Instant::now();
                    }
                } else if let Some((last_progress, last_outstanding, limit)) = &mut watchdog {
                    let outstanding = net.term.outstanding();
                    if outstanding != *last_outstanding {
                        *last_outstanding = outstanding;
                        *last_progress = std::time::Instant::now();
                    } else if last_progress.elapsed() >= *limit {
                        let stats = net.comm.stats();
                        eprintln!(
                            "stall watchdog: rank {rank} made no progress for {limit:?}; \
                             outstanding={outstanding} {} msgs_sent={} msgs_recv={} \
                             faults_injected={} retransmitted={} deduped={}",
                            algo.stall_report(),
                            stats.msgs_sent,
                            stats.msgs_recv,
                            stats.faults_injected,
                            stats.retransmitted,
                            stats.deduped,
                        );
                        panic!(
                            "stall watchdog fired on rank {rank}: no progress for {limit:?} \
                             (outstanding work = {outstanding}; {})",
                            algo.stall_report()
                        );
                    }
                }
            }
        }
        // Requests and resolved messages are always flushed before the slot
        // they belong to can commit, so termination implies both are gone
        // (only untracked hub broadcasts may remain buffered; with every slot
        // below `hi` committed everywhere they carry no information).
        debug_assert_eq!(net.req.pending_total(), 0);
        algo.finish();

        if hi < n {
            // Gate the next epoch's registration: every rank must observe
            // this epoch's quiescence before anyone re-arms the detector,
            // or a slow rank could wait on a counter already re-raised.
            net.comm.barrier();
            if let Some(store) = store {
                let (edges, bytes) = algo
                    .sink_mark()
                    .unwrap_or_else(|e| panic!("rank {rank}: checkpoint sink flush failed: {e}"));
                let mut payload = Vec::new();
                algo.snapshot(hi, &mut payload);
                store
                    .save(epoch, hi, edges, bytes, &payload)
                    .unwrap_or_else(|e| {
                        panic!("rank {rank}: writing checkpoint for epoch {epoch} failed: {e}")
                    });
            }
        }
    }
    algo
}

/// Drain all currently pending packets in one batched receive; returns
/// whether any arrived. Packet buffers go back to their senders' pools.
fn service<T, A>(algo: &mut A, net: &mut Net<'_, A::Msg, T>, rxq: &mut Vec<Packet<A::Msg>>) -> bool
where
    T: Transport<A::Msg>,
    A: Strategy,
{
    net.comm.drain_recv(rxq);
    let any = !rxq.is_empty();
    for mut pkt in rxq.drain(..) {
        algo.handle_msgs(net, pkt.src, &mut pkt.msgs);
        net.comm.recycle(pkt.src, pkt.msgs);
        algo.drain_local(net);
    }
    any
}
