//! The unified engine driver.
//!
//! Algorithms 3.1 and 3.2 are one message-driven state machine: sweep the
//! rank's nodes in ascending order, service incoming traffic every few
//! nodes, flush `resolved` buffers promptly (§3.5.2), park on an empty
//! queue instead of spinning, and loop until the global outstanding-work
//! detector reports quiescence. PR-1 carried that loop twice — once per
//! engine, copy-pasted and hard-wired to the concrete `pa_mpsim::Comm`.
//!
//! [`run`] is that loop written once, generic over
//!
//! * the [`Transport`] carrying the messages (threaded world, loopback,
//!   eventually a real MPI binding), and
//! * a [`Strategy`] supplying the algorithm-specific state machine: the
//!   `x = 1` two-field message path ([`super::engine1`]) and the general
//!   in-order-slots path ([`super::engine2`]) are thin impls.
//!
//! The loop structure — and with it the determinism argument (in-order
//! slot commits giving every attempt the sequential generator's exact
//! visibility) — therefore lives in exactly one place.

use pa_mpsim::{BufferedComm, Packet, Transport};

use crate::partition::Partition;
use crate::{GenOptions, Node};

/// The driver's communication bundle, handed to every [`Strategy`] hook.
///
/// Owns the two outgoing message buffers of §3.5 (requests and
/// resolutions, with their distinct flush disciplines) and the
/// termination handle; borrows the transport.
pub(super) struct Net<'t, M, T: Transport<M>> {
    pub comm: &'t mut T,
    req: BufferedComm<M>,
    res: BufferedComm<M>,
    term: pa_mpsim::TerminationHandle,
}

impl<'t, M: Send, T: Transport<M>> Net<'t, M, T> {
    /// Queue a `request`-class message for `dest` (flushed at sweep end).
    #[inline]
    pub fn send_req(&mut self, dest: usize, msg: M) {
        self.req.push(&mut *self.comm, dest, msg);
    }

    /// Queue a `resolved`-class message for `dest` (flushed after every
    /// processed batch — the §3.5.2 no-linger rule).
    #[inline]
    pub fn send_res(&mut self, dest: usize, msg: M) {
        self.res.push(&mut *self.comm, dest, msg);
    }

    /// Mark `n` units of outstanding work resolved.
    #[inline]
    pub fn complete(&self, n: u64) {
        self.term.complete(n);
    }

    fn flush_res(&mut self) {
        self.res.flush_all(&mut *self.comm);
    }

    fn flush_all(&mut self) {
        self.req.flush_all(&mut *self.comm);
        self.res.flush_all(&mut *self.comm);
    }
}

/// The algorithm-specific half of an engine; [`run`] supplies the loop.
///
/// Hook order per rank: [`Strategy::register`] (seed edges + pending-slot
/// count) → barrier → [`Strategy::attach_seed_node`] (the deterministic
/// first attachment) → sweep ([`Strategy::start_node`] +
/// [`Strategy::drain_local`] per node) → completion loop
/// ([`Strategy::handle_msgs`] on traffic) → [`Strategy::finish`].
pub(super) trait Strategy {
    /// The wire message type of this algorithm.
    type Msg: Send + 'static;

    /// Emit this rank's deterministic seed edges (the clique rows it
    /// owns) and return the number of *pending slots* to register with
    /// the termination detector.
    fn register(&mut self) -> u64;

    /// Commit the deterministic first attaching node (node `x`) if this
    /// rank owns it. Runs after the registration barrier, so completions
    /// are never observed before every rank has added its work.
    fn attach_seed_node<T: Transport<Self::Msg>>(&mut self, net: &mut Net<'_, Self::Msg, T>);

    /// Drive node `t` as far as it goes without remote answers.
    fn start_node<T: Transport<Self::Msg>>(&mut self, net: &mut Net<'_, Self::Msg, T>, t: Node);

    /// Cascade locally produced resolutions until quiescent.
    fn drain_local<T: Transport<Self::Msg>>(&mut self, net: &mut Net<'_, Self::Msg, T>);

    /// Process one received batch of messages (drain `msgs`).
    fn handle_msgs<T: Transport<Self::Msg>>(
        &mut self,
        net: &mut Net<'_, Self::Msg, T>,
        src: usize,
        msgs: &mut Vec<Self::Msg>,
    );

    /// Post-termination invariant checks (debug assertions).
    fn finish(&mut self) {}

    /// One-line progress summary (uncommitted slots, waiter-table depths)
    /// for the stall watchdog's report.
    fn stall_report(&self) -> String {
        String::new()
    }
}

/// Run `algo` to global quiescence on this rank; returns it with every
/// local slot committed and every waiter drained.
pub(super) fn run<P, T, A>(part: &P, x: u64, opts: &GenOptions, comm: &mut T, mut algo: A) -> A
where
    P: Partition,
    T: Transport<A::Msg>,
    A: Strategy,
{
    let rank = comm.rank();
    let mut net = Net {
        req: BufferedComm::new(comm.nranks(), opts.buffer_capacity),
        res: BufferedComm::new(comm.nranks(), opts.buffer_capacity),
        term: comm.termination(),
        comm,
    };

    // --- Initialization: seed edges and slot registration. ---
    let pending = algo.register();
    net.term.add(pending);
    // No rank may observe the counter before everyone registered.
    net.comm.barrier();
    algo.attach_seed_node(&mut net);

    // --- Generation sweep over local nodes in ascending order. ---
    let mut rxq: Vec<Packet<A::Msg>> = Vec::new();
    let mut since_service = 0usize;
    for t in part.nodes_of(rank).filter(|&t| t > x) {
        algo.start_node(&mut net, t);
        algo.drain_local(&mut net);
        since_service += 1;
        if since_service >= opts.service_interval {
            since_service = 0;
            service(&mut algo, &mut net, &mut rxq);
            // §3.5.2: resolved messages must not linger in buffers.
            net.flush_res();
            // Let other ranks advance their sweeps: on an oversubscribed
            // host this keeps per-rank progress in lockstep, as it would
            // be with one core per rank.
            std::thread::yield_now();
        }
    }
    // End-of-sweep flush: requests may now wait for nobody.
    net.flush_all();

    // --- Completion loop: service traffic until global quiescence. ---
    // Iterations that made progress flush immediately; quiescent ranks
    // only re-scan their buffers every `idle_flush_interval` waits, and
    // park on the transport instead of spinning (see the Transport
    // receive contract).
    //
    // The stall watchdog measures *global* progress through the shared
    // outstanding-work counter: as long as any rank commits slots the
    // counter moves and every rank's timer resets, so only a genuinely
    // wedged world (e.g. a message lost by an unreliable transport with
    // recovery off) trips it — and then it trips on every rank, which is
    // what lets the scoped world join instead of hanging.
    let mut watchdog = opts
        .stall_timeout
        .map(|limit| (std::time::Instant::now(), net.term.outstanding(), limit));
    let mut idle_iters = 0usize;
    while !net.term.is_done() {
        if service(&mut algo, &mut net, &mut rxq) {
            idle_iters = 0;
            net.flush_all();
            if let Some((last_progress, _, _)) = &mut watchdog {
                *last_progress = std::time::Instant::now();
            }
        } else if !net.term.is_done() {
            idle_iters += 1;
            if idle_iters >= opts.idle_flush_interval {
                idle_iters = 0;
                net.flush_all();
            }
            if let Some(pkt) = net.comm.recv_timeout(opts.idle_wait) {
                idle_iters = 0;
                let mut msgs = pkt.msgs;
                algo.handle_msgs(&mut net, pkt.src, &mut msgs);
                net.comm.recycle(pkt.src, msgs);
                algo.drain_local(&mut net);
                net.flush_all();
                if let Some((last_progress, _, _)) = &mut watchdog {
                    *last_progress = std::time::Instant::now();
                }
            } else if let Some((last_progress, last_outstanding, limit)) = &mut watchdog {
                let outstanding = net.term.outstanding();
                if outstanding != *last_outstanding {
                    *last_outstanding = outstanding;
                    *last_progress = std::time::Instant::now();
                } else if last_progress.elapsed() >= *limit {
                    let stats = net.comm.stats();
                    eprintln!(
                        "stall watchdog: rank {rank} made no progress for {limit:?}; \
                         outstanding={outstanding} {} msgs_sent={} msgs_recv={} \
                         faults_injected={} retransmitted={} deduped={}",
                        algo.stall_report(),
                        stats.msgs_sent,
                        stats.msgs_recv,
                        stats.faults_injected,
                        stats.retransmitted,
                        stats.deduped,
                    );
                    panic!(
                        "stall watchdog fired on rank {rank}: no progress for {limit:?} \
                         (outstanding work = {outstanding}; {})",
                        algo.stall_report()
                    );
                }
            }
        }
    }
    // Requests and resolved messages are always flushed before the slot
    // they belong to can commit, so termination implies both are gone
    // (only untracked hub broadcasts may remain buffered; with every slot
    // committed everywhere they carry no information — drop them).
    debug_assert_eq!(net.req.pending_total(), 0);
    algo.finish();
    algo
}

/// Drain all currently pending packets in one batched receive; returns
/// whether any arrived. Packet buffers go back to their senders' pools.
fn service<T, A>(algo: &mut A, net: &mut Net<'_, A::Msg, T>, rxq: &mut Vec<Packet<A::Msg>>) -> bool
where
    T: Transport<A::Msg>,
    A: Strategy,
{
    net.comm.drain_recv(rxq);
    let any = !rxq.is_empty();
    for mut pkt in rxq.drain(..) {
        algo.handle_msgs(net, pkt.src, &mut pkt.msgs);
        net.comm.recycle(pkt.src, pkt.msgs);
        algo.drain_local(net);
    }
    any
}
