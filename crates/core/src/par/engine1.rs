//! The `x = 1` parallel engine — Algorithm 3.1, exactly as the paper
//! states it.
//!
//! Structurally a simplification of the general engine: one attachment
//! slot per node, no duplicate checks (a single edge cannot collide), and
//! the two-field message types `⟨request, t, k⟩` / `⟨resolved, t, v⟩`.
//! Because no retries exist, the generated edge set is a pure function of
//! the seed — bit-identical for every rank count and partitioning scheme
//! — which the test suite exploits heavily.

use std::collections::VecDeque;

use pa_graph::EdgeList;
use pa_mpsim::{BufferedComm, Comm, Packet, TerminationHandle};

use super::msg::Msg1;
use super::output::{EngineCounters, RankOutput};
use super::waiters::{Taken, WaiterTable};
use crate::partition::Partition;
use crate::{GenOptions, Node, PaConfig, NILL};

#[derive(Debug, Clone, Copy)]
enum Waiter {
    Local { t: Node },
    Remote { t: Node, src: usize },
}

pub(super) struct Engine1<'a, P: Partition> {
    cfg: &'a PaConfig,
    part: &'a P,
    rank: usize,
    /// `F_t` per local node (by local index).
    f: Vec<Node>,
    waiters: WaiterTable<Waiter>,
    local_events: VecDeque<(Node, Node)>,
    /// Reusable scratch for batched packet receives.
    rxq: Vec<Packet<Msg1>>,
    req_buf: BufferedComm<Msg1>,
    res_buf: BufferedComm<Msg1>,
    term: TerminationHandle,
    edges: EdgeList,
    counters: EngineCounters,
}

impl<'a, P: Partition> Engine1<'a, P> {
    pub(super) fn run(
        cfg: &'a PaConfig,
        part: &'a P,
        opts: &GenOptions,
        comm: &mut Comm<Msg1>,
    ) -> RankOutput {
        assert_eq!(cfg.x, 1, "Algorithm 3.1 requires x = 1");
        let rank = comm.rank();
        let size = part.size_of(rank) as usize;
        let mut engine = Engine1 {
            cfg,
            part,
            rank,
            f: vec![NILL; size],
            waiters: WaiterTable::new(size),
            local_events: VecDeque::new(),
            rxq: Vec::new(),
            req_buf: BufferedComm::new(comm.nranks(), opts.buffer_capacity),
            res_buf: BufferedComm::new(comm.nranks(), opts.buffer_capacity),
            term: comm.termination(),
            edges: EdgeList::with_capacity(size),
            counters: EngineCounters {
                nodes: size as u64,
                ..Default::default()
            },
        };
        engine.generate(comm, opts);
        RankOutput {
            rank,
            edges: engine.edges,
            counters: engine.counters,
            comm: comm.stats().clone(),
        }
    }

    fn generate(&mut self, comm: &mut Comm<Msg1>, opts: &GenOptions) {
        // Node 0 contributes no slot; every other local node one.
        let seeds_here = u64::from(self.part.rank_of(0) == self.rank);
        self.term.add(self.part.size_of(self.rank) - seeds_here);
        comm.barrier();

        // Node 1 attaches to node 0 (the x = 1 boundary case).
        if self.part.num_nodes() > 1 && self.part.rank_of(1) == self.rank {
            self.commit(comm, 1, 0);
        }

        let mut since_service = 0usize;
        let part = self.part;
        for t in part.nodes_of(self.rank).filter(|&t| t > 1) {
            self.start_node(comm, t);
            self.drain_local(comm);
            since_service += 1;
            if since_service >= opts.service_interval {
                since_service = 0;
                self.service(comm);
                self.res_buf.flush_all(comm);
                // Keep per-rank sweep progress in lockstep when ranks
                // share cores (see engine2).
                std::thread::yield_now();
            }
        }
        self.req_buf.flush_all(comm);
        self.res_buf.flush_all(comm);

        // Completion loop; flush policy as in engine2: progress flushes
        // immediately, idle iterations only every `idle_flush_interval`.
        let mut idle_iters = 0usize;
        while !self.term.is_done() {
            if self.service(comm) {
                idle_iters = 0;
                self.req_buf.flush_all(comm);
                self.res_buf.flush_all(comm);
            } else if !self.term.is_done() {
                idle_iters += 1;
                if idle_iters >= opts.idle_flush_interval {
                    idle_iters = 0;
                    self.req_buf.flush_all(comm);
                    self.res_buf.flush_all(comm);
                }
                if let Some(pkt) = comm.recv_timeout(opts.idle_wait) {
                    idle_iters = 0;
                    let mut msgs = pkt.msgs;
                    self.handle_msgs(comm, pkt.src, &mut msgs);
                    comm.recycle(pkt.src, msgs);
                    self.drain_local(comm);
                    self.req_buf.flush_all(comm);
                    self.res_buf.flush_all(comm);
                }
            }
        }
        debug_assert!(self.waiters.is_empty());
    }

    /// Algorithm 3.1 lines 3–9 for node `t`.
    fn start_node(&mut self, comm: &mut Comm<Msg1>, t: Node) {
        let c = crate::seq::draw_choice(self.cfg.seed, self.cfg.p, 1, t, 0, 0);
        if c.direct {
            self.counters.direct_edges += 1;
            self.commit(comm, t, c.k);
            return;
        }
        let owner = self.part.rank_of(c.k);
        if owner == self.rank {
            let kslot = self.part.local_index(c.k) as usize;
            let fk = self.f[kslot];
            if fk == NILL {
                self.counters.local_deferred += 1;
                self.waiters.push(kslot, Waiter::Local { t });
                self.note_waiter_high_water();
            } else {
                self.counters.local_immediate += 1;
                self.counters.copy_edges += 1;
                self.commit(comm, t, fk);
            }
        } else {
            self.counters.requests_sent += 1;
            self.req_buf.push(comm, owner, Msg1::Request { t, k: c.k });
        }
    }

    #[inline]
    fn note_waiter_high_water(&mut self) {
        self.counters.max_queued_waiters = self.counters.max_queued_waiters.max(self.waiters.len());
    }

    /// Set `F_t = v`, emit the edge and notify waiters (lines 16–19).
    fn commit(&mut self, comm: &mut Comm<Msg1>, t: Node, v: Node) {
        let slot = self.part.local_index(t) as usize;
        debug_assert_eq!(self.f[slot], NILL);
        self.f[slot] = v;
        self.edges.push(t, v);
        self.term.complete(1);
        match self.waiters.take(slot) {
            Taken::None => {}
            Taken::One(w) => self.notify(comm, w, v),
            Taken::Many(list) => {
                for &w in &list {
                    self.notify(comm, w, v);
                }
                self.waiters.recycle(list);
            }
        }
    }

    #[inline]
    fn notify(&mut self, comm: &mut Comm<Msg1>, w: Waiter, v: Node) {
        match w {
            Waiter::Remote { t, src } => {
                self.res_buf.push(comm, src, Msg1::Resolved { t, v });
            }
            Waiter::Local { t } => self.local_events.push_back((t, v)),
        }
    }

    fn drain_local(&mut self, comm: &mut Comm<Msg1>) {
        while let Some((t, v)) = self.local_events.pop_front() {
            self.counters.copy_edges += 1;
            self.commit(comm, t, v);
        }
    }

    fn handle_msgs(&mut self, comm: &mut Comm<Msg1>, src: usize, msgs: &mut Vec<Msg1>) {
        for msg in msgs.drain(..) {
            match msg {
                Msg1::Request { t, k } => {
                    // Lines 11–15.
                    debug_assert_eq!(self.part.rank_of(k), self.rank);
                    let kslot = self.part.local_index(k) as usize;
                    let fk = self.f[kslot];
                    if fk == NILL {
                        self.counters.requests_queued += 1;
                        self.waiters.push(kslot, Waiter::Remote { t, src });
                        self.note_waiter_high_water();
                    } else {
                        self.counters.requests_served += 1;
                        self.res_buf.push(comm, src, Msg1::Resolved { t, v: fk });
                    }
                }
                Msg1::Resolved { t, v } => {
                    debug_assert_eq!(self.part.rank_of(t), self.rank);
                    self.counters.copy_edges += 1;
                    self.commit(comm, t, v);
                }
            }
        }
    }

    /// Batched receive of all pending packets; buffers go back to their
    /// senders' pools. Returns whether any packet arrived.
    fn service(&mut self, comm: &mut Comm<Msg1>) -> bool {
        let mut q = std::mem::take(&mut self.rxq);
        comm.drain_recv(&mut q);
        let any = !q.is_empty();
        for mut pkt in q.drain(..) {
            self.handle_msgs(comm, pkt.src, &mut pkt.msgs);
            comm.recycle(pkt.src, pkt.msgs);
            self.drain_local(comm);
        }
        self.rxq = q;
        any
    }
}
