//! The general parallel engine — Algorithm 3.2 (`x ≥ 1`).
//!
//! Every rank sweeps its own nodes in ascending order. For each edge
//! `(t, e)` it draws the copy-model choice; direct choices commit
//! immediately, copy choices either resolve locally, park in a local
//! queue, or become a `request` message to the owner of `k`. Incoming
//! requests are answered immediately when the slot is known or parked in
//! a per-slot queue otherwise; a commit drains the slot's queue, sending
//! `resolved` messages (buffered, with the §3.5.2 flush discipline).
//! Duplicate edges are rejected both at creation (line 7) and on late
//! resolution (line 22), re-drawing with an incremented attempt counter.
//!
//! Termination: every uncommitted slot is registered with the global
//! outstanding-work detector; a `request` in flight always belongs to an
//! uncommitted slot, so "outstanding = 0" implies no meaningful traffic
//! remains and all ranks can stop (see `pa-mpsim` docs).

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use pa_mpsim::{BufferedComm, Comm, TerminationHandle};

use super::msg::Msg;
use super::output::EngineCounters;
use super::sink::EdgeSink;
use crate::partition::Partition;
use crate::{Node, PaConfig, GenOptions, NILL};

/// Someone waiting for a local slot to resolve.
#[derive(Debug, Clone, Copy)]
enum Waiter {
    /// A slot owned by this same rank.
    Local { t: Node, e: u32 },
    /// A slot owned by rank `src` (answer with a `resolved` message).
    Remote { t: Node, e: u32, src: usize },
}

/// How long the completion loop blocks on an empty queue before
/// re-checking the termination predicate.
const IDLE_WAIT: Duration = Duration::from_micros(200);

pub(super) struct Engine<'a, P: Partition, S: EdgeSink> {
    cfg: &'a PaConfig,
    part: &'a P,
    rank: usize,
    /// Flattened `F_t(e)` slots for local nodes: `local_index(t)·x + e`.
    f: Vec<Node>,
    /// Per-slot retry counters (`attempt` in the draw key).
    attempts: Vec<u32>,
    /// Waiters per local slot index.
    queues: HashMap<u64, Vec<Waiter>>,
    queued_waiters: u64,
    /// Locally produced resolutions awaiting processing `(t, e, v)`.
    local_events: VecDeque<(Node, u32, Node)>,
    req_buf: BufferedComm<Msg>,
    res_buf: BufferedComm<Msg>,
    term: TerminationHandle,
    edges: S,
    counters: EngineCounters,
}

impl<'a, P: Partition, S: EdgeSink> Engine<'a, P, S> {
    /// Run the engine on this rank, delivering every created edge to
    /// `sink`; returns the sink and the algorithm counters.
    pub(super) fn run(
        cfg: &'a PaConfig,
        part: &'a P,
        opts: &GenOptions,
        comm: &mut Comm<Msg>,
        sink: S,
    ) -> (S, EngineCounters) {
        let rank = comm.rank();
        let x = cfg.x;
        let size = part.size_of(rank);
        let slots = (size * x) as usize;
        let mut engine = Engine {
            cfg,
            part,
            rank,
            f: vec![NILL; slots],
            attempts: vec![0; slots],
            queues: HashMap::new(),
            queued_waiters: 0,
            local_events: VecDeque::new(),
            req_buf: BufferedComm::new(comm.nranks(), opts.buffer_capacity),
            res_buf: BufferedComm::new(comm.nranks(), opts.buffer_capacity),
            term: comm.termination(),
            edges: sink,
            counters: EngineCounters {
                nodes: size,
                ..Default::default()
            },
        };
        engine.generate(comm, opts);
        (engine.edges, engine.counters)
    }

    fn generate(&mut self, comm: &mut Comm<Msg>, opts: &GenOptions) {
        let x = self.cfg.x;
        // --- Initialization: seed clique and slot registration. ---
        // Clique edges are emitted by the owner of their higher endpoint.
        let local_seeds = (0..x).filter(|&v| self.part.rank_of(v) == self.rank);
        let mut seeds_here = 0u64;
        for i in local_seeds {
            seeds_here += 1;
            for j in 0..i {
                self.edges.emit(i, j);
            }
        }
        // Every local node t >= x owns x yet-uncommitted slots.
        let pending_slots = (self.part.size_of(self.rank) - seeds_here) * x;
        self.term.add(pending_slots);
        // No rank may observe the counter before everyone registered.
        comm.barrier();

        // Node x attaches deterministically to all seed nodes.
        if self.part.num_nodes() > x && self.part.rank_of(x) == self.rank {
            for e in 0..x {
                self.commit(comm, x, e as u32, e);
            }
        }

        // --- Generation sweep over local nodes in ascending order. ---
        let mut since_service = 0usize;
        let part = self.part;
        for t in part.nodes_of(self.rank).filter(|&t| t > x) {
            for e in 0..x as u32 {
                self.start_edge(comm, t, e);
            }
            self.drain_local(comm);
            since_service += 1;
            if since_service >= opts.service_interval {
                since_service = 0;
                self.service(comm);
                // §3.5.2: resolved messages must not linger in buffers.
                self.res_buf.flush_all(comm);
                // Let other ranks advance their sweeps: on an
                // oversubscribed host this keeps the per-rank progress in
                // lockstep, as it would be with one core per rank.
                std::thread::yield_now();
            }
        }
        // End-of-sweep flush: requests may now wait for nobody.
        self.req_buf.flush_all(comm);
        self.res_buf.flush_all(comm);

        // --- Completion loop: service traffic until global quiescence. ---
        while !self.term.is_done() {
            let progressed = self.service(comm);
            self.req_buf.flush_all(comm);
            self.res_buf.flush_all(comm);
            if !progressed && !self.term.is_done() {
                if let Some(pkt) = comm.recv_timeout(IDLE_WAIT) {
                    self.handle_packet(comm, pkt.src, pkt.msgs);
                    self.drain_local(comm);
                    self.req_buf.flush_all(comm);
                    self.res_buf.flush_all(comm);
                }
            }
        }
        debug_assert_eq!(self.req_buf.pending_total(), 0);
        debug_assert_eq!(self.res_buf.pending_total(), 0);
        debug_assert!(self.queues.is_empty(), "waiters left after termination");
    }

    /// Slot index of `(t, e)` on this rank.
    #[inline]
    fn slot(&self, t: Node, e: u32) -> usize {
        (self.part.local_index(t) * self.cfg.x) as usize + e as usize
    }

    /// Does `t`'s committed target row already contain `v`?
    #[inline]
    fn row_contains(&self, t: Node, v: Node) -> bool {
        let row = (self.part.local_index(t) * self.cfg.x) as usize;
        self.f[row..row + self.cfg.x as usize].contains(&v)
    }

    /// Drive edge `(t, e)` forward from its current attempt until it
    /// commits, parks in a queue, or goes remote.
    fn start_edge(&mut self, comm: &mut Comm<Msg>, t: Node, e: u32) {
        let x = self.cfg.x;
        loop {
            let slot = self.slot(t, e);
            let attempt = self.attempts[slot];
            self.attempts[slot] += 1;
            let c = crate::seq::draw_choice(self.cfg.seed, self.cfg.p, x, t, e, attempt);
            if c.direct {
                // Alg. 3.2 lines 6–10: connect to k unless duplicate.
                if self.row_contains(t, c.k) {
                    self.counters.duplicate_retries += 1;
                    continue;
                }
                self.counters.direct_edges += 1;
                self.commit(comm, t, e, c.k);
                return;
            }
            // Copy branch: we need F_k(l).
            let owner = self.part.rank_of(c.k);
            if owner == self.rank {
                let kslot = self.slot(c.k, c.l as u32);
                let fk = self.f[kslot];
                if fk == NILL {
                    self.counters.local_deferred += 1;
                    self.push_waiter(kslot as u64, Waiter::Local { t, e });
                    return;
                }
                if self.row_contains(t, fk) {
                    self.counters.duplicate_retries += 1;
                    continue;
                }
                self.counters.local_immediate += 1;
                self.counters.copy_edges += 1;
                self.commit(comm, t, e, fk);
                return;
            }
            // Alg. 3.2 line 14: ask the owner of k.
            self.counters.requests_sent += 1;
            self.req_buf.push(
                comm,
                owner,
                Msg::Request {
                    t,
                    e,
                    k: c.k,
                    l: c.l as u32,
                },
            );
            return;
        }
    }

    fn push_waiter(&mut self, slot: u64, w: Waiter) {
        self.queues.entry(slot).or_default().push(w);
        self.queued_waiters += 1;
        self.counters.max_queued_waiters =
            self.counters.max_queued_waiters.max(self.queued_waiters);
    }

    /// Record `F_t(e) = v`, emit the edge, and notify waiters.
    fn commit(&mut self, comm: &mut Comm<Msg>, t: Node, e: u32, v: Node) {
        let slot = self.slot(t, e);
        debug_assert_eq!(self.f[slot], NILL, "double commit of ({t},{e})");
        debug_assert!(!self.row_contains(t, v), "duplicate committed at ({t},{e})");
        self.f[slot] = v;
        self.edges.emit(t, v);
        self.term.complete(1);
        if let Some(waiters) = self.queues.remove(&(slot as u64)) {
            self.queued_waiters -= waiters.len() as u64;
            for w in waiters {
                match w {
                    Waiter::Remote { t, e, src } => {
                        self.res_buf.push(comm, src, Msg::Resolved { t, e, v });
                    }
                    Waiter::Local { t, e } => {
                        self.local_events.push_back((t, e, v));
                    }
                }
            }
        }
    }

    /// A resolution for local slot `(t, e)`: commit unless duplicate
    /// (Alg. 3.2 lines 21–29).
    fn handle_resolved(&mut self, comm: &mut Comm<Msg>, t: Node, e: u32, v: Node) {
        if self.row_contains(t, v) {
            self.counters.duplicate_retries += 1;
            self.start_edge(comm, t, e);
        } else {
            self.counters.copy_edges += 1;
            self.commit(comm, t, e, v);
        }
    }

    /// Cascade local resolutions until quiescent.
    fn drain_local(&mut self, comm: &mut Comm<Msg>) {
        while let Some((t, e, v)) = self.local_events.pop_front() {
            self.handle_resolved(comm, t, e, v);
        }
    }

    fn handle_packet(&mut self, comm: &mut Comm<Msg>, src: usize, msgs: Vec<Msg>) {
        for msg in msgs {
            match msg {
                Msg::Request { t, e, k, l } => {
                    // Alg. 3.2 lines 16–20.
                    debug_assert_eq!(self.part.rank_of(k), self.rank);
                    let kslot = self.slot(k, l);
                    let fk = self.f[kslot];
                    if fk == NILL {
                        self.counters.requests_queued += 1;
                        self.push_waiter(kslot as u64, Waiter::Remote { t, e, src });
                    } else {
                        self.counters.requests_served += 1;
                        self.res_buf.push(comm, src, Msg::Resolved { t, e, v: fk });
                    }
                }
                Msg::Resolved { t, e, v } => {
                    debug_assert_eq!(self.part.rank_of(t), self.rank);
                    self.handle_resolved(comm, t, e, v);
                }
            }
        }
    }

    /// Drain all currently pending packets; returns whether any arrived.
    fn service(&mut self, comm: &mut Comm<Msg>) -> bool {
        let mut any = false;
        while let Some(pkt) = comm.try_recv() {
            any = true;
            self.handle_packet(comm, pkt.src, pkt.msgs);
            self.drain_local(comm);
        }
        any
    }
}
