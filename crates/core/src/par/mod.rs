//! Distributed-memory parallel PA generation (paper §3.2–§3.3).
//!
//! Entry points:
//!
//! * [`generate`] — Algorithm 3.2, the general `x ≥ 1` engine.
//! * [`generate_x1`] — Algorithm 3.1, the dedicated `x = 1` engine with
//!   the paper's two-field messages.
//! * [`generate3`] — the communication-free engine: every copy chain is
//!   recomputed locally from the counter-based draws, with zero
//!   request/resolved traffic.
//! * [`generate_with`] / [`generate3_with`] — the same over a
//!   caller-supplied [`Partition`] (for custom layouts beyond
//!   UCP/LCP/RRP/BCP).
//! * [`generate_streaming`] / [`generate_x1_streaming`] /
//!   [`generate3_streaming`] — the same engines delivering every edge to
//!   a caller-built [`EdgeSink`] instead of materializing per-rank edge
//!   lists.
//!
//! Architecturally the module is three layers:
//!
//! * `driver` — the single service/flush/park/termination loop shared
//!   by all algorithms, generic over the transport and the sink;
//! * `engine1` / `engine2` / `engine3` — the per-node state machines
//!   (Algorithms 3.1, 3.2, and local chain recomputation), plugged into
//!   the driver as strategies;
//! * [`EdgeSink`] — where edges go: materialized lists, counters, degree
//!   folds, or streaming disk writers.
//!
//! Multi-rank runs spawn a `pa-mpsim` world (one thread per rank);
//! single-rank runs execute on the calling thread over a thread-free
//! [`pa_mpsim::LoopbackTransport`].

mod checkpoint;
mod degrees;
mod driver;
mod msg;
mod output;
mod restart;
mod sink;
mod strategy;

pub use checkpoint::{CheckpointMeta, CheckpointStore, SavedCheckpoint};
pub use degrees::{distributed_degrees, merge_degrees};
pub use msg::{Msg, Msg1};
pub use output::{EngineCounters, ParallelOutput, RankOutput};
pub use restart::WorldCheckpoint;
pub use sink::{CountSink, DegreeCountSink, EdgeSink, StreamingWriterSink};

use crate::partition::{self, AnyPartition, Partition, Scheme};
use crate::{GenOptions, PaConfig};
use pa_graph::EdgeList;
use pa_mpsim::{CommStats, FaultTransport, LoopbackTransport, Transport, World};

/// Run a strategy over a transport, wrapping it in a fault-injecting
/// decorator first when `opts.fault_plan` asks for one; returns the
/// finished strategy and the transport's final statistics.
fn drive<P, T, A>(part: &P, x: u64, opts: &GenOptions, mut comm: T, algo: A) -> (A, CommStats)
where
    P: Partition,
    A: strategy::Strategy,
    A::Msg: Clone,
    T: Transport<A::Msg>,
{
    match opts.fault_plan {
        Some(plan) => {
            let mut faulty = FaultTransport::new(comm, plan);
            let algo = driver::run(part, x, opts, &mut faulty, algo);
            (algo, faulty.into_stats())
        }
        None => {
            let algo = driver::run(part, x, opts, &mut comm, algo);
            (algo, comm.into_stats())
        }
    }
}

/// Run the general (Alg. 3.2) strategy on every rank of `part`,
/// collecting `(sink, counters, comm stats)` in rank order. `P = 1` runs
/// on the calling thread over a loopback transport; larger worlds spawn
/// one thread per rank.
fn run_general<P, S, F>(
    cfg: &PaConfig,
    part: &P,
    opts: &GenOptions,
    make_sink: F,
) -> Vec<(S, output::EngineCounters, CommStats)>
where
    P: Partition,
    S: EdgeSink + Send,
    F: Fn(usize) -> S + Send + Sync,
{
    let nranks = part.nranks();
    if nranks == 1 {
        let algo = strategy::General::new(cfg, part, 0, 1, opts, make_sink(0));
        let (algo, stats) = drive(part, cfg.x, opts, LoopbackTransport::new(), algo);
        let (sink, counters) = algo.into_parts();
        vec![(sink, counters, stats)]
    } else {
        World::new(nranks).run(|comm| {
            let rank = comm.rank();
            let algo = strategy::General::new(cfg, part, rank, nranks, opts, make_sink(rank));
            let (algo, stats) = drive(part, cfg.x, opts, comm, algo);
            let (sink, counters) = algo.into_parts();
            (sink, counters, stats)
        })
    }
}

/// Run the communication-free chain-recomputation strategy on every rank
/// of `part`; same transport selection as [`run_general`].
fn run_general3<P, S, F>(
    cfg: &PaConfig,
    part: &P,
    opts: &GenOptions,
    make_sink: F,
) -> Vec<(S, output::EngineCounters, CommStats)>
where
    P: Partition,
    S: EdgeSink + Send,
    F: Fn(usize) -> S + Send + Sync,
{
    let nranks = part.nranks();
    if nranks == 1 {
        let algo = strategy::Chain::new(cfg, part, 0, opts, make_sink(0));
        let (algo, stats) = drive(part, cfg.x, opts, LoopbackTransport::new(), algo);
        let (sink, counters) = algo.into_parts();
        vec![(sink, counters, stats)]
    } else {
        World::new(nranks).run(|comm| {
            let rank = comm.rank();
            let algo = strategy::Chain::new(cfg, part, rank, opts, make_sink(rank));
            let (algo, stats) = drive(part, cfg.x, opts, comm, algo);
            let (sink, counters) = algo.into_parts();
            (sink, counters, stats)
        })
    }
}

/// Run the `x = 1` (Alg. 3.1) strategy on every rank of `part`; same
/// transport selection as [`run_general`].
fn run_x1<P, S, F>(
    cfg: &PaConfig,
    part: &P,
    opts: &GenOptions,
    make_sink: F,
) -> Vec<(S, output::EngineCounters, CommStats)>
where
    P: Partition,
    S: EdgeSink + Send,
    F: Fn(usize) -> S + Send + Sync,
{
    let nranks = part.nranks();
    if nranks == 1 {
        let algo = strategy::X1::new(cfg, part, 0, opts, make_sink(0));
        let (algo, stats) = drive(part, cfg.x, opts, LoopbackTransport::new(), algo);
        let (sink, counters) = algo.into_parts();
        vec![(sink, counters, stats)]
    } else {
        World::new(nranks).run(|comm| {
            let rank = comm.rank();
            let algo = strategy::X1::new(cfg, part, rank, opts, make_sink(rank));
            let (algo, stats) = drive(part, cfg.x, opts, comm, algo);
            let (sink, counters) = algo.into_parts();
            (sink, counters, stats)
        })
    }
}

fn to_rank_outputs(parts: Vec<(EdgeList, output::EngineCounters, CommStats)>) -> Vec<RankOutput> {
    parts
        .into_iter()
        .enumerate()
        .map(|(rank, (edges, counters, comm))| RankOutput {
            rank,
            edges,
            counters,
            comm,
        })
        .collect()
}

/// Generate a PA network with Algorithm 3.2 on `nranks` ranks using one
/// of the standard partitioning schemes.
///
/// # Panics
///
/// Panics on invalid `cfg`/`opts` or `nranks == 0`.
pub fn generate(
    cfg: &PaConfig,
    scheme: Scheme,
    nranks: usize,
    opts: &GenOptions,
) -> ParallelOutput {
    let part = partition::build(scheme, cfg.n, nranks);
    let mut out = generate_with(cfg, &part, opts);
    out.scheme = Some(scheme);
    out
}

/// Generate with Algorithm 3.2 over an explicit partition.
///
/// # Panics
///
/// Panics on invalid `cfg`/`opts`, or if the partition's node count does
/// not match `cfg.n`.
pub fn generate_with<P: Partition>(cfg: &PaConfig, part: &P, opts: &GenOptions) -> ParallelOutput {
    cfg.validate();
    opts.validate_for(cfg.n);
    assert_eq!(
        part.num_nodes(),
        cfg.n,
        "partition does not cover cfg.n nodes"
    );
    let parts = run_general(cfg, part, opts, |rank| {
        EdgeList::with_capacity((part.size_of(rank) * cfg.x + cfg.x * cfg.x) as usize)
    });
    ParallelOutput {
        cfg: *cfg,
        scheme: None,
        ranks: to_rank_outputs(parts),
    }
}

/// Generate a PA network with the communication-free engine (engine3) on
/// `nranks` ranks: every copy dependency is recomputed locally from the
/// counter-based draws instead of resolved over the wire, so no rank
/// sends a single algorithm message. Bit-identical to [`generate`] for
/// every rank count, scheme, and transport.
///
/// # Panics
///
/// Panics on invalid `cfg`/`opts` or `nranks == 0`.
pub fn generate3(
    cfg: &PaConfig,
    scheme: Scheme,
    nranks: usize,
    opts: &GenOptions,
) -> ParallelOutput {
    let part = partition::build(scheme, cfg.n, nranks);
    let mut out = generate3_with(cfg, &part, opts);
    out.scheme = Some(scheme);
    out
}

/// Generate with the communication-free engine over an explicit
/// partition.
///
/// # Panics
///
/// Panics on invalid `cfg`/`opts`, or if the partition's node count does
/// not match `cfg.n`.
pub fn generate3_with<P: Partition>(cfg: &PaConfig, part: &P, opts: &GenOptions) -> ParallelOutput {
    cfg.validate();
    opts.validate_for(cfg.n);
    assert_eq!(
        part.num_nodes(),
        cfg.n,
        "partition does not cover cfg.n nodes"
    );
    let parts = run_general3(cfg, part, opts, |rank| {
        EdgeList::with_capacity((part.size_of(rank) * cfg.x + cfg.x * cfg.x) as usize)
    });
    ParallelOutput {
        cfg: *cfg,
        scheme: None,
        ranks: to_rank_outputs(parts),
    }
}

/// One rank's result from a streaming run: the caller's sink plus the
/// usual traffic and algorithm reports.
#[derive(Debug, Clone)]
pub struct StreamRankOutput<S> {
    /// The rank id.
    pub rank: usize,
    /// The caller-provided sink, after receiving every edge of this
    /// rank's partition.
    pub sink: S,
    /// Transport statistics.
    pub comm: CommStats,
    /// Algorithm counters.
    pub counters: EngineCounters,
}

fn to_stream_outputs<S>(
    parts: Vec<(S, output::EngineCounters, CommStats)>,
) -> Vec<StreamRankOutput<S>> {
    parts
        .into_iter()
        .enumerate()
        .map(|(rank, (sink, counters, comm))| StreamRankOutput {
            rank,
            sink,
            counters,
            comm,
        })
        .collect()
}

/// Generate with Algorithm 3.2, streaming each rank's edges into a sink
/// built by `make_sink(rank)` instead of materializing edge lists — the
/// "generate on the fly and analyze without disk I/O" mode of §3.2.
/// Resident memory is the engine state plus whatever the sink keeps:
/// `O(n/P)` slot words per rank, not `O(m)` edges.
///
/// # Panics
///
/// Panics on invalid `cfg`/`opts` or `nranks == 0`.
///
/// # Example
///
/// ```
/// use pa_core::{PaConfig, par, partition::Scheme};
///
/// // Degree distribution of a network without storing a single edge.
/// let cfg = PaConfig::new(20_000, 3).with_seed(9);
/// let outs = par::generate_streaming(&cfg, Scheme::Rrp, 4, &Default::default(),
///     |_rank| par::DegreeCountSink::new(cfg.n));
/// let deg = par::DegreeCountSink::merge(outs.into_iter().map(|o| o.sink));
/// assert_eq!(deg.iter().sum::<u64>(), 2 * cfg.expected_edges());
/// ```
pub fn generate_streaming<S, F>(
    cfg: &PaConfig,
    scheme: Scheme,
    nranks: usize,
    opts: &GenOptions,
    make_sink: F,
) -> Vec<StreamRankOutput<S>>
where
    S: EdgeSink + Send,
    F: Fn(usize) -> S + Send + Sync,
{
    cfg.validate();
    opts.validate_for(cfg.n);
    let part = partition::build(scheme, cfg.n, nranks);
    to_stream_outputs(run_general(cfg, &part, opts, make_sink))
}

/// Generate with the communication-free engine, streaming each rank's
/// edges into a sink built by `make_sink(rank)` — the engine3 counterpart
/// of [`generate_streaming`].
///
/// # Panics
///
/// Panics on invalid `cfg`/`opts` or `nranks == 0`.
pub fn generate3_streaming<S, F>(
    cfg: &PaConfig,
    scheme: Scheme,
    nranks: usize,
    opts: &GenOptions,
    make_sink: F,
) -> Vec<StreamRankOutput<S>>
where
    S: EdgeSink + Send,
    F: Fn(usize) -> S + Send + Sync,
{
    cfg.validate();
    opts.validate_for(cfg.n);
    let part = partition::build(scheme, cfg.n, nranks);
    to_stream_outputs(run_general3(cfg, &part, opts, make_sink))
}

/// Generate with Algorithm 3.1 (requires `cfg.x == 1`), streaming each
/// rank's edges into a sink built by `make_sink(rank)`.
///
/// # Panics
///
/// Panics on invalid `cfg`/`opts`, `nranks == 0`, or `cfg.x != 1`.
pub fn generate_x1_streaming<S, F>(
    cfg: &PaConfig,
    scheme: Scheme,
    nranks: usize,
    opts: &GenOptions,
    make_sink: F,
) -> Vec<StreamRankOutput<S>>
where
    S: EdgeSink + Send,
    F: Fn(usize) -> S + Send + Sync,
{
    cfg.validate();
    opts.validate_for(cfg.n);
    assert_eq!(cfg.x, 1, "generate_x1 implements Algorithm 3.1 (x = 1)");
    let part: AnyPartition = partition::build(scheme, cfg.n, nranks);
    to_stream_outputs(run_x1(cfg, &part, opts, make_sink))
}

/// Run Algorithm 3.2 for **one rank of an external world**, over a
/// caller-supplied [`Transport`] — the entry point for multi-*process*
/// backends (`pa-net`'s `TcpTransport`, eventually real MPI), where each
/// OS process executes exactly one rank and the in-process world
/// spawning of [`generate_streaming`] does not apply.
///
/// The rank and world size come from the transport; the partition must
/// cover `cfg.n` nodes across `comm.nranks()` ranks. Edges stream into
/// `sink` exactly as in [`generate_streaming`]. The transport is
/// borrowed, not consumed, so the caller can keep using its collectives
/// afterwards (stats aggregation, output coordination); read the final
/// traffic counts from [`Transport::stats`].
///
/// # Panics
///
/// Panics on invalid `cfg`/`opts`, a partition/transport shape mismatch,
/// or when `opts.fault_plan` is set (fault injection wraps a transport
/// whole — apply it outside before calling).
pub fn generate_rank_streaming<P, S, T>(
    cfg: &PaConfig,
    part: &P,
    opts: &GenOptions,
    comm: &mut T,
    sink: S,
) -> (S, EngineCounters)
where
    P: Partition,
    S: EdgeSink,
    T: Transport<Msg>,
{
    cfg.validate();
    opts.validate_for(cfg.n);
    assert!(
        opts.fault_plan.is_none(),
        "fault injection must wrap the transport before generate_rank_streaming"
    );
    assert_eq!(
        part.num_nodes(),
        cfg.n,
        "partition does not cover cfg.n nodes"
    );
    assert_eq!(
        part.nranks(),
        comm.nranks(),
        "partition rank count does not match the transport world"
    );
    let algo = strategy::General::new(cfg, part, comm.rank(), comm.nranks(), opts, sink);
    let algo = driver::run(part, cfg.x, opts, comm, algo);
    algo.into_parts()
}

/// [`generate_rank_streaming`] with coordinated checkpoint/restart: when
/// `store` is given and `opts.checkpoint_interval` is set, every epoch
/// boundary writes an atomic per-rank checkpoint into the store; when
/// `resume` is given, the engine is restored from that saved epoch and
/// generation continues from the first label after its watermark.
///
/// The caller owns the surrounding recovery protocol: agreeing on a
/// common resume epoch across ranks (e.g. an `allreduce` over
/// [`CheckpointStore::latest`]), truncating part files back to the saved
/// `(edges, bytes)` watermark, and handing in a sink positioned at that
/// watermark (see [`StreamingWriterSink::resume`]).
///
/// # Panics
///
/// Panics as [`generate_rank_streaming`] does, and additionally when
/// `store`/`resume` are supplied without `opts.checkpoint_interval`, or
/// when the resumed checkpoint does not line up with the epoch grid.
pub fn generate_rank_streaming_recoverable<P, S, T>(
    cfg: &PaConfig,
    part: &P,
    opts: &GenOptions,
    comm: &mut T,
    sink: S,
    store: Option<&CheckpointStore>,
    resume: Option<&SavedCheckpoint>,
) -> (S, EngineCounters)
where
    P: Partition,
    S: EdgeSink,
    T: Transport<Msg>,
{
    cfg.validate();
    opts.validate_for(cfg.n);
    assert!(
        opts.fault_plan.is_none(),
        "fault injection must wrap the transport before generate_rank_streaming_recoverable"
    );
    assert!(
        (store.is_none() && resume.is_none()) || opts.checkpoint_interval.is_some(),
        "checkpoint store/resume require GenOptions::checkpoint_interval"
    );
    assert_eq!(
        part.num_nodes(),
        cfg.n,
        "partition does not cover cfg.n nodes"
    );
    assert_eq!(
        part.nranks(),
        comm.nranks(),
        "partition rank count does not match the transport world"
    );
    // Resuming keeps (and re-verifies) a paged store's spill files; a
    // fresh run must start from clean pages.
    let mut opts = opts.clone();
    opts.store = opts.store.with_resume(resume.is_some());
    let algo = strategy::General::new(cfg, part, comm.rank(), comm.nranks(), &opts, sink);
    let algo = driver::run_recoverable(part, cfg.x, &opts, comm, algo, store, resume);
    algo.into_parts()
}

/// Run the communication-free engine for **one rank of an external
/// world** — the engine3 counterpart of [`generate_rank_streaming`]. The
/// transport only ever carries the driver's collectives (barriers,
/// termination counting): engine3 sends zero algorithm messages.
///
/// # Panics
///
/// Panics on invalid `cfg`/`opts`, a partition/transport shape mismatch,
/// or when `opts.fault_plan` is set (fault injection wraps a transport
/// whole — apply it outside before calling).
pub fn generate_rank3_streaming<P, S, T>(
    cfg: &PaConfig,
    part: &P,
    opts: &GenOptions,
    comm: &mut T,
    sink: S,
) -> (S, EngineCounters)
where
    P: Partition,
    S: EdgeSink,
    T: Transport<Msg>,
{
    generate_rank3_streaming_recoverable(cfg, part, opts, comm, sink, None, None)
}

/// [`generate_rank3_streaming`] with coordinated checkpoint/restart —
/// the engine3 counterpart of [`generate_rank_streaming_recoverable`],
/// with the same store/resume protocol and caller obligations.
///
/// # Panics
///
/// Panics as [`generate_rank_streaming_recoverable`] does.
pub fn generate_rank3_streaming_recoverable<P, S, T>(
    cfg: &PaConfig,
    part: &P,
    opts: &GenOptions,
    comm: &mut T,
    sink: S,
    store: Option<&CheckpointStore>,
    resume: Option<&SavedCheckpoint>,
) -> (S, EngineCounters)
where
    P: Partition,
    S: EdgeSink,
    T: Transport<Msg>,
{
    cfg.validate();
    opts.validate_for(cfg.n);
    assert!(
        opts.fault_plan.is_none(),
        "fault injection must wrap the transport before generate_rank3_streaming"
    );
    assert!(
        (store.is_none() && resume.is_none()) || opts.checkpoint_interval.is_some(),
        "checkpoint store/resume require GenOptions::checkpoint_interval"
    );
    assert_eq!(
        part.num_nodes(),
        cfg.n,
        "partition does not cover cfg.n nodes"
    );
    assert_eq!(
        part.nranks(),
        comm.nranks(),
        "partition rank count does not match the transport world"
    );
    // Same paged-store resume discipline as the engine2 entry point.
    let mut opts = opts.clone();
    opts.store = opts.store.with_resume(resume.is_some());
    let algo = strategy::Chain::new(cfg, part, comm.rank(), &opts, sink);
    let algo = driver::run_recoverable(part, cfg.x, &opts, comm, algo, store, resume);
    algo.into_parts()
}

/// Run Algorithm 3.1 (`cfg.x == 1`) for **one rank of an external
/// world**; the `x = 1` counterpart of [`generate_rank_streaming`].
///
/// # Panics
///
/// Panics on invalid `cfg`/`opts`, `cfg.x != 1`, a partition/transport
/// shape mismatch, or when `opts.fault_plan` is set.
pub fn generate_rank_x1_streaming<P, S, T>(
    cfg: &PaConfig,
    part: &P,
    opts: &GenOptions,
    comm: &mut T,
    sink: S,
) -> (S, EngineCounters)
where
    P: Partition,
    S: EdgeSink,
    T: Transport<Msg1>,
{
    cfg.validate();
    opts.validate_for(cfg.n);
    assert_eq!(cfg.x, 1, "generate_x1 implements Algorithm 3.1 (x = 1)");
    assert!(
        opts.fault_plan.is_none(),
        "fault injection must wrap the transport before generate_rank_x1_streaming"
    );
    assert_eq!(
        part.num_nodes(),
        cfg.n,
        "partition does not cover cfg.n nodes"
    );
    assert_eq!(
        part.nranks(),
        comm.nranks(),
        "partition rank count does not match the transport world"
    );
    let algo = strategy::X1::new(cfg, part, comm.rank(), opts, sink);
    let algo = driver::run(part, cfg.x, opts, comm, algo);
    algo.into_parts()
}

/// Generate with Algorithm 3.1 (requires `cfg.x == 1`).
///
/// # Panics
///
/// Panics on invalid `cfg`/`opts`, `nranks == 0`, or `cfg.x != 1`.
pub fn generate_x1(
    cfg: &PaConfig,
    scheme: Scheme,
    nranks: usize,
    opts: &GenOptions,
) -> ParallelOutput {
    cfg.validate();
    opts.validate_for(cfg.n);
    assert_eq!(cfg.x, 1, "generate_x1 implements Algorithm 3.1 (x = 1)");
    let part: AnyPartition = partition::build(scheme, cfg.n, nranks);
    let parts = run_x1(cfg, &part, opts, |rank| {
        EdgeList::with_capacity(part.size_of(rank) as usize)
    });
    ParallelOutput {
        cfg: *cfg,
        scheme: Some(scheme),
        ranks: to_rank_outputs(parts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use pa_graph::validate::assert_valid_pa_network;

    fn opts() -> GenOptions {
        GenOptions {
            buffer_capacity: 16,
            service_interval: 8,
            ..GenOptions::default()
        }
    }

    #[test]
    fn x1_engine_matches_sequential_copy_model_on_any_world() {
        let cfg = PaConfig::new(3000, 1).with_seed(11);
        let reference = seq::copy_model(&cfg).canonicalized();
        for nranks in [1usize, 2, 3, 7] {
            for scheme in Scheme::ALL {
                let out = generate_x1(&cfg, scheme, nranks, &opts());
                assert_eq!(
                    out.edge_list().canonicalized(),
                    reference,
                    "x=1 must be bit-identical: P={nranks}, {scheme}"
                );
            }
        }
    }

    #[test]
    fn general_engine_with_x1_matches_algorithm_31() {
        let cfg = PaConfig::new(2000, 1).with_seed(5);
        let a = generate_x1(&cfg, Scheme::Rrp, 4, &opts());
        let b = generate(&cfg, Scheme::Rrp, 4, &opts());
        assert_eq!(a.edge_list().canonicalized(), b.edge_list().canonicalized());
    }

    #[test]
    fn paged_store_is_byte_identical_to_resident_for_all_engines() {
        let cfg = PaConfig::new(3_000, 3).with_seed(11);
        let dir = std::env::temp_dir().join(format!("pa_core_paged_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // A 4 KiB budget over 512-byte pages is far below any rank's F
        // footprint here, so the cache evicts constantly.
        let paged = GenOptions {
            store: crate::store::StoreSpec::paged(&dir, 4 * 1024).with_page_bytes(512),
            ..opts()
        };
        for scheme in [Scheme::Rrp, Scheme::Ucp] {
            assert_eq!(
                generate(&cfg, scheme, 4, &paged)
                    .edge_list()
                    .canonicalized(),
                generate(&cfg, scheme, 4, &opts())
                    .edge_list()
                    .canonicalized(),
                "engine2, {scheme}"
            );
            assert_eq!(
                generate3(&cfg, scheme, 4, &paged).edge_list(),
                generate3(&cfg, scheme, 4, &opts()).edge_list(),
                "engine3, {scheme}"
            );
        }
        // x = 1 exercises engine1's one-slot-per-node table.
        let cfg1 = PaConfig::new(2_000, 1).with_seed(5);
        assert_eq!(
            generate_x1(&cfg1, Scheme::Rrp, 3, &paged)
                .edge_list()
                .canonicalized(),
            generate_x1(&cfg1, Scheme::Rrp, 3, &opts())
                .edge_list()
                .canonicalized(),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_rank_general_engine_equals_sequential_exactly() {
        for x in [1u64, 2, 4] {
            let cfg = PaConfig::new(1500, x).with_seed(3);
            let out = generate(&cfg, Scheme::Ucp, 1, &opts());
            // P = 1 resolves every dependency immediately in sweep order,
            // so even the edge *order* matches the sequential generator.
            assert_eq!(out.edge_list(), seq::copy_model(&cfg), "x = {x}");
        }
    }

    #[test]
    fn single_rank_runs_use_the_loopback_transport() {
        // P = 1 must not route through the threaded world: the loopback
        // transport has exactly one rank's stats and no remote traffic.
        let cfg = PaConfig::new(500, 2).with_seed(3);
        let out = generate(&cfg, Scheme::Ucp, 1, &opts());
        assert_eq!(out.ranks.len(), 1);
        assert_eq!(out.ranks[0].comm.msgs_sent, 0);
        assert_eq!(out.ranks[0].comm.msgs_recv, 0);
    }

    #[test]
    fn x1_streaming_counts_match_materialized_run() {
        let cfg = PaConfig::new(1200, 1).with_seed(7);
        let outs = generate_x1_streaming(&cfg, Scheme::Rrp, 3, &opts(), |_| CountSink::default());
        let total: u64 = outs.iter().map(|o| o.sink.edges).sum();
        assert_eq!(total, cfg.expected_edges());
        let materialized = generate_x1(&cfg, Scheme::Rrp, 3, &opts());
        assert_eq!(materialized.total_edges() as u64, total);
    }

    #[test]
    fn parallel_output_is_a_valid_network_for_all_schemes() {
        let cfg = PaConfig::new(4000, 4).with_seed(17);
        for scheme in Scheme::ALL {
            for nranks in [2usize, 5] {
                let out = generate(&cfg, scheme, nranks, &opts());
                let edges = out.edge_list();
                assert_valid_pa_network(cfg.n, cfg.x, &edges);
                assert_eq!(out.total_edges() as u64, cfg.expected_edges());
            }
        }
    }

    #[test]
    fn parallel_network_is_connected() {
        let cfg = PaConfig::new(3000, 3).with_seed(23);
        let out = generate(&cfg, Scheme::Rrp, 4, &opts());
        let csr = pa_graph::Csr::from_edges(cfg.n as usize, &out.edge_list());
        assert_eq!(csr.connected_components(), 1);
    }

    #[test]
    fn counters_are_consistent_with_edges() {
        let cfg = PaConfig::new(2500, 2).with_seed(31);
        let out = generate(&cfg, Scheme::Lcp, 3, &opts());
        let totals = out.total_counters();
        // Every non-clique, non-node-x edge is either direct or copy.
        let clique = cfg.x * (cfg.x - 1) / 2;
        let attach_x = cfg.x;
        assert_eq!(
            totals.direct_edges + totals.copy_edges,
            cfg.expected_edges() - clique - attach_x
        );
        // Node counts cover the whole node set.
        assert_eq!(totals.nodes, cfg.n);
    }

    #[test]
    fn degenerate_two_node_network() {
        let cfg = PaConfig::new(2, 1).with_seed(1);
        let out = generate(&cfg, Scheme::Ucp, 2, &opts());
        assert_eq!(out.edge_list().as_slice(), &[(1, 0)]);
    }

    #[test]
    fn unbuffered_and_buffered_runs_agree_for_x1() {
        let cfg = PaConfig::new(1200, 1).with_seed(77);
        let buffered = generate(
            &cfg,
            Scheme::Rrp,
            3,
            &GenOptions {
                buffer_capacity: 512,
                service_interval: 64,
                ..GenOptions::default()
            },
        );
        let unbuffered = generate(
            &cfg,
            Scheme::Rrp,
            3,
            &GenOptions {
                buffer_capacity: 1,
                service_interval: 1,
                ..GenOptions::default()
            },
        );
        assert_eq!(
            buffered.edge_list().canonicalized(),
            unbuffered.edge_list().canonicalized()
        );
        // Unbuffered sends at least as many packets.
        let pk = |o: &ParallelOutput| o.ranks.iter().map(|r| r.comm.packets_sent).sum::<u64>();
        assert!(pk(&unbuffered) >= pk(&buffered));
    }

    #[test]
    fn many_ranks_for_few_nodes() {
        // More ranks than busy nodes: empty partitions must not hang.
        let cfg = PaConfig::new(10, 2).with_seed(2);
        let out = generate(&cfg, Scheme::Rrp, 8, &opts());
        assert_valid_pa_network(10, 2, &out.edge_list());
    }

    #[test]
    #[should_panic(expected = "Algorithm 3.1")]
    fn generate_x1_rejects_larger_x() {
        let cfg = PaConfig::new(10, 2);
        let _ = generate_x1(&cfg, Scheme::Ucp, 2, &opts());
    }

    #[test]
    fn engine3_matches_sequential_for_all_schemes_and_worlds() {
        let cfg = PaConfig::new(3_000, 4).with_seed(8);
        let reference = seq::copy_model(&cfg).canonicalized();
        for nranks in [1usize, 2, 4, 8] {
            for scheme in Scheme::EXTENDED {
                let out = generate3(&cfg, scheme, nranks, &opts());
                assert_eq!(
                    out.edge_list().canonicalized(),
                    reference,
                    "engine3 must be bit-identical: P={nranks} {scheme}"
                );
            }
        }
    }

    #[test]
    fn engine3_sends_zero_algorithm_messages() {
        let cfg = PaConfig::new(3_000, 4).with_seed(8);
        let out = generate3(&cfg, Scheme::Rrp, 8, &opts());
        for r in &out.ranks {
            assert_eq!(
                r.comm.msgs_sent, 0,
                "rank {} put algorithm messages on the wire",
                r.rank
            );
            assert_eq!(r.comm.msgs_recv, 0, "rank {} received messages", r.rank);
            assert_eq!(r.counters.requests_sent, 0);
            assert_eq!(r.counters.hub_updates, 0);
        }
        let totals = out.total_counters();
        assert!(
            totals.chain_rows_recomputed > 0,
            "a multi-rank run must have recomputed remote rows"
        );
        assert!(totals.chain_peak_depth >= 1);
    }

    #[test]
    fn engine3_memo_size_never_changes_the_network() {
        // The chain memo caches values of a pure function, so any
        // capacity — including 0 (disabled) and 1 (constant eviction) —
        // must yield the identical edge set.
        let cfg = PaConfig::new(2_000, 3).with_seed(19);
        let reference = seq::copy_model(&cfg).canonicalized();
        for memo in [0u64, 1, 16, 1 << 20] {
            let out = generate3(&cfg, Scheme::Ucp, 4, &opts().with_chain_memo(memo));
            assert_eq!(
                out.edge_list().canonicalized(),
                reference,
                "chain_memo_nodes = {memo}"
            );
        }
        // A warm memo must actually be hit at these sizes.
        let out = generate3(&cfg, Scheme::Ucp, 4, &opts());
        assert!(out.total_counters().chain_memo_hits > 0, "memo never hit");
    }

    #[test]
    fn engine3_checkpoint_resume_reproduces_the_uninterrupted_run() {
        let cfg = PaConfig::new(2_400, 3).with_seed(29);
        let interval = 500u64;
        let epoch_opts = GenOptions {
            checkpoint_interval: Some(interval),
            ..opts()
        };
        let part = partition::build(Scheme::Rrp, cfg.n, 3);
        let dir = std::env::temp_dir().join(format!("pa_core_resume3_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let meta = CheckpointMeta {
            world: 3,
            n: cfg.n,
            x: cfg.x,
            p_bits: cfg.p.to_bits(),
            seed: cfg.seed,
            scheme_id: 2,
            engine_id: 3,
            model_id: 0,
            interval,
            alpha_bits: 0,
        };
        let ckpt_dir = dir.clone();
        let full: Vec<EdgeList> = World::new(3).run(|mut comm| {
            let store = CheckpointStore::new(&ckpt_dir, comm.rank() as u32, meta).unwrap();
            generate_rank3_streaming_recoverable(
                &cfg,
                &part,
                &epoch_opts,
                &mut comm,
                EdgeList::new(),
                Some(&store),
                None,
            )
            .0
        });
        let reference = EdgeList::concat(full.clone()).canonicalized();
        assert_eq!(
            reference,
            seq::copy_model(&cfg).canonicalized(),
            "checkpointed engine3 run drifted from the sequential oracle"
        );

        let ckpt_dir = dir.clone();
        let resumed: Vec<EdgeList> = World::new(3).run(|mut comm| {
            let rank = comm.rank();
            let store = CheckpointStore::new(&ckpt_dir, rank as u32, meta).unwrap();
            let saved = store.load(store.latest().unwrap() - 1).unwrap();
            let mut sink = EdgeList::new();
            for &(u, v) in &full[rank].as_slice()[..saved.edges as usize] {
                sink.push(u, v);
            }
            generate_rank3_streaming_recoverable(
                &cfg,
                &part,
                &epoch_opts,
                &mut comm,
                sink,
                None,
                Some(&saved),
            )
            .0
        });
        assert_eq!(EdgeList::concat(resumed).canonicalized(), reference);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine3_streaming_counts_match_materialized_run() {
        let cfg = PaConfig::new(1_500, 2).with_seed(7);
        let outs = generate3_streaming(&cfg, Scheme::Lcp, 3, &opts(), |_| CountSink::default());
        let total: u64 = outs.iter().map(|o| o.sink.edges).sum();
        assert_eq!(total, cfg.expected_edges());
    }

    #[test]
    fn rank_entry_point_matches_sequential_on_loopback() {
        let cfg = PaConfig::new(1500, 2).with_seed(13);
        let part = partition::build(Scheme::Ucp, cfg.n, 1);
        let mut t = LoopbackTransport::new();
        let (edges, counters) =
            generate_rank_streaming(&cfg, &part, &opts(), &mut t, EdgeList::new());
        assert_eq!(edges, seq::copy_model(&cfg));
        assert_eq!(counters.nodes, cfg.n);
    }

    #[test]
    fn epoch_boundaries_do_not_change_the_output() {
        // Checkpoint epochs only add barriers at label cuts; the generated
        // network must stay bit-identical for any interval, both engines.
        let cfg = PaConfig::new(2000, 4).with_seed(19);
        let reference = generate(&cfg, Scheme::Rrp, 3, &opts())
            .edge_list()
            .canonicalized();
        for interval in [1u64, 257, 1999, 2000, 5000] {
            let epoch_opts = GenOptions {
                checkpoint_interval: Some(interval),
                ..opts()
            };
            let out = generate(&cfg, Scheme::Rrp, 3, &epoch_opts);
            assert_eq!(
                out.edge_list().canonicalized(),
                reference,
                "interval {interval}"
            );
        }
        let cfg1 = PaConfig::new(1500, 1).with_seed(19);
        let reference1 = seq::copy_model(&cfg1).canonicalized();
        let epoch_opts = GenOptions {
            checkpoint_interval: Some(333),
            ..opts()
        };
        let out = generate_x1(&cfg1, Scheme::Lcp, 3, &epoch_opts);
        assert_eq!(out.edge_list().canonicalized(), reference1);
    }

    #[test]
    fn checkpoint_resume_reproduces_the_uninterrupted_run() {
        let cfg = PaConfig::new(2400, 3).with_seed(29);
        let interval = 500u64;
        let epoch_opts = GenOptions {
            checkpoint_interval: Some(interval),
            ..opts()
        };
        let part = partition::build(Scheme::Rrp, cfg.n, 3);
        let dir = std::env::temp_dir().join(format!("pa_core_resume_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let meta = CheckpointMeta {
            world: 3,
            n: cfg.n,
            x: cfg.x,
            p_bits: cfg.p.to_bits(),
            seed: cfg.seed,
            scheme_id: 2,
            engine_id: 2,
            model_id: 0,
            interval,
            alpha_bits: 0,
        };
        let ckpt_dir = dir.clone();
        let full: Vec<EdgeList> = World::new(3).run(|mut comm| {
            let store = CheckpointStore::new(&ckpt_dir, comm.rank() as u32, meta).unwrap();
            generate_rank_streaming_recoverable(
                &cfg,
                &part,
                &epoch_opts,
                &mut comm,
                EdgeList::new(),
                Some(&store),
                None,
            )
            .0
        });
        let reference = EdgeList::concat(full.clone()).canonicalized();

        // Gang-restart from the older of the two surviving epochs: each
        // rank reloads its engine state, hands in a sink truncated to the
        // saved edge watermark, and replays the remaining epochs.
        let ckpt_dir = dir.clone();
        let resumed: Vec<EdgeList> = World::new(3).run(|mut comm| {
            let rank = comm.rank();
            let store = CheckpointStore::new(&ckpt_dir, rank as u32, meta).unwrap();
            let saved = store.load(store.latest().unwrap() - 1).unwrap();
            let mut sink = EdgeList::new();
            for &(u, v) in &full[rank].as_slice()[..saved.edges as usize] {
                sink.push(u, v);
            }
            generate_rank_streaming_recoverable(
                &cfg,
                &part,
                &epoch_opts,
                &mut comm,
                sink,
                None,
                Some(&saved),
            )
            .0
        });
        assert_eq!(EdgeList::concat(resumed).canonicalized(), reference);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "checkpoint_interval")]
    fn recoverable_entry_point_rejects_store_without_interval() {
        let cfg = PaConfig::new(100, 2).with_seed(1);
        let part = partition::build(Scheme::Ucp, cfg.n, 1);
        let dir = std::env::temp_dir().join(format!("pa_core_noint_{}", std::process::id()));
        let meta = CheckpointMeta {
            world: 1,
            n: cfg.n,
            x: cfg.x,
            p_bits: cfg.p.to_bits(),
            seed: cfg.seed,
            scheme_id: 0,
            engine_id: 2,
            model_id: 0,
            interval: 0,
            alpha_bits: 0,
        };
        let store = CheckpointStore::new(&dir, 0, meta).unwrap();
        let mut t = LoopbackTransport::new();
        let _ = generate_rank_streaming_recoverable(
            &cfg,
            &part,
            &opts(),
            &mut t,
            EdgeList::new(),
            Some(&store),
            None,
        );
    }

    #[test]
    fn rank_entry_points_match_world_runs() {
        // Driving each rank of a threaded world through the external-rank
        // entry points must reproduce the internally spawned run exactly —
        // this is the API contract the multi-process TCP backend builds on.
        let cfg = PaConfig::new(2000, 4).with_seed(21);
        let reference = seq::copy_model(&cfg).canonicalized();
        let part = partition::build(Scheme::Rrp, cfg.n, 3);
        let shards = World::new(3).run(|mut comm| {
            generate_rank_streaming(&cfg, &part, &opts(), &mut comm, EdgeList::new()).0
        });
        let merged = EdgeList::concat(shards).canonicalized();
        assert_eq!(merged, reference);

        let cfg1 = PaConfig::new(2000, 1).with_seed(21);
        let reference1 = seq::copy_model(&cfg1).canonicalized();
        let part1 = partition::build(Scheme::Lcp, cfg1.n, 3);
        let shards1 = World::new(3).run(|mut comm| {
            generate_rank_x1_streaming(&cfg1, &part1, &opts(), &mut comm, EdgeList::new()).0
        });
        assert_eq!(EdgeList::concat(shards1).canonicalized(), reference1);
    }
}
