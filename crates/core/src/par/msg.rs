//! Message types exchanged by the parallel engines.
//!
//! Both types implement [`pa_mpsim::Wire`] so byte-stream transports
//! (the TCP backend) can carry them: a one-byte variant tag followed by
//! fixed little-endian fields, identical on every host.

use crate::Node;
use pa_mpsim::wire::{get_u32, get_u64, get_u8, Wire};

/// Messages of Algorithm 3.1 (`x = 1`): a request asks the owner of `k`
/// for `F_k`; a resolved message carries the answer back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Msg1 {
    /// `⟨request, t, k⟩` — node `t` needs `F_k` (line 9 of Alg. 3.1).
    Request {
        /// The waiting node.
        t: Node,
        /// The node whose attachment is requested.
        k: Node,
    },
    /// `⟨resolved, t, v⟩` — `F_t` should be set to `v` (line 16).
    Resolved {
        /// The waiting node.
        t: Node,
        /// The resolved attachment target.
        v: Node,
    },
}

/// Messages of Algorithm 3.2 (`x ≥ 1`): requests and answers now carry
/// the requesting edge index `e` and the requested edge index `l`.
///
/// Requests additionally carry the requester's *attempt* counter, echoed
/// back verbatim in the answer. Under reliable delivery the tag is
/// redundant; under at-least-once delivery (duplication faults) it is
/// what restores exactly-once semantics for retried slots: a duplicated
/// `resolved` that races a duplicate-retry of the same slot would
/// otherwise be mistaken for the answer to the *re-drawn* request, and
/// the edge set would diverge from the sequential generator's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Msg {
    /// `⟨request, t, e, k, l⟩` — node `t`'s edge `e` needs `F_k(l)`
    /// (line 14 of Alg. 3.2).
    Request {
        /// The waiting node.
        t: Node,
        /// Which of `t`'s edges is waiting.
        e: u32,
        /// The node whose attachment is requested.
        k: Node,
        /// Which of `k`'s edges is requested.
        l: u32,
        /// The requester's attempt counter for `(t, e)` at draw time.
        a: u32,
    },
    /// `⟨resolved, t, e, v⟩` — `F_t(e)` may be set to `v` (line 21),
    /// subject to the duplicate check.
    Resolved {
        /// The waiting node.
        t: Node,
        /// Which of `t`'s edges is waiting.
        e: u32,
        /// The resolved attachment target.
        v: Node,
        /// Echo of the request's attempt tag; answers whose tag is not
        /// the slot's latest outstanding attempt are stale and ignored.
        a: u32,
    },
    /// `⟨hub, k, l, v⟩` — owner broadcast of a committed hub slot:
    /// `F_k(l) = v`, for the receivers' replicated hub caches. Carries
    /// exactly the committed value a `resolved` for `(k, l)` would carry,
    /// which is why consuming it preserves the output bit-for-bit.
    Hub {
        /// The hub node whose slot committed.
        k: Node,
        /// Which of `k`'s edges committed.
        l: u32,
        /// The committed attachment target.
        v: Node,
    },
}

impl Wire for Msg1 {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            Msg1::Request { t, k } => {
                out.push(0);
                out.extend_from_slice(&t.to_le_bytes());
                out.extend_from_slice(&k.to_le_bytes());
            }
            Msg1::Resolved { t, v } => {
                out.push(1);
                out.extend_from_slice(&t.to_le_bytes());
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        match get_u8(input)? {
            0 => Some(Msg1::Request {
                t: get_u64(input)?,
                k: get_u64(input)?,
            }),
            1 => Some(Msg1::Resolved {
                t: get_u64(input)?,
                v: get_u64(input)?,
            }),
            _ => None,
        }
    }
}

impl Wire for Msg {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            Msg::Request { t, e, k, l, a } => {
                out.push(0);
                out.extend_from_slice(&t.to_le_bytes());
                out.extend_from_slice(&e.to_le_bytes());
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&l.to_le_bytes());
                out.extend_from_slice(&a.to_le_bytes());
            }
            Msg::Resolved { t, e, v, a } => {
                out.push(1);
                out.extend_from_slice(&t.to_le_bytes());
                out.extend_from_slice(&e.to_le_bytes());
                out.extend_from_slice(&v.to_le_bytes());
                out.extend_from_slice(&a.to_le_bytes());
            }
            Msg::Hub { k, l, v } => {
                out.push(2);
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&l.to_le_bytes());
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        match get_u8(input)? {
            0 => Some(Msg::Request {
                t: get_u64(input)?,
                e: get_u32(input)?,
                k: get_u64(input)?,
                l: get_u32(input)?,
                a: get_u32(input)?,
            }),
            1 => Some(Msg::Resolved {
                t: get_u64(input)?,
                e: get_u32(input)?,
                v: get_u64(input)?,
                a: get_u32(input)?,
            }),
            2 => Some(Msg::Hub {
                k: get_u64(input)?,
                l: get_u32(input)?,
                v: get_u64(input)?,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug + Copy>(m: T) {
        let mut buf = Vec::new();
        m.encode(&mut buf);
        let mut cursor = buf.as_slice();
        assert_eq!(T::decode(&mut cursor), Some(m));
        assert!(cursor.is_empty(), "decode left bytes behind");
    }

    #[test]
    fn wire_round_trips_every_variant() {
        round_trip(Msg1::Request {
            t: 7,
            k: u64::MAX - 1,
        });
        round_trip(Msg1::Resolved { t: 0, v: 3 });
        round_trip(Msg::Request {
            t: 1 << 40,
            e: 3,
            k: 9,
            l: u32::MAX,
            a: 17,
        });
        round_trip(Msg::Resolved {
            t: 5,
            e: 0,
            v: 1 << 50,
            a: 2,
        });
        round_trip(Msg::Hub { k: 8, l: 1, v: 0 });
    }

    #[test]
    fn wire_rejects_truncation_and_bad_tags() {
        let mut buf = Vec::new();
        Msg::Request {
            t: 1,
            e: 2,
            k: 3,
            l: 4,
            a: 5,
        }
        .encode(&mut buf);
        for cut in 0..buf.len() {
            let mut cursor = &buf[..cut];
            assert_eq!(Msg::decode(&mut cursor), None, "truncated at {cut}");
        }
        let bad = [9u8, 0, 0, 0, 0, 0, 0, 0, 0];
        let mut cursor = &bad[..];
        assert_eq!(Msg::decode(&mut cursor), None, "unknown tag accepted");
        let mut cursor = &bad[..];
        assert_eq!(Msg1::decode(&mut cursor), None, "unknown tag accepted");
    }

    #[test]
    fn messages_are_small() {
        // Traffic volume matters: the attempt tag (exactly-once retry
        // semantics under duplication faults) costs one alignment word,
        // so the general message is five words; `x = 1` needs no tag
        // (single slot, no retries) and stays at three.
        assert!(std::mem::size_of::<Msg>() <= 40);
        assert!(std::mem::size_of::<Msg1>() <= 24);
    }

    #[test]
    fn hub_broadcast_fits_the_packet_word_budget() {
        let m = Msg::Hub { k: 1, l: 0, v: 0 };
        assert!(std::mem::size_of_val(&m) <= 40);
    }

    #[test]
    fn messages_are_copy_and_eq() {
        let m = Msg::Request {
            t: 5,
            e: 1,
            k: 3,
            l: 0,
            a: 0,
        };
        let m2 = m;
        assert_eq!(m, m2);
    }
}
