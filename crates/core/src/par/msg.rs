//! Message types exchanged by the parallel engines.

use crate::Node;

/// Messages of Algorithm 3.1 (`x = 1`): a request asks the owner of `k`
/// for `F_k`; a resolved message carries the answer back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Msg1 {
    /// `⟨request, t, k⟩` — node `t` needs `F_k` (line 9 of Alg. 3.1).
    Request {
        /// The waiting node.
        t: Node,
        /// The node whose attachment is requested.
        k: Node,
    },
    /// `⟨resolved, t, v⟩` — `F_t` should be set to `v` (line 16).
    Resolved {
        /// The waiting node.
        t: Node,
        /// The resolved attachment target.
        v: Node,
    },
}

/// Messages of Algorithm 3.2 (`x ≥ 1`): requests and answers now carry
/// the requesting edge index `e` and the requested edge index `l`.
///
/// Requests additionally carry the requester's *attempt* counter, echoed
/// back verbatim in the answer. Under reliable delivery the tag is
/// redundant; under at-least-once delivery (duplication faults) it is
/// what restores exactly-once semantics for retried slots: a duplicated
/// `resolved` that races a duplicate-retry of the same slot would
/// otherwise be mistaken for the answer to the *re-drawn* request, and
/// the edge set would diverge from the sequential generator's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Msg {
    /// `⟨request, t, e, k, l⟩` — node `t`'s edge `e` needs `F_k(l)`
    /// (line 14 of Alg. 3.2).
    Request {
        /// The waiting node.
        t: Node,
        /// Which of `t`'s edges is waiting.
        e: u32,
        /// The node whose attachment is requested.
        k: Node,
        /// Which of `k`'s edges is requested.
        l: u32,
        /// The requester's attempt counter for `(t, e)` at draw time.
        a: u32,
    },
    /// `⟨resolved, t, e, v⟩` — `F_t(e)` may be set to `v` (line 21),
    /// subject to the duplicate check.
    Resolved {
        /// The waiting node.
        t: Node,
        /// Which of `t`'s edges is waiting.
        e: u32,
        /// The resolved attachment target.
        v: Node,
        /// Echo of the request's attempt tag; answers whose tag is not
        /// the slot's latest outstanding attempt are stale and ignored.
        a: u32,
    },
    /// `⟨hub, k, l, v⟩` — owner broadcast of a committed hub slot:
    /// `F_k(l) = v`, for the receivers' replicated hub caches. Carries
    /// exactly the committed value a `resolved` for `(k, l)` would carry,
    /// which is why consuming it preserves the output bit-for-bit.
    Hub {
        /// The hub node whose slot committed.
        k: Node,
        /// Which of `k`'s edges committed.
        l: u32,
        /// The committed attachment target.
        v: Node,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_small() {
        // Traffic volume matters: the attempt tag (exactly-once retry
        // semantics under duplication faults) costs one alignment word,
        // so the general message is five words; `x = 1` needs no tag
        // (single slot, no retries) and stays at three.
        assert!(std::mem::size_of::<Msg>() <= 40);
        assert!(std::mem::size_of::<Msg1>() <= 24);
    }

    #[test]
    fn hub_broadcast_fits_the_packet_word_budget() {
        let m = Msg::Hub { k: 1, l: 0, v: 0 };
        assert!(std::mem::size_of_val(&m) <= 40);
    }

    #[test]
    fn messages_are_copy_and_eq() {
        let m = Msg::Request {
            t: 5,
            e: 1,
            k: 3,
            l: 0,
            a: 0,
        };
        let m2 = m;
        assert_eq!(m, m2);
    }
}
