//! Results reported by the parallel engines.

use crate::partition::Scheme;
use crate::PaConfig;
use pa_graph::EdgeList;
use pa_mpsim::cost::RankLoad;
use pa_mpsim::CommStats;

/// Algorithm-level event counters for one rank.
///
/// These are the quantities behind the paper's load-balance study
/// (Figure 7): nodes per processor, outgoing request messages, incoming
/// request messages — plus extra visibility into the dependency-wait and
/// duplicate-retry machinery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Local nodes processed (the rank's partition size).
    pub nodes: u64,
    /// Edges committed through the direct branch (probability `p`).
    pub direct_edges: u64,
    /// Edges committed through the copy branch (probability `1 − p`).
    pub copy_edges: u64,
    /// Copy lookups answered locally without waiting (`F_k` was already
    /// known on this rank).
    pub local_immediate: u64,
    /// Copy lookups queued locally (`k` local but `F_k` still pending).
    pub local_deferred: u64,
    /// Request messages sent to other ranks.
    pub requests_sent: u64,
    /// Incoming requests answered immediately.
    pub requests_served: u64,
    /// Incoming requests parked in a queue until the slot resolves.
    pub requests_queued: u64,
    /// Duplicate-edge retries (both the early check of Alg. 3.2 line 7
    /// and the late check of line 22).
    pub duplicate_retries: u64,
    /// Peak number of waiters parked in this rank's queues.
    pub max_queued_waiters: u64,
    /// Copy lookups answered by the replicated hub cache (each one is a
    /// request/resolved round trip that never hit the network).
    pub hub_hits: u64,
    /// Of those, lookups that arrived before the owner's broadcast and
    /// parked for it instead of sending a request.
    pub hub_deferred: u64,
    /// Hub broadcast entries installed into this rank's replica.
    pub hub_updates: u64,
    /// Incoming `resolved` messages discarded as stale — duplicates of
    /// answers already consumed, or answers to superseded draw attempts.
    /// Always zero on a clean transport; nonzero only under fault
    /// injection (duplication / retransmission).
    pub stale_resolutions: u64,
    /// Remote rows re-derived locally by engine3's chain walk (each one
    /// is a request/resolved round trip that never existed).
    pub chain_rows_recomputed: u64,
    /// Chain lookups answered by the per-rank memo of recently
    /// recomputed rows (engine3 only).
    pub chain_memo_hits: u64,
    /// Deepest dependency chain engine3 walked on this rank — the
    /// empirical counterpart of the paper's Lemma 3.1 O(log n) bound.
    pub chain_peak_depth: u64,
}

impl EngineCounters {
    /// Field count of the checkpoint encoding (one `u64` per field, in
    /// declaration order).
    pub(super) const ENCODED_FIELDS: usize = 17;

    /// Append the checkpoint encoding: every field as a little-endian
    /// `u64`, in declaration order.
    pub(super) fn encode(&self, out: &mut Vec<u8>) {
        for v in [
            self.nodes,
            self.direct_edges,
            self.copy_edges,
            self.local_immediate,
            self.local_deferred,
            self.requests_sent,
            self.requests_served,
            self.requests_queued,
            self.duplicate_retries,
            self.max_queued_waiters,
            self.hub_hits,
            self.hub_deferred,
            self.hub_updates,
            self.stale_resolutions,
            self.chain_rows_recomputed,
            self.chain_memo_hits,
            self.chain_peak_depth,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Decode the [`EngineCounters::encode`] layout from the front of
    /// `input`, advancing it; `None` on truncation.
    pub(super) fn decode(input: &mut &[u8]) -> Option<Self> {
        let mut fields = [0u64; Self::ENCODED_FIELDS];
        for f in &mut fields {
            *f = pa_mpsim::wire::get_u64(input)?;
        }
        let [nodes, direct_edges, copy_edges, local_immediate, local_deferred, requests_sent, requests_served, requests_queued, duplicate_retries, max_queued_waiters, hub_hits, hub_deferred, hub_updates, stale_resolutions, chain_rows_recomputed, chain_memo_hits, chain_peak_depth] =
            fields;
        Some(Self {
            nodes,
            direct_edges,
            copy_edges,
            local_immediate,
            local_deferred,
            requests_sent,
            requests_served,
            requests_queued,
            duplicate_retries,
            max_queued_waiters,
            hub_hits,
            hub_deferred,
            hub_updates,
            stale_resolutions,
            chain_rows_recomputed,
            chain_memo_hits,
            chain_peak_depth,
        })
    }
}

/// Everything one rank produced.
#[derive(Debug, Clone)]
pub struct RankOutput {
    /// The rank id.
    pub rank: usize,
    /// Edges of this rank's nodes (each edge emitted exactly once, by the
    /// node that created it).
    pub edges: EdgeList,
    /// Transport-level traffic statistics.
    pub comm: CommStats,
    /// Algorithm-level counters.
    pub counters: EngineCounters,
}

impl RankOutput {
    /// This rank's load in the form the virtual-time cost model consumes.
    pub fn load(&self) -> RankLoad {
        RankLoad {
            nodes: self.counters.nodes,
            msgs_out: self.comm.msgs_sent,
            msgs_in: self.comm.msgs_recv,
            packets_out: self.comm.packets_sent,
            packets_in: self.comm.packets_recv,
        }
    }
}

/// The combined result of a parallel generation run.
#[derive(Debug, Clone)]
pub struct ParallelOutput {
    /// The model parameters used.
    pub cfg: PaConfig,
    /// The partitioning scheme used (if one of the standard three).
    pub scheme: Option<Scheme>,
    /// Per-rank results, indexed by rank.
    pub ranks: Vec<RankOutput>,
}

impl ParallelOutput {
    /// Concatenate every rank's edges (rank order).
    pub fn edge_list(&self) -> EdgeList {
        let mut out = EdgeList::with_capacity(self.total_edges());
        for r in &self.ranks {
            out.extend_from(&r.edges);
        }
        out
    }

    /// Total edge count across ranks.
    pub fn total_edges(&self) -> usize {
        self.ranks.iter().map(|r| r.edges.len()).sum()
    }

    /// Per-rank loads for the cost model, indexed by rank.
    pub fn loads(&self) -> Vec<RankLoad> {
        self.ranks.iter().map(RankOutput::load).collect()
    }

    /// Sum of all ranks' algorithm counters.
    pub fn total_counters(&self) -> EngineCounters {
        let mut total = EngineCounters::default();
        for r in &self.ranks {
            let c = &r.counters;
            total.nodes += c.nodes;
            total.direct_edges += c.direct_edges;
            total.copy_edges += c.copy_edges;
            total.local_immediate += c.local_immediate;
            total.local_deferred += c.local_deferred;
            total.requests_sent += c.requests_sent;
            total.requests_served += c.requests_served;
            total.requests_queued += c.requests_queued;
            total.duplicate_retries += c.duplicate_retries;
            total.max_queued_waiters = total.max_queued_waiters.max(c.max_queued_waiters);
            total.hub_hits += c.hub_hits;
            total.hub_deferred += c.hub_deferred;
            total.hub_updates += c.hub_updates;
            total.stale_resolutions += c.stale_resolutions;
            total.chain_rows_recomputed += c.chain_rows_recomputed;
            total.chain_memo_hits += c.chain_memo_hits;
            total.chain_peak_depth = total.chain_peak_depth.max(c.chain_peak_depth);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_maps_counters_and_comm() {
        let mut comm = CommStats::new(2);
        comm.msgs_sent = 5;
        comm.msgs_recv = 7;
        comm.packets_sent = 2;
        comm.packets_recv = 3;
        let out = RankOutput {
            rank: 0,
            edges: EdgeList::new(),
            comm,
            counters: EngineCounters {
                nodes: 11,
                ..Default::default()
            },
        };
        let load = out.load();
        assert_eq!(load.nodes, 11);
        assert_eq!(load.msgs_out, 5);
        assert_eq!(load.msgs_in, 7);
        assert_eq!(load.packets_out, 2);
        assert_eq!(load.packets_in, 3);
        assert_eq!(load.paper_load(), 11 + 5 + 7);
    }

    #[test]
    fn counters_checkpoint_encoding_round_trips() {
        let mut c = EngineCounters::default();
        // Distinct values per field so a transposed decode cannot pass.
        for (i, f) in [
            &mut c.nodes,
            &mut c.direct_edges,
            &mut c.copy_edges,
            &mut c.local_immediate,
            &mut c.local_deferred,
            &mut c.requests_sent,
            &mut c.requests_served,
            &mut c.requests_queued,
            &mut c.duplicate_retries,
            &mut c.max_queued_waiters,
            &mut c.hub_hits,
            &mut c.hub_deferred,
            &mut c.hub_updates,
            &mut c.stale_resolutions,
            &mut c.chain_rows_recomputed,
            &mut c.chain_memo_hits,
            &mut c.chain_peak_depth,
        ]
        .into_iter()
        .enumerate()
        {
            *f = (i as u64 + 1) * 1_000;
        }
        let mut bytes = Vec::new();
        c.encode(&mut bytes);
        assert_eq!(bytes.len(), 8 * EngineCounters::ENCODED_FIELDS);
        let mut r: &[u8] = &bytes;
        assert_eq!(EngineCounters::decode(&mut r), Some(c));
        assert!(r.is_empty(), "decode consumes exactly the encoding");
        let mut short: &[u8] = &bytes[..bytes.len() - 1];
        assert_eq!(EngineCounters::decode(&mut short), None);
    }
}
