//! Elastic gang restart: re-partition a saved world's committed state
//! from `P_old` ranks onto `P_new` ranks at a checkpoint cut.
//!
//! A checkpoint cut is a *label threshold*: every node below `hi` is
//! committed world-wide and nothing at or above it has been touched
//! (DESIGN.md §5f). The committed state below the cut is therefore a
//! pure function of the model — `F_t(e)` values addressed by label, with
//! no per-rank residue (waiter tables provably empty, attempt counters
//! dead, the hub replica reconstructible on demand). That makes the cut
//! *re-partitionable*: a world saved by `P_old` ranks can restart on
//! `P_new` ranks by routing each committed label through the **new**
//! partition's closed-form owner lookup and synthesizing each new rank's
//! resume payload from the old ranks' tables.
//!
//! [`WorldCheckpoint::load`] scans a checkpoint directory without fixing
//! the world size in advance (the per-file identity check that
//! [`super::CheckpointStore::load`] performs would reject the resize),
//! validates that every rank of the saved world left a checkpoint at a
//! common epoch, and assembles the committed `F` prefix — from inline
//! payloads, or from the page files a `--memory-budget` run left behind
//! (re-verified against the payload's prefix checksum, so torn pages
//! surface before any edge is emitted). [`WorldCheckpoint::payload_for`]
//! then produces a per-new-rank resume payload in the resident
//! checkpoint format, which every engine's `restore` accepts into either
//! table backend, and [`WorldCheckpoint::write_part_prefix`] replays the
//! deterministic pre-cut emission order through the new rank's sink so
//! its part file begins exactly as a never-killed `P_new` run's would.
//!
//! What may change across the restart: the rank count, the partition
//! scheme, the engine, the store backend. What must not: `(n, x, p,
//! seed)`, the attachment model, and the epoch interval — those define
//! the network itself.

use std::fs;
use std::path::Path;

use pa_mpsim::wire::get_u64;

use super::checkpoint::{read_raw_checkpoint, CheckpointMeta, SavedCheckpoint};
use super::output::EngineCounters;
use super::sink::EdgeSink;
use crate::partition::{self, AnyPartition, Partition, Scheme};
use crate::store::{fnv1a_bytes, page_path, read_page_file, FNV_OFFSET, PAGED_PAYLOAD_MARK};
use crate::{Node, NILL};

/// A saved world's committed state at its newest common checkpoint cut,
/// re-partitionable onto any new rank count.
#[derive(Debug)]
pub struct WorldCheckpoint {
    meta: CheckpointMeta,
    epoch: u64,
    hi: u64,
    /// The **old** partition (scheme and world size from the files).
    part: AnyPartition,
    /// Per old rank: the committed `F` prefix,
    /// `local_count_below(rank, hi) · x` slots.
    f: Vec<Vec<u64>>,
}

impl WorldCheckpoint {
    /// Scan `dir` for one world's checkpoints and load the committed
    /// state at the newest epoch **every** rank holds.
    ///
    /// Paged (`--memory-budget`) checkpoints reference page files; those
    /// must sit in the same directory (`rank{r}.f.p{i}.pg`) and are
    /// re-verified against the payload's committed-prefix checksum.
    ///
    /// # Errors
    ///
    /// A human-readable reason: no checkpoints, ranks missing, files
    /// disagreeing on the run identity, an unknown scheme or engine, or
    /// page files that are torn, missing, or fail the prefix checksum.
    pub fn load(dir: &Path) -> Result<WorldCheckpoint, String> {
        let entries = fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
        // Collect every valid checkpoint file, keyed by (rank, epoch).
        let mut raws: Vec<super::checkpoint::RawCheckpoint> = Vec::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !(name.starts_with("rank") && name.ends_with(".ckpt")) {
                continue;
            }
            if let Some(raw) = read_raw_checkpoint(&entry.path()) {
                raws.push(raw);
            }
        }
        let Some(first) = raws.first() else {
            return Err(format!("no valid checkpoints in {}", dir.display()));
        };
        let meta = first.meta;
        if raws.iter().any(|r| r.meta != meta) {
            return Err(format!(
                "{} holds checkpoints from more than one run identity",
                dir.display()
            ));
        }
        let world = meta.world as usize;
        let scheme = Scheme::from_id(meta.scheme_id)
            .ok_or_else(|| format!("unknown partition scheme id {}", meta.scheme_id))?;
        if !matches!(meta.engine_id, 1..=3) {
            return Err(format!("unknown engine id {}", meta.engine_id));
        }
        // The newest epoch every rank holds. Keep-last-two plus the
        // barrier-bounded epoch skew of one guarantees it exists on a
        // crashed-but-uncorrupted world.
        let newest_of = |rank: usize| {
            raws.iter()
                .filter(|r| r.rank as usize == rank)
                .map(|r| r.saved.epoch)
                .max()
        };
        let mut common = u64::MAX;
        for rank in 0..world {
            let newest = newest_of(rank)
                .ok_or_else(|| format!("rank {rank} of {world} has no valid checkpoint"))?;
            common = common.min(newest);
        }
        let part = partition::build(scheme, meta.n, world);
        let mut hi = None;
        let mut f = Vec::with_capacity(world);
        for rank in 0..world {
            let raw = raws
                .iter()
                .find(|r| r.rank as usize == rank && r.saved.epoch == common)
                .ok_or_else(|| {
                    format!("rank {rank} has no checkpoint at the common epoch {common}")
                })?;
            match hi {
                None => hi = Some(raw.saved.hi),
                Some(h) if h != raw.saved.hi => {
                    return Err(format!(
                        "ranks disagree on the cut label at epoch {common}: {h} vs {}",
                        raw.saved.hi
                    ));
                }
                Some(_) => {}
            }
            let cnt = part.local_count_below(rank, raw.saved.hi);
            f.push(f_prefix(dir, rank, cnt, meta.x, &raw.saved.payload)?);
        }
        let hi = hi.expect("world >= 1, so hi was set");
        let grid_hi = ((common + 1) * meta.interval).min(meta.n);
        if hi != grid_hi {
            return Err(format!(
                "epoch {common} cut at label {hi} but the interval {} puts the \
                 boundary at {grid_hi}",
                meta.interval
            ));
        }
        Ok(WorldCheckpoint {
            meta,
            epoch: common,
            hi,
            part,
            f,
        })
    }

    /// The saved run's identity (world size = the **old** rank count).
    pub fn meta(&self) -> &CheckpointMeta {
        &self.meta
    }

    /// The common epoch the restart resumes after.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The cut label: every node below it is committed.
    pub fn hi(&self) -> u64 {
        self.hi
    }

    /// The committed `F_t(e)` for `x ≤ t < hi` (node `x`'s row is its
    /// identity attachment, stored like any other commit).
    fn committed(&self, t: Node, e: u64) -> Node {
        let rank = self.part.rank_of(t);
        let slot = self.part.local_index(t) * self.meta.x + e;
        self.f[rank][slot as usize]
    }

    /// Synthesize new rank `rank`'s resume payload over `new_part` — the
    /// resident checkpoint format, which every engine's `restore`
    /// accepts into either store backend. `engine_id` names the **new**
    /// run's engine (it appends the general engine's empty hub section;
    /// a restored hub rebuilds through the request path).
    pub fn payload_for<P: Partition>(&self, new_part: &P, rank: usize, engine_id: u8) -> Vec<u8> {
        let x = self.meta.x;
        let cnt = new_part.local_count_below(rank, self.hi);
        let mut out = Vec::with_capacity(8 * (1 + (cnt * x) as usize));
        out.extend_from_slice(&cnt.to_le_bytes());
        for li in 0..cnt {
            let t = new_part.node_at(rank, li);
            for e in 0..x {
                // Clique rows (t < x) legitimately hold NILL: their
                // slots are never drawn or queried.
                let v = if t < x { NILL } else { self.committed(t, e) };
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        EngineCounters {
            nodes: new_part.size_of(rank),
            ..Default::default()
        }
        .encode(&mut out);
        if engine_id == 2 {
            // Empty hub section: the fresh replica plus request-path
            // fallback below the committed base is always correct.
            out.extend_from_slice(&0u64.to_le_bytes());
        }
        out
    }

    /// Replay new rank `rank`'s pre-cut edges through `sink` in the
    /// deterministic per-rank emission order (clique rows ascending,
    /// node `x`'s identity row, then one committed row per swept node) —
    /// exactly the byte stream a never-killed `P_new` engine3 run writes
    /// below the cut. Returns the number of edges emitted.
    pub fn write_part_prefix<P: Partition, S: EdgeSink>(
        &self,
        new_part: &P,
        rank: usize,
        sink: &mut S,
    ) -> u64 {
        let x = self.meta.x;
        let mut edges = 0u64;
        for t in new_part.nodes_of(rank) {
            if t >= self.hi {
                break;
            }
            if t < x {
                for j in 0..t {
                    sink.emit(t, j);
                }
                edges += t;
            } else {
                for e in 0..x {
                    // Node x's committed row is the identity F_x(e) = e.
                    sink.emit(t, self.committed(t, e));
                }
                edges += x;
            }
        }
        edges
    }

    /// Bundle a synthesized payload and a sink watermark into the
    /// [`SavedCheckpoint`] the recoverable entry points resume from.
    pub fn resume_point(&self, payload: Vec<u8>, edges: u64, bytes: u64) -> SavedCheckpoint {
        SavedCheckpoint {
            epoch: self.epoch,
            hi: self.hi,
            edges,
            bytes,
            payload,
        }
    }
}

/// Extract one old rank's committed `F` prefix (`cnt · x` slots) from
/// its checkpoint payload: inline for the resident format, from the page
/// files (re-verified against the payload's FNV) for the paged format.
fn f_prefix(dir: &Path, rank: usize, cnt: u64, x: u64, payload: &[u8]) -> Result<Vec<u64>, String> {
    let mut r = payload;
    let first = get_u64(&mut r).ok_or("truncated checkpoint payload")?;
    let want = cnt * x;
    if first == PAGED_PAYLOAD_MARK {
        let file_cnt = get_u64(&mut r).ok_or("truncated paged checkpoint payload")?;
        let fnv = get_u64(&mut r).ok_or("truncated paged checkpoint checksum")?;
        if file_cnt != cnt {
            return Err(format!(
                "rank {rank}: committed prefix holds {file_cnt} nodes but the \
                 partition puts {cnt} below the cut"
            ));
        }
        if want == 0 {
            return Ok(Vec::new());
        }
        let prefix = format!("rank{rank}.f");
        let read = |page: u64| {
            read_page_file(&page_path(dir, &prefix, page)).ok_or_else(|| {
                format!(
                    "rank {rank}: page file {} is missing or torn (was this world \
                     generated with --memory-budget and its store kept?)",
                    page_path(dir, &prefix, page).display()
                )
            })
        };
        let mut slots = read(0)?;
        let spp = slots.len() as u64;
        if spp == 0 {
            return Err(format!("rank {rank}: page 0 of table f is empty"));
        }
        for page in 1..want.div_ceil(spp) {
            let data = read(page)?;
            if data.len() as u64 != spp {
                return Err(format!(
                    "rank {rank}: page {page} has {} slots where the table's \
                     geometry says {spp}",
                    data.len()
                ));
            }
            slots.extend_from_slice(&data);
        }
        slots.truncate(want as usize);
        let mut h = FNV_OFFSET;
        for &v in &slots {
            h = fnv1a_bytes(h, &v.to_le_bytes());
        }
        if h != fnv {
            return Err(format!(
                "rank {rank}: page files do not match the checkpoint's \
                 committed-prefix checksum"
            ));
        }
        Ok(slots)
    } else {
        if first != cnt {
            return Err(format!(
                "rank {rank}: committed prefix holds {first} nodes but the \
                 partition puts {cnt} below the cut"
            ));
        }
        let mut slots = Vec::with_capacity(want as usize);
        for _ in 0..want {
            slots.push(get_u64(&mut r).ok_or("truncated F table")?);
        }
        Ok(slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::{
        generate_rank3_streaming_recoverable, generate_rank_streaming_recoverable, CheckpointStore,
    };
    use crate::store::StoreSpec;
    use crate::{GenOptions, PaConfig};
    use pa_graph::EdgeList;
    use pa_mpsim::World;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pa_restart_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn opts(interval: u64) -> GenOptions {
        GenOptions {
            buffer_capacity: 16,
            service_interval: 8,
            checkpoint_interval: Some(interval),
            ..GenOptions::default()
        }
    }

    fn meta(
        cfg: &PaConfig,
        world: u32,
        scheme: Scheme,
        engine: u8,
        interval: u64,
    ) -> CheckpointMeta {
        CheckpointMeta {
            world,
            n: cfg.n,
            x: cfg.x,
            p_bits: cfg.p.to_bits(),
            seed: cfg.seed,
            scheme_id: scheme.id(),
            engine_id: engine,
            model_id: 0,
            interval,
            alpha_bits: 0,
        }
    }

    /// Run a full engine3 world of `p_old` ranks, leaving its last two
    /// checkpoint epochs (and, when `store` is paged, its page files)
    /// behind in `dir`.
    fn save_world3(
        cfg: &PaConfig,
        scheme: Scheme,
        p_old: usize,
        interval: u64,
        dir: &Path,
        store: &StoreSpec,
    ) -> Vec<EdgeList> {
        let part = partition::build(scheme, cfg.n, p_old);
        let m = meta(cfg, p_old as u32, scheme, 3, interval);
        let run_opts = GenOptions {
            store: store.clone(),
            ..opts(interval)
        };
        let dir = dir.to_path_buf();
        World::new(p_old).run(move |mut comm| {
            let ckpt = CheckpointStore::new(&dir, comm.rank() as u32, m).unwrap();
            generate_rank3_streaming_recoverable(
                cfg,
                &part,
                &run_opts,
                &mut comm,
                EdgeList::new(),
                Some(&ckpt),
                None,
            )
            .0
        })
    }

    /// Restart the world in `dir` on `p_new` engine3 ranks and return the
    /// per-rank edge lists (prefix replay + continued generation).
    fn restart3(
        cfg: &PaConfig,
        scheme: Scheme,
        p_new: usize,
        interval: u64,
        dir: &Path,
        store: &StoreSpec,
    ) -> Vec<EdgeList> {
        let world = WorldCheckpoint::load(dir).expect("world loads");
        assert_eq!(world.meta().n, cfg.n);
        let part = partition::build(scheme, cfg.n, p_new);
        let run_opts = GenOptions {
            store: store.clone(),
            ..opts(interval)
        };
        World::new(p_new).run(move |mut comm| {
            let rank = comm.rank();
            let mut sink = EdgeList::new();
            let edges = world.write_part_prefix(&part, rank, &mut sink);
            let payload = world.payload_for(&part, rank, 3);
            let saved = world.resume_point(payload, edges, 0);
            generate_rank3_streaming_recoverable(
                cfg,
                &part,
                &run_opts,
                &mut comm,
                sink,
                None,
                Some(&saved),
            )
            .0
        })
    }

    #[test]
    fn engine3_world_restarts_on_smaller_and_larger_rank_counts() {
        let cfg = PaConfig::new(2_400, 3).with_seed(29);
        let interval = 500;
        let dir = scratch("resize3");
        save_world3(&cfg, Scheme::Rrp, 4, interval, &dir, &StoreSpec::Resident);
        for p_new in [2usize, 8] {
            // Byte-identity oracle: a fresh never-killed P_new run. The
            // per-rank part bytes must match exactly, not just as sets.
            let fresh = {
                let part = partition::build(Scheme::Rrp, cfg.n, p_new);
                let o = opts(interval);
                World::new(p_new).run(move |mut comm| {
                    generate_rank3_streaming_recoverable(
                        &cfg,
                        &part,
                        &o,
                        &mut comm,
                        EdgeList::new(),
                        None,
                        None,
                    )
                    .0
                })
            };
            let restarted = restart3(
                &cfg,
                Scheme::Rrp,
                p_new,
                interval,
                &dir,
                &StoreSpec::Resident,
            );
            assert_eq!(
                restarted, fresh,
                "P=4 -> P={p_new} restart must be byte-identical"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn paged_world_restarts_from_its_page_files() {
        let cfg = PaConfig::new(2_000, 2).with_seed(7);
        let interval = 400;
        let dir = scratch("paged_resize");
        // The old world spills its F tables into the checkpoint dir.
        let paged = StoreSpec::paged(&dir, 2 * 1024).with_page_bytes(256);
        save_world3(&cfg, Scheme::Rrp, 4, interval, &dir, &paged);
        let fresh = {
            let part = partition::build(Scheme::Rrp, cfg.n, 2);
            let o = opts(interval);
            World::new(2).run(move |mut comm| {
                generate_rank3_streaming_recoverable(
                    &cfg,
                    &part,
                    &o,
                    &mut comm,
                    EdgeList::new(),
                    None,
                    None,
                )
                .0
            })
        };
        // Restart reads F from page files; the new run runs resident.
        let restarted = restart3(&cfg, Scheme::Rrp, 2, interval, &dir, &StoreSpec::Resident);
        assert_eq!(restarted, fresh);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine2_world_restarts_across_engines_and_schemes() {
        // Save under engine2/LCP, restart under engine2/RRP with a new
        // rank count: the committed F values are engine-independent, so
        // the restarted edge set must equal the sequential oracle's.
        let cfg = PaConfig::new(2_400, 3).with_seed(11);
        let interval = 500;
        let dir = scratch("cross2");
        let p_old = 3usize;
        let scheme_old = Scheme::Lcp;
        let part_old = partition::build(scheme_old, cfg.n, p_old);
        let m = meta(&cfg, p_old as u32, scheme_old, 2, interval);
        {
            let dir = dir.clone();
            let o = opts(interval);
            World::new(p_old).run(move |mut comm| {
                let ckpt = CheckpointStore::new(&dir, comm.rank() as u32, m).unwrap();
                generate_rank_streaming_recoverable(
                    &cfg,
                    &part_old,
                    &o,
                    &mut comm,
                    EdgeList::new(),
                    Some(&ckpt),
                    None,
                )
                .0
            });
        }
        let world = WorldCheckpoint::load(&dir).expect("world loads");
        assert_eq!(world.meta().world, p_old as u32);
        let p_new = 2usize;
        let part_new = partition::build(Scheme::Rrp, cfg.n, p_new);
        let o = opts(interval);
        let restarted: Vec<EdgeList> = World::new(p_new).run(move |mut comm| {
            let rank = comm.rank();
            let mut sink = EdgeList::new();
            let edges = world.write_part_prefix(&part_new, rank, &mut sink);
            let payload = world.payload_for(&part_new, rank, 2);
            let saved = world.resume_point(payload, edges, 0);
            generate_rank_streaming_recoverable(
                &cfg,
                &part_new,
                &o,
                &mut comm,
                sink,
                None,
                Some(&saved),
            )
            .0
        });
        assert_eq!(
            EdgeList::concat(restarted).canonicalized(),
            crate::seq::copy_model(&cfg).canonicalized(),
            "engine2 restart must reproduce the model's edge set"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_missing_ranks_and_mixed_identities() {
        let cfg = PaConfig::new(1_200, 2).with_seed(3);
        let interval = 300;
        let dir = scratch("reject");
        save_world3(&cfg, Scheme::Rrp, 2, interval, &dir, &StoreSpec::Resident);
        // Remove every checkpoint of rank 1: the load must name it.
        for entry in fs::read_dir(&dir).unwrap().flatten() {
            if entry.file_name().to_string_lossy().starts_with("rank1.") {
                fs::remove_file(entry.path()).unwrap();
            }
        }
        let err = WorldCheckpoint::load(&dir).unwrap_err();
        assert!(err.contains("rank 1"), "{err}");
        // A second run identity in the same directory is an error. Its
        // files must not collide with the first world's names (same
        // epoch grid ⇒ same `rank{r}.epoch{e}.ckpt`), so plant one under
        // a foreign name: the loader reads identity from headers.
        save_world3(&cfg, Scheme::Rrp, 2, interval, &dir, &StoreSpec::Resident);
        let cfg2 = PaConfig::new(1_200, 2).with_seed(4);
        let dir2 = scratch("reject_other");
        save_world3(&cfg2, Scheme::Rrp, 2, interval, &dir2, &StoreSpec::Resident);
        let foreign = fs::read_dir(&dir2)
            .unwrap()
            .flatten()
            .next()
            .unwrap()
            .path();
        fs::copy(&foreign, dir.join("rank0.epoch99.ckpt")).unwrap();
        let err = WorldCheckpoint::load(&dir).unwrap_err();
        let _ = fs::remove_dir_all(&dir2);
        assert!(err.contains("more than one run identity"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_directory_is_an_error() {
        let dir = scratch("empty");
        fs::create_dir_all(&dir).unwrap();
        let err = WorldCheckpoint::load(&dir).unwrap_err();
        assert!(err.contains("no valid checkpoints"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
