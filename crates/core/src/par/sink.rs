//! Edge sinks: where the engines deliver generated edges.
//!
//! The paper notes (§3.2) that "some network analysts may prefer to
//! generate networks on the fly and analyze [them] without performing
//! disk I/O". The engines are therefore generic over an [`EdgeSink`]:
//! materialize an [`EdgeList`], stream into a closure, or fold into an
//! online statistic without ever storing the edges.

use crate::Node;
use pa_graph::io::{EdgeFormat, EdgeWriter};
use pa_graph::EdgeList;
use std::io::{self, Write};

/// Receives every edge a rank creates, in creation order.
pub trait EdgeSink {
    /// Called exactly once per created edge `(u, v)` with `u` the
    /// creating (newer) node.
    fn emit(&mut self, u: Node, v: Node);

    /// Flush any buffering and report the `(edges, bytes)` watermark the
    /// sink has made durable — the coordinates a checkpoint records so a
    /// restarted run can truncate back to exactly this point. Sinks with
    /// no byte-addressed backing report 0 bytes; sinks that cannot
    /// support recovery at all keep the default `Unsupported` error
    /// (checkpointing through them fails loudly instead of silently
    /// producing an unrecoverable checkpoint).
    ///
    /// # Errors
    ///
    /// `Unsupported` by default; flushing sinks surface their I/O errors.
    fn checkpoint_mark(&mut self) -> std::io::Result<(u64, u64)> {
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "this edge sink does not support checkpoint watermarks",
        ))
    }
}

impl EdgeSink for EdgeList {
    #[inline]
    fn emit(&mut self, u: Node, v: Node) {
        self.push(u, v);
    }

    fn checkpoint_mark(&mut self) -> std::io::Result<(u64, u64)> {
        Ok((self.len() as u64, 0))
    }
}

impl<F: FnMut(Node, Node)> EdgeSink for F {
    #[inline]
    fn emit(&mut self, u: Node, v: Node) {
        self(u, v)
    }
}

/// Sink that only counts edges (zero memory).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountSink {
    /// Number of edges emitted so far.
    pub edges: u64,
}

impl EdgeSink for CountSink {
    #[inline]
    fn emit(&mut self, _u: Node, _v: Node) {
        self.edges += 1;
    }

    fn checkpoint_mark(&mut self) -> std::io::Result<(u64, u64)> {
        Ok((self.edges, 0))
    }
}

/// Sink that accumulates the *global* degree contribution of the edges
/// this rank creates: both endpoints of every emitted edge are counted
/// into a dense array over all `n` nodes. Summing the per-rank arrays
/// yields the exact degree sequence (each edge is emitted exactly once,
/// by its creating rank), so the degree distribution of an arbitrarily
/// large run is available in `O(n)` memory with no edge storage.
#[derive(Debug, Clone)]
pub struct DegreeCountSink {
    counts: Vec<u32>,
}

impl DegreeCountSink {
    /// Counting sink for a graph on `n` nodes.
    pub fn new(n: u64) -> Self {
        Self {
            counts: vec![0; n as usize],
        }
    }

    /// This rank's degree contributions.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Merge several ranks' contributions into one exact degree sequence.
    ///
    /// # Panics
    ///
    /// Panics if the parts have inconsistent lengths or no part is given.
    pub fn merge(parts: impl IntoIterator<Item = DegreeCountSink>) -> Vec<u64> {
        let mut iter = parts.into_iter();
        let first = iter.next().expect("at least one rank");
        let mut total: Vec<u64> = first.counts.iter().map(|&c| c as u64).collect();
        for part in iter {
            assert_eq!(part.counts.len(), total.len(), "inconsistent n");
            for (t, c) in total.iter_mut().zip(part.counts) {
                *t += c as u64;
            }
        }
        total
    }
}

/// Sink that streams every edge straight to a writer through the chunked
/// [`EdgeWriter`], so a rank's resident footprint stays one chunk no
/// matter how many edges it generates — the piece that lets
/// `pagen generate --out` emit `n = 10⁸`-scale networks in
/// `O(n/P + buffer)` memory instead of materializing per-rank edge
/// vectors.
///
/// [`EdgeSink::emit`] is infallible by design (it is called from the hot
/// per-node engine loops), so I/O errors are recorded and surfaced by
/// [`StreamingWriterSink::finish`] after the run.
#[derive(Debug)]
pub struct StreamingWriterSink<W: Write> {
    writer: EdgeWriter<W>,
}

impl<W: Write> StreamingWriterSink<W> {
    /// Stream edges into `w` in the given on-disk format.
    pub fn new(w: W, format: EdgeFormat) -> Self {
        Self {
            writer: EdgeWriter::new(w, format),
        }
    }

    /// Continue an interrupted stream: `w` must already hold (and be
    /// positioned after) `edges` edges in `bytes` bytes — a part file
    /// truncated to a checkpoint watermark and seeked to its end.
    pub fn resume(w: W, format: EdgeFormat, edges: u64, bytes: u64) -> Self {
        Self {
            writer: EdgeWriter::resume(w, format, edges, bytes),
        }
    }

    /// Edges streamed so far.
    pub fn count(&self) -> u64 {
        self.writer.count()
    }

    /// Flush and return the total edge count, or the first I/O error
    /// encountered during the run.
    pub fn finish(self) -> io::Result<u64> {
        self.writer.finish()
    }
}

impl<W: Write> EdgeSink for StreamingWriterSink<W> {
    #[inline]
    fn emit(&mut self, u: Node, v: Node) {
        self.writer.push(u, v);
    }

    fn checkpoint_mark(&mut self) -> std::io::Result<(u64, u64)> {
        self.writer.checkpoint()
    }
}

impl EdgeSink for DegreeCountSink {
    #[inline]
    fn emit(&mut self, u: Node, v: Node) {
        self.counts[u as usize] += 1;
        self.counts[v as usize] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_sink_collects() {
        let mut el = EdgeList::new();
        el.emit(1, 0);
        el.emit(2, 1);
        assert_eq!(el.as_slice(), &[(1, 0), (2, 1)]);
    }

    #[test]
    fn closure_sink_runs() {
        let mut seen = Vec::new();
        {
            let mut sink = |u: Node, v: Node| seen.push((u, v));
            sink.emit(3, 1);
        }
        assert_eq!(seen, vec![(3, 1)]);
    }

    #[test]
    fn count_sink_counts() {
        let mut s = CountSink::default();
        s.emit(1, 0);
        s.emit(2, 0);
        assert_eq!(s.edges, 2);
    }

    #[test]
    fn degree_sink_merges_to_exact_degrees() {
        let mut a = DegreeCountSink::new(4);
        a.emit(1, 0);
        a.emit(2, 0);
        let mut b = DegreeCountSink::new(4);
        b.emit(3, 0);
        let deg = DegreeCountSink::merge([a, b]);
        assert_eq!(deg, vec![3, 1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "inconsistent n")]
    fn degree_sink_rejects_mismatched_sizes() {
        let _ = DegreeCountSink::merge([DegreeCountSink::new(3), DegreeCountSink::new(4)]);
    }

    #[test]
    fn checkpoint_marks_per_sink() {
        let mut el = EdgeList::new();
        el.emit(1, 0);
        assert_eq!(el.checkpoint_mark().unwrap(), (1, 0));
        let mut c = CountSink::default();
        c.emit(1, 0);
        c.emit(2, 0);
        assert_eq!(c.checkpoint_mark().unwrap(), (2, 0));
        let mut deg = DegreeCountSink::new(4);
        let err = deg.checkpoint_mark().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
        let mut buf = Vec::new();
        let mut s = StreamingWriterSink::new(&mut buf, EdgeFormat::Binary);
        s.emit(1, 0);
        assert_eq!(s.checkpoint_mark().unwrap(), (1, 16));
    }

    #[test]
    fn streaming_writer_sink_round_trips() {
        let mut buf = Vec::new();
        let mut sink = StreamingWriterSink::new(&mut buf, EdgeFormat::Binary);
        sink.emit(1, 0);
        sink.emit(2, 1);
        assert_eq!(sink.count(), 2);
        assert_eq!(sink.finish().unwrap(), 2);
        let back = pa_graph::io::read_binary(&buf[..]).unwrap();
        assert_eq!(back.as_slice(), &[(1, 0), (2, 1)]);
    }
}
