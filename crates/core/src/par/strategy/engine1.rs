//! The `x = 1` strategy — Algorithm 3.1, exactly as the paper states it.
//!
//! Structurally a simplification of the general strategy: one attachment
//! slot per node, no duplicate checks (a single edge cannot collide), and
//! the two-field message types `⟨request, t, k⟩` / `⟨resolved, t, v⟩`.
//! Because no retries exist, the generated edge set is a pure function of
//! the seed — bit-identical for every rank count and partitioning scheme
//! — which the test suite exploits heavily.
//!
//! The service/flush/park/termination loop lives in
//! [`crate::par::driver`]; this module only supplies the per-node state
//! machine. All randomness flows through [`crate::Model`], so the x = 1
//! protocol serves any counter-pure attachment model.

use std::collections::VecDeque;

use pa_mpsim::Transport;

use super::waiters::{Taken, WaiterTable};
use super::Strategy;
use crate::par::driver::Net;
use crate::par::msg::Msg1;
use crate::par::output::EngineCounters;
use crate::par::sink::EdgeSink;
use crate::partition::Partition;
use crate::store::{self, AnyTable, NodeTable};
use crate::{GenOptions, Model, Node, PaConfig, NILL};

#[derive(Debug, Clone, Copy)]
enum Waiter {
    Local { t: Node },
    Remote { t: Node, src: usize },
}

pub(crate) struct X1<'a, P: Partition, S: EdgeSink> {
    part: &'a P,
    rank: usize,
    /// The resolved attachment model this rank draws from.
    model: Model,
    /// `F_t` per local node (by local index). Resident or disk-paged
    /// per [`GenOptions::store`].
    f: AnyTable,
    waiters: WaiterTable<Waiter>,
    local_events: VecDeque<(Node, Node)>,
    edges: S,
    counters: EngineCounters,
}

impl<'a, P: Partition, S: EdgeSink> X1<'a, P, S> {
    pub(crate) fn new(
        cfg: &'a PaConfig,
        part: &'a P,
        rank: usize,
        opts: &GenOptions,
        sink: S,
    ) -> Self {
        assert_eq!(cfg.x, 1, "Algorithm 3.1 requires x = 1");
        let size = part.size_of(rank);
        let f = AnyTable::build(&opts.store, rank, "f", size, NILL)
            .unwrap_or_else(|e| panic!("rank {rank}: opening node table f: {e}"));
        X1 {
            part,
            rank,
            model: Model::resolve(cfg, opts.model),
            f,
            waiters: WaiterTable::new(size as usize),
            local_events: VecDeque::new(),
            edges: sink,
            counters: EngineCounters {
                nodes: size,
                ..Default::default()
            },
        }
    }

    /// The sink and counters, after [`crate::par::driver::run`] returns.
    pub(crate) fn into_parts(self) -> (S, EngineCounters) {
        (self.edges, self.counters)
    }

    #[inline]
    fn note_waiter_high_water(&mut self) {
        self.counters.max_queued_waiters = self.counters.max_queued_waiters.max(self.waiters.len());
    }

    /// Set `F_t = v`, emit the edge and notify waiters (lines 16–19).
    fn commit<T: Transport<Msg1>>(&mut self, net: &mut Net<'_, Msg1, T>, t: Node, v: Node) {
        let slot = self.part.local_index(t);
        debug_assert_eq!(self.f.get(slot), NILL);
        self.f.set(slot, v);
        self.edges.emit(t, v);
        net.complete(1);
        match self.waiters.take(slot as usize) {
            Taken::None => {}
            Taken::One(w) => self.notify(net, w, v),
            Taken::Many(list) => {
                for &w in &list {
                    self.notify(net, w, v);
                }
                self.waiters.recycle(list);
            }
        }
    }

    #[inline]
    fn notify<T: Transport<Msg1>>(&mut self, net: &mut Net<'_, Msg1, T>, w: Waiter, v: Node) {
        match w {
            Waiter::Remote { t, src } => {
                net.send_res(src, Msg1::Resolved { t, v });
            }
            Waiter::Local { t } => self.local_events.push_back((t, v)),
        }
    }
}

impl<'a, P: Partition, S: EdgeSink> Strategy for X1<'a, P, S> {
    type Msg = Msg1;

    fn register(&mut self, lo: Node, hi: Node) -> u64 {
        // Node 0 contributes no slot; every other local node in `[lo, hi)`
        // one.
        let seeds_here = u64::from(lo == 0 && self.part.rank_of(0) == self.rank);
        self.part.local_count_below(self.rank, hi)
            - self.part.local_count_below(self.rank, lo)
            - seeds_here
    }

    fn attach_seed_node<T: Transport<Msg1>>(
        &mut self,
        net: &mut Net<'_, Msg1, T>,
        lo: Node,
        hi: Node,
    ) {
        // Node 1 attaches to node 0 (the x = 1 boundary case), in the
        // epoch containing label 1.
        if self.part.num_nodes() > 1 && (lo..hi).contains(&1) && self.part.rank_of(1) == self.rank {
            self.commit(net, 1, 0);
        }
    }

    /// Algorithm 3.1 lines 3–9 for node `t`.
    fn start_node<T: Transport<Msg1>>(&mut self, net: &mut Net<'_, Msg1, T>, t: Node) {
        let c = self.model.draw(t, 0, 0);
        if c.direct {
            self.counters.direct_edges += 1;
            self.commit(net, t, c.k);
            return;
        }
        let owner = self.part.rank_of(c.k);
        if owner == self.rank {
            let kslot = self.part.local_index(c.k);
            let fk = self.f.get(kslot);
            if fk == NILL {
                self.counters.local_deferred += 1;
                self.waiters.push(kslot as usize, Waiter::Local { t });
                self.note_waiter_high_water();
            } else {
                self.counters.local_immediate += 1;
                self.counters.copy_edges += 1;
                self.commit(net, t, fk);
            }
        } else {
            self.counters.requests_sent += 1;
            net.send_req(owner, Msg1::Request { t, k: c.k });
        }
    }

    fn drain_local<T: Transport<Msg1>>(&mut self, net: &mut Net<'_, Msg1, T>) {
        while let Some((t, v)) = self.local_events.pop_front() {
            self.counters.copy_edges += 1;
            self.commit(net, t, v);
        }
    }

    fn handle_msgs<T: Transport<Msg1>>(
        &mut self,
        net: &mut Net<'_, Msg1, T>,
        src: usize,
        msgs: &mut Vec<Msg1>,
    ) {
        for msg in msgs.drain(..) {
            match msg {
                Msg1::Request { t, k } => {
                    // Lines 11–15.
                    debug_assert_eq!(self.part.rank_of(k), self.rank);
                    let kslot = self.part.local_index(k);
                    let fk = self.f.get(kslot);
                    if fk == NILL {
                        self.counters.requests_queued += 1;
                        self.waiters.push(kslot as usize, Waiter::Remote { t, src });
                        self.note_waiter_high_water();
                    } else {
                        self.counters.requests_served += 1;
                        net.send_res(src, Msg1::Resolved { t, v: fk });
                    }
                }
                Msg1::Resolved { t, v } => {
                    debug_assert_eq!(self.part.rank_of(t), self.rank);
                    // Idempotence under faulty delivery: a duplicated
                    // `resolved` must not commit (and decrement the
                    // termination counter) twice. With x = 1 a node has
                    // one slot and no retries, so every answer for `t`
                    // carries the same value — once `F_t` is set, any
                    // further answer is a stale duplicate.
                    let slot = self.part.local_index(t);
                    if self.f.get(slot) != NILL {
                        debug_assert_eq!(self.f.get(slot), v, "conflicting resolutions for {t}");
                        self.counters.stale_resolutions += 1;
                    } else {
                        self.counters.copy_edges += 1;
                        self.commit(net, t, v);
                    }
                }
            }
        }
    }

    fn finish(&mut self) {
        debug_assert!(self.waiters.is_empty(), "waiters left after termination");
    }

    fn sink_mark(&mut self) -> std::io::Result<(u64, u64)> {
        self.edges.checkpoint_mark()
    }

    fn snapshot(&mut self, hi: Node, out: &mut Vec<u8>) {
        // At the epoch cut every local node below `hi` is committed, so
        // the prefix of `f` plus the counters is the whole engine (the
        // waiter table is provably empty; node 0's slot legitimately
        // holds NILL — it never attaches and is never queried).
        let cnt = self.part.local_count_below(self.rank, hi);
        store::write_table_prefix(&mut self.f, cnt, 1, out);
        self.counters.encode(out);
    }

    fn restore(&mut self, hi: Node, payload: &[u8]) -> Result<(), String> {
        let mut r = payload;
        let expect = self.part.local_count_below(self.rank, hi);
        store::read_table_prefix(&mut self.f, expect, 1, &mut r)?;
        self.counters = EngineCounters::decode(&mut r).ok_or("truncated engine counters")?;
        if !r.is_empty() {
            return Err(format!("{} trailing bytes after the counters", r.len()));
        }
        Ok(())
    }

    fn stall_report(&mut self) -> String {
        let uncommitted = (0..self.f.len()).filter(|&s| self.f.get(s) == NILL).count();
        format!(
            "uncommitted_nodes={uncommitted} waiters={} stale_resolutions={}",
            self.waiters.len(),
            self.counters.stale_resolutions,
        )
    }
}
