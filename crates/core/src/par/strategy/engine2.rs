//! The general strategy — Algorithm 3.2 (`x ≥ 1`).
//!
//! Every rank sweeps its own nodes in ascending order. A node's `x` edge
//! slots are driven **in slot order**: slot `(t, e)` runs its draw/retry
//! loop only once slots `(t, 0..e)` have committed. Direct choices commit
//! immediately; copy choices either resolve from the local `F` table, from
//! the replicated hub cache, park in a waiter slot, or become a `request`
//! message to the owner of `k`. Incoming requests are answered immediately
//! when the slot is known or parked in the dense waiter table otherwise; a
//! commit drains the slot's waiters, sending `resolved` messages
//! (buffered, with the §3.5.2 flush discipline). Duplicate edges are
//! rejected against the committed prefix of the row, re-drawing with an
//! incremented attempt counter.
//!
//! **Determinism.** In-order slots give every attempt of `(t, e)` exactly
//! the visibility the sequential generator has at the same point: the
//! committed values of `(t, 0..e)` and the unique committed `F_k(l)`
//! (requests and cache hits both return committed-only values). Every
//! attempt therefore accepts or rejects identically, so the engine emits
//! the *same edge set as `seq::copy_model`* for every rank count,
//! partitioning scheme, message timing, and hub-cache setting — the
//! property the determinism suite pins down. The cost is that one node's
//! remote lookups serialize; parallelism across the many nodes of a rank
//! is untouched, and low-label lookups — the common case, by Lemma 3.4 —
//! are absorbed by the hub cache anyway.
//!
//! The service/flush/park/termination loop — and the termination argument
//! (a `request` in flight always belongs to an uncommitted slot) — lives
//! in [`crate::par::driver`]; this module only supplies the per-slot state
//! machine.

use std::collections::{HashMap, VecDeque};

use pa_mpsim::Transport;

use super::hub::HubCache;
use super::waiters::{Taken, WaiterTable};
use super::Strategy;
use crate::par::driver::Net;
use crate::par::msg::Msg;
use crate::par::output::EngineCounters;
use crate::par::sink::EdgeSink;
use crate::partition::Partition;
use crate::store::{self, AnyTable, NodeTable};
use crate::{GenOptions, Model, Node, PaConfig, NILL};

/// Someone waiting for a local slot to resolve.
#[derive(Debug, Clone, Copy)]
enum Waiter {
    /// A slot owned by this same rank.
    Local { t: Node, e: u32 },
    /// A slot owned by rank `src` (answer with a `resolved` message
    /// echoing the request's attempt tag `a`).
    Remote { t: Node, e: u32, a: u32, src: usize },
}

/// What `try_slot` did with the current slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotOutcome {
    /// The slot committed; the node may advance.
    Committed,
    /// The slot parked (local waiter or remote request); the node resumes
    /// when the answer arrives.
    Waiting,
}

pub(crate) struct General<'a, P: Partition, S: EdgeSink> {
    cfg: &'a PaConfig,
    part: &'a P,
    rank: usize,
    nranks: usize,
    /// The resolved attachment model this rank draws from.
    model: Model,
    /// Flattened `F_t(e)` slots for local nodes: `local_index(t)·x + e`.
    /// Resident or disk-paged per [`GenOptions::store`].
    f: AnyTable,
    /// Per-slot retry counters (`attempt` in the draw key). Ephemeral:
    /// dead once a slot commits, never checkpointed.
    attempts: AnyTable,
    /// Next edge index each local node must commit (in-order
    /// discipline). Ephemeral: reconstructed on restore.
    next_e: AnyTable,
    /// Waiters per local slot index.
    waiters: WaiterTable<Waiter>,
    /// Replicated low-label slots (see [`super::hub`]).
    hub: HubCache,
    /// Slots parked for a hub broadcast that has not arrived yet, keyed
    /// by the hub slot `k·x + l`. Sparse by construction — only slots a
    /// lookup raced ahead of — so a map beats a dense table here.
    hub_waiters: HashMap<u64, Vec<(Node, u32)>>,
    /// Locally produced resolutions awaiting processing `(t, e, v)`.
    local_events: VecDeque<(Node, u32, Node)>,
    /// Every node below this label is committed world-wide (0 on a fresh
    /// run; the checkpoint cut `hi` after a restore). Hub *misses* below
    /// the base fall back to the request path: the owner's broadcast was
    /// sent before the crash and will never be retransmitted, but a
    /// request returns the same committed value, so the output is
    /// unchanged.
    committed_base: Node,
    edges: S,
    counters: EngineCounters,
}

impl<'a, P: Partition, S: EdgeSink> General<'a, P, S> {
    pub(crate) fn new(
        cfg: &'a PaConfig,
        part: &'a P,
        rank: usize,
        nranks: usize,
        opts: &GenOptions,
        sink: S,
    ) -> Self {
        let x = cfg.x;
        let size = part.size_of(rank);
        let slots = size * x;
        // A single rank resolves everything locally; skip the replica.
        let hub = if nranks > 1 {
            HubCache::new(cfg, opts.hub_nodes(cfg.n))
        } else {
            HubCache::disabled(cfg)
        };
        // Split one --memory-budget across the three tables by
        // slot-count weight: f and attempts each hold x slots per node,
        // next_e one. The two ephemeral tables always start fresh.
        let total = slots * 2 + size;
        let build = |spec: &store::StoreSpec, name: &str, len: u64, fill: u64| {
            AnyTable::build(spec, rank, name, len, fill)
                .unwrap_or_else(|e| panic!("rank {rank}: opening node table {name}: {e}"))
        };
        let f = build(&opts.store.scaled(slots, total), "f", slots, NILL);
        let attempts = build(
            &opts.store.scaled(slots, total).ephemeral(),
            "att",
            slots,
            0,
        );
        let next_e = build(&opts.store.scaled(size, total).ephemeral(), "nxe", size, 0);
        General {
            cfg,
            part,
            rank,
            nranks,
            model: Model::resolve(cfg, opts.model),
            f,
            attempts,
            next_e,
            waiters: WaiterTable::new(slots as usize),
            hub,
            hub_waiters: HashMap::new(),
            local_events: VecDeque::new(),
            committed_base: 0,
            edges: sink,
            counters: EngineCounters {
                nodes: size,
                ..Default::default()
            },
        }
    }

    /// The sink and counters, after [`crate::par::driver::run`] returns.
    pub(crate) fn into_parts(self) -> (S, EngineCounters) {
        (self.edges, self.counters)
    }

    /// Slot index of `(t, e)` on this rank.
    #[inline]
    fn slot(&self, t: Node, e: u32) -> u64 {
        self.part.local_index(t) * self.cfg.x + u64::from(e)
    }

    /// Does `t`'s committed target row already contain `v`?
    #[inline]
    fn row_contains(&mut self, t: Node, v: Node) -> bool {
        let row = self.part.local_index(t) * self.cfg.x;
        self.f.row_contains(row, self.cfg.x, v)
    }

    /// Drive node `t` forward: run each slot from `next_e` in order until
    /// one parks (local wait or remote request) or the node completes.
    fn advance_node<T: Transport<Msg>>(&mut self, net: &mut Net<'_, Msg, T>, t: Node) {
        let li = self.part.local_index(t);
        while self.next_e.get(li) < self.cfg.x {
            let e = self.next_e.get(li) as u32;
            if self.try_slot(net, t, e) == SlotOutcome::Waiting {
                return;
            }
        }
    }

    /// The attempt loop for the *current* slot `(t, e)` (Alg. 3.2 lines
    /// 5–15, under the in-order discipline).
    fn try_slot<T: Transport<Msg>>(
        &mut self,
        net: &mut Net<'_, Msg, T>,
        t: Node,
        e: u32,
    ) -> SlotOutcome {
        let x = self.cfg.x;
        // Hoist the (seed, t) key prefix: every re-draw of this slot then
        // pays one key mix instead of three (the high-x duplicate-retry
        // hot spot).
        let keys = self.model.keys_for(t);
        loop {
            let slot = self.slot(t, e);
            let attempt = self.attempts.get(slot) as u32;
            self.attempts.set(slot, u64::from(attempt) + 1);
            let c = self.model.draw_keyed(&keys, t, e, attempt);
            let (v, direct) = if c.direct {
                (c.k, true)
            } else {
                // Copy branch: we need the committed F_k(l).
                let owner = self.part.rank_of(c.k);
                if owner == self.rank {
                    let kslot = self.slot(c.k, c.l as u32);
                    let fk = self.f.get(kslot);
                    if fk == NILL {
                        self.counters.local_deferred += 1;
                        self.waiters.push(kslot as usize, Waiter::Local { t, e });
                        self.note_waiter_high_water();
                        return SlotOutcome::Waiting;
                    }
                    self.counters.local_immediate += 1;
                    (fk, false)
                } else if self.hub.covers(c.k) {
                    match self.hub.get(c.k, c.l as u32) {
                        Some(v) => {
                            // Hub hit: the committed value, no round trip.
                            self.counters.hub_hits += 1;
                            (v, false)
                        }
                        None if c.k < self.committed_base => {
                            // The slot committed before the checkpoint cut
                            // we restored from, so its broadcast predates
                            // the crash and may be lost forever — parking
                            // would deadlock. Ask the owner instead; the
                            // answer is the same committed value.
                            self.counters.requests_sent += 1;
                            net.send_req(
                                owner,
                                Msg::Request {
                                    t,
                                    e,
                                    k: c.k,
                                    l: c.l as u32,
                                    a: attempt,
                                },
                            );
                            return SlotOutcome::Waiting;
                        }
                        None => {
                            // The owner broadcasts every covered commit,
                            // so the value is already on its way; park for
                            // it rather than duplicating it with a
                            // request/resolved round trip.
                            self.counters.hub_deferred += 1;
                            self.hub_waiters
                                .entry(c.k * x + c.l)
                                .or_default()
                                .push((t, e));
                            return SlotOutcome::Waiting;
                        }
                    }
                } else {
                    // Alg. 3.2 line 14: ask the owner of k. The attempt
                    // tag comes back with the answer, so stale duplicates
                    // of earlier answers can be told apart from it.
                    self.counters.requests_sent += 1;
                    net.send_req(
                        owner,
                        Msg::Request {
                            t,
                            e,
                            k: c.k,
                            l: c.l as u32,
                            a: attempt,
                        },
                    );
                    return SlotOutcome::Waiting;
                }
            };
            if self.row_contains(t, v) {
                self.counters.duplicate_retries += 1;
                continue;
            }
            if direct {
                self.counters.direct_edges += 1;
            } else {
                self.counters.copy_edges += 1;
            }
            self.commit(net, t, e, v);
            return SlotOutcome::Committed;
        }
    }

    #[inline]
    fn note_waiter_high_water(&mut self) {
        self.counters.max_queued_waiters = self.counters.max_queued_waiters.max(self.waiters.len());
    }

    /// Record `F_t(e) = v`, emit the edge, broadcast hub commits, and
    /// notify waiters.
    fn commit<T: Transport<Msg>>(&mut self, net: &mut Net<'_, Msg, T>, t: Node, e: u32, v: Node) {
        let slot = self.slot(t, e);
        let li = self.part.local_index(t);
        debug_assert_eq!(self.f.get(slot), NILL, "double commit of ({t},{e})");
        debug_assert_eq!(
            self.next_e.get(li),
            u64::from(e),
            "out-of-order commit of ({t},{e})"
        );
        debug_assert!(!self.row_contains(t, v), "duplicate committed at ({t},{e})");
        self.f.set(slot, v);
        self.next_e.set(li, u64::from(e) + 1);
        self.edges.emit(t, v);
        net.complete(1);
        // Replicate committed hub slots to every other rank (node x's row
        // is pre-seeded in every cache, so it needs no traffic).
        if t > self.cfg.x && self.hub.covers(t) {
            for dest in 0..self.nranks {
                if dest != self.rank {
                    net.send_res(dest, Msg::Hub { k: t, l: e, v });
                }
            }
        }
        match self.waiters.take(slot as usize) {
            Taken::None => {}
            Taken::One(w) => self.notify(net, w, v),
            Taken::Many(list) => {
                for &w in &list {
                    self.notify(net, w, v);
                }
                self.waiters.recycle(list);
            }
        }
    }

    #[inline]
    fn notify<T: Transport<Msg>>(&mut self, net: &mut Net<'_, Msg, T>, w: Waiter, v: Node) {
        match w {
            Waiter::Remote { t, e, a, src } => {
                net.send_res(src, Msg::Resolved { t, e, v, a });
            }
            Waiter::Local { t, e } => {
                self.local_events.push_back((t, e, v));
            }
        }
    }

    /// A `resolved` message from the wire for slot `(t, e)`, answer to the
    /// request tagged `a`. Under faulty delivery the message can be a
    /// duplicate, so it must be *idempotent*: answers for an
    /// already-committed slot, and answers whose attempt tag is not the
    /// slot's latest outstanding draw, are discarded. Without the tag
    /// check a duplicated answer racing a duplicate-retry of the same
    /// slot would be taken for the answer to the *re-drawn* request —
    /// spuriously advancing the attempt counter and diverging the edge
    /// set from the sequential generator's.
    fn handle_resolved_msg<T: Transport<Msg>>(
        &mut self,
        net: &mut Net<'_, Msg, T>,
        t: Node,
        e: u32,
        v: Node,
        a: u32,
    ) {
        let li = self.part.local_index(t);
        if self.next_e.get(li) != u64::from(e) {
            // The slot already committed (and possibly its successors
            // too): a late duplicate of an answer we consumed.
            self.counters.stale_resolutions += 1;
            return;
        }
        let slot = self.slot(t, e);
        if u64::from(a) + 1 != self.attempts.get(slot) {
            // Answer to a superseded draw of the current slot.
            self.counters.stale_resolutions += 1;
            return;
        }
        self.handle_resolved(net, t, e, v);
    }

    /// A resolution for the current slot `(t, e)`: commit unless duplicate
    /// (Alg. 3.2 lines 21–29), then push the node onward. Callers must
    /// have established that the value answers the slot's latest draw
    /// (wire answers go through [`Self::handle_resolved_msg`]; local
    /// events and hub wake-ups are generated at commit time for a parked
    /// current draw, and parked slots draw nothing new until woken).
    fn handle_resolved<T: Transport<Msg>>(
        &mut self,
        net: &mut Net<'_, Msg, T>,
        t: Node,
        e: u32,
        v: Node,
    ) {
        debug_assert_eq!(
            self.next_e.get(self.part.local_index(t)),
            u64::from(e),
            "resolution for a non-current slot"
        );
        if self.row_contains(t, v) {
            self.counters.duplicate_retries += 1;
        } else {
            self.counters.copy_edges += 1;
            self.commit(net, t, e, v);
        }
        // Re-enters the attempt loop on duplicate, or starts slot e+1.
        self.advance_node(net, t);
    }
}

impl<'a, P: Partition, S: EdgeSink> Strategy for General<'a, P, S> {
    type Msg = Msg;

    fn register(&mut self, lo: Node, hi: Node) -> u64 {
        super::register_clique(self.part, self.rank, self.cfg.x, lo, hi, &mut self.edges)
    }

    fn attach_seed_node<T: Transport<Msg>>(
        &mut self,
        net: &mut Net<'_, Msg, T>,
        lo: Node,
        hi: Node,
    ) {
        // Node x attaches deterministically to all seed nodes (gated on
        // its label's epoch, so its slots complete exactly the work the
        // same epoch registered).
        let x = self.cfg.x;
        if self.part.num_nodes() > x && (lo..hi).contains(&x) && self.part.rank_of(x) == self.rank {
            for e in 0..x {
                self.commit(net, x, e as u32, e);
            }
        }
    }

    fn start_node<T: Transport<Msg>>(&mut self, net: &mut Net<'_, Msg, T>, t: Node) {
        self.advance_node(net, t);
    }

    fn drain_local<T: Transport<Msg>>(&mut self, net: &mut Net<'_, Msg, T>) {
        while let Some((t, e, v)) = self.local_events.pop_front() {
            self.handle_resolved(net, t, e, v);
        }
    }

    fn handle_msgs<T: Transport<Msg>>(
        &mut self,
        net: &mut Net<'_, Msg, T>,
        src: usize,
        msgs: &mut Vec<Msg>,
    ) {
        for msg in msgs.drain(..) {
            match msg {
                Msg::Request { t, e, k, l, a } => {
                    // Alg. 3.2 lines 16–20. A duplicated request is
                    // harmless either way: served twice it produces two
                    // identical answers (the second discarded as stale by
                    // the requester), parked twice it wakes twice with
                    // the same effect.
                    debug_assert_eq!(self.part.rank_of(k), self.rank);
                    let kslot = self.slot(k, l);
                    let fk = self.f.get(kslot);
                    if fk == NILL {
                        self.counters.requests_queued += 1;
                        self.waiters
                            .push(kslot as usize, Waiter::Remote { t, e, a, src });
                        self.note_waiter_high_water();
                    } else {
                        self.counters.requests_served += 1;
                        net.send_res(src, Msg::Resolved { t, e, v: fk, a });
                    }
                }
                Msg::Resolved { t, e, v, a } => {
                    debug_assert_eq!(self.part.rank_of(t), self.rank);
                    self.handle_resolved_msg(net, t, e, v, a);
                }
                Msg::Hub { k, l, v } => {
                    self.counters.hub_updates += 1;
                    self.hub.insert(k, l, v);
                    // Wake every slot that raced ahead of this broadcast;
                    // the value is exactly what a `resolved` would carry.
                    if let Some(parked) = self.hub_waiters.remove(&(k * self.cfg.x + u64::from(l)))
                    {
                        for (t, e) in parked {
                            self.counters.hub_hits += 1;
                            self.handle_resolved(net, t, e, v);
                        }
                    }
                }
            }
        }
    }

    fn finish(&mut self) {
        debug_assert!(self.waiters.is_empty(), "waiters left after termination");
        debug_assert!(
            self.hub_waiters.is_empty(),
            "hub waiters left after termination"
        );
    }

    fn sink_mark(&mut self) -> std::io::Result<(u64, u64)> {
        self.edges.checkpoint_mark()
    }

    fn snapshot(&mut self, hi: Node, out: &mut Vec<u8>) {
        // At the epoch cut every local node below `hi` is fully
        // committed and everything at or above it is untouched, so the
        // prefix of `f` plus the counters and the hub replica is the
        // whole engine (attempt counters are dead for committed slots;
        // `next_e` is reconstructed; waiter tables are provably empty —
        // `finish` just asserted it). Clique-node rows (labels < x)
        // legitimately hold NILL: their slots are never drawn or queried.
        let x = self.cfg.x;
        let cnt = self.part.local_count_below(self.rank, hi);
        store::write_table_prefix(&mut self.f, cnt, x, out);
        self.counters.encode(out);
        let vals = self.hub.vals();
        out.extend_from_slice(&(vals.len() as u64).to_le_bytes());
        for &v in vals {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn restore(&mut self, hi: Node, payload: &[u8]) -> Result<(), String> {
        use pa_mpsim::wire::get_u64;
        let x = self.cfg.x;
        let mut r = payload;
        let expect = self.part.local_count_below(self.rank, hi);
        store::read_table_prefix(&mut self.f, expect, x, &mut r)?;
        self.next_e.reset_from(0);
        for li in 0..expect {
            self.next_e.set(li, x);
        }
        self.counters = EngineCounters::decode(&mut r).ok_or("truncated engine counters")?;
        let hub_len = get_u64(&mut r).ok_or("truncated hub-cache length")? as usize;
        let mut vals = Vec::with_capacity(hub_len);
        for _ in 0..hub_len {
            vals.push(get_u64(&mut r).ok_or("truncated hub cache")?);
        }
        if !r.is_empty() {
            return Err(format!("{} trailing bytes after the hub cache", r.len()));
        }
        if hub_len == 0 {
            // An elastic-restart payload carries no hub section: keep
            // the fresh pre-seeded replica. Correct because every hub
            // miss below `committed_base` falls back to the request
            // path, which returns the same committed value.
        } else if !self.hub.load_vals(&vals) {
            return Err(format!(
                "hub cache holds {hub_len} slots but this run's cache has {} \
                 (hub_cache_nodes changed between runs?)",
                self.hub.vals().len()
            ));
        }
        self.committed_base = hi;
        Ok(())
    }

    fn stall_report(&mut self) -> String {
        let uncommitted = (0..self.next_e.len())
            .filter(|&li| self.next_e.get(li) < self.cfg.x)
            .count();
        format!(
            "uncommitted_nodes={uncommitted} waiters={} hub_waiters={} stale_resolutions={}",
            self.waiters.len(),
            self.hub_waiters.len(),
            self.counters.stale_resolutions,
        )
    }
}
