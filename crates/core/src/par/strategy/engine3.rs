//! The communication-free strategy — local chain recomputation (engine3).
//!
//! Algorithm 3.2 resolves a copy choice `F_k(l)` by *asking the owner* of
//! `k` — a request/resolved round trip per unresolved dependency, which is
//! where the paper's distributed runs spend their wall-clock. But every
//! draw in this workspace is already a pure function of
//! `(seed, node, edge, attempt)` (the counter-based RNG), which is exactly
//! the property Sanders & Schulz exploit in "Scalable Generation of
//! Scale-free Graphs": any rank can *recompute* another rank's row from
//! scratch instead of communicating for it. Engine3 does that: a copy
//! choice referencing a remote node `k` re-runs `k`'s draw/retry loop
//! locally, which may itself reference further (strictly lower-labelled)
//! remote nodes — a dependency chain that bottoms out at a direct choice
//! or at node `x` (whose row is the identity `F_x(l) = l`) after an
//! expected O(log n) steps (the paper's Lemma 3.1). No `request`, no
//! `resolved`, no hub broadcast: the only things left on the wire are the
//! collectives the driver itself uses (barriers, termination counting).
//!
//! **Determinism.** The recomputed rows replay the sequential generator's
//! attempt loop exactly — same [`crate::seq::draw_choice`] streams, same
//! duplicate-rejection against the row prefix — so every recomputed value
//! equals the value the owner itself commits. The emitted edge set is
//! therefore bit-identical to `seq::copy_model` (and to engines 1/2) for
//! every rank count, scheme, transport, and fault schedule; the
//! determinism and chaos suites pin it to the PR-1 FNV oracles.
//!
//! **Batching and partial rows.** Local nodes generate their whole row
//! of attempt-0 choices in one tight loop over the hoisted per-node key
//! prefix ([`pa_rng::EventKeys`]); retries (rare) re-draw individually
//! but still reuse the hoisted prefix. Recomputed chain frames go the
//! other way: a walk that needs `F_k(l)` computes only slots `0..=l` of
//! `k`'s row — the counter-based RNG addresses each `(edge, attempt)`
//! draw independently, so later slots never have to be touched — and the
//! memo stores the resulting *prefix*. A later reference to a higher
//! slot resumes from the cached prefix instead of starting over (between
//! slots the attempt counter is 0, so a committed prefix is the complete
//! resume state).
//!
//! **Chain memo.** High-`x` runs repeatedly walk chains that share a
//! suffix (hubs are referenced over and over — Lemma 3.4). A bounded
//! *direct-mapped* memo of recomputed rows deduplicates those shared
//! suffixes: `2^b` slots, each holding one node's full row; a colliding
//! insert simply overwrites (losing a cached pure-function value is
//! harmless). That shape keeps the hot path allocation- and hash-free —
//! one multiply, one shift, one tag compare — where a `HashMap` memo
//! spends more time hashing than recomputing. The memo caches values of
//! a pure function, so its size — including 0 — cannot change the
//! output, only the amount of redundant recomputation; a determinism
//! test sweeps memo sizes to pin that invariant. Completed chain frames
//! hand their value *directly* to the waiting parent frame rather than
//! relying on a memo hit, so overwriting (or a disabled memo) can never
//! stall a walk.

use pa_mpsim::Transport;
use pa_rng::EventKeys;

use super::Strategy;
use crate::par::driver::Net;
use crate::par::msg::Msg;
use crate::par::output::EngineCounters;
use crate::par::sink::EdgeSink;
use crate::partition::Partition;
use crate::seq::Choice;
use crate::store::{self, AnyTable, NodeTable};
use crate::{GenOptions, Model, Node, PaConfig, NILL};

/// One suspended row recomputation in the chain walk: node `k`'s
/// attempt loop, paused while a deeper frame resolves one of its copy
/// choices.
struct Frame {
    /// The node whose row this frame is recomputing (always `> x` and
    /// remote to this rank).
    k: Node,
    /// Hoisted key prefix for `k`'s draws.
    keys: EventKeys,
    /// Committed row values so far (`len()` is the current slot; may
    /// start non-empty when resuming from a memoized prefix).
    row: Vec<Node>,
    /// The slot this walk must reach: the frame is done once
    /// `row.len() == goal + 1`, leaving slots above `goal` undrawn.
    goal: usize,
    /// Retry counter of the current slot.
    attempt: u32,
    /// The copy choice the current slot is waiting on (a child frame is
    /// recomputing its target row).
    pending: Option<Choice>,
}

/// What one stepping of the top frame concluded.
enum Step {
    /// The frame needs node `k`'s row recomputed first.
    NeedChild(Node),
    /// The frame's row is complete.
    Done,
}

/// One memo cell: a node label or the empty/undrawn sentinel. `u32`
/// when every label fits (the common case — half the memory, and a
/// slot's tag + row share a cache line), `u64` otherwise.
trait Cell: Copy + Eq {
    /// The sentinel (empty tag / undrawn row slot).
    const NIL: Self;
    fn from_node(v: Node) -> Self;
    fn to_node(self) -> Node;
}

impl Cell for u32 {
    const NIL: Self = u32::MAX;
    #[inline]
    fn from_node(v: Node) -> Self {
        v as u32
    }
    #[inline]
    fn to_node(self) -> Node {
        Node::from(self)
    }
}

impl Cell for u64 {
    const NIL: Self = NILL;
    #[inline]
    fn from_node(v: Node) -> Self {
        v
    }
    #[inline]
    fn to_node(self) -> Node {
        self
    }
}

/// Direct-mapped slot table: `2^b` slots of `1 + x` cells each
/// (`[tag, row...]`, interleaved so a hit costs one memory access), one
/// cached row prefix per slot, collision = overwrite.
struct Slots<C: Cell> {
    entries: Vec<C>,
    /// Slot count minus one (slot count is a power of two).
    mask: usize,
    /// Identity indexing (budget ≥ n): `slot = k`, collision-free.
    direct: bool,
    /// Cells per slot: `1 + x`.
    stride: usize,
}

impl<C: Cell> Slots<C> {
    fn new(slots: usize, n: u64, x: u64) -> Self {
        Slots {
            entries: vec![C::NIL; slots * (1 + x as usize)],
            mask: slots - 1,
            direct: slots as u64 >= n,
            stride: 1 + x as usize,
        }
    }

    /// Base cell of node `k`'s slot: indexed by the label itself when
    /// every node fits, else by the middle bits of a golden-ratio
    /// product (multiplicative hashing).
    #[inline]
    fn base(&self, k: Node) -> usize {
        let i = if self.direct {
            k as usize
        } else {
            ((k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & self.mask
        };
        i * self.stride
    }

    #[inline]
    fn get_slot(&self, k: Node, l: u64) -> Option<Node> {
        let base = self.base(k);
        if self.entries[base] != C::from_node(k) {
            return None;
        }
        let v = self.entries[base + 1 + l as usize];
        (v != C::NIL).then(|| v.to_node())
    }

    fn copy_prefix_into(&self, k: Node, out: &mut Vec<Node>) {
        let base = self.base(k);
        if self.entries[base] != C::from_node(k) {
            return;
        }
        out.extend(
            self.entries[base + 1..base + self.stride]
                .iter()
                .take_while(|&&v| v != C::NIL)
                .map(|v| v.to_node()),
        );
    }

    fn insert(&mut self, k: Node, row: &[Node]) {
        let base = self.base(k);
        self.entries[base] = C::from_node(k);
        for (cell, &v) in self.entries[base + 1..base + self.stride]
            .iter_mut()
            .zip(row.iter().chain(std::iter::repeat(&NILL)))
        {
            *cell = if v == NILL { C::NIL } else { C::from_node(v) };
        }
    }

    fn occupied(&self) -> usize {
        self.entries
            .chunks_exact(self.stride)
            .filter(|e| e[0] != C::NIL)
            .count()
    }

    fn clear(&mut self) {
        self.entries.fill(C::NIL);
    }
}

/// Direct-mapped cache of recomputed remote row prefixes. Disabled when
/// the configured size is 0; compact (`u32` cells) whenever every label
/// fits. When the budget covers every node the slot index is the label
/// itself — no hashing, no collisions, so each remote row slot is
/// recomputed at most once between checkpoint restores.
enum Memo {
    Off,
    Compact(Slots<u32>),
    Wide(Slots<u64>),
}

impl Memo {
    /// `cap` is the configured row budget; it is clamped to `n` (no point
    /// caching more rows than exist) and rounded up to a power of two.
    fn new(cap: u64, n: u64, x: u64) -> Memo {
        if cap == 0 {
            return Memo::Off;
        }
        let slots = cap.min(n).next_power_of_two() as usize;
        // u32::MAX itself is the sentinel, so labels must stay below it.
        if n < u64::from(u32::MAX) {
            Memo::Compact(Slots::new(slots, n, x))
        } else {
            Memo::Wide(Slots::new(slots, n, x))
        }
    }

    /// Cached value of slot `l` of `k`'s row, if that prefix has been
    /// computed.
    #[inline]
    fn get_slot(&self, k: Node, l: u64) -> Option<Node> {
        match self {
            Memo::Off => None,
            Memo::Compact(s) => s.get_slot(k, l),
            Memo::Wide(s) => s.get_slot(k, l),
        }
    }

    /// Append the committed prefix cached for `k` to `out` (nothing when
    /// another node occupies the slot) — the complete resume state for
    /// extending the row to a higher slot.
    fn copy_prefix_into(&self, k: Node, out: &mut Vec<Node>) {
        match self {
            Memo::Off => {}
            Memo::Compact(s) => s.copy_prefix_into(k, out),
            Memo::Wide(s) => s.copy_prefix_into(k, out),
        }
    }

    /// Cache `row` (a true prefix of `k`'s full row); slots beyond it
    /// are marked undrawn in case a colliding row is being overwritten.
    fn insert(&mut self, k: Node, row: &[Node]) {
        match self {
            Memo::Off => {}
            Memo::Compact(s) => s.insert(k, row),
            Memo::Wide(s) => s.insert(k, row),
        }
    }

    fn occupied(&self) -> usize {
        match self {
            Memo::Off => 0,
            Memo::Compact(s) => s.occupied(),
            Memo::Wide(s) => s.occupied(),
        }
    }

    fn clear(&mut self) {
        match self {
            Memo::Off => {}
            Memo::Compact(s) => s.clear(),
            Memo::Wide(s) => s.clear(),
        }
    }
}

pub(crate) struct Chain<'a, P: Partition, S: EdgeSink> {
    cfg: &'a PaConfig,
    part: &'a P,
    rank: usize,
    /// The resolved attachment model this rank draws from — and, because
    /// engine3 *recomputes* other ranks' rows, the model it replays for
    /// every remote node too (all ranks resolve the identical model).
    model: Model,
    /// Flattened `F_t(e)` slots for local nodes: `local_index(t)·x + e`.
    /// Resident or disk-paged per [`GenOptions::store`] — this is the
    /// engine's only `O(n/P)`-slot structure, so it takes the whole
    /// memory budget.
    f: AnyTable,
    /// Next edge index each local node must commit (restore bookkeeping
    /// and the stall report; the sweep itself never parks). One word per
    /// node — small enough to stay resident under any budget.
    next_e: Vec<u32>,
    /// Direct-mapped cache of recomputed remote rows. Pure-function
    /// cache: its size cannot affect the output.
    memo: Memo,
    /// Recycled frame allocations (row capacity reuse).
    frame_pool: Vec<Frame>,
    /// Reusable chain-walk stack (empty between walks).
    stack: Vec<Frame>,
    /// Scratch for the local node's batched attempt-0 choices.
    scratch: Vec<Choice>,
    edges: S,
    counters: EngineCounters,
}

impl<'a, P: Partition, S: EdgeSink> Chain<'a, P, S> {
    pub(crate) fn new(
        cfg: &'a PaConfig,
        part: &'a P,
        rank: usize,
        opts: &GenOptions,
        sink: S,
    ) -> Self {
        let size = part.size_of(rank);
        let slots = size * cfg.x;
        let f = AnyTable::build(&opts.store, rank, "f", slots, NILL)
            .unwrap_or_else(|e| panic!("rank {rank}: opening node table f: {e}"));
        Chain {
            cfg,
            part,
            rank,
            model: Model::resolve(cfg, opts.model),
            f,
            next_e: vec![0; size as usize],
            memo: Memo::new(opts.chain_memo_nodes, cfg.n, cfg.x),
            frame_pool: Vec::new(),
            stack: Vec::new(),
            scratch: Vec::new(),
            edges: sink,
            counters: EngineCounters {
                nodes: size,
                ..Default::default()
            },
        }
    }

    /// The sink and counters, after [`crate::par::driver::run`] returns.
    pub(crate) fn into_parts(self) -> (S, EngineCounters) {
        (self.edges, self.counters)
    }

    /// Slot index of `(t, e)` on this rank.
    #[inline]
    fn slot(&self, t: Node, e: u32) -> u64 {
        self.part.local_index(t) * self.cfg.x + u64::from(e)
    }

    /// Record `F_t(e) = v` and emit the edge. `li` is `t`'s local index,
    /// hoisted by the caller so per-slot commits don't redo the
    /// partition arithmetic.
    fn commit<T: Transport<Msg>>(
        &mut self,
        net: &mut Net<'_, Msg, T>,
        t: Node,
        e: u32,
        li: usize,
        v: Node,
    ) {
        debug_assert_eq!(li, self.part.local_index(t) as usize, "wrong local index");
        let slot = li as u64 * self.cfg.x + u64::from(e);
        debug_assert_eq!(self.f.get(slot), NILL, "double commit of ({t},{e})");
        debug_assert_eq!(self.next_e[li], e, "out-of-order commit of ({t},{e})");
        self.f.set(slot, v);
        self.next_e[li] = e + 1;
        self.edges.emit(t, v);
        net.complete(1);
    }

    /// A frame primed to recompute node `k`'s row up to slot `goal`,
    /// resuming from the memoized prefix (if any) and reusing pooled
    /// allocations when available.
    fn new_frame(&mut self, k: Node, goal: u64) -> Frame {
        let keys = self.model.keys_for(k);
        let mut frame = self.frame_pool.pop().unwrap_or(Frame {
            k,
            keys,
            row: Vec::new(),
            goal: 0,
            attempt: 0,
            pending: None,
        });
        frame.k = k;
        frame.keys = keys;
        frame.goal = goal as usize;
        frame.row.clear();
        self.memo.copy_prefix_into(k, &mut frame.row);
        debug_assert!(frame.row.len() <= frame.goal, "memo hit routed to a walk");
        frame.attempt = 0;
        frame.pending = None;
        frame
    }

    /// Advance the frame until its row reaches its goal slot or it needs
    /// a child.
    fn step_frame(&mut self, frame: &mut Frame, delivered: &mut Option<Node>) -> Step {
        let x = self.cfg.x;
        while frame.row.len() <= frame.goal {
            let e = frame.row.len() as u32;
            let cand = if frame.pending.take().is_some() {
                delivered
                    .take()
                    .expect("resumed frame without a delivered child value")
            } else {
                let c = self
                    .model
                    .draw_keyed(&frame.keys, frame.k, e, frame.attempt);
                if c.direct {
                    c.k
                } else if c.k == x {
                    // Node x's row is the identity: F_x(l) = l.
                    c.l
                } else if self.part.rank_of(c.k) == self.rank {
                    // Local rows below the walk's origin are always
                    // committed (ascending sweep, full-row commits).
                    let v = self.f.get(self.slot(c.k, c.l as u32));
                    debug_assert_ne!(v, NILL, "chain read an uncommitted local slot");
                    v
                } else if let Some(v) = self.memo.get_slot(c.k, c.l) {
                    self.counters.chain_memo_hits += 1;
                    v
                } else {
                    frame.pending = Some(c);
                    return Step::NeedChild(c.k);
                }
            };
            if frame.row.contains(&cand) {
                frame.attempt += 1;
                continue;
            }
            frame.row.push(cand);
            frame.attempt = 0;
        }
        Step::Done
    }

    /// Recompute `F_k0(l0)` for a remote node `k0 > x` by walking the
    /// dependency chain with an explicit frame stack (labels strictly
    /// decrease down the stack, so the walk terminates and never
    /// references a node that is itself mid-recomputation).
    fn chain_value(&mut self, k0: Node, l0: u64) -> Node {
        if let Some(v) = self.memo.get_slot(k0, l0) {
            self.counters.chain_memo_hits += 1;
            return v;
        }
        let root = self.new_frame(k0, l0);
        let mut stack = std::mem::take(&mut self.stack);
        debug_assert!(stack.is_empty(), "chain walks never nest");
        stack.push(root);
        let mut delivered: Option<Node> = None;
        loop {
            self.counters.chain_peak_depth = self.counters.chain_peak_depth.max(stack.len() as u64);
            let mut frame = stack.pop().expect("chain walk on an empty stack");
            match self.step_frame(&mut frame, &mut delivered) {
                Step::NeedChild(k) => {
                    let goal = frame
                        .pending
                        .as_ref()
                        .expect("child requested without a pending choice")
                        .l;
                    let child = self.new_frame(k, goal);
                    stack.push(frame);
                    stack.push(child);
                }
                Step::Done => {
                    self.counters.chain_rows_recomputed += 1;
                    // Hand the value straight to the parent (or the
                    // caller): the memo is an optimization, never load-
                    // bearing, so eviction cannot stall the walk.
                    let l = match stack.last() {
                        Some(parent) => {
                            parent
                                .pending
                                .as_ref()
                                .expect("parent frame without a pending choice")
                                .l
                        }
                        None => l0,
                    };
                    let value = frame.row[l as usize];
                    self.memo.insert(frame.k, &frame.row);
                    self.frame_pool.push(frame);
                    if stack.is_empty() {
                        self.stack = stack;
                        return value;
                    }
                    delivered = Some(value);
                }
            }
        }
    }

    /// Generate local node `t`'s whole row — engine3 never parks, so one
    /// call commits all `x` slots.
    fn generate_node<T: Transport<Msg>>(&mut self, net: &mut Net<'_, Msg, T>, t: Node) {
        let x = self.cfg.x;
        let keys = self.model.keys_for(t);
        let mut choices0 = std::mem::take(&mut self.scratch);
        self.model.draw_row(&keys, t, &mut choices0);
        let li = self.part.local_index(t) as usize;
        let row0 = li as u64 * x;
        for e in 0..x as u32 {
            let mut attempt = 0u32;
            let (v, direct) = loop {
                let c = if attempt == 0 {
                    choices0[e as usize]
                } else {
                    self.model.draw_keyed(&keys, t, e, attempt)
                };
                let (cand, direct) = if c.direct {
                    (c.k, true)
                } else if c.k == x {
                    (c.l, false)
                } else if self.part.rank_of(c.k) == self.rank {
                    self.counters.local_immediate += 1;
                    (self.f.get(self.slot(c.k, c.l as u32)), false)
                } else {
                    (self.chain_value(c.k, c.l), false)
                };
                if self.f.row_contains(row0, x, cand) {
                    self.counters.duplicate_retries += 1;
                    attempt += 1;
                    continue;
                }
                break (cand, direct);
            };
            if direct {
                self.counters.direct_edges += 1;
            } else {
                self.counters.copy_edges += 1;
            }
            self.commit(net, t, e, li, v);
        }
        self.scratch = choices0;
    }
}

impl<'a, P: Partition, S: EdgeSink> Strategy for Chain<'a, P, S> {
    type Msg = Msg;

    fn register(&mut self, lo: Node, hi: Node) -> u64 {
        super::register_clique(self.part, self.rank, self.cfg.x, lo, hi, &mut self.edges)
    }

    fn attach_seed_node<T: Transport<Msg>>(
        &mut self,
        net: &mut Net<'_, Msg, T>,
        lo: Node,
        hi: Node,
    ) {
        // Node x attaches deterministically to all seed nodes. No hub
        // broadcast: every other rank derives F_x analytically.
        let x = self.cfg.x;
        if self.part.num_nodes() > x && (lo..hi).contains(&x) && self.part.rank_of(x) == self.rank {
            let li = self.part.local_index(x) as usize;
            for e in 0..x {
                self.commit(net, x, e as u32, li, e);
            }
        }
    }

    fn start_node<T: Transport<Msg>>(&mut self, net: &mut Net<'_, Msg, T>, t: Node) {
        self.generate_node(net, t);
    }

    fn drain_local<T: Transport<Msg>>(&mut self, _net: &mut Net<'_, Msg, T>) {
        // Nothing ever parks: every node completes inside start_node.
    }

    fn handle_msgs<T: Transport<Msg>>(
        &mut self,
        _net: &mut Net<'_, Msg, T>,
        src: usize,
        msgs: &mut Vec<Msg>,
    ) {
        // Engine3 sends no algorithm messages, so none can arrive — not
        // even under fault injection, which only replays *sent* packets.
        panic!(
            "engine3 is communication-free but rank {} received {} message(s) from rank {src}",
            self.rank,
            msgs.len()
        );
    }

    fn finish(&mut self) {
        debug_assert!(
            self.frame_pool.iter().all(|f| f.pending.is_none()),
            "pooled frame retained a pending choice"
        );
    }

    fn sink_mark(&mut self) -> std::io::Result<(u64, u64)> {
        self.edges.checkpoint_mark()
    }

    fn snapshot(&mut self, hi: Node, out: &mut Vec<u8>) {
        // Same epoch-cut argument as engine2, minus the hub replica: the
        // committed prefix of `f` plus the counters is the whole engine
        // (the memo is a pure-function cache and rebuilds itself).
        let x = self.cfg.x;
        let cnt = self.part.local_count_below(self.rank, hi);
        store::write_table_prefix(&mut self.f, cnt, x, out);
        self.counters.encode(out);
    }

    fn restore(&mut self, hi: Node, payload: &[u8]) -> Result<(), String> {
        let x = self.cfg.x;
        let mut r = payload;
        let expect = self.part.local_count_below(self.rank, hi);
        store::read_table_prefix(&mut self.f, expect, x, &mut r)?;
        self.next_e.fill(0);
        for e in self.next_e.iter_mut().take(expect as usize) {
            *e = x as u32;
        }
        self.counters = EngineCounters::decode(&mut r).ok_or("truncated engine counters")?;
        if !r.is_empty() {
            return Err(format!("{} trailing bytes after the counters", r.len()));
        }
        self.memo.clear();
        Ok(())
    }

    fn stall_report(&mut self) -> String {
        let uncommitted = self
            .next_e
            .iter()
            .filter(|&&e| u64::from(e) < self.cfg.x)
            .count();
        format!(
            "uncommitted_nodes={uncommitted} memo_rows={} rows_recomputed={}",
            self.memo.occupied(),
            self.counters.chain_rows_recomputed,
        )
    }
}
