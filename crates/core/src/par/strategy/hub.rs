//! Replicated cache of low-label ("hub") `F` slots.
//!
//! Lemma 3.4: the expected number of requests targeting node `k` is
//! `(1-p)(H_{n-1} − H_k)` — request traffic concentrates sharply on the
//! lowest-labelled nodes. Each rank therefore keeps a read-mostly replica
//! of the first `H` nodes' committed `F` slots. Owners broadcast a
//! [`crate::par::msg::Msg::Hub`] update when they commit a hub slot (piggybacked
//! on the existing resolved-message flushes), and `start_edge` consults the
//! replica before emitting a remote request.
//!
//! **Exactness.** A cache entry for `(k, l)` is only ever the committed
//! value `F_k(l)`, i.e. byte-for-byte what a `resolved` message for the
//! same `(k, l)` would carry, and committed slots never change. A cache hit
//! therefore feeds `start_edge` the identical candidate value the paper's
//! request/resolved round trip would have produced — only sooner — so the
//! generated edge set is unchanged (see DESIGN.md). A miss (slot not yet
//! broadcast, or `k ≥ H`) falls back to the request path unchanged.

use crate::{Node, PaConfig, NILL};

/// Per-rank replica of the first `H` nodes' `F` slots.
#[derive(Debug)]
pub(super) struct HubCache {
    /// Number of hub nodes covered (`H`, already capped at `n`).
    nodes: u64,
    x: u64,
    /// `H·x` slots, `NILL` = not yet known on this rank.
    vals: Vec<Node>,
}

impl HubCache {
    /// Build the replica for `hub_nodes` nodes (capped at `cfg.n`).
    ///
    /// Node `x`'s row is pre-seeded: it attaches deterministically to the
    /// seed clique (`F_x(e) = e`), so every rank knows it without traffic.
    pub fn new(cfg: &PaConfig, hub_nodes: u64) -> Self {
        let nodes = hub_nodes.min(cfg.n);
        let mut vals = vec![NILL; (nodes * cfg.x) as usize];
        if nodes > cfg.x {
            for e in 0..cfg.x {
                vals[(cfg.x * cfg.x + e) as usize] = e;
            }
        }
        Self {
            nodes,
            x: cfg.x,
            vals,
        }
    }

    /// An always-empty cache (used when the feature is disabled).
    pub fn disabled(cfg: &PaConfig) -> Self {
        Self {
            nodes: 0,
            x: cfg.x,
            vals: Vec::new(),
        }
    }

    /// Is node `k` inside the replicated hub range?
    #[inline]
    pub fn covers(&self, k: Node) -> bool {
        k < self.nodes
    }

    /// The replicated `F_k(l)`, if `k` is a hub node and the owner's
    /// commit has reached this rank.
    #[inline]
    pub fn get(&self, k: Node, l: u32) -> Option<Node> {
        if k >= self.nodes {
            return None;
        }
        let v = self.vals[(k * self.x) as usize + l as usize];
        (v != NILL).then_some(v)
    }

    /// The raw slot array, for checkpoint serialization (`NILL` entries
    /// included — the layout is part of the snapshot format).
    pub fn vals(&self) -> &[Node] {
        &self.vals
    }

    /// Replace the slot array from a checkpoint payload. `false` when
    /// the length does not match this cache's shape (e.g. the snapshot
    /// was taken under a different hub-cache size).
    #[must_use]
    pub fn load_vals(&mut self, vals: &[Node]) -> bool {
        if vals.len() != self.vals.len() {
            return false;
        }
        self.vals.copy_from_slice(vals);
        true
    }

    /// Install a broadcast commit `F_k(l) = v`.
    #[inline]
    pub fn insert(&mut self, k: Node, l: u32, v: Node) {
        debug_assert!(k < self.nodes, "hub broadcast outside cache range");
        let slot = (k * self.x) as usize + l as usize;
        debug_assert!(
            self.vals[slot] == NILL || self.vals[slot] == v,
            "conflicting hub broadcast for ({k},{l})"
        );
        self.vals[slot] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PaConfig {
        PaConfig::new(100, 3)
    }

    #[test]
    fn covers_and_caps_at_n() {
        let c = HubCache::new(&cfg(), 1_000);
        assert!(c.covers(99));
        assert!(!c.covers(100));
        let small = HubCache::new(&cfg(), 10);
        assert!(small.covers(9));
        assert!(!small.covers(10));
    }

    #[test]
    fn node_x_row_is_preseeded() {
        let c = HubCache::new(&cfg(), 10);
        for e in 0..3 {
            assert_eq!(c.get(3, e), Some(u64::from(e)));
        }
        assert_eq!(c.get(4, 0), None, "non-seed rows start unknown");
    }

    #[test]
    fn insert_then_get() {
        let mut c = HubCache::new(&cfg(), 10);
        assert_eq!(c.get(5, 1), None);
        c.insert(5, 1, 2);
        assert_eq!(c.get(5, 1), Some(2));
        assert_eq!(c.get(5, 0), None, "sibling slots stay unknown");
    }

    #[test]
    fn disabled_cache_misses_everything() {
        let c = HubCache::disabled(&cfg());
        assert!(!c.covers(0));
        assert_eq!(c.get(0, 0), None);
    }

    #[test]
    fn tiny_hub_smaller_than_clique_skips_preseed() {
        let c = HubCache::new(&cfg(), 2);
        assert_eq!(c.get(1, 0), None);
        assert!(!c.covers(3));
    }

    #[test]
    fn vals_round_trip_through_load() {
        let mut a = HubCache::new(&cfg(), 10);
        a.insert(5, 1, 2);
        let snapshot = a.vals().to_vec();
        let mut b = HubCache::new(&cfg(), 10);
        assert!(b.load_vals(&snapshot));
        assert_eq!(b.get(5, 1), Some(2));
        assert_eq!(b.get(3, 0), Some(0), "pre-seed survives the round trip");
        let mut wrong = HubCache::new(&cfg(), 20);
        assert!(!wrong.load_vals(&snapshot), "shape mismatch rejected");
    }
}
