//! The strategy layer: everything algorithm-specific, strategy-owned.
//!
//! [`super::driver`] owns exactly one thing — the message-driven epoch
//! loop (sweep, service, flush, park, terminate, checkpoint at the cut).
//! Everything a particular algorithm needs beyond that loop lives *here*,
//! owned by the strategy that uses it rather than wired into the driver:
//!
//! * the [`Strategy`] trait — the seam itself, with the wire-message
//!   schema as an associated type (`Strategy::Msg`), so each strategy
//!   picks its own message vocabulary;
//! * the three shipped strategies — [`X1`] (Algorithm 3.1's two-field
//!   `x = 1` protocol), [`General`] (Algorithm 3.2's in-order slots with
//!   request/resolved), and [`Chain`] (communication-free local chain
//!   recomputation);
//! * their private state machinery — the [`hub`] replica (only
//!   [`General`] broadcasts hub commits; no other strategy ever touches
//!   the hub path, which a conformance test pins) and the [`waiters`]
//!   tables (only the message-passing strategies park work).
//!
//! Model-genericity comes from one further cut: strategies draw
//! attachment randomness exclusively through [`crate::Model`], which
//! maps the counter-addressed event key `(seed, node, edge, attempt)` to
//! a choice under the selected [`crate::ModelKind`]. The request/resolve
//! protocol and the chain recomputation are thereby *resolution
//! mechanisms*, not PA-specific code paths: a new model that keeps the
//! pure-function draw property (nonlinear PA does) plugs into every
//! strategy, every partition scheme, chaos injection, and
//! checkpoint/restart without touching this layer.

mod engine1;
mod engine2;
mod engine3;
mod hub;
mod waiters;

pub(super) use engine1::X1;
pub(super) use engine2::General;
pub(super) use engine3::Chain;

use super::driver::Net;
use crate::par::sink::EdgeSink;
use crate::partition::Partition;
use crate::Node;
use pa_mpsim::Transport;

/// The algorithm-specific half of an engine; [`super::driver::run`]
/// supplies the loop.
///
/// Hook order per rank and per epoch `[lo, hi)`:
/// [`Strategy::register`] (seed edges + pending-slot count for the
/// epoch's labels) → barrier → [`Strategy::attach_seed_node`] (the
/// deterministic first attachment, when its label falls in the epoch) →
/// sweep ([`Strategy::start_node`] + [`Strategy::drain_local`] per node)
/// → completion loop ([`Strategy::handle_msgs`] on traffic) →
/// [`Strategy::finish`]. Un-epoched runs are the single epoch `[0, n)`.
pub(crate) trait Strategy {
    /// The wire message type of this algorithm.
    type Msg: Send + 'static;

    /// Emit this rank's deterministic seed edges whose owner label lies
    /// in `[lo, hi)` and return the number of *pending slots* the epoch
    /// registers with the termination detector.
    fn register(&mut self, lo: Node, hi: Node) -> u64;

    /// Commit the deterministic first attaching node (node `x`) if this
    /// rank owns it and its label lies in `[lo, hi)`. Runs after the
    /// registration barrier, so completions are never observed before
    /// every rank has added its work.
    fn attach_seed_node<T: Transport<Self::Msg>>(
        &mut self,
        net: &mut Net<'_, Self::Msg, T>,
        lo: Node,
        hi: Node,
    );

    /// Drive node `t` as far as it goes without remote answers.
    fn start_node<T: Transport<Self::Msg>>(&mut self, net: &mut Net<'_, Self::Msg, T>, t: Node);

    /// Cascade locally produced resolutions until quiescent.
    fn drain_local<T: Transport<Self::Msg>>(&mut self, net: &mut Net<'_, Self::Msg, T>);

    /// Process one received batch of messages (drain `msgs`).
    fn handle_msgs<T: Transport<Self::Msg>>(
        &mut self,
        net: &mut Net<'_, Self::Msg, T>,
        src: usize,
        msgs: &mut Vec<Self::Msg>,
    );

    /// Post-quiescence invariant checks (debug assertions), run at the
    /// end of every epoch — empty waiter tables are exactly what makes
    /// the epoch cut checkpointable.
    fn finish(&mut self) {}

    /// Flush the edge sink and report its `(edges, bytes)` watermark for
    /// a checkpoint (see [`crate::par::sink::EdgeSink::checkpoint_mark`]).
    fn sink_mark(&mut self) -> std::io::Result<(u64, u64)>;

    /// Serialize the committed engine state below label `hi` into `out`
    /// (the epoch-cut invariants guarantee this is the *whole* state).
    fn snapshot(&mut self, hi: Node, out: &mut Vec<u8>);

    /// Rebuild the engine from a [`Strategy::snapshot`] taken at `hi`.
    ///
    /// # Errors
    ///
    /// A human-readable reason when the payload does not match this
    /// rank's shape (truncation, foreign partition, hub-size mismatch).
    fn restore(&mut self, hi: Node, payload: &[u8]) -> Result<(), String>;

    /// One-line progress summary (uncommitted slots, waiter-table depths)
    /// for the stall watchdog's report. Takes `&mut self` because a
    /// paged node table faults pages through its cache even on reads.
    fn stall_report(&mut self) -> String {
        String::new()
    }
}

/// Shared [`Strategy::register`] body for the general (`x ≥ 1`)
/// strategies: emit the epoch's locally owned clique edges and count the
/// epoch's pending slots (`x` per local node `t ≥ x`).
///
/// Clique edges are emitted by the owner of their higher endpoint, in
/// the epoch containing that endpoint's label — a pure function of the
/// partition, identical for every strategy, which is why it lives here
/// rather than in each impl.
pub(super) fn register_clique<P: Partition, S: EdgeSink>(
    part: &P,
    rank: usize,
    x: u64,
    lo: Node,
    hi: Node,
    edges: &mut S,
) -> u64 {
    for i in lo..hi.min(x) {
        if part.rank_of(i) == rank {
            for j in 0..i {
                edges.emit(i, j);
            }
        }
    }
    // Every local node t >= x in `[lo, hi)` owns x pending slots.
    let start = lo.max(x).min(hi);
    let pending_nodes = part.local_count_below(rank, hi) - part.local_count_below(rank, start);
    pending_nodes * x
}
