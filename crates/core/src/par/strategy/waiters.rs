//! Dense per-slot waiter storage for the parallel engines.
//!
//! Both engines park "waiters" (deferred local edges and unanswered remote
//! requests) against an *uncommitted local slot*. Slot indices are already
//! dense `0..local_slots` integers, so a `HashMap<u64, Vec<Waiter>>` pays
//! hashing plus a heap `Vec` per occupied slot for nothing. [`WaiterTable`]
//! stores one inline entry per slot and spills to a recycled `Vec` only for
//! the rare slot with two or more waiters, keeping `start_edge`/`commit`
//! free of hashing and steady-state allocation.

/// Per-slot storage: empty, one inline waiter, or a spill list.
#[derive(Debug, Clone)]
enum Entry<W> {
    Empty,
    One(W),
    Many(Vec<W>),
}

/// Waiters taken from a slot by [`WaiterTable::take`].
#[derive(Debug)]
pub(super) enum Taken<W> {
    /// Nobody was waiting.
    None,
    /// Exactly one waiter.
    One(W),
    /// Two or more waiters, in arrival order. Hand the spent `Vec` back
    /// via [`WaiterTable::recycle`] to keep its allocation in play.
    Many(Vec<W>),
}

/// Flat waiter table over the rank's local slot indices.
#[derive(Debug)]
pub(super) struct WaiterTable<W> {
    slots: Vec<Entry<W>>,
    /// Spill `Vec`s recovered by [`WaiterTable::recycle`], reused on the
    /// next slot that grows past one waiter.
    spare: Vec<Vec<W>>,
    len: u64,
}

impl<W: Copy> WaiterTable<W> {
    /// Table covering `nslots` local slots, all empty.
    pub fn new(nslots: usize) -> Self {
        Self {
            slots: (0..nslots).map(|_| Entry::Empty).collect(),
            spare: Vec::new(),
            len: 0,
        }
    }

    /// Total parked waiters across all slots.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no waiter is parked anywhere.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Park `w` on `slot` (FIFO per slot).
    pub fn push(&mut self, slot: usize, w: W) {
        self.len += 1;
        let entry = &mut self.slots[slot];
        match entry {
            Entry::Empty => *entry = Entry::One(w),
            Entry::One(first) => {
                let first = *first;
                let mut list = self.spare.pop().unwrap_or_default();
                list.push(first);
                list.push(w);
                *entry = Entry::Many(list);
            }
            Entry::Many(list) => list.push(w),
        }
    }

    /// Remove and return every waiter parked on `slot`.
    pub fn take(&mut self, slot: usize) -> Taken<W> {
        match std::mem::replace(&mut self.slots[slot], Entry::Empty) {
            Entry::Empty => Taken::None,
            Entry::One(w) => {
                self.len -= 1;
                Taken::One(w)
            }
            Entry::Many(list) => {
                self.len -= list.len() as u64;
                Taken::Many(list)
            }
        }
    }

    /// Return a spill list obtained from [`Taken::Many`] for reuse.
    pub fn recycle(&mut self, mut list: Vec<W>) {
        list.clear();
        self.spare.push(list);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_waiter_round_trip() {
        let mut t: WaiterTable<u32> = WaiterTable::new(4);
        assert!(t.is_empty());
        t.push(2, 7);
        assert_eq!(t.len(), 1);
        match t.take(2) {
            Taken::One(7) => {}
            other => panic!("expected One(7), got {other:?}"),
        }
        assert!(t.is_empty());
        assert!(matches!(t.take(2), Taken::None));
    }

    #[test]
    fn spill_preserves_fifo_order() {
        let mut t: WaiterTable<u32> = WaiterTable::new(2);
        for w in 0..5 {
            t.push(1, w);
        }
        assert_eq!(t.len(), 5);
        match t.take(1) {
            Taken::Many(list) => {
                assert_eq!(list, vec![0, 1, 2, 3, 4]);
                t.recycle(list);
            }
            other => panic!("expected Many, got {other:?}"),
        }
        assert!(t.is_empty());
        // The recycled spill list is reused by the next multi-waiter slot.
        t.push(0, 8);
        t.push(0, 9);
        match t.take(0) {
            Taken::Many(list) => assert_eq!(list, vec![8, 9]),
            other => panic!("expected Many, got {other:?}"),
        }
        assert_eq!(t.spare.len(), 0, "spare list was taken for reuse");
    }

    #[test]
    fn independent_slots_do_not_interfere() {
        let mut t: WaiterTable<u8> = WaiterTable::new(3);
        t.push(0, 1);
        t.push(2, 2);
        assert!(matches!(t.take(1), Taken::None));
        assert!(matches!(t.take(0), Taken::One(1)));
        assert!(matches!(t.take(2), Taken::One(2)));
    }
}
