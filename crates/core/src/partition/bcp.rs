//! Block-cyclic partitioning (BCP) — an extension interpolating between
//! the paper's schemes.
//!
//! Nodes are dealt to ranks in blocks of `block` consecutive labels,
//! round-robin: block 0 → rank 0, block 1 → rank 1, …  With `block = 1`
//! this *is* RRP; with `block = ⌈n/P⌉` it degenerates to UCP. The knob
//! trades RRP's near-perfect message balance against UCP/LCP's locality
//! (consecutive nodes per rank, which §3.2 notes some analyses require).

use super::Partition;
use crate::Node;

/// Block-cyclic partitioning with a configurable block size.
#[derive(Debug, Clone)]
pub struct Bcp {
    n: u64,
    nranks: usize,
    block: u64,
}

impl Bcp {
    /// Partition `n` nodes over `nranks` ranks in blocks of `block`.
    ///
    /// # Panics
    ///
    /// Panics if `nranks == 0` or `block == 0`.
    pub fn new(n: u64, nranks: usize, block: u64) -> Self {
        assert!(nranks > 0, "need at least one rank");
        assert!(block > 0, "block size must be positive");
        Self { n, nranks, block }
    }

    /// The block size.
    pub fn block(&self) -> u64 {
        self.block
    }

    /// Number of whole "super-rows" (P consecutive blocks) below node v's
    /// block, plus v's offset data: `(super_row, rank, within_block)`.
    #[inline]
    fn decompose(&self, v: Node) -> (u64, usize, u64) {
        let blk = v / self.block;
        let p = self.nranks as u64;
        ((blk / p), (blk % p) as usize, v % self.block)
    }
}

impl Partition for Bcp {
    fn num_nodes(&self) -> u64 {
        self.n
    }

    fn nranks(&self) -> usize {
        self.nranks
    }

    #[inline]
    fn rank_of(&self, v: Node) -> usize {
        debug_assert!(v < self.n);
        self.decompose(v).1
    }

    fn size_of(&self, rank: usize) -> u64 {
        // Count nodes in blocks congruent to `rank` mod P.
        let p = self.nranks as u64;
        let stripe = self.block * p;
        let full_stripes = self.n / stripe;
        let mut size = full_stripes * self.block;
        // Partial final stripe.
        let rem = self.n % stripe;
        let start = rank as u64 * self.block;
        if rem > start {
            size += (rem - start).min(self.block);
        }
        size
    }

    #[inline]
    fn local_index(&self, v: Node) -> u64 {
        let (super_row, _, within) = self.decompose(v);
        super_row * self.block + within
    }

    #[inline]
    fn node_at(&self, rank: usize, idx: u64) -> Node {
        debug_assert!(idx < self.size_of(rank));
        let super_row = idx / self.block;
        let within = idx % self.block;
        super_row * self.block * self.nranks as u64 + rank as u64 * self.block + within
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{check_contract, Rrp, Ucp};

    #[test]
    fn contract_small_cases() {
        for (n, p, b) in [
            (1u64, 1usize, 1u64),
            (10, 3, 1),
            (10, 3, 2),
            (10, 3, 4),
            (100, 7, 5),
            (64, 4, 16),
            (13, 5, 3),
        ] {
            check_contract(&Bcp::new(n, p, b));
        }
    }

    #[test]
    fn block_one_equals_rrp() {
        let n = 57;
        let p = 5;
        let bcp = Bcp::new(n, p, 1);
        let rrp = Rrp::new(n, p);
        for v in 0..n {
            assert_eq!(bcp.rank_of(v), rrp.rank_of(v), "node {v}");
            assert_eq!(bcp.local_index(v), rrp.local_index(v), "node {v}");
        }
    }

    #[test]
    fn huge_block_equals_ucp_layout() {
        // With block = ceil(n/P) every rank gets one consecutive block in
        // rank order — the same node->rank map as ceil-based UCP when n
        // is a multiple of P.
        let n = 40u64;
        let p = 4usize;
        let bcp = Bcp::new(n, p, 10);
        let ucp = Ucp::new(n, p);
        for v in 0..n {
            assert_eq!(bcp.rank_of(v), ucp.rank_of(v), "node {v}");
        }
    }

    #[test]
    fn blocks_are_consecutive_runs() {
        let bcp = Bcp::new(20, 2, 3);
        let r0: Vec<_> = bcp.nodes_of(0).collect();
        // rank 0 blocks: [0..3), [6..9), [12..15), [18..20)
        assert_eq!(r0, vec![0, 1, 2, 6, 7, 8, 12, 13, 14, 18, 19]);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_panics() {
        let _ = Bcp::new(10, 2, 0);
    }
}
