//! The nonlinear load-balance system (Equation 10) behind LCP.
//!
//! §3.5.1 models the computation load of a consecutive partition
//! `[lo, hi)` as
//!
//! ```text
//! load(lo, hi) = (hi − lo)(H_{n−1} + b) − (hi·H_hi − lo·H_lo)
//! ```
//!
//! (type A/B work proportional to the node count, plus the expected
//! incoming requests from Lemma 3.4, summed via the identity
//! Σ_{k<m} H_k = m·H_m − m). Perfect balance means every partition
//! carries `load(0, n) / P`, giving the nonlinear system of Equation 10.
//! The exact solution is only reachable numerically; this module provides
//! that numeric solver (used for Figure 3's "actual" curve and for
//! deriving LCP's linear-fit parameters).

use crate::math::harmonic;

/// Default constant `b` (the paper's `b = 1 + c`).
///
/// `b` encodes the ratio between a node's fixed cost and the cost of one
/// incoming request. With per-edge node cost `t_node = 1` and
/// per-message cost `t_msg`, a node's fixed work per edge is
/// `1 + (1−p)·2·t_msg` (its own draws plus its own request round-trips)
/// while each incoming lookup costs `(1−p)·2·t_msg`, giving
/// `b = 1/((1−p)·2·t_msg) + 1`. For the workspace's calibrated defaults
/// (`t_msg = 0.25`, `p = ½`) that is `b = 5`. The paper leaves `b`
/// unspecified ("some constant"); see the `exp_lcp_b` ablation harness
/// for its effect on LCP's balance.
pub const DEFAULT_B: f64 = 5.0;

/// The `b` consistent with a given copy probability `p` and per-message
/// cost `t_msg` (in per-edge node-work units); see [`DEFAULT_B`].
///
/// # Panics
///
/// Panics if `p >= 1` or `t_msg <= 0` (no messages, no balance problem).
pub fn b_for(p: f64, t_msg: f64) -> f64 {
    assert!(p < 1.0 && t_msg > 0.0, "b_for needs (1-p)·t_msg > 0");
    1.0 / ((1.0 - p) * 2.0 * t_msg) + 1.0
}

/// The §3.5.1 load of consecutive node block `[lo, hi)` in a graph of
/// `n` nodes.
///
/// # Panics
///
/// Panics if `lo > hi` or `hi > n`.
pub fn block_load(n: u64, b: f64, lo: u64, hi: u64) -> f64 {
    assert!(lo <= hi && hi <= n, "invalid block [{lo}, {hi}) for n={n}");
    let hn1 = harmonic(n - 1);
    let span = (hi - lo) as f64;
    span * (hn1 + b) - (hi as f64 * harmonic(hi) - lo as f64 * harmonic(lo))
}

/// Total load of the whole node set (all partitions combined).
pub fn total_load(n: u64, b: f64) -> f64 {
    block_load(n, b, 0, n)
}

/// Numerically solve Equation 10: boundaries `n_0 = 0 < n_1 < … < n_P = n`
/// such that every block `[n_i, n_{i+1})` carries (as nearly as integer
/// boundaries allow) `total_load / P`.
///
/// Each boundary is found by binary search — `block_load(lo, ·)` is
/// strictly increasing — so the whole solve is `O(P log n)` harmonic
/// evaluations.
///
/// # Panics
///
/// Panics if `nranks == 0` or `n == 0`.
pub fn solve_boundaries(n: u64, nranks: usize, b: f64) -> Vec<u64> {
    assert!(nranks > 0, "need at least one rank");
    assert!(n > 0, "need at least one node");
    let target = total_load(n, b) / nranks as f64;
    let mut bounds = Vec::with_capacity(nranks + 1);
    bounds.push(0u64);
    let mut lo = 0u64;
    for _ in 0..nranks - 1 {
        // Smallest hi with block_load(lo, hi) >= target.
        let mut a = lo;
        let mut z = n;
        while a < z {
            let mid = a + (z - a) / 2;
            if block_load(n, b, lo, mid) >= target {
                z = mid;
            } else {
                a = mid + 1;
            }
        }
        bounds.push(a);
        lo = a;
    }
    bounds.push(n);
    bounds
}

/// Fit the arithmetic-progression (linear) approximation of Appendix A.2
/// to a boundary solution: partition sizes are modelled as `a + i·d` for
/// rank `i`. Returns `(a, d)`.
///
/// `d` is the slope through the first and last partition sizes (the two
/// sampled points of Appendix A.2) and `a` follows from
/// `Σ (a + i·d) = n`, i.e. `a = n/P − (P−1)d/2` (Equation 12).
///
/// # Panics
///
/// Panics if `bounds` has fewer than two entries.
pub fn linear_fit(bounds: &[u64]) -> (f64, f64) {
    assert!(bounds.len() >= 2, "need at least one partition");
    let p = bounds.len() - 1;
    let n = (bounds[p] - bounds[0]) as f64;
    if p == 1 {
        return (n, 0.0);
    }
    let first = (bounds[1] - bounds[0]) as f64;
    let last = (bounds[p] - bounds[p - 1]) as f64;
    let d = (last - first) / (p as f64 - 1.0);
    let a = n / p as f64 - (p as f64 - 1.0) * d / 2.0;
    (a, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_load_is_additive() {
        let n = 1000;
        let whole = block_load(n, DEFAULT_B, 0, n);
        let split = block_load(n, DEFAULT_B, 0, 400) + block_load(n, DEFAULT_B, 400, n);
        assert!((whole - split).abs() < 1e-7, "{whole} vs {split}");
    }

    #[test]
    fn block_load_positive_and_monotone_in_hi() {
        let n = 10_000;
        let mut prev = 0.0;
        for hi in [1u64, 10, 100, 1000, 10_000] {
            let l = block_load(n, DEFAULT_B, 0, hi);
            assert!(l > prev);
            prev = l;
        }
    }

    #[test]
    fn early_blocks_carry_more_load_per_node() {
        // Same node count, earlier labels => more expected requests.
        let n = 100_000;
        let early = block_load(n, DEFAULT_B, 0, 1000);
        let late = block_load(n, DEFAULT_B, 90_000, 91_000);
        assert!(early > 2.0 * late, "early={early}, late={late}");
    }

    #[test]
    fn total_load_is_about_bn() {
        // n·H_{n−1} + bn − n·H_n = bn − n(H_n − H_{n−1}) = bn − 1.
        let n = 50_000u64;
        let t = total_load(n, DEFAULT_B);
        assert!((t - (DEFAULT_B * n as f64 - 1.0)).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn boundaries_are_monotone_and_span_everything() {
        let bounds = solve_boundaries(100_000, 16, DEFAULT_B);
        assert_eq!(bounds.len(), 17);
        assert_eq!(bounds[0], 0);
        assert_eq!(bounds[16], 100_000);
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "boundaries must strictly increase");
        }
    }

    #[test]
    fn solved_loads_are_balanced() {
        let n = 100_000;
        let p = 8;
        let bounds = solve_boundaries(n, p, DEFAULT_B);
        let target = total_load(n, DEFAULT_B) / p as f64;
        // Integer boundaries cost at most one node's worth of load
        // (≤ H_{n−1} + b) per block; the final block absorbs the
        // accumulated rounding of all earlier ones.
        let per_node = crate::math::harmonic(n - 1) + DEFAULT_B + 1.0;
        for (i, w) in bounds.windows(2).enumerate() {
            let l = block_load(n, DEFAULT_B, w[0], w[1]);
            let tol = if i == p - 1 {
                p as f64 * per_node
            } else {
                per_node
            };
            assert!(
                (l - target).abs() <= tol,
                "block {i}: load {l} vs target {target}"
            );
        }
    }

    #[test]
    fn solved_sizes_increase_with_rank() {
        // Later ranks receive fewer requests so must hold more nodes.
        let bounds = solve_boundaries(100_000, 10, DEFAULT_B);
        let sizes: Vec<u64> = bounds.windows(2).map(|w| w[1] - w[0]).collect();
        for w in sizes.windows(2) {
            assert!(w[0] <= w[1], "sizes should be nondecreasing: {sizes:?}");
        }
        assert!(sizes[9] > sizes[0], "last rank must hold more than first");
    }

    #[test]
    fn single_rank_boundaries() {
        assert_eq!(solve_boundaries(100, 1, DEFAULT_B), vec![0, 100]);
    }

    #[test]
    fn linear_fit_recovers_exact_progression() {
        // Boundaries of a perfect arithmetic progression 10, 20, 30, 40.
        let bounds = vec![0u64, 10, 30, 60, 100];
        let (a, d) = linear_fit(&bounds);
        assert!((d - 10.0).abs() < 1e-9);
        assert!((a - 10.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_single_partition() {
        assert_eq!(linear_fit(&[0, 42]), (42.0, 0.0));
    }

    #[test]
    fn fit_total_matches_n() {
        let bounds = solve_boundaries(123_457, 13, DEFAULT_B);
        let (a, d) = linear_fit(&bounds);
        let total: f64 = (0..13).map(|i| a + i as f64 * d).sum();
        assert!((total - 123_457.0).abs() < 1e-6, "total = {total}");
    }
}
