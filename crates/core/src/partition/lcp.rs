//! Linear consecutive partitioning (LCP), §3.5.1 / Appendix A.2.

use super::eq10::{self, DEFAULT_B};
use super::Partition;
use crate::Node;

/// Linear consecutive partitioning: consecutive blocks whose sizes follow
/// the arithmetic progression `a + i·d`, the paper's tractable
/// approximation of the exact Equation 10 solution. Low ranks receive
/// fewer nodes because their low-labelled nodes attract more `request`
/// messages (Lemma 3.4).
///
/// Owner lookup uses the closed-form quadratic of Appendix A.2 as an O(1)
/// initial guess, corrected against the integer boundaries (rounding the
/// real-valued progression to integers can shift a node across a
/// boundary by at most a step or two).
#[derive(Debug, Clone)]
pub struct Lcp {
    n: u64,
    /// Block boundaries: `bounds[i] .. bounds[i+1]` is rank `i`'s range.
    bounds: Vec<u64>,
    /// Linear-fit parameters (sizes ≈ a + i·d).
    a: f64,
    d: f64,
}

impl Lcp {
    /// Partition `n` nodes over `nranks` ranks with the default load
    /// constant [`DEFAULT_B`].
    ///
    /// # Panics
    ///
    /// Panics if `nranks == 0` or `n == 0`.
    pub fn new(n: u64, nranks: usize) -> Self {
        Self::with_b(n, nranks, DEFAULT_B)
    }

    /// Partition with an explicit load constant `b` (sensitivity knob).
    ///
    /// # Panics
    ///
    /// Panics if `nranks == 0` or `n == 0`.
    pub fn with_b(n: u64, nranks: usize, b: f64) -> Self {
        assert!(nranks > 0, "need at least one rank");
        assert!(n > 0, "need at least one node");
        let exact = eq10::solve_boundaries(n, nranks, b);
        let (a, d) = eq10::linear_fit(&exact);
        let mut bounds = Vec::with_capacity(nranks + 1);
        bounds.push(0u64);
        for i in 1..nranks as u64 {
            // Cumulative progression: Σ_{j<i} (a + j·d) = i·a + d·i(i−1)/2.
            let cum = i as f64 * a + d * (i as f64) * (i as f64 - 1.0) / 2.0;
            let v = cum.round().clamp(0.0, n as f64) as u64;
            // Rounding must not break monotonicity.
            bounds.push(v.max(*bounds.last().unwrap()));
        }
        bounds.push(n);
        Self { n, bounds, a, d }
    }

    /// The fitted progression parameters `(a, d)` (Appendix A.2).
    pub fn params(&self) -> (f64, f64) {
        (self.a, self.d)
    }

    /// The integer block boundaries actually in use (`P + 1` entries).
    pub fn boundaries(&self) -> &[u64] {
        &self.bounds
    }

    /// The Appendix A.2 closed-form rank guess
    /// `⌊(−(2a−d) + √((2a−d)² + 8du)) / (2d)⌋`.
    #[inline]
    fn rank_guess(&self, u: Node) -> usize {
        let p = self.nranks();
        if self.d.abs() < 1e-9 || self.a < 0.0 {
            // Degenerate progression: fall back to a proportional guess.
            return (((u as f64 / self.n as f64) * p as f64) as usize).min(p - 1);
        }
        let t = 2.0 * self.a - self.d;
        let disc = (t * t + 8.0 * self.d * u as f64).max(0.0);
        let i = (-t + disc.sqrt()) / (2.0 * self.d);
        (i.max(0.0) as usize).min(p - 1)
    }
}

impl Partition for Lcp {
    fn num_nodes(&self) -> u64 {
        self.n
    }

    fn nranks(&self) -> usize {
        self.bounds.len() - 1
    }

    #[inline]
    fn rank_of(&self, v: Node) -> usize {
        debug_assert!(v < self.n);
        let mut r = self.rank_guess(v);
        // Correct the closed-form guess against the integer boundaries;
        // in practice this walks 0–2 steps.
        while v < self.bounds[r] {
            r -= 1;
        }
        while v >= self.bounds[r + 1] {
            r += 1;
        }
        r
    }

    #[inline]
    fn size_of(&self, rank: usize) -> u64 {
        self.bounds[rank + 1] - self.bounds[rank]
    }

    #[inline]
    fn local_index(&self, v: Node) -> u64 {
        v - self.bounds[self.rank_of(v)]
    }

    #[inline]
    fn node_at(&self, rank: usize, idx: u64) -> Node {
        debug_assert!(idx < self.size_of(rank));
        self.bounds[rank] + idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::check_contract;

    #[test]
    fn contract_small_cases() {
        for (n, p) in [(1u64, 1usize), (100, 1), (100, 7), (1000, 16), (50, 50)] {
            check_contract(&Lcp::new(n, p));
        }
    }

    #[test]
    fn sizes_grow_with_rank() {
        let part = Lcp::new(100_000, 10);
        let sizes: Vec<u64> = (0..10).map(|r| part.size_of(r)).collect();
        assert!(
            sizes.last().unwrap() > sizes.first().unwrap(),
            "last rank must hold more nodes: {sizes:?}"
        );
        // Differences should be roughly constant (arithmetic progression).
        let (_, d) = part.params();
        for w in sizes.windows(2) {
            let diff = w[1] as f64 - w[0] as f64;
            assert!(
                (diff - d).abs() <= 2.0,
                "progression step {diff} far from fitted d={d}"
            );
        }
    }

    #[test]
    fn boundaries_cover_the_node_range() {
        let part = Lcp::new(12_345, 8);
        let b = part.boundaries();
        assert_eq!(b[0], 0);
        assert_eq!(*b.last().unwrap(), 12_345);
    }

    #[test]
    fn rank_of_agrees_with_linear_scan() {
        let part = Lcp::new(5_000, 13);
        for v in 0..5_000u64 {
            let scan = part
                .boundaries()
                .windows(2)
                .position(|w| v >= w[0] && v < w[1])
                .unwrap();
            assert_eq!(part.rank_of(v), scan, "node {v}");
        }
    }

    #[test]
    fn single_rank_degenerates_gracefully() {
        let part = Lcp::new(500, 1);
        assert_eq!(part.size_of(0), 500);
        assert_eq!(part.rank_of(499), 0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Lcp::new(10, 0);
    }

    #[test]
    fn custom_b_changes_slope() {
        // Larger b means node-processing dominates messaging, so the
        // partition flattens towards uniform (smaller d).
        let steep = Lcp::with_b(100_000, 8, 1.0);
        let flat = Lcp::with_b(100_000, 8, 50.0);
        assert!(flat.params().1 < steep.params().1);
    }
}
