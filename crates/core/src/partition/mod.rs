//! Node partitioning schemes (paper §3.5, Appendix A).
//!
//! The node set `V = {0, …, n−1}` is split into `P` disjoint partitions,
//! one per processor. The partitioning drives load balance: low-labelled
//! nodes receive more `request` messages (Lemma 3.4:
//! `E[M_k] = (1−p)(H_{n−1} − H_k)`), so equal node counts do *not* mean
//! equal work. The paper studies three schemes, all of which satisfy
//! Criterion A (constant-time owner lookup):
//!
//! * [`Ucp`] — uniform consecutive: equal-sized blocks. Simple, poorly
//!   balanced (rank 0 is flooded with requests).
//! * [`Lcp`] — linear consecutive: block sizes grow linearly with rank,
//!   approximating the exact solution of the nonlinear load Equation 10
//!   (see [`eq10`]); low ranks get fewer nodes to compensate for their
//!   message load.
//! * [`Rrp`] — round-robin: node `v` goes to rank `v mod P`; balances
//!   both nodes and messages to within `O(log n)` (Appendix A.3).

use crate::Node;

mod bcp;
pub mod eq10;
mod lcp;
mod rrp;
mod ucp;

pub use bcp::Bcp;
pub use lcp::Lcp;
pub use rrp::Rrp;
pub use ucp::Ucp;

/// A disjoint assignment of nodes `0 .. n` to ranks `0 .. P`.
///
/// Implementations must be consistent: `rank_of`, `size_of`,
/// `local_index` and `node_at` describe the same bijection between nodes
/// and `(rank, local index)` pairs, and `node_at(r, ·)` must be strictly
/// increasing in the local index (the engines sweep local nodes in
/// ascending global order, which guarantees that for consecutive schemes
/// every local dependency is already resolved when reached).
pub trait Partition: Send + Sync {
    /// Total number of nodes `n`.
    fn num_nodes(&self) -> u64;

    /// Number of ranks `P`.
    fn nranks(&self) -> usize;

    /// The rank owning node `v`. Must run in O(1) (Criterion A of §3.5).
    fn rank_of(&self, v: Node) -> usize;

    /// Number of nodes assigned to `rank`.
    fn size_of(&self, rank: usize) -> u64;

    /// Position of `v` within its owner's ascending local order.
    fn local_index(&self, v: Node) -> u64;

    /// Inverse of [`Partition::local_index`] for a given rank.
    fn node_at(&self, rank: usize, idx: u64) -> Node;

    /// The nodes of `rank` in ascending order.
    fn nodes_of(&self, rank: usize) -> NodeIter<'_, Self>
    where
        Self: Sized,
    {
        NodeIter {
            part: self,
            rank,
            next: 0,
            size: self.size_of(rank),
        }
    }

    /// Number of `rank`'s nodes with labels below `bound` — the length of
    /// a rank's committed prefix at a label-threshold cut (checkpoint
    /// epochs). O(log size), by binary search over the strictly
    /// increasing `node_at` order.
    fn local_count_below(&self, rank: usize, bound: Node) -> u64 {
        let (mut lo, mut hi) = (0u64, self.size_of(rank));
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.node_at(rank, mid) < bound {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// Iterator over a rank's nodes in ascending order.
pub struct NodeIter<'a, P: Partition> {
    part: &'a P,
    rank: usize,
    next: u64,
    size: u64,
}

impl<P: Partition> Iterator for NodeIter<'_, P> {
    type Item = Node;
    fn next(&mut self) -> Option<Node> {
        if self.next >= self.size {
            return None;
        }
        let v = self.part.node_at(self.rank, self.next);
        self.next += 1;
        Some(v)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.size - self.next) as usize;
        (rem, Some(rem))
    }
}

impl<P: Partition> ExactSizeIterator for NodeIter<'_, P> {}

/// The partitioning schemes of the paper, as a runtime choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Uniform consecutive partitioning.
    Ucp,
    /// Linear consecutive partitioning.
    Lcp,
    /// Round-robin partitioning.
    Rrp,
    /// Block-cyclic partitioning (default block of
    /// [`DEFAULT_BCP_BLOCK`] nodes).
    Bcp,
}

/// Block size [`build`] uses for [`Scheme::Bcp`] — small enough that
/// low-label hot nodes still spread across ranks, large enough that
/// consecutive-node locality survives within a block.
pub const DEFAULT_BCP_BLOCK: u64 = 64;

impl Scheme {
    /// The paper's three schemes, in the order the paper presents them.
    pub const ALL: [Scheme; 3] = [Scheme::Ucp, Scheme::Lcp, Scheme::Rrp];

    /// Every scheme the workspace implements: the paper's three plus
    /// block-cyclic.
    pub const EXTENDED: [Scheme; 4] = [Scheme::Ucp, Scheme::Lcp, Scheme::Rrp, Scheme::Bcp];

    /// Short display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Ucp => "UCP",
            Scheme::Lcp => "LCP",
            Scheme::Rrp => "RRP",
            Scheme::Bcp => "BCP",
        }
    }

    /// Stable discriminant for wire and checkpoint identity: the
    /// scheme's position in [`Scheme::EXTENDED`]. A job descriptor or
    /// checkpoint header written by one build must name the same scheme
    /// on every other build.
    pub fn id(&self) -> u8 {
        Scheme::EXTENDED
            .iter()
            .position(|s| s == self)
            .expect("every scheme appears in EXTENDED") as u8
    }

    /// Inverse of [`Scheme::id`]; `None` for unknown discriminants.
    pub fn from_id(id: u8) -> Option<Scheme> {
        Scheme::EXTENDED.get(id as usize).copied()
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A scheme instantiated for concrete `(n, P)` — enum dispatch so callers
/// can select partitionings at runtime without generics.
#[derive(Debug, Clone)]
pub enum AnyPartition {
    /// Uniform consecutive.
    Ucp(Ucp),
    /// Linear consecutive.
    Lcp(Lcp),
    /// Round robin.
    Rrp(Rrp),
    /// Block cyclic.
    Bcp(Bcp),
}

/// Instantiate `scheme` for `n` nodes over `nranks` ranks.
pub fn build(scheme: Scheme, n: u64, nranks: usize) -> AnyPartition {
    match scheme {
        Scheme::Ucp => AnyPartition::Ucp(Ucp::new(n, nranks)),
        Scheme::Lcp => AnyPartition::Lcp(Lcp::new(n, nranks)),
        Scheme::Rrp => AnyPartition::Rrp(Rrp::new(n, nranks)),
        Scheme::Bcp => AnyPartition::Bcp(Bcp::new(n, nranks, DEFAULT_BCP_BLOCK)),
    }
}

macro_rules! dispatch {
    ($self:ident, $p:ident => $body:expr) => {
        match $self {
            AnyPartition::Ucp($p) => $body,
            AnyPartition::Lcp($p) => $body,
            AnyPartition::Rrp($p) => $body,
            AnyPartition::Bcp($p) => $body,
        }
    };
}

impl Partition for AnyPartition {
    fn num_nodes(&self) -> u64 {
        dispatch!(self, p => p.num_nodes())
    }
    fn nranks(&self) -> usize {
        dispatch!(self, p => p.nranks())
    }
    fn rank_of(&self, v: Node) -> usize {
        dispatch!(self, p => p.rank_of(v))
    }
    fn size_of(&self, rank: usize) -> u64 {
        dispatch!(self, p => p.size_of(rank))
    }
    fn local_index(&self, v: Node) -> u64 {
        dispatch!(self, p => p.local_index(v))
    }
    fn node_at(&self, rank: usize, idx: u64) -> Node {
        dispatch!(self, p => p.node_at(rank, idx))
    }
}

/// Exhaustively verify the [`Partition`] contract for small instances
/// (used by unit tests and proptests of every scheme).
///
/// # Panics
///
/// Panics on the first violated invariant.
#[doc(hidden)]
pub fn check_contract<P: Partition>(part: &P) {
    let n = part.num_nodes();
    let p = part.nranks();
    let total: u64 = (0..p).map(|r| part.size_of(r)).sum();
    assert_eq!(total, n, "partition sizes must sum to n");
    let mut seen = vec![false; n as usize];
    for r in 0..p {
        let mut prev: Option<Node> = None;
        for (idx, v) in part.nodes_of(r).enumerate() {
            assert!(v < n, "node {v} out of range");
            assert!(!seen[v as usize], "node {v} assigned twice");
            seen[v as usize] = true;
            assert_eq!(part.rank_of(v), r, "rank_of({v})");
            assert_eq!(part.local_index(v), idx as u64, "local_index({v})");
            assert_eq!(part.node_at(r, idx as u64), v, "node_at({r},{idx})");
            if let Some(pv) = prev {
                assert!(v > pv, "nodes_of must be ascending");
            }
            prev = Some(v);
        }
    }
    assert!(seen.iter().all(|&s| s), "every node must be assigned");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_dispatches_all_schemes() {
        for scheme in Scheme::EXTENDED {
            let part = build(scheme, 101, 7);
            assert_eq!(part.num_nodes(), 101);
            assert_eq!(part.nranks(), 7);
            check_contract(&part);
        }
    }

    #[test]
    fn scheme_names() {
        assert_eq!(Scheme::Ucp.to_string(), "UCP");
        assert_eq!(Scheme::Lcp.to_string(), "LCP");
        assert_eq!(Scheme::Rrp.to_string(), "RRP");
        assert_eq!(Scheme::Bcp.to_string(), "BCP");
    }

    #[test]
    fn extended_extends_all_in_order() {
        assert_eq!(Scheme::EXTENDED[..3], Scheme::ALL);
        assert_eq!(Scheme::EXTENDED[3], Scheme::Bcp);
    }

    #[test]
    fn scheme_ids_round_trip_and_stay_pinned() {
        // The discriminants are wire/checkpoint identity: never renumber.
        assert_eq!(Scheme::Ucp.id(), 0);
        assert_eq!(Scheme::Lcp.id(), 1);
        assert_eq!(Scheme::Rrp.id(), 2);
        assert_eq!(Scheme::Bcp.id(), 3);
        for scheme in Scheme::EXTENDED {
            assert_eq!(Scheme::from_id(scheme.id()), Some(scheme));
        }
        assert_eq!(Scheme::from_id(4), None);
    }

    #[test]
    fn single_rank_owns_everything() {
        for scheme in Scheme::EXTENDED {
            let part = build(scheme, 50, 1);
            assert_eq!(part.size_of(0), 50);
            assert_eq!(part.rank_of(49), 0);
            check_contract(&part);
        }
    }

    #[test]
    fn node_iter_is_exact_size() {
        let part = build(Scheme::Rrp, 10, 3);
        let it = part.nodes_of(0);
        assert_eq!(it.len(), 4); // nodes 0, 3, 6, 9
    }

    #[test]
    fn local_count_below_matches_linear_scan() {
        for scheme in Scheme::ALL {
            let part = build(scheme, 101, 7);
            for rank in 0..7 {
                for bound in [0u64, 1, 13, 50, 100, 101, 500] {
                    let expect = part.nodes_of(rank).filter(|&v| v < bound).count() as u64;
                    assert_eq!(
                        part.local_count_below(rank, bound),
                        expect,
                        "{scheme} rank {rank} bound {bound}"
                    );
                }
            }
        }
    }
}
