//! Round-robin partitioning (RRP), §3.5.2 / Appendix A.3.

use super::Partition;
use crate::Node;

/// Round-robin partitioning: node `v` belongs to rank `v mod P`.
///
/// Because the expected request load `E[M_k]` decreases monotonically in
/// the node label (Lemma 3.4), interleaving labels across ranks balances
/// both node counts and message counts: Appendix A.3 shows the maximum
/// load difference between any two ranks is `O(log n)` against a total
/// load of `Ω(n)`.
#[derive(Debug, Clone)]
pub struct Rrp {
    n: u64,
    nranks: usize,
}

impl Rrp {
    /// Partition `n` nodes over `nranks` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `nranks == 0`.
    pub fn new(n: u64, nranks: usize) -> Self {
        assert!(nranks > 0, "need at least one rank");
        Self { n, nranks }
    }
}

impl Partition for Rrp {
    fn num_nodes(&self) -> u64 {
        self.n
    }

    fn nranks(&self) -> usize {
        self.nranks
    }

    #[inline]
    fn rank_of(&self, v: Node) -> usize {
        debug_assert!(v < self.n);
        (v % self.nranks as u64) as usize
    }

    #[inline]
    fn size_of(&self, rank: usize) -> u64 {
        let p = self.nranks as u64;
        let rank = rank as u64;
        // Nodes rank, rank+P, rank+2P, … below n.
        if rank >= self.n {
            0
        } else {
            (self.n - rank).div_ceil(p)
        }
    }

    #[inline]
    fn local_index(&self, v: Node) -> u64 {
        v / self.nranks as u64
    }

    #[inline]
    fn node_at(&self, rank: usize, idx: u64) -> Node {
        debug_assert!(idx < self.size_of(rank));
        rank as u64 + idx * self.nranks as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::check_contract;

    #[test]
    fn contract_small_cases() {
        for (n, p) in [
            (1u64, 1usize),
            (10, 1),
            (10, 3),
            (10, 10),
            (10, 16),
            (100, 7),
        ] {
            check_contract(&Rrp::new(n, p));
        }
    }

    #[test]
    fn assignment_is_modular() {
        let part = Rrp::new(10, 3);
        let r0: Vec<_> = part.nodes_of(0).collect();
        let r1: Vec<_> = part.nodes_of(1).collect();
        let r2: Vec<_> = part.nodes_of(2).collect();
        assert_eq!(r0, vec![0, 3, 6, 9]);
        assert_eq!(r1, vec![1, 4, 7]);
        assert_eq!(r2, vec![2, 5, 8]);
    }

    #[test]
    fn sizes_differ_by_at_most_one() {
        let part = Rrp::new(10, 3);
        let sizes: Vec<u64> = (0..3).map(|r| part.size_of(r)).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn more_ranks_than_nodes() {
        let part = Rrp::new(3, 5);
        check_contract(&part);
        assert_eq!(part.size_of(3), 0);
        assert_eq!(part.size_of(4), 0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Rrp::new(10, 0);
    }
}
