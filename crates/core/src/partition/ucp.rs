//! Uniform consecutive partitioning (UCP), §3.5.1 / Appendix A.1.

use super::Partition;
use crate::Node;

/// Uniform consecutive partitioning: consecutive blocks of (near-)equal
/// size. With `q = ⌊n/P⌋` and `r = n mod P`, the first `r` ranks hold
/// `q + 1` nodes and the rest hold `q`, so sizes differ by at most one
/// (the "B or B−1" property of Appendix A.1) while owner lookup stays
/// O(1).
#[derive(Debug, Clone)]
pub struct Ucp {
    n: u64,
    nranks: usize,
    /// ⌊n/P⌋.
    q: u64,
    /// n mod P — the number of ranks holding q+1 nodes.
    r: u64,
}

impl Ucp {
    /// Partition `n` nodes over `nranks` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `nranks == 0`.
    pub fn new(n: u64, nranks: usize) -> Self {
        assert!(nranks > 0, "need at least one rank");
        Self {
            n,
            nranks,
            q: n / nranks as u64,
            r: n % nranks as u64,
        }
    }

    /// First node of `rank`'s block.
    #[inline]
    fn block_start(&self, rank: usize) -> u64 {
        let rank = rank as u64;
        if rank <= self.r {
            rank * (self.q + 1)
        } else {
            self.r * (self.q + 1) + (rank - self.r) * self.q
        }
    }
}

impl Partition for Ucp {
    fn num_nodes(&self) -> u64 {
        self.n
    }

    fn nranks(&self) -> usize {
        self.nranks
    }

    #[inline]
    fn rank_of(&self, v: Node) -> usize {
        debug_assert!(v < self.n);
        let fat_end = self.r * (self.q + 1);
        if v < fat_end {
            (v / (self.q + 1)) as usize
        } else {
            (self.r + (v - fat_end) / self.q.max(1)) as usize
        }
    }

    #[inline]
    fn size_of(&self, rank: usize) -> u64 {
        if (rank as u64) < self.r {
            self.q + 1
        } else {
            self.q
        }
    }

    #[inline]
    fn local_index(&self, v: Node) -> u64 {
        v - self.block_start(self.rank_of(v))
    }

    #[inline]
    fn node_at(&self, rank: usize, idx: u64) -> Node {
        debug_assert!(idx < self.size_of(rank));
        self.block_start(rank) + idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::check_contract;

    #[test]
    fn contract_small_cases() {
        for (n, p) in [
            (1u64, 1usize),
            (10, 1),
            (10, 3),
            (10, 10),
            (7, 4),
            (100, 16),
        ] {
            check_contract(&Ucp::new(n, p));
        }
    }

    #[test]
    fn sizes_differ_by_at_most_one() {
        let part = Ucp::new(10, 4); // 3, 3, 2, 2
        let sizes: Vec<u64> = (0..4).map(|r| part.size_of(r)).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn blocks_are_consecutive() {
        let part = Ucp::new(10, 4);
        let r1: Vec<_> = part.nodes_of(1).collect();
        assert_eq!(r1, vec![3, 4, 5]);
        let r3: Vec<_> = part.nodes_of(3).collect();
        assert_eq!(r3, vec![8, 9]);
    }

    #[test]
    fn more_ranks_than_nodes() {
        let part = Ucp::new(3, 5); // sizes 1,1,1,0,0
        check_contract(&part);
        assert_eq!(part.size_of(0), 1);
        assert_eq!(part.size_of(4), 0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Ucp::new(10, 0);
    }
}
