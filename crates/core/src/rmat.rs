//! Extension: R-MAT recursive-matrix graphs (paper reference \[7\],
//! Chakrabarti, Zhan & Faloutsos, SDM 2004).
//!
//! Each edge picks its endpoints by recursively descending a 2×2
//! quadrant split of the adjacency matrix with probabilities
//! `(a, b, c, d)`; skewed splits produce heavy-tailed degrees. Edges are
//! mutually independent, so generation is embarrassingly parallel; each
//! edge draws from its own counter stream keyed by the edge index, so
//! the output is independent of the rank count (as with the ER and
//! Chung–Lu extensions).
//!
//! R-MAT natively emits a directed multigraph with possible self-loops
//! (the Graph500 convention); use [`pa_graph::EdgeList::simplify`] when
//! a simple graph is required.

use crate::Node;
use pa_graph::EdgeList;
use pa_mpsim::World;
use pa_rng::{CounterRng, Rng64};

/// Configuration of an R-MAT graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatConfig {
    /// log2 of the node count (`n = 2^scale`).
    pub scale: u32,
    /// Number of edges to sample.
    pub edges: u64,
    /// Quadrant probabilities; must be non-negative and sum to 1.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RmatConfig {
    /// Graph500-style defaults: `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`
    /// with `edges = 16·n` unless overridden.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is 0 or exceeds 62.
    pub fn graph500(scale: u32) -> Self {
        assert!(scale > 0 && scale <= 62, "scale must be in 1..=62");
        Self {
            scale,
            edges: 16u64 << scale,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed: 0,
        }
    }

    /// Override the edge count.
    pub fn with_edges(mut self, edges: u64) -> Self {
        self.edges = edges;
        self
    }

    /// Override the quadrant probabilities (the fourth is `1 − a − b − c`).
    ///
    /// # Panics
    ///
    /// Panics if any probability is negative or `a + b + c > 1`.
    pub fn with_probs(mut self, a: f64, b: f64, c: f64) -> Self {
        assert!(
            a >= 0.0 && b >= 0.0 && c >= 0.0,
            "probabilities must be non-negative"
        );
        assert!(a + b + c <= 1.0 + 1e-12, "a + b + c must not exceed 1");
        self.a = a;
        self.b = b;
        self.c = c;
        self
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of nodes, `2^scale`.
    pub fn n(&self) -> u64 {
        1u64 << self.scale
    }
}

/// Sample one edge by recursive quadrant descent.
fn sample_edge(cfg: &RmatConfig, index: u64) -> (Node, Node) {
    let mut rng = CounterRng::for_event(cfg.seed, index, 0, 0);
    let (mut u, mut v) = (0u64, 0u64);
    for level in (0..cfg.scale).rev() {
        let r = rng.next_f64();
        let bit = 1u64 << level;
        if r < cfg.a {
            // top-left: neither bit set
        } else if r < cfg.a + cfg.b {
            v |= bit;
        } else if r < cfg.a + cfg.b + cfg.c {
            u |= bit;
        } else {
            u |= bit;
            v |= bit;
        }
    }
    (u, v)
}

/// Generate sequentially (directed multigraph semantics).
pub fn generate_seq(cfg: &RmatConfig) -> EdgeList {
    let mut edges = EdgeList::with_capacity(cfg.edges as usize);
    for i in 0..cfg.edges {
        let (u, v) = sample_edge(cfg, i);
        edges.push(u, v);
    }
    edges
}

/// Generate on `nranks` ranks (edge-partitioned, zero communication);
/// equal to [`generate_seq`] up to edge order.
///
/// # Panics
///
/// Panics if `nranks == 0`.
pub fn generate_par(cfg: &RmatConfig, nranks: usize) -> EdgeList {
    assert!(nranks > 0, "need at least one rank");
    let world = World::new(nranks);
    let per = cfg.edges.div_ceil(nranks as u64);
    let parts: Vec<EdgeList> = world.run(|comm: pa_mpsim::Comm<()>| {
        let rank = comm.rank() as u64;
        let lo = rank * per;
        let hi = ((rank + 1) * per).min(cfg.edges);
        let mut edges = EdgeList::with_capacity(hi.saturating_sub(lo) as usize);
        for i in lo..hi {
            let (u, v) = sample_edge(cfg, i);
            edges.push(u, v);
        }
        edges
    });
    EdgeList::concat(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_graph::degrees;

    #[test]
    fn parallel_equals_sequential() {
        let cfg = RmatConfig::graph500(10).with_edges(8_000).with_seed(3);
        let reference = generate_seq(&cfg).canonicalized();
        for nranks in [1usize, 3, 8] {
            assert_eq!(generate_par(&cfg, nranks).canonicalized(), reference);
        }
    }

    #[test]
    fn endpoints_stay_in_range() {
        let cfg = RmatConfig::graph500(8).with_edges(5_000).with_seed(1);
        let edges = generate_seq(&cfg);
        assert_eq!(edges.len(), 5_000);
        let n = cfg.n();
        for (u, v) in edges.iter() {
            assert!(u < n && v < n);
        }
    }

    #[test]
    fn skewed_probs_produce_hubs_uniform_probs_do_not() {
        let n_edges = 40_000u64;
        let max_deg = |a: f64, b: f64, c: f64| {
            let cfg = RmatConfig::graph500(12)
                .with_edges(n_edges)
                .with_probs(a, b, c)
                .with_seed(9);
            let el = generate_seq(&cfg).simplify();
            let deg = degrees::degree_sequence(cfg.n() as usize, &el);
            degrees::degree_stats(&deg).unwrap().max
        };
        let skewed = max_deg(0.57, 0.19, 0.19);
        let uniform = max_deg(0.25, 0.25, 0.25);
        assert!(
            skewed > 3 * uniform,
            "skewed R-MAT should grow hubs: {skewed} vs uniform {uniform}"
        );
    }

    #[test]
    fn simplify_yields_valid_simple_graph() {
        let cfg = RmatConfig::graph500(9).with_edges(20_000).with_seed(4);
        let el = generate_seq(&cfg).simplify();
        assert!(
            el.len() < 20_000,
            "dedup must remove something at this density"
        );
        assert!(pa_graph::validate::check_simple(cfg.n(), &el).is_empty());
    }

    #[test]
    #[should_panic(expected = "must not exceed 1")]
    fn bad_probs_panic() {
        let _ = RmatConfig::graph500(5).with_probs(0.6, 0.3, 0.2);
    }
}
