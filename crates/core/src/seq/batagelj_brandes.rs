//! Batagelj–Brandes repeated-nodes-list generator (paper §3.1).
//!
//! Maintains a list in which every node `i` appears exactly `d_i` times
//! (append both endpoints whenever an edge is created); a uniform draw
//! from the list is then a degree-proportional draw. O(m) time, but the
//! list is global mutable state that grows with every edge — the paper's
//! explanation for why this algorithm, unlike the copy model, resists
//! distributed-memory parallelization.

use crate::{Node, PaConfig};
use pa_graph::EdgeList;
use pa_rng::Rng64;

/// Generate a PA network with the Batagelj–Brandes algorithm.
///
/// Uses the same boundary conditions as the copy-model generators (seed
/// clique on `0 .. x`, node `x` attaching to every seed) so edge counts
/// are comparable. Duplicate targets within a node's round are redrawn;
/// this is the standard simple-graph variant (as in NetworkX).
pub fn generate(cfg: &PaConfig, rng: &mut impl Rng64) -> EdgeList {
    cfg.validate();
    let (n, x) = (cfg.n, cfg.x);
    let mut edges = EdgeList::with_capacity(cfg.expected_edges() as usize);
    // Repeated-nodes list: node i appears once per incident edge.
    let mut list: Vec<Node> = Vec::with_capacity(2 * cfg.expected_edges() as usize);

    // Seed clique.
    for i in 1..x {
        for j in 0..i {
            edges.push(i, j);
            list.push(i);
            list.push(j);
        }
    }
    // Per-round distinct-target scratch.
    let mut targets: Vec<Node> = Vec::with_capacity(x as usize);
    for t in x..n {
        targets.clear();
        if t == x {
            // Node x attaches to all seed nodes (for x = 1 the list is
            // still empty at this point, so this case is also what makes
            // the algorithm well-defined at the boundary).
            targets.extend(0..x);
        } else {
            while (targets.len() as u64) < x {
                let cand = list[rng.gen_below(list.len() as u64) as usize];
                if !targets.contains(&cand) {
                    targets.push(cand);
                }
            }
        }
        for &v in &targets {
            edges.push(t, v);
            list.push(t);
            list.push(v);
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_graph::validate::assert_valid_pa_network;
    use pa_rng::Xoshiro256pp;

    #[test]
    fn produces_valid_network() {
        for x in [1u64, 2, 4] {
            let cfg = PaConfig::new(3000, x).with_seed(1);
            let mut rng = Xoshiro256pp::new(cfg.seed);
            let edges = generate(&cfg, &mut rng);
            assert_valid_pa_network(3000, x, &edges);
        }
    }

    #[test]
    fn network_is_connected() {
        let cfg = PaConfig::new(2000, 3);
        let mut rng = Xoshiro256pp::new(5);
        let edges = generate(&cfg, &mut rng);
        let csr = pa_graph::Csr::from_edges(2000, &edges);
        assert_eq!(csr.connected_components(), 1);
    }

    #[test]
    fn repeated_list_invariant_heavy_tail() {
        let cfg = PaConfig::new(20_000, 2);
        let mut rng = Xoshiro256pp::new(2);
        let edges = generate(&cfg, &mut rng);
        let deg = pa_graph::degrees::degree_sequence(20_000, &edges);
        let stats = pa_graph::degrees::degree_stats(&deg).unwrap();
        assert!(stats.max > 50, "hub expected, max = {}", stats.max);
    }

    #[test]
    fn deterministic_given_rng_state() {
        let cfg = PaConfig::new(500, 2);
        let a = generate(&cfg, &mut Xoshiro256pp::new(9));
        let b = generate(&cfg, &mut Xoshiro256pp::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn x1_attaches_node_one_to_zero() {
        let cfg = PaConfig::new(100, 1);
        let edges = generate(&cfg, &mut Xoshiro256pp::new(4));
        assert_eq!(edges.as_slice()[0], (1, 0));
    }
}
