//! Sequential copy-model generator (Kumar et al., paper §3.1).

use crate::{Node, PaConfig, NILL};
use pa_graph::EdgeList;
use pa_rng::{EventKeys, Rng64};

/// The random choice one attachment event makes, fully determined by
/// `(seed, t, e, attempt)`.
///
/// Three values are drawn, in a fixed order, from the event's counter
/// stream: the uniform existing node `k ∈ [x, t)`, the Bernoulli(p)
/// direct-vs-copy coin, and the edge index `l ∈ [0, x)` used when
/// copying (`F_t ← F_k(l)`). The parallel engines and the sequential
/// generator all consume choices through this one function, which is what
/// makes their outputs comparable across processor counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Choice {
    /// The uniformly drawn existing node.
    pub k: Node,
    /// `true` → connect to `k` itself; `false` → copy `F_k(l)`.
    pub direct: bool,
    /// Which of `k`'s `x` attachments to copy (ignored when `direct`).
    pub l: u64,
}

/// Draw the [`Choice`] for attachment event `(t, e, attempt)`.
///
/// # Panics
///
/// Panics if `t <= x` (seed-clique nodes and node `x` do not draw).
pub fn draw_choice(seed: u64, p: f64, x: u64, t: Node, e: u32, attempt: u32) -> Choice {
    assert!(t > x, "node {t} does not draw (x = {x})");
    draw_choice_keyed(&EventKeys::for_node(seed, t), p, x, t, e, attempt)
}

/// [`draw_choice`] with the `(seed, t)` key prefix already hoisted.
///
/// Bit-identical to [`draw_choice`] (the draw order and streams are the
/// same); use it when drawing many events for one node — a whole edge
/// row, a retry loop, or engine3's chain recomputation — so each event
/// pays one key mix instead of three. `t` is still passed for the range
/// bound `k ∈ [x, t)`; the caller must build `keys` for the same node.
#[inline]
pub fn draw_choice_keyed(
    keys: &EventKeys,
    p: f64,
    x: u64,
    t: Node,
    e: u32,
    attempt: u32,
) -> Choice {
    debug_assert!(t > x, "node {t} does not draw (x = {x})");
    let mut rng = keys.rng(e, attempt);
    let k = rng.gen_range(x, t);
    let direct = rng.gen_bool(p);
    let l = rng.gen_below(x);
    Choice { k, direct, l }
}

/// Batch-draw the attempt-0 [`Choice`]s for node `t`'s whole edge row
/// into `out` (cleared first).
///
/// This is the engines' hot path: one key-prefix mix for the node, then
/// a tight loop of one mix + three draws per slot, with no per-event
/// re-derivation and no branchy dispatch. Retries (attempt > 0) are rare
/// and drawn individually via [`draw_choice_keyed`].
pub fn draw_row_choices(keys: &EventKeys, p: f64, x: u64, t: Node, out: &mut Vec<Choice>) {
    debug_assert!(t > x, "node {t} does not draw (x = {x})");
    out.clear();
    out.reserve(x as usize);
    for e in 0..x as u32 {
        out.push(draw_choice_keyed(keys, p, x, t, e, 0));
    }
}

/// Resolve the final attachment target `F_t` for `x = 1` by following the
/// copy chain analytically (no graph needed): repeatedly apply the
/// attempt-0 choice until a direct connection is reached, then unwind.
///
/// This is exactly the value Algorithm 3.1 computes through its
/// request/resolved message protocol, so it doubles as an oracle in
/// tests. `target_for(seed, p, 1) == 0` by definition (node 1 attaches to
/// the single seed node 0).
pub fn target_for(seed: u64, p: f64, t: Node) -> Node {
    assert!(t >= 1, "node 0 has no attachment");
    let mut cur = t;
    // Walk down the selection chain until a direct choice; chain strictly
    // decreases so this terminates at node 1 at the latest.
    loop {
        if cur == 1 {
            return 0;
        }
        let c = draw_choice(seed, p, 1, cur, 0, 0);
        if c.direct {
            return c.k;
        }
        cur = c.k;
    }
}

/// Generate a PA network with the sequential copy model.
///
/// Matches the parallel engines exactly: same seed clique, same draw
/// streams, same duplicate-avoidance rule (redraw with an incremented
/// `attempt` whenever the candidate already appears among `t`'s chosen
/// targets).
pub fn generate(cfg: &PaConfig) -> EdgeList {
    generate_with_model(cfg, crate::Model::resolve(cfg, crate::ModelKind::Pa))
}

/// The model-generic sequential generator: the seed clique, the
/// flattened `F` table, and the duplicate-avoidance retry loop are
/// identical for every attachment model — only the draw itself goes
/// through [`crate::Model`]. This is the reference semantics ("the
/// oracle") each parallel engine must reproduce bit-for-bit, for every
/// model.
pub(crate) fn generate_with_model(cfg: &PaConfig, model: crate::Model) -> EdgeList {
    cfg.validate();
    let (n, x) = (cfg.n, cfg.x);
    let mut edges = EdgeList::with_capacity(cfg.expected_edges() as usize);
    // F_t(e) for every node, flattened; seed-clique rows stay NILL (they
    // are never copied from: k is drawn from [x, t)).
    let mut f = vec![NILL; (n * x) as usize];

    // Seed clique over 0 .. x.
    for i in 1..x {
        for j in 0..i {
            edges.push(i, j);
        }
    }
    // Node x attaches to every seed node.
    for e in 0..x {
        f[(x * x + e) as usize] = e;
        edges.push(x, e);
    }
    // Every later node draws x targets via the model's choice stream.
    for t in (x + 1)..n {
        let keys = model.keys_for(t);
        let row = (t * x) as usize;
        for e in 0..x {
            let mut attempt = 0u32;
            let v = loop {
                let c = model.draw_keyed(&keys, t, e as u32, attempt);
                let cand = if c.direct {
                    c.k
                } else {
                    let fk = f[(c.k * x + c.l) as usize];
                    debug_assert_ne!(fk, NILL, "F_{}({}) unresolved at t={t}", c.k, c.l);
                    fk
                };
                if !f[row..row + x as usize].contains(&cand) {
                    break cand;
                }
                attempt += 1;
            };
            f[row + e as usize] = v;
            edges.push(t, v);
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_graph::validate::assert_valid_pa_network;

    #[test]
    fn x1_produces_a_tree_plus_root() {
        let cfg = PaConfig::new(1000, 1).with_seed(7);
        let edges = generate(&cfg);
        assert_eq!(edges.len(), 999);
        assert_valid_pa_network(1000, 1, &edges);
        // x = 1 PA networks are connected trees.
        let csr = pa_graph::Csr::from_edges(1000, &edges);
        assert_eq!(csr.connected_components(), 1);
    }

    #[test]
    fn general_x_is_valid_and_connected() {
        for x in [2u64, 3, 5] {
            let cfg = PaConfig::new(2000, x).with_seed(13);
            let edges = generate(&cfg);
            assert_valid_pa_network(2000, x, &edges);
            let csr = pa_graph::Csr::from_edges(2000, &edges);
            assert_eq!(csr.connected_components(), 1, "x = {x}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = PaConfig::new(500, 3).with_seed(42);
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = PaConfig::new(500, 3).with_seed(43);
        assert_ne!(generate(&cfg), generate(&other));
    }

    #[test]
    fn target_oracle_matches_generated_edges_x1() {
        let cfg = PaConfig::new(2000, 1).with_seed(3);
        let edges = generate(&cfg);
        for (t, v) in edges.iter() {
            assert_eq!(v, target_for(cfg.seed, cfg.p, t), "node {t}");
        }
    }

    #[test]
    fn p_one_means_uniform_attachment() {
        // With p = 1 every choice is direct, so no copy chains exist and
        // targets are the drawn k themselves.
        let cfg = PaConfig::new(300, 1).with_p(1.0).with_seed(5);
        let edges = generate(&cfg);
        for (t, v) in edges.iter().skip(1) {
            let c = draw_choice(cfg.seed, 1.0, 1, t, 0, 0);
            assert_eq!(v, c.k);
        }
    }

    #[test]
    fn p_zero_copy_chains_terminate() {
        // p = 0: every node copies; chains bottom out at node x whose
        // targets are the seed nodes, so everything attaches to seeds.
        let cfg = PaConfig::new(500, 2).with_p(0.0).with_seed(11);
        let edges = generate(&cfg);
        assert_valid_pa_network(500, 2, &edges);
        for (t, v) in edges.iter() {
            if t > 2 {
                assert!(
                    v < 2,
                    "with p=0 and x=2 all copies resolve to seeds, got ({t},{v})"
                );
            }
        }
    }

    #[test]
    fn heavy_tail_emerges() {
        // Scale-free signature: the max degree dwarfs the mean.
        let cfg = PaConfig::new(20_000, 2).with_seed(1);
        let edges = generate(&cfg);
        let deg = pa_graph::degrees::degree_sequence(20_000, &edges);
        let stats = pa_graph::degrees::degree_stats(&deg).unwrap();
        assert!(stats.mean < 4.01);
        assert!(
            stats.max > 50,
            "expected a hub far above the mean, max = {}",
            stats.max
        );
    }

    #[test]
    fn keyed_and_batched_draws_match_the_reference() {
        let (seed, p, x) = (41u64, 0.5, 4u64);
        let mut row = Vec::new();
        for t in [5u64, 6, 100, 2_999] {
            let keys = EventKeys::for_node(seed, t);
            for e in 0..x as u32 {
                for attempt in [0u32, 1, 5] {
                    assert_eq!(
                        draw_choice_keyed(&keys, p, x, t, e, attempt),
                        draw_choice(seed, p, x, t, e, attempt),
                        "t={t} e={e} attempt={attempt}"
                    );
                }
            }
            draw_row_choices(&keys, p, x, t, &mut row);
            assert_eq!(row.len(), x as usize);
            for (e, c) in row.iter().enumerate() {
                assert_eq!(*c, draw_choice(seed, p, x, t, e as u32, 0));
            }
        }
    }

    #[test]
    fn draw_choice_is_stable() {
        let a = draw_choice(9, 0.5, 4, 100, 2, 1);
        let b = draw_choice(9, 0.5, 4, 100, 2, 1);
        assert_eq!(a, b);
        assert!(a.k >= 4 && a.k < 100);
        assert!(a.l < 4);
    }

    #[test]
    #[should_panic(expected = "does not draw")]
    fn seed_nodes_do_not_draw() {
        let _ = draw_choice(1, 0.5, 4, 4, 0, 0);
    }
}
