//! Sequential preferential-attachment generators (paper §3.1).
//!
//! Three algorithms, in increasing order of relevance to the parallel
//! work:
//!
//! * [`naive`] — the textbook Ω(n²) algorithm: scan a degree array to
//!   locate a degree-proportional target. Included as the baseline the
//!   paper dismisses, and to cross-validate distributions at small n.
//! * [`batagelj_brandes`] — the O(m) repeated-nodes-list algorithm of
//!   Batagelj & Brandes (what NetworkX implements); the fastest known
//!   sequential BA generator but resistant to parallelization.
//! * [`copy_model`] — the O(m) copy model of Kumar et al.; statistically
//!   equivalent to BA at `p = ½`, and the basis of the parallel
//!   algorithms. This implementation consumes the same counter-based
//!   draws as the parallel engines, so for any `P` the parallel `x = 1`
//!   output is bit-identical to this function's output, and for `P = 1`
//!   the general `x ≥ 1` engine matches it too.
//!
//! Plus one non-PA variant on the same substrate: [`nlpa`] — nonlinear
//! preferential attachment with exponent `α`, a redirection surrogate
//! over the copy model's draw streams (`α = 1` is bit-identical to
//! [`copy_model`]). It is the sequential oracle for
//! `par --model nlpa`.

mod batagelj_brandes;
mod copy_model;
mod naive;
mod nlpa;

pub use batagelj_brandes::generate as batagelj_brandes;
pub use copy_model::{
    draw_choice, draw_choice_keyed, draw_row_choices, generate as copy_model, target_for, Choice,
};
pub use naive::generate as naive;
pub use nlpa::generate as nlpa;
