//! The naive degree-scan generator (paper §3.1's Ω(n²) strawman).
//!
//! Keeps an explicit degree array; to draw a degree-proportional target
//! for node `t` it draws `r` uniform in `[0, Σ d_i)` and scans the array
//! until the cumulative degree exceeds `r` — Θ(t) per draw, Ω(n²) total.
//! Kept as the correctness baseline and for the sequential-algorithm
//! comparison bench; use only at small `n`.

use crate::{Node, PaConfig};
use pa_graph::EdgeList;
use pa_rng::Rng64;

/// Generate a PA network by naive cumulative-degree scanning.
///
/// Boundary conditions match the other generators (seed clique, node `x`
/// attaching to every seed). Duplicate targets within a round are
/// redrawn.
pub fn generate(cfg: &PaConfig, rng: &mut impl Rng64) -> EdgeList {
    cfg.validate();
    let (n, x) = (cfg.n, cfg.x);
    let mut edges = EdgeList::with_capacity(cfg.expected_edges() as usize);
    let mut degree = vec![0u64; n as usize];
    let mut total_degree = 0u64;

    let add_edge =
        |edges: &mut EdgeList, degree: &mut Vec<u64>, total: &mut u64, u: Node, v: Node| {
            edges.push(u, v);
            degree[u as usize] += 1;
            degree[v as usize] += 1;
            *total += 2;
        };

    for i in 1..x {
        for j in 0..i {
            add_edge(&mut edges, &mut degree, &mut total_degree, i, j);
        }
    }
    let mut targets: Vec<Node> = Vec::with_capacity(x as usize);
    for t in x..n {
        targets.clear();
        if t == x {
            targets.extend(0..x);
        } else {
            while (targets.len() as u64) < x {
                let mut r = rng.gen_below(total_degree);
                // Scan for the node whose cumulative degree range holds r.
                let mut cand = 0u64;
                loop {
                    let d = degree[cand as usize];
                    if r < d {
                        break;
                    }
                    r -= d;
                    cand += 1;
                }
                if !targets.contains(&cand) {
                    targets.push(cand);
                }
            }
        }
        for &v in &targets {
            add_edge(&mut edges, &mut degree, &mut total_degree, t, v);
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_graph::validate::assert_valid_pa_network;
    use pa_rng::Xoshiro256pp;

    #[test]
    fn produces_valid_network() {
        for x in [1u64, 3] {
            let cfg = PaConfig::new(400, x);
            let edges = generate(&cfg, &mut Xoshiro256pp::new(1));
            assert_valid_pa_network(400, x, &edges);
        }
    }

    #[test]
    fn connected_and_deterministic() {
        let cfg = PaConfig::new(300, 2);
        let a = generate(&cfg, &mut Xoshiro256pp::new(7));
        let b = generate(&cfg, &mut Xoshiro256pp::new(7));
        assert_eq!(a, b);
        let csr = pa_graph::Csr::from_edges(300, &a);
        assert_eq!(csr.connected_components(), 1);
    }

    #[test]
    fn degree_proportionality_matches_batagelj_brandes_statistically() {
        // Both are exact BA samplers, so hub mass should be comparable:
        // compare the mean of the top-10 degrees across a few seeds.
        let cfg = PaConfig::new(2_000, 2);
        let top10 = |edges: &EdgeList| -> f64 {
            let mut deg = pa_graph::degrees::degree_sequence(2_000, edges);
            deg.sort_unstable_by(|a, b| b.cmp(a));
            deg[..10].iter().sum::<u64>() as f64 / 10.0
        };
        let mut naive_sum = 0.0;
        let mut bb_sum = 0.0;
        for seed in 0..5 {
            naive_sum += top10(&generate(&cfg, &mut Xoshiro256pp::new(seed)));
            bb_sum += top10(&super::super::batagelj_brandes(
                &cfg,
                &mut Xoshiro256pp::new(seed + 100),
            ));
        }
        let ratio = naive_sum / bb_sum;
        assert!(
            (0.6..1.7).contains(&ratio),
            "hub mass should be comparable, ratio = {ratio}"
        );
    }
}
