//! Sequential nonlinear-PA reference generator (the nlpa oracle).
//!
//! Nonlinear preferential attachment (NLPA) attaches proportionally to
//! `degree^α` (Allendorf–Meyer–Penschuck–Tran; Krapivsky–Redner): `α = 1`
//! is the classical linear kernel, `α < 1` flattens the rich-get-richer
//! feedback (thinner tail, larger exponent γ), `α > 1` sharpens it
//! (heavier tail, smaller γ, hub condensation in the `α ≫ 1` limit).
//!
//! This implementation realizes NLPA as a *redirection surrogate* on the
//! copy model: the direct-vs-copy coin is re-weighted to `p_eff = p^α`
//! (see [`crate::ModelKind::Nlpa`]), which shifts the generated degree
//! exponent `γ ≈ 1 + 1/(1 − p_eff)` monotonically with α while keeping
//! every draw a pure function of `(seed, node, edge, attempt)` — exactly
//! the property the distributed engines, the chaos harness, and
//! checkpoint/restart rely on. It is a surrogate, not an exact `k^α`
//! kernel: exactness would require global degree state, which no exact
//! distributed algorithm can maintain without serializing.
//!
//! **Degenerate corner.** `α = 0` gives `p_eff = 1` (pure uniform
//! attachment — every choice is direct). That is well-defined only for
//! `x = 1`: with `x > 1`, node `x+1` must fill `x` distinct slots but the
//! only reachable candidate is `k = x` (the direct range `[x, x+1)` has a
//! single element and copying never happens), so generation cannot make
//! progress. Use `x = 1` when driving `α` to zero.
//!
//! Like [`super::copy_model`], this sequential generator is the
//! reference semantics for the parallel paths: both the message-passing
//! engine (Algorithm 3.2) and the communication-free engine must
//! reproduce its edge set bit-for-bit at any processor count.

use crate::{Model, ModelKind, PaConfig};
use pa_graph::EdgeList;

/// Generate an NLPA network with exponent `alpha` sequentially.
///
/// `alpha = 1.0` is bit-identical to [`super::copy_model`].
///
/// # Panics
///
/// Panics on invalid `cfg` or non-finite / negative `alpha`.
pub fn generate(cfg: &PaConfig, alpha: f64) -> EdgeList {
    super::copy_model::generate_with_model(cfg, Model::resolve(cfg, ModelKind::Nlpa { alpha }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_graph::validate::assert_valid_pa_network;

    #[test]
    fn alpha_one_is_bit_identical_to_the_copy_model() {
        for (n, x, seed) in [(2_000u64, 1u64, 7u64), (1_500, 4, 41)] {
            let cfg = PaConfig::new(n, x).with_seed(seed);
            assert_eq!(generate(&cfg, 1.0), super::super::copy_model(&cfg));
        }
    }

    #[test]
    fn output_is_a_valid_pa_network_for_every_alpha() {
        // α = 0 is excluded here: p_eff = 1 with x > 1 is degenerate (see
        // the module docs) and is covered by `alpha_zero_is_uniform_attachment`
        // at x = 1.
        for alpha in [0.5, 1.0, 1.5, 2.5] {
            let cfg = PaConfig::new(2_000, 3).with_seed(13);
            let edges = generate(&cfg, alpha);
            assert_valid_pa_network(2_000, 3, &edges);
            let csr = pa_graph::Csr::from_edges(2_000, &edges);
            assert_eq!(csr.connected_components(), 1, "alpha = {alpha}");
        }
    }

    #[test]
    fn deterministic_per_seed_and_alpha() {
        let cfg = PaConfig::new(800, 2).with_seed(42);
        assert_eq!(generate(&cfg, 1.5), generate(&cfg, 1.5));
        assert_ne!(generate(&cfg, 1.5), generate(&cfg, 0.5));
    }

    #[test]
    fn tail_thickens_with_alpha() {
        // Larger α → smaller p_eff → longer copy chains → heavier hubs.
        let cfg = PaConfig::new(20_000, 2).with_seed(1);
        let max_deg = |alpha: f64| {
            let deg = pa_graph::degrees::degree_sequence(20_000, &generate(&cfg, alpha));
            pa_graph::degrees::degree_stats(&deg).unwrap().max
        };
        let (lo, mid, hi) = (max_deg(0.5), max_deg(1.0), max_deg(1.5));
        assert!(
            lo < mid && mid < hi,
            "max degree should grow with alpha: {lo} (α=0.5) vs {mid} (α=1.0) vs {hi} (α=1.5)"
        );
    }

    #[test]
    fn alpha_zero_is_uniform_attachment() {
        // p_eff = 1: every choice is direct, no copy chains at all.
        let cfg = PaConfig::new(500, 1).with_seed(5);
        let edges = generate(&cfg, 0.0);
        for (t, v) in edges.iter().skip(1) {
            let c = crate::seq::draw_choice(cfg.seed, 1.0, 1, t, 0, 0);
            assert_eq!(v, c.k, "node {t}");
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_alpha_panics() {
        let _ = generate(&PaConfig::new(100, 1), -1.0);
    }
}
