//! Out-of-core node-table storage: the `NodeTable` trait and its two
//! implementations.
//!
//! Every engine keeps its committed `F` slots (and, for the general
//! engine, the per-slot attempt counters and per-node cursors) in a
//! *node table* — a flat array of `u64` slots addressed by
//! `local_index(t) · x + e`. This module puts that array behind a trait
//! with two backends:
//!
//! - [`ResidentTable`]: the classic `Vec<u64>` — everything in RAM,
//!   `O(n/P)` words per rank.
//! - [`PagedTable`]: fixed-size pages spilled to per-rank files under an
//!   in-memory page cache bounded by a byte budget (`--memory-budget`),
//!   so the largest generable `n` is bounded by disk, not RAM.
//!
//! **Page files.** Each page is its own file, `{prefix}.p{index}.pg`:
//! a magic/version header, the page index, the raw little-endian slot
//! words, and a trailing FNV-1a checksum. Pages are written to a `.tmp`
//! sibling, fsynced, then renamed — the same atomicity discipline as
//! [`crate::par::CheckpointStore`] — so a crash mid-write never leaves a
//! half page under a valid name, and a torn or foreign page fails its
//! checksum and **reads as absent** (every slot the fill value) rather
//! than as garbage.
//!
//! **Eviction.** The cache runs clock / second-chance: each frame has a
//! reference bit set on access; the clock hand clears bits until it
//! finds an unreferenced frame, writes it back if dirty, and reuses it.
//! The budget buys `max(2, budget / page_bytes)` frames.
//!
//! **Checkpoints.** A resident table serializes its committed prefix
//! into the checkpoint payload verbatim (the historical format). A
//! paged table instead *references* its page files: the payload stores a
//! sentinel, the node count, and an FNV-1a checksum over the committed
//! prefix (see `write_table_prefix`). Committed slots are write-once,
//! and page replacement is atomic, so a *newer* version of a page always
//! agrees with an older epoch's checkpoint on every slot below that
//! epoch's cut — the prefix checksum re-verified on restore
//! (`read_table_prefix`) is exactly the torn-page detector.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Magic number at the head of every page file (`"PAPG"`).
const PAGE_MAGIC: u32 = 0x4750_4150;
/// Page-file format version.
const PAGE_VERSION: u32 = 1;
/// Bytes of page-file framing around the slot words
/// (magic + version + page index + trailing checksum).
const PAGE_OVERHEAD: usize = 4 + 4 + 8 + 8;

/// Default page size in bytes (32 Ki slots per page).
pub const DEFAULT_PAGE_BYTES: usize = 256 * 1024;

/// First payload word of a paged-table checkpoint prefix. A resident
/// payload starts with the committed node count, which is at most `n`,
/// so `u64::MAX` can never be mistaken for one.
pub(crate) const PAGED_PAYLOAD_MARK: u64 = u64::MAX;

/// FNV-1a over a byte slice (same constants as the checkpoint store).
pub(crate) fn fnv1a_bytes(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// The FNV-1a offset basis.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Where a rank's node tables live: in RAM, or paged to disk under a
/// byte budget.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum StoreSpec {
    /// Everything resident (`Vec`-backed) — the default.
    #[default]
    Resident,
    /// Fixed-size pages spilled to files under `dir`, cached under
    /// `budget_bytes` of RAM per table.
    Paged(PagedSpec),
}

/// Parameters of a paged store (see [`StoreSpec::Paged`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PagedSpec {
    /// Directory holding this world's page files (shared by all ranks;
    /// file names carry the rank).
    pub dir: PathBuf,
    /// Page-cache budget in bytes **per table** (an engine splits its
    /// overall budget across its tables by slot-count weight).
    pub budget_bytes: u64,
    /// Page size in bytes (slot words per page × 8).
    pub page_bytes: usize,
    /// `true` when resuming from a checkpoint that references this
    /// directory's pages: existing page files are kept and re-verified.
    /// `false` starts fresh: stale pages under this table's prefix are
    /// deleted at open.
    pub resume: bool,
}

impl StoreSpec {
    /// A paged spec with the default page size, fresh-start semantics.
    pub fn paged(dir: impl Into<PathBuf>, budget_bytes: u64) -> Self {
        StoreSpec::Paged(PagedSpec {
            dir: dir.into(),
            budget_bytes,
            page_bytes: DEFAULT_PAGE_BYTES,
            resume: false,
        })
    }

    /// Is this a paged spec?
    pub fn is_paged(&self) -> bool {
        matches!(self, StoreSpec::Paged(_))
    }

    /// Replace the resume flag (no-op for [`StoreSpec::Resident`]).
    #[must_use]
    pub fn with_resume(self, resume: bool) -> Self {
        match self {
            StoreSpec::Resident => StoreSpec::Resident,
            StoreSpec::Paged(mut p) => {
                p.resume = resume;
                StoreSpec::Paged(p)
            }
        }
    }

    /// Replace the page size (no-op for [`StoreSpec::Resident`]).
    #[must_use]
    pub fn with_page_bytes(self, page_bytes: usize) -> Self {
        match self {
            StoreSpec::Resident => StoreSpec::Resident,
            StoreSpec::Paged(mut p) => {
                p.page_bytes = page_bytes;
                StoreSpec::Paged(p)
            }
        }
    }

    /// This spec with `num/den` of the byte budget — how an engine
    /// splits one `--memory-budget` across several tables. The result
    /// never drops below two pages (the cache minimum).
    #[must_use]
    pub fn scaled(&self, num: u64, den: u64) -> Self {
        match self {
            StoreSpec::Resident => StoreSpec::Resident,
            StoreSpec::Paged(p) => {
                let share = p.budget_bytes * num / den.max(1);
                StoreSpec::Paged(PagedSpec {
                    budget_bytes: share.max(2 * p.page_bytes as u64),
                    ..p.clone()
                })
            }
        }
    }

    /// This spec with fresh-start semantics regardless of the run's
    /// resume state — for *ephemeral* tables (attempt counters, node
    /// cursors) whose content is never part of a checkpoint.
    #[must_use]
    pub fn ephemeral(&self) -> Self {
        self.clone().with_resume(false)
    }

    /// Validate knob values.
    ///
    /// # Panics
    ///
    /// Panics on a zero budget or a page size that is not a positive
    /// multiple of 8 bytes (one slot word).
    pub fn validate(&self) {
        if let StoreSpec::Paged(p) = self {
            assert!(p.budget_bytes > 0, "paged store budget must be positive");
            assert!(
                p.page_bytes >= 8 && p.page_bytes.is_multiple_of(8),
                "page_bytes = {} must be a positive multiple of 8",
                p.page_bytes
            );
        }
    }
}

/// A flat array of `u64` slots that an engine reads and writes by index.
///
/// `get`/`set` take `&mut self` because a paged implementation mutates
/// its cache on every access. Out-of-range slots panic (like slice
/// indexing); I/O errors inside `get`/`set` panic too — the engines'
/// per-slot hot paths have no error channel, and a rank that cannot
/// reach its own spill files cannot make progress anyway. `flush` and
/// the open path surface errors normally.
pub trait NodeTable {
    /// Total slot count.
    fn len(&self) -> u64;

    /// Is the table empty?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read slot `slot`.
    fn get(&mut self, slot: u64) -> u64;

    /// Write slot `slot`.
    fn set(&mut self, slot: u64, v: u64);

    /// Does any of `slots[start .. start+len]` equal `v`? (The engines'
    /// duplicate-edge check over a node's row.)
    fn row_contains(&mut self, start: u64, len: u64, v: u64) -> bool {
        (start..start + len).any(|s| self.get(s) == v)
    }

    /// Write every dirty page back durably (no-op when resident).
    fn flush(&mut self) -> io::Result<()>;

    /// FNV-1a over the little-endian bytes of slots `0..len` — the
    /// torn-page detector for paged checkpoints.
    fn prefix_fnv(&mut self, len: u64) -> u64 {
        let mut h = FNV_OFFSET;
        for s in 0..len {
            h = fnv1a_bytes(h, &self.get(s).to_le_bytes());
        }
        h
    }

    /// Reset every slot at or above `slot` to the fill value. A paged
    /// table also *deletes* page files wholly above the boundary, so a
    /// restore cannot observe stale state from a later epoch.
    fn reset_from(&mut self, slot: u64);
}

/// The classic in-RAM table.
#[derive(Debug)]
pub struct ResidentTable {
    slots: Vec<u64>,
    fill: u64,
}

impl ResidentTable {
    /// A table of `len` slots, all holding `fill`.
    pub fn new(len: u64, fill: u64) -> Self {
        ResidentTable {
            slots: vec![fill; len as usize],
            fill,
        }
    }
}

impl NodeTable for ResidentTable {
    fn len(&self) -> u64 {
        self.slots.len() as u64
    }

    #[inline]
    fn get(&mut self, slot: u64) -> u64 {
        self.slots[slot as usize]
    }

    #[inline]
    fn set(&mut self, slot: u64, v: u64) {
        self.slots[slot as usize] = v;
    }

    #[inline]
    fn row_contains(&mut self, start: u64, len: u64, v: u64) -> bool {
        self.slots[start as usize..(start + len) as usize].contains(&v)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn prefix_fnv(&mut self, len: u64) -> u64 {
        let mut h = FNV_OFFSET;
        for &s in &self.slots[..len as usize] {
            h = fnv1a_bytes(h, &s.to_le_bytes());
        }
        h
    }

    fn reset_from(&mut self, slot: u64) {
        let fill = self.fill;
        self.slots[slot as usize..].fill(fill);
    }
}

/// One cached page.
struct PageFrame {
    page: u64,
    data: Vec<u64>,
    dirty: bool,
    referenced: bool,
}

/// A node table spilled to fixed-size page files under a byte-budgeted
/// clock cache (see the module docs for the layout and the durability
/// argument).
pub struct PagedTable {
    dir: PathBuf,
    prefix: String,
    len: u64,
    /// Slot words per page.
    spp: usize,
    fill: u64,
    /// Frame cap: `max(2, budget / page_bytes)`, clamped to the page
    /// count (no point caching more frames than pages exist).
    nframes: usize,
    frames: Vec<PageFrame>,
    /// `page index -> frame index` for resident pages.
    map: HashMap<u64, usize>,
    /// Clock hand for second-chance eviction.
    hand: usize,
    /// Pages written back without fsync since the last `flush` barrier.
    /// Eviction skips fsync — a torn eviction write fails its checksum
    /// and reads as absent, which only matters once a checkpoint
    /// references the page, so durability is settled wholesale at the
    /// `flush` barrier instead of once per eviction.
    unsynced: std::collections::HashSet<u64>,
}

impl std::fmt::Debug for PagedTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedTable")
            .field("dir", &self.dir)
            .field("prefix", &self.prefix)
            .field("len", &self.len)
            .field("slots_per_page", &self.spp)
            .field("nframes", &self.nframes)
            .field("resident", &self.frames.len())
            .finish()
    }
}

/// Path of page `page` of table `prefix` inside `dir`.
pub fn page_path(dir: &Path, prefix: &str, page: u64) -> PathBuf {
    dir.join(format!("{prefix}.p{page}.pg"))
}

/// Read and verify one page file: `None` on any defect — missing file,
/// short read, wrong magic/version, index mismatch with the file name's
/// `pN`, or checksum failure. The slot count is derived from the file
/// length, so foreign-geometry pages still parse (callers validate the
/// count).
pub fn read_page_file(path: &Path) -> Option<Vec<u64>> {
    let buf = fs::read(path).ok()?;
    if buf.len() < PAGE_OVERHEAD || !(buf.len() - PAGE_OVERHEAD).is_multiple_of(8) {
        return None;
    }
    let (body, sum_bytes) = buf.split_at(buf.len() - 8);
    let sum = u64::from_le_bytes(sum_bytes.try_into().ok()?);
    if fnv1a_bytes(FNV_OFFSET, body) != sum {
        return None;
    }
    if u32::from_le_bytes(body[0..4].try_into().ok()?) != PAGE_MAGIC
        || u32::from_le_bytes(body[4..8].try_into().ok()?) != PAGE_VERSION
    {
        return None;
    }
    let page = u64::from_le_bytes(body[8..16].try_into().ok()?);
    // The index in the header must agree with the one in the file name —
    // a page renamed (or copied) under the wrong name must not load.
    let from_name: Option<u64> = path
        .file_name()?
        .to_str()?
        .strip_suffix(".pg")
        .and_then(|s| s.rsplit(".p").next())
        .and_then(|s| s.parse().ok());
    if from_name != Some(page) {
        return None;
    }
    let words = &body[16..];
    Some(
        words
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect(),
    )
}

impl PagedTable {
    /// Open (or create) a paged table of `len` slots filled with `fill`.
    ///
    /// With `spec.resume == false`, any page files already under this
    /// table's prefix are deleted first — a fresh run must not read a
    /// previous run's spill. With `resume == true` they are kept and
    /// will be re-verified page by page as the cache faults them in.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created or stale pages cannot
    /// be removed.
    pub fn open(spec: &PagedSpec, prefix: &str, len: u64, fill: u64) -> io::Result<Self> {
        fs::create_dir_all(&spec.dir)?;
        let spp = (spec.page_bytes / 8).max(1);
        let npages = len.div_ceil(spp as u64);
        let nframes = ((spec.budget_bytes / spec.page_bytes.max(1) as u64).max(2))
            .min(npages.max(1)) as usize;
        let table = PagedTable {
            dir: spec.dir.clone(),
            prefix: prefix.to_string(),
            len,
            spp,
            fill,
            nframes,
            frames: Vec::new(),
            map: HashMap::new(),
            hand: 0,
            unsynced: std::collections::HashSet::new(),
        };
        if !spec.resume {
            table.remove_files()?;
        }
        Ok(table)
    }

    /// Number of pages this table spans.
    pub fn npages(&self) -> u64 {
        self.len.div_ceil(self.spp as u64)
    }

    /// Delete every file under this table's prefix (pages and temps).
    fn remove_files(&self) -> io::Result<()> {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return Ok(());
        };
        let head = format!("{}.p", self.prefix);
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.strip_prefix(&head).is_some_and(|rest| {
                rest.strip_suffix(".pg")
                    .or_else(|| rest.strip_suffix(".pg.tmp"))
                    .is_some_and(|num| num.parse::<u64>().is_ok())
            }) {
                fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }

    fn page_file(&self, page: u64) -> PathBuf {
        page_path(&self.dir, &self.prefix, page)
    }

    /// Write one page: serialize, write `.tmp`, rename. With `durable`
    /// the data is fsynced before the rename; without it the page is
    /// recorded in `unsynced` and settled wholesale at the next
    /// [`NodeTable::flush`] barrier — an eviction write that tears on
    /// crash fails its checksum and reads as absent, which only matters
    /// once a checkpoint references the page.
    fn write_page(&mut self, page: u64, data: &[u64], durable: bool) -> io::Result<()> {
        let mut buf = Vec::with_capacity(PAGE_OVERHEAD + data.len() * 8);
        buf.extend_from_slice(&PAGE_MAGIC.to_le_bytes());
        buf.extend_from_slice(&PAGE_VERSION.to_le_bytes());
        buf.extend_from_slice(&page.to_le_bytes());
        for &v in data {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        let sum = fnv1a_bytes(FNV_OFFSET, &buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        let tmp = self.dir.join(format!("{}.p{page}.pg.tmp", self.prefix));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&buf)?;
            if durable {
                f.sync_all()?;
            }
        }
        fs::rename(&tmp, self.page_file(page))?;
        if durable {
            self.unsynced.remove(&page);
        } else {
            self.unsynced.insert(page);
        }
        Ok(())
    }

    /// Load page `page` from disk, or a fill-value page when the file
    /// is absent, torn, or has foreign geometry.
    fn load_page(&self, page: u64) -> Vec<u64> {
        match read_page_file(&self.page_file(page)) {
            Some(data) if data.len() == self.spp => data,
            _ => vec![self.fill; self.spp],
        }
    }

    /// Frame index holding `page`, faulting it in (and evicting if the
    /// cache is full). Panics on write-back I/O failure — see the trait
    /// docs for why the per-slot path has no error channel.
    fn frame_of(&mut self, page: u64) -> usize {
        if let Some(&idx) = self.map.get(&page) {
            self.frames[idx].referenced = true;
            return idx;
        }
        let idx = if self.frames.len() < self.nframes {
            self.frames.push(PageFrame {
                page,
                data: Vec::new(),
                dirty: false,
                referenced: false,
            });
            self.frames.len() - 1
        } else {
            // Clock / second-chance: clear reference bits until an
            // unreferenced frame comes around (terminates within two
            // sweeps).
            loop {
                let i = self.hand;
                self.hand = (self.hand + 1) % self.frames.len();
                if self.frames[i].referenced {
                    self.frames[i].referenced = false;
                } else {
                    break i;
                }
            }
        };
        let old = &self.frames[idx];
        if old.dirty {
            let (old_page, data) = (old.page, std::mem::take(&mut self.frames[idx].data));
            self.write_page(old_page, &data, false).unwrap_or_else(|e| {
                panic!("paged table {}: writing page {old_page}: {e}", self.prefix)
            });
            self.frames[idx].data = data;
        }
        self.map.remove(&self.frames[idx].page);
        let data = self.load_page(page);
        let frame = &mut self.frames[idx];
        frame.page = page;
        frame.data = data;
        frame.dirty = false;
        frame.referenced = true;
        self.map.insert(page, idx);
        idx
    }
}

impl NodeTable for PagedTable {
    fn len(&self) -> u64 {
        self.len
    }

    #[inline]
    fn get(&mut self, slot: u64) -> u64 {
        assert!(slot < self.len, "slot {slot} out of range {}", self.len);
        let (page, off) = (slot / self.spp as u64, (slot % self.spp as u64) as usize);
        let idx = self.frame_of(page);
        self.frames[idx].data[off]
    }

    #[inline]
    fn set(&mut self, slot: u64, v: u64) {
        assert!(slot < self.len, "slot {slot} out of range {}", self.len);
        let (page, off) = (slot / self.spp as u64, (slot % self.spp as u64) as usize);
        let idx = self.frame_of(page);
        let frame = &mut self.frames[idx];
        frame.data[off] = v;
        frame.dirty = true;
    }

    fn flush(&mut self) -> io::Result<()> {
        for i in 0..self.frames.len() {
            if self.frames[i].dirty {
                let (page, data) = (
                    self.frames[i].page,
                    std::mem::take(&mut self.frames[i].data),
                );
                let res = self.write_page(page, &data, true);
                self.frames[i].data = data;
                res?;
                self.frames[i].dirty = false;
            }
        }
        // Settle every page evicted without fsync since the last
        // barrier, so a checkpoint taken after this flush references
        // only durable pages.
        for page in std::mem::take(&mut self.unsynced) {
            match fs::File::open(self.page_file(page)) {
                Ok(f) => f.sync_all()?,
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    fn reset_from(&mut self, slot: u64) {
        // Fill the boundary page's tail in place ...
        let spp = self.spp as u64;
        let boundary = slot / spp;
        if !slot.is_multiple_of(spp) && boundary < self.npages() {
            let idx = self.frame_of(boundary);
            let fill = self.fill;
            let frame = &mut self.frames[idx];
            frame.data[(slot % spp) as usize..].fill(fill);
            frame.dirty = true;
        }
        // ... and delete every page wholly at or above the cut, both
        // the cached frames and the files.
        let first_dead = slot.div_ceil(spp);
        for page in first_dead..self.npages() {
            if let Some(idx) = self.map.remove(&page) {
                // Mark the frame reusable without write-back.
                self.frames[idx].dirty = false;
                self.frames[idx].referenced = false;
                // Point it at an impossible page so frame_of never
                // aliases it with a real one.
                self.frames[idx].page = u64::MAX;
                self.frames[idx].data.clear();
                self.frames[idx].data.resize(self.spp, self.fill);
            }
            let _ = fs::remove_file(self.page_file(page));
            self.unsynced.remove(&page);
        }
    }
}

/// Enum dispatch over the two table kinds — engines hold this directly
/// so the per-slot hot path is a branch, not a virtual call.
#[derive(Debug)]
pub enum AnyTable {
    /// RAM-resident.
    Resident(ResidentTable),
    /// Disk-paged.
    Paged(PagedTable),
}

impl AnyTable {
    /// Build a table of `len` slots filled with `fill` per `spec`.
    /// Paged tables get the file prefix `rank{rank}.{name}`.
    ///
    /// # Errors
    ///
    /// Surfaces [`PagedTable::open`] failures.
    pub fn build(
        spec: &StoreSpec,
        rank: usize,
        name: &str,
        len: u64,
        fill: u64,
    ) -> io::Result<AnyTable> {
        Ok(match spec {
            StoreSpec::Resident => AnyTable::Resident(ResidentTable::new(len, fill)),
            StoreSpec::Paged(p) => AnyTable::Paged(PagedTable::open(
                p,
                &format!("rank{rank}.{name}"),
                len,
                fill,
            )?),
        })
    }

    /// Is this table disk-paged?
    pub fn is_paged(&self) -> bool {
        matches!(self, AnyTable::Paged(_))
    }
}

impl NodeTable for AnyTable {
    #[inline]
    fn len(&self) -> u64 {
        match self {
            AnyTable::Resident(t) => t.len(),
            AnyTable::Paged(t) => t.len(),
        }
    }

    #[inline]
    fn get(&mut self, slot: u64) -> u64 {
        match self {
            AnyTable::Resident(t) => t.get(slot),
            AnyTable::Paged(t) => t.get(slot),
        }
    }

    #[inline]
    fn set(&mut self, slot: u64, v: u64) {
        match self {
            AnyTable::Resident(t) => t.set(slot, v),
            AnyTable::Paged(t) => t.set(slot, v),
        }
    }

    #[inline]
    fn row_contains(&mut self, start: u64, len: u64, v: u64) -> bool {
        match self {
            AnyTable::Resident(t) => t.row_contains(start, len, v),
            AnyTable::Paged(t) => t.row_contains(start, len, v),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            AnyTable::Resident(t) => t.flush(),
            AnyTable::Paged(t) => t.flush(),
        }
    }

    fn prefix_fnv(&mut self, len: u64) -> u64 {
        match self {
            AnyTable::Resident(t) => t.prefix_fnv(len),
            AnyTable::Paged(t) => t.prefix_fnv(len),
        }
    }

    fn reset_from(&mut self, slot: u64) {
        match self {
            AnyTable::Resident(t) => t.reset_from(slot),
            AnyTable::Paged(t) => t.reset_from(slot),
        }
    }
}

/// Serialize a table's committed prefix (`cnt` nodes × `spn` slots per
/// node) into a checkpoint payload.
///
/// Resident: `[cnt, slot values...]` — the historical format, unchanged.
/// Paged: `[PAGED_PAYLOAD_MARK, cnt, prefix FNV]` — the slots stay in
/// the page files; the table is flushed durably first so the checkpoint
/// never references pages newer than disk.
pub(crate) fn write_table_prefix(t: &mut AnyTable, cnt: u64, spn: u64, out: &mut Vec<u8>) {
    let prefix = cnt * spn;
    match t {
        AnyTable::Resident(_) => {
            out.extend_from_slice(&cnt.to_le_bytes());
            for s in 0..prefix {
                out.extend_from_slice(&t.get(s).to_le_bytes());
            }
        }
        AnyTable::Paged(_) => {
            t.flush()
                .unwrap_or_else(|e| panic!("paged table flush failed while checkpointing: {e}"));
            out.extend_from_slice(&PAGED_PAYLOAD_MARK.to_le_bytes());
            out.extend_from_slice(&cnt.to_le_bytes());
            out.extend_from_slice(&t.prefix_fnv(prefix).to_le_bytes());
        }
    }
}

/// Restore a table's committed prefix from a checkpoint payload written
/// by [`write_table_prefix`], advancing `r` past the consumed bytes and
/// clearing every slot above the prefix.
///
/// A resident-format payload loads into **either** table kind (that is
/// how elastic restart feeds re-partitioned state into a paged run). A
/// paged-format payload requires a paged table over the same directory:
/// the prefix is re-read through the cache and its FNV must match —
/// a torn, lost, or foreign page surfaces here as a checksum mismatch.
pub(crate) fn read_table_prefix(
    t: &mut AnyTable,
    expect_cnt: u64,
    spn: u64,
    r: &mut &[u8],
) -> Result<(), String> {
    use pa_mpsim::wire::get_u64;
    let first = get_u64(r).ok_or("truncated checkpoint payload")?;
    if first == PAGED_PAYLOAD_MARK {
        let cnt = get_u64(r).ok_or("truncated paged checkpoint payload")?;
        let fnv = get_u64(r).ok_or("truncated paged checkpoint checksum")?;
        if cnt != expect_cnt {
            return Err(format!(
                "committed prefix holds {cnt} nodes but the partition expects {expect_cnt}"
            ));
        }
        let AnyTable::Paged(_) = t else {
            return Err(
                "checkpoint was taken with --memory-budget (it references page files); \
                 resume with the same --memory-budget/--store-dir"
                    .to_string(),
            );
        };
        let prefix = cnt * spn;
        if t.prefix_fnv(prefix) != fnv {
            return Err(
                "page files do not match the checkpoint's committed-prefix checksum \
                 (torn, missing, or foreign pages)"
                    .to_string(),
            );
        }
        t.reset_from(prefix);
        Ok(())
    } else {
        let cnt = first;
        if cnt != expect_cnt {
            return Err(format!(
                "committed prefix holds {cnt} nodes but the partition expects {expect_cnt}"
            ));
        }
        let prefix = cnt * spn;
        for s in 0..prefix {
            let v = get_u64(r).ok_or("truncated F table")?;
            t.set(s, v);
        }
        t.reset_from(prefix);
        Ok(())
    }
}

/// Delete every page file (and temp) belonging to `rank` inside `dir` —
/// the page-file analogue of [`crate::par::CheckpointStore::clear`].
pub fn clean_rank_pages(dir: &Path, rank: usize) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let head = format!("rank{rank}.");
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with(&head) && (name.ends_with(".pg") || name.ends_with(".pg.tmp")) {
            let _ = fs::remove_file(entry.path());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FILL: u64 = u64::MAX;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pa_store_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_spec(dir: &Path, budget: u64) -> PagedSpec {
        PagedSpec {
            dir: dir.to_path_buf(),
            budget_bytes: budget,
            page_bytes: 32, // 4 slots per page
            resume: false,
        }
    }

    /// Deterministic LCG, good enough to drive access patterns.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 16
        }
    }

    #[test]
    fn paged_matches_resident_under_eviction_thrash() {
        let dir = scratch("thrash");
        let len = 101;
        let mut paged = PagedTable::open(&tiny_spec(&dir, 64), "rank0.f", len, FILL).unwrap();
        let mut resident = ResidentTable::new(len, FILL);
        let mut rng = Lcg(7);
        for _ in 0..5_000 {
            let slot = rng.next() % len;
            if rng.next().is_multiple_of(2) {
                let v = rng.next();
                paged.set(slot, v);
                resident.set(slot, v);
            } else {
                assert_eq!(paged.get(slot), resident.get(slot), "slot {slot}");
            }
        }
        for s in 0..len {
            assert_eq!(paged.get(s), resident.get(s), "final scan, slot {s}");
        }
        assert_eq!(paged.prefix_fnv(len), resident.prefix_fnv(len));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_then_reopen_resumes_content() {
        let dir = scratch("reopen");
        let len = 40;
        let mut t = PagedTable::open(&tiny_spec(&dir, 64), "rank1.f", len, FILL).unwrap();
        for s in 0..len {
            t.set(s, s * 3 + 1);
        }
        t.flush().unwrap();
        drop(t);
        let spec = PagedSpec {
            resume: true,
            ..tiny_spec(&dir, 64)
        };
        let mut t = PagedTable::open(&spec, "rank1.f", len, FILL).unwrap();
        for s in 0..len {
            assert_eq!(t.get(s), s * 3 + 1);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_open_discards_stale_pages() {
        let dir = scratch("fresh");
        let len = 16;
        let mut t = PagedTable::open(&tiny_spec(&dir, 64), "rank0.f", len, FILL).unwrap();
        t.set(3, 99);
        t.flush().unwrap();
        drop(t);
        // resume: false wipes the prefix's files.
        let mut t = PagedTable::open(&tiny_spec(&dir, 64), "rank0.f", len, FILL).unwrap();
        assert_eq!(t.get(3), FILL, "stale page must not survive a fresh open");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_page_reads_as_absent() {
        let dir = scratch("torn");
        let len = 12;
        let mut t = PagedTable::open(&tiny_spec(&dir, 64), "rank0.f", len, FILL).unwrap();
        for s in 0..len {
            t.set(s, 1000 + s);
        }
        t.flush().unwrap();
        drop(t);
        // Corrupt page 1 (slots 4..8): flip one byte mid-file.
        let p1 = page_path(&dir, "rank0.f", 1);
        let mut bytes = fs::read(&p1).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&p1, &bytes).unwrap();
        let spec = PagedSpec {
            resume: true,
            ..tiny_spec(&dir, 64)
        };
        let mut t = PagedTable::open(&spec, "rank0.f", len, FILL).unwrap();
        for s in 0..4 {
            assert_eq!(t.get(s), 1000 + s, "page 0 intact");
        }
        for s in 4..8 {
            assert_eq!(t.get(s), FILL, "torn page reads as absent (fill)");
        }
        for s in 8..12 {
            assert_eq!(t.get(s), 1000 + s, "page 2 intact");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reset_from_clears_tail_and_deletes_files() {
        let dir = scratch("reset");
        let len = 20;
        let mut t = PagedTable::open(&tiny_spec(&dir, 64), "rank0.f", len, FILL).unwrap();
        for s in 0..len {
            t.set(s, s + 7);
        }
        t.flush().unwrap();
        // Cut mid-page: slot 6 is inside page 1 (slots 4..8).
        t.reset_from(6);
        for s in 0..6 {
            assert_eq!(t.get(s), s + 7, "prefix survives");
        }
        for s in 6..len {
            assert_eq!(t.get(s), FILL, "tail cleared, slot {s}");
        }
        assert!(
            !page_path(&dir, "rank0.f", 2).exists(),
            "pages wholly above the cut are deleted"
        );
        assert!(
            !page_path(&dir, "rank0.f", 4).exists(),
            "last page deleted too"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn table_prefix_round_trips_resident_and_paged() {
        let dir = scratch("prefix");
        let (cnt, spn) = (5u64, 3u64);
        let len = 8 * spn;
        for paged in [false, true] {
            let spec = if paged {
                StoreSpec::Paged(tiny_spec(&dir, 64))
            } else {
                StoreSpec::Resident
            };
            let mut t = AnyTable::build(&spec, 0, "f", len, FILL).unwrap();
            for s in 0..len {
                t.set(s, 100 + s);
            }
            let mut payload = Vec::new();
            write_table_prefix(&mut t, cnt, spn, &mut payload);
            // Restore into a fresh table of the same kind (resume
            // semantics for the paged one: its pages are on disk).
            let mut back =
                AnyTable::build(&spec.clone().with_resume(true), 0, "f", len, FILL).unwrap();
            let mut r: &[u8] = &payload;
            read_table_prefix(&mut back, cnt, spn, &mut r).unwrap();
            assert!(r.is_empty());
            for s in 0..cnt * spn {
                assert_eq!(back.get(s), 100 + s, "paged={paged} slot {s}");
            }
            for s in cnt * spn..len {
                assert_eq!(back.get(s), FILL, "paged={paged} tail slot {s}");
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resident_payload_loads_into_paged_table() {
        // The elastic-restart path: re-partitioned state arrives in the
        // resident format and lands in whatever table the new run uses.
        let dir = scratch("cross");
        let (cnt, spn) = (4u64, 2u64);
        let len = 6 * spn;
        let mut src = AnyTable::build(&StoreSpec::Resident, 0, "f", len, FILL).unwrap();
        for s in 0..cnt * spn {
            src.set(s, 50 + s);
        }
        let mut payload = Vec::new();
        write_table_prefix(&mut src, cnt, spn, &mut payload);
        let spec = StoreSpec::Paged(tiny_spec(&dir, 64));
        let mut dst = AnyTable::build(&spec, 0, "f", len, FILL).unwrap();
        let mut r: &[u8] = &payload;
        read_table_prefix(&mut dst, cnt, spn, &mut r).unwrap();
        for s in 0..cnt * spn {
            assert_eq!(dst.get(s), 50 + s);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn paged_payload_into_resident_table_is_an_error() {
        let dir = scratch("wrongkind");
        let spec = StoreSpec::Paged(tiny_spec(&dir, 64));
        let mut t = AnyTable::build(&spec, 0, "f", 8, FILL).unwrap();
        t.set(0, 1);
        let mut payload = Vec::new();
        write_table_prefix(&mut t, 1, 1, &mut payload);
        let mut resident = AnyTable::build(&StoreSpec::Resident, 0, "f", 8, FILL).unwrap();
        let mut r: &[u8] = &payload;
        let err = read_table_prefix(&mut resident, 1, 1, &mut r).unwrap_err();
        assert!(err.contains("--memory-budget"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn paged_restore_detects_torn_pages_via_fnv() {
        let dir = scratch("fnv");
        let spec_p = tiny_spec(&dir, 64);
        let (cnt, spn) = (6u64, 2u64);
        let len = cnt * spn;
        let mut t = PagedTable::open(&spec_p, "rank0.f", len, FILL).unwrap();
        for s in 0..len {
            t.set(s, s);
        }
        let mut any = AnyTable::Paged(t);
        let mut payload = Vec::new();
        write_table_prefix(&mut any, cnt, spn, &mut payload);
        drop(any);
        // Corrupt a page below the committed prefix, then restore.
        let p0 = page_path(&dir, "rank0.f", 0);
        let mut bytes = fs::read(&p0).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&p0, &bytes).unwrap();
        let spec_r = PagedSpec {
            resume: true,
            ..spec_p
        };
        let mut back = AnyTable::Paged(PagedTable::open(&spec_r, "rank0.f", len, FILL).unwrap());
        let mut r: &[u8] = &payload;
        let err = read_table_prefix(&mut back, cnt, spn, &mut r).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn spec_scaling_and_validation() {
        let dir = scratch("spec");
        let spec = StoreSpec::paged(&dir, 1_000).with_page_bytes(64);
        spec.validate();
        let half = spec.scaled(1, 2);
        match &half {
            StoreSpec::Paged(p) => assert_eq!(p.budget_bytes, 500),
            StoreSpec::Resident => panic!("scaled must stay paged"),
        }
        // Floor: never below two pages.
        let tiny = spec.scaled(1, 1_000_000);
        match &tiny {
            StoreSpec::Paged(p) => assert_eq!(p.budget_bytes, 128),
            StoreSpec::Resident => panic!(),
        }
        assert_eq!(StoreSpec::Resident.scaled(1, 2), StoreSpec::Resident);
        assert!(!StoreSpec::Resident.is_paged());
        assert!(spec.is_paged());
        // Ephemeral forces fresh-start.
        let eph = spec.clone().with_resume(true).ephemeral();
        match eph {
            StoreSpec::Paged(p) => assert!(!p.resume),
            StoreSpec::Resident => panic!(),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "page_bytes")]
    fn unaligned_page_bytes_rejected() {
        StoreSpec::paged("/tmp/x", 100)
            .with_page_bytes(12)
            .validate();
    }

    #[test]
    fn clean_rank_pages_removes_only_that_rank() {
        let dir = scratch("clean");
        let mut a = PagedTable::open(&tiny_spec(&dir, 64), "rank0.f", 8, FILL).unwrap();
        let mut b = PagedTable::open(&tiny_spec(&dir, 64), "rank1.f", 8, FILL).unwrap();
        a.set(0, 1);
        b.set(0, 2);
        a.flush().unwrap();
        b.flush().unwrap();
        clean_rank_pages(&dir, 0);
        assert!(!page_path(&dir, "rank0.f", 0).exists());
        assert!(page_path(&dir, "rank1.f", 0).exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
