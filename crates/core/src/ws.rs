//! Extension: Watts–Strogatz small-world networks (paper §1's second
//! reference model).
//!
//! A ring lattice where each node connects to its `k` nearest neighbors,
//! with every edge rewired to a uniformly random endpoint with
//! probability `beta`. Included (sequentially) to round out the family
//! of generators the paper situates itself against.

use crate::Node;
use pa_graph::EdgeList;
use pa_rng::Rng64;
use std::collections::HashSet;

/// Configuration of a Watts–Strogatz network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WsConfig {
    /// Number of nodes.
    pub n: u64,
    /// Even number of lattice neighbors per node (`k/2` on each side).
    pub k: u64,
    /// Rewiring probability.
    pub beta: f64,
    /// RNG seed (consumed through the caller-provided stream generator).
    pub seed: u64,
}

impl WsConfig {
    /// Create a configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `k` is even, `0 < k < n`, and `0 <= beta <= 1`.
    pub fn new(n: u64, k: u64, beta: f64) -> Self {
        assert!(k.is_multiple_of(2), "k must be even");
        assert!(k > 0 && k < n, "need 0 < k < n");
        assert!((0.0..=1.0).contains(&beta), "beta must lie in [0, 1]");
        Self {
            n,
            k,
            beta,
            seed: 0,
        }
    }

    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The lattice edge count `n·k/2` (rewiring preserves it).
    pub fn num_edges(&self) -> u64 {
        self.n * self.k / 2
    }
}

/// Generate a Watts–Strogatz network.
pub fn generate(cfg: &WsConfig, rng: &mut impl Rng64) -> EdgeList {
    let (n, half) = (cfg.n, cfg.k / 2);
    let mut edges = EdgeList::with_capacity(cfg.num_edges() as usize);
    // Track adjacency for duplicate avoidance during rewiring.
    let mut adj: HashSet<(Node, Node)> = HashSet::with_capacity(2 * cfg.num_edges() as usize);
    let key = |a: Node, b: Node| if a < b { (a, b) } else { (b, a) };
    // Ring lattice.
    for u in 0..n {
        for j in 1..=half {
            let v = (u + j) % n;
            adj.insert(key(u, v));
        }
    }
    // Rewire each lattice edge (u, u+j) with probability beta.
    for u in 0..n {
        for j in 1..=half {
            let v = (u + j) % n;
            if !rng.gen_bool(cfg.beta) {
                continue;
            }
            // A node adjacent to everyone cannot be rewired.
            let mut tries = 0;
            loop {
                let w = rng.gen_below(n);
                if w != u && !adj.contains(&key(u, w)) {
                    adj.remove(&key(u, v));
                    adj.insert(key(u, w));
                    break;
                }
                tries += 1;
                if tries > 4 * n {
                    break; // saturated node; keep the lattice edge
                }
            }
        }
    }
    for &(a, b) in adj.iter() {
        edges.push(a, b);
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_rng::Xoshiro256pp;

    #[test]
    fn beta_zero_is_the_ring_lattice() {
        let cfg = WsConfig::new(20, 4, 0.0);
        let edges = generate(&cfg, &mut Xoshiro256pp::new(1));
        assert_eq!(edges.len() as u64, cfg.num_edges());
        let csr = pa_graph::Csr::from_edges(20, &edges);
        for v in 0..20 {
            assert_eq!(csr.degree(v), 4, "lattice degree");
        }
        // Lattices are highly clustered.
        assert!(csr.clustering_coefficient(0) > 0.4);
    }

    #[test]
    fn rewiring_preserves_edge_count_and_simplicity() {
        for beta in [0.1, 0.5, 1.0] {
            let cfg = WsConfig::new(200, 6, beta);
            let edges = generate(&cfg, &mut Xoshiro256pp::new(7));
            assert_eq!(edges.len() as u64, cfg.num_edges(), "beta = {beta}");
            assert!(pa_graph::validate::check_simple(200, &edges).is_empty());
        }
    }

    #[test]
    fn small_world_effect_shortens_paths() {
        // Even light rewiring collapses the ring's O(n/k) diameter.
        let n = 500u64;
        let lattice = generate(&WsConfig::new(n, 4, 0.0), &mut Xoshiro256pp::new(3));
        let small = generate(
            &WsConfig::new(n, 4, 0.2).with_seed(3),
            &mut Xoshiro256pp::new(3),
        );
        let far = |el: &EdgeList| {
            let csr = pa_graph::Csr::from_edges(n as usize, el);
            let d = csr.bfs_distances(0);
            d.iter().copied().filter(|&x| x != u64::MAX).max().unwrap()
        };
        let d_lattice = far(&lattice);
        let d_small = far(&small);
        assert!(
            d_small * 3 < d_lattice,
            "rewired eccentricity {d_small} should be far below lattice {d_lattice}"
        );
    }

    #[test]
    #[should_panic(expected = "k must be even")]
    fn odd_k_panics() {
        let _ = WsConfig::new(10, 3, 0.1);
    }
}
