//! Property-based tests for pa-core: partitioning contracts, model
//! invariants, and cross-engine agreement on randomized configurations.

use pa_core::partition::{build, check_contract, Partition, Scheme};
use pa_core::{chains, par, seq, FaultPlan, GenOptions, PaConfig};
use proptest::prelude::*;

fn any_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![Just(Scheme::Ucp), Just(Scheme::Lcp), Just(Scheme::Rrp),]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every scheme satisfies the full partition contract for arbitrary
    /// (n, P) combinations, including P > n.
    #[test]
    fn partition_contract_holds(
        n in 1u64..3_000,
        p in 1usize..64,
        scheme in any_scheme(),
    ) {
        let part = build(scheme, n, p);
        check_contract(&part);
    }

    /// rank_of is total and consistent with node_at for large n (spot
    /// checks where the exhaustive contract is too slow).
    #[test]
    fn rank_of_roundtrips_at_scale(
        scheme in any_scheme(),
        p in 1usize..512,
        probe in 0u64..10_000_000,
    ) {
        let n = 10_000_000u64;
        let part = build(scheme, n, p);
        let r = part.rank_of(probe);
        prop_assert!(r < p);
        let idx = part.local_index(probe);
        prop_assert_eq!(part.node_at(r, idx), probe);
    }

    /// The sequential copy model always produces a valid PA network.
    #[test]
    fn copy_model_always_valid(
        n in 10u64..400,
        x in 1u64..6,
        seed in any::<u64>(),
        p in 0.0f64..=1.0,
    ) {
        prop_assume!(n > x);
        let cfg = PaConfig { n, x, p, seed };
        let edges = seq::copy_model(&cfg);
        let defects = pa_graph::validate::check_pa_network(n, x, &edges);
        prop_assert!(defects.is_empty(), "{defects:?}");
    }

    /// Parallel == sequential for x = 1 on arbitrary small worlds.
    #[test]
    fn parallel_x1_matches_sequential(
        n in 10u64..300,
        nranks in 1usize..9,
        seed in any::<u64>(),
        scheme in any_scheme(),
    ) {
        let cfg = PaConfig::new(n, 1).with_seed(seed);
        let reference = seq::copy_model(&cfg).canonicalized();
        let opts = GenOptions { buffer_capacity: 8, service_interval: 4, ..GenOptions::default() };
        let out = par::generate_x1(&cfg, scheme, nranks, &opts);
        prop_assert_eq!(out.edge_list().canonicalized(), reference);
    }

    /// The general engine produces valid networks on arbitrary small
    /// worlds and exact edge counts.
    #[test]
    fn parallel_general_always_valid(
        n in 10u64..300,
        x in 1u64..5,
        nranks in 1usize..7,
        seed in any::<u64>(),
        scheme in any_scheme(),
    ) {
        prop_assume!(n > x);
        let cfg = PaConfig::new(n, x).with_seed(seed);
        let opts = GenOptions { buffer_capacity: 8, service_interval: 4, ..GenOptions::default() };
        let out = par::generate(&cfg, scheme, nranks, &opts);
        let edges = out.edge_list();
        prop_assert_eq!(edges.len() as u64, cfg.expected_edges());
        let defects = pa_graph::validate::check_pa_network(n, x, &edges);
        prop_assert!(defects.is_empty(), "{defects:?}");
    }

    /// Dependency chains never exceed selection chains and respect the
    /// strict-decrease property of the copy walk.
    #[test]
    fn chain_lengths_are_consistent(
        n in 2u64..2_000,
        seed in any::<u64>(),
        p in 0.05f64..=1.0,
    ) {
        let dep = chains::dependency_lengths(seed, p, n);
        let sel = chains::selection_lengths(seed, p, n);
        for t in 1..n as usize {
            prop_assert!(dep[t] >= 1);
            prop_assert!(dep[t] <= sel[t]);
            // A chain can never be longer than the node label path 1..t.
            prop_assert!(sel[t] as u64 <= t as u64);
        }
    }

    /// Streaming degree folds are exact: merging per-rank
    /// [`par::DegreeCountSink`]s equals the degree sequence computed from
    /// the materialized edge list, for arbitrary (n, x, P, scheme).
    #[test]
    fn degree_sink_merge_matches_materialized_degrees(
        n in 10u64..300,
        x in 1u64..5,
        nranks in 1usize..7,
        seed in any::<u64>(),
        scheme in any_scheme(),
    ) {
        prop_assume!(n > x);
        let cfg = PaConfig::new(n, x).with_seed(seed);
        let opts = GenOptions { buffer_capacity: 8, service_interval: 4, ..GenOptions::default() };
        let outs = par::generate_streaming(&cfg, scheme, nranks, &opts,
            |_rank| par::DegreeCountSink::new(cfg.n));
        let streamed = par::DegreeCountSink::merge(outs.into_iter().map(|o| o.sink));
        let edges = par::generate(&cfg, scheme, nranks, &opts).edge_list();
        let reference = pa_graph::degrees::degree_sequence(n as usize, &edges);
        prop_assert_eq!(streamed, reference);
    }

    /// Arbitrary *recovering* fault schedules never change what the model
    /// produces: the run terminates (the 30 s stall watchdog is a safety
    /// net, not an expectation) and the streamed degree totals account
    /// for exactly the expected number of edges.
    #[test]
    fn chaos_runs_terminate_with_exact_edge_counts(
        n in 10u64..200,
        x in 1u64..4,
        nranks in 2usize..7,
        seed in any::<u64>(),
        scheme in any_scheme(),
        fault_seed in any::<u64>(),
        p_delay in 0.0f64..0.15,
        p_reorder in 0.0f64..0.10,
        p_dup in 0.0f64..0.08,
        p_drop in 0.0f64..0.10,
        p_ack_loss in 0.0f64..0.05,
    ) {
        prop_assume!(n > x);
        let cfg = PaConfig::new(n, x).with_seed(seed);
        let plan = FaultPlan {
            p_delay,
            delay_polls: 3,
            p_reorder,
            p_dup,
            dup_polls: 2,
            p_drop,
            p_ack_loss,
            retransmit_polls: 4,
            ..FaultPlan::none(fault_seed)
        };
        let opts = GenOptions { buffer_capacity: 8, service_interval: 4, ..GenOptions::default() }
            .with_fault_plan(plan)
            .with_stall_timeout(std::time::Duration::from_secs(30));
        let outs = par::generate_streaming(&cfg, scheme, nranks, &opts,
            |_rank| par::DegreeCountSink::new(cfg.n));
        let streamed = par::DegreeCountSink::merge(outs.into_iter().map(|o| o.sink));
        prop_assert_eq!(streamed.iter().sum::<u64>(), 2 * cfg.expected_edges());
    }

    /// Degree sums always satisfy the handshake lemma after generation.
    #[test]
    fn handshake_lemma(
        n in 10u64..300,
        x in 1u64..5,
        seed in any::<u64>(),
    ) {
        prop_assume!(n > x);
        let cfg = PaConfig::new(n, x).with_seed(seed);
        let edges = seq::copy_model(&cfg);
        let deg = pa_graph::degrees::degree_sequence(n as usize, &edges);
        prop_assert_eq!(deg.iter().sum::<u64>(), 2 * edges.len() as u64);
        // Non-seed nodes have degree >= x (they created x edges).
        for (t, &d) in deg.iter().enumerate().skip(x as usize) {
            prop_assert!(d >= x, "node {t} degree {d} < x");
        }
    }
}

/// A fresh scratch directory for one store property case. The global
/// counter keeps concurrent proptest cases (and shrink replays) from
/// sharing page files.
fn store_scratch() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pa_store_prop_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A paged table under an adversarially small cache budget (down to
    /// the 2-page minimum, with pages as small as one slot) is
    /// observation-equivalent to a resident table over an arbitrary
    /// read/write sequence: every read agrees, the final contents agree,
    /// the committed-prefix checksum agrees — and after a flush the same
    /// bytes come back from a resume-mode reopen.
    #[test]
    fn paged_table_equals_resident_under_tiny_budget(
        len in 1u64..300,
        page_slots in 1usize..9,
        budget_pages in 0u64..5,
        ops in prop_vec((any::<u64>(), any::<u64>(), any::<bool>()), 1..250),
    ) {
        use pa_core::store::{NodeTable, PagedSpec, PagedTable, ResidentTable};
        const FILL: u64 = u64::MAX;
        let dir = store_scratch();
        let page_bytes = page_slots * 8;
        let spec = PagedSpec {
            dir: dir.clone(),
            budget_bytes: budget_pages * page_bytes as u64,
            page_bytes,
            resume: false,
        };
        let mut paged = PagedTable::open(&spec, "rank0.t", len, FILL).unwrap();
        let mut resident = ResidentTable::new(len, FILL);
        for &(slot, val, is_write) in &ops {
            let s = slot % len;
            if is_write {
                paged.set(s, val);
                resident.set(s, val);
            } else {
                prop_assert_eq!(paged.get(s), resident.get(s), "slot {}", s);
            }
        }
        for s in 0..len {
            prop_assert_eq!(paged.get(s), resident.get(s), "final slot {}", s);
        }
        let cut = len / 2;
        prop_assert_eq!(paged.prefix_fnv(cut), resident.prefix_fnv(cut));
        paged.flush().unwrap();
        drop(paged);
        let spec = PagedSpec { resume: true, ..spec };
        let mut reopened = PagedTable::open(&spec, "rank0.t", len, FILL).unwrap();
        for s in 0..len {
            prop_assert_eq!(reopened.get(s), resident.get(s), "reopened slot {}", s);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Tearing any single byte of any flushed page file never produces
    /// wrong data: the checksum rejects the page and every slot on it
    /// reads as the fill value, exactly as if the page was never written.
    #[test]
    fn torn_page_reads_as_absent(
        len in 8u64..200,
        page_slots in 1usize..9,
        torn_byte in any::<u64>(),
        flip in 1u8..=255,
    ) {
        use pa_core::store::{NodeTable, PagedSpec, PagedTable};
        const FILL: u64 = u64::MAX;
        let dir = store_scratch();
        let page_bytes = page_slots * 8;
        let spec = PagedSpec {
            dir: dir.clone(),
            budget_bytes: 0, // 2-page minimum: maximal eviction traffic
            page_bytes,
            resume: false,
        };
        let mut paged = PagedTable::open(&spec, "rank0.t", len, FILL).unwrap();
        for s in 0..len {
            paged.set(s, s * 3 + 1);
        }
        paged.flush().unwrap();
        drop(paged);
        // Corrupt one byte of one page file.
        let pages: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".pg"))
            .collect();
        prop_assert!(!pages.is_empty());
        let victim = pages[(torn_byte % pages.len() as u64) as usize].path();
        let mut bytes = std::fs::read(&victim).unwrap();
        let pos = (torn_byte % bytes.len() as u64) as usize;
        bytes[pos] ^= flip;
        std::fs::write(&victim, &bytes).unwrap();
        // Which slots live on the torn page? Its index is in the name.
        let name = victim.file_name().unwrap().to_string_lossy().into_owned();
        let page: u64 = name
            .trim_end_matches(".pg")
            .rsplit(".p")
            .next()
            .unwrap()
            .parse()
            .unwrap();
        let spec = PagedSpec { resume: true, ..spec };
        let mut reopened = PagedTable::open(&spec, "rank0.t", len, FILL).unwrap();
        let spp = page_slots as u64;
        for s in 0..len {
            let expect = if s / spp == page { FILL } else { s * 3 + 1 };
            prop_assert_eq!(reopened.get(s), expect, "slot {}", s);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
