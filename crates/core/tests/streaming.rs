//! The streaming contract: a `generate_streaming` run must never
//! materialize a rank's edge list. The engines' only edge exit is the
//! [`pa_core::par::EdgeSink`], and [`pa_core::par::StreamingWriterSink`]
//! forwards in bounded chunks — so the resident-edge high-water mark of a
//! streaming run is one chunk per rank, independent of the edge count.

use pa_core::par::{self, StreamingWriterSink};
use pa_core::partition::Scheme;
use pa_core::{GenOptions, PaConfig};
use pa_graph::io::{EdgeFormat, EDGE_WRITER_CHUNK};
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A write target that keeps no data — it only records the total byte
/// count and the largest single `write_all` it ever saw. The latter is
/// exactly the sink's resident-edge high-water mark: the chunked writer
/// hands over everything it buffered in one call.
struct ChunkProbe {
    total_bytes: Arc<AtomicU64>,
    max_write: Arc<AtomicUsize>,
}

impl Write for ChunkProbe {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.total_bytes
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        self.max_write.fetch_max(buf.len(), Ordering::Relaxed);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn streaming_run_never_materializes_a_rank_edge_vector() {
    // Large enough that every rank fills its chunk several times over:
    // per-rank edges ≈ 2n/P ≈ 100k > EDGE_WRITER_CHUNK.
    let cfg = PaConfig::new(200_000, 2).with_seed(13);
    let nranks = 4;
    let total_bytes = Arc::new(AtomicU64::new(0));
    let max_write = Arc::new(AtomicUsize::new(0));

    let opts = GenOptions::default();
    let outs = par::generate_streaming(&cfg, Scheme::Rrp, nranks, &opts, |_rank| {
        StreamingWriterSink::new(
            ChunkProbe {
                total_bytes: Arc::clone(&total_bytes),
                max_write: Arc::clone(&max_write),
            },
            EdgeFormat::Binary,
        )
    });

    let streamed: u64 = outs.into_iter().map(|o| o.sink.finish().unwrap()).sum();
    assert_eq!(streamed, cfg.expected_edges());
    assert_eq!(total_bytes.load(Ordering::Relaxed), streamed * 16);

    // The high-water mark: no rank ever held more than one chunk of
    // edges before handing them to the writer. A run that materialized
    // its ~100k-edge shard and wrote it at the end would show a single
    // write ~25× this bound.
    let high_water = max_write.load(Ordering::Relaxed);
    assert!(high_water > 0);
    assert!(
        high_water <= EDGE_WRITER_CHUNK * 16,
        "single write of {high_water} bytes exceeds one chunk ({} bytes): \
         edges are being materialized, not streamed",
        EDGE_WRITER_CHUNK * 16
    );
}
