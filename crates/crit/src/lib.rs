//! Offline micro-benchmark harness.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the slice of the `criterion` API the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups with
//! `sample_size`/`throughput`, `bench_function`, `bench_with_input` and
//! `Bencher::iter`. It is wired in via a dependency rename
//! (`criterion = { package = "pa-crit", ... }`) so bench code keeps the
//! upstream import paths.
//!
//! Each benchmark warms up once, then runs up to `sample_size` iterations
//! bounded by a wall-clock budget, reporting the mean per-iteration time and
//! (when a throughput is set) the implied rate. Set `PA_BENCH_JSON=<path>` to
//! also write the results as a JSON array — used to record `BENCH_PR*.json`
//! baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget for one benchmark's measurement loop.
const TIME_BUDGET: Duration = Duration::from_secs(2);

/// Units processed per iteration, used to report a rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Logical elements (edges, messages, draws, ...) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A `group/function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Label `"{name}/{param}"`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self {
            id: format!("{}/{param}", name.into()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Runs the measurement loop for one benchmark.
pub struct Bencher {
    sample_size: usize,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Call `routine` repeatedly and record the mean iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if iters >= self.sample_size as u64 || start.elapsed() >= TIME_BUDGET {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

#[derive(Debug, Clone)]
struct Record {
    group: String,
    bench: String,
    mean_ns: f64,
    throughput: Option<Throughput>,
}

impl Record {
    fn per_sec(&self) -> Option<f64> {
        let units = match self.throughput? {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        };
        (self.mean_ns > 0.0).then(|| units as f64 * 1e9 / self.mean_ns)
    }

    fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"group\":\"{}\",\"bench\":\"{}\",\"mean_ns\":{:.1}",
            escape(&self.group),
            escape(&self.bench),
            self.mean_ns
        );
        if let Some(rate) = self.per_sec() {
            let unit = match self.throughput {
                Some(Throughput::Elements(_)) => "elements",
                Some(Throughput::Bytes(_)) => "bytes",
                None => unreachable!(),
            };
            s.push_str(&format!(",\"per_sec\":{rate:.1},\"unit\":\"{unit}\""));
        }
        s.push('}');
        s
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Top-level benchmark driver (subset of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    records: Vec<Record>,
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            crit: self,
            name: name.into(),
            sample_size: 60,
            throughput: None,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(String::new(), id.id, 60, None, f);
        self
    }

    fn run_one<F>(
        &mut self,
        group: String,
        bench: String,
        sample_size: usize,
        throughput: Option<Throughput>,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean_ns = if b.iters == 0 {
            0.0
        } else {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        };
        let rec = Record {
            group,
            bench,
            mean_ns,
            throughput,
        };
        let label = if rec.group.is_empty() {
            rec.bench.clone()
        } else {
            format!("{}/{}", rec.group, rec.bench)
        };
        match rec.per_sec() {
            Some(rate) => println!(
                "bench {label:<48} {:>14} /iter  {:>14.0} per sec ({} iters)",
                fmt_ns(mean_ns),
                rate,
                b.iters
            ),
            None => println!(
                "bench {label:<48} {:>14} /iter  ({} iters)",
                fmt_ns(mean_ns),
                b.iters
            ),
        }
        self.records.push(rec);
    }

    /// Print the footer and, when `PA_BENCH_JSON` is set, dump results there.
    pub fn final_summary(self) {
        println!("completed {} benchmarks", self.records.len());
        if let Ok(path) = std::env::var("PA_BENCH_JSON") {
            let body: Vec<String> = self.records.iter().map(Record::to_json).collect();
            let json = format!("[\n  {}\n]\n", body.join(",\n  "));
            if let Err(err) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {path}: {err}");
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A named collection of benchmarks sharing sample size and throughput.
pub struct BenchmarkGroup<'a> {
    crit: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Cap the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Report a rate alongside the mean iteration time.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.crit.run_one(
            self.name.clone(),
            id.id,
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.crit.run_one(
            self.name.clone(),
            id.id,
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// End the group (scope marker; all work already happened eagerly).
    pub fn finish(self) {}
}

/// Bundle benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.throughput(Throughput::Elements(10));
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        // 1 warm-up + up to 5 timed iterations.
        assert!((2..=6).contains(&calls));
        assert_eq!(c.records.len(), 1);
        assert!(c.records[0].per_sec().is_some());
    }

    #[test]
    fn benchmark_id_formats_param() {
        assert_eq!(BenchmarkId::new("gen", 8).id, "gen/8");
    }

    #[test]
    fn json_escapes_quotes() {
        let r = Record {
            group: "g\"x".into(),
            bench: "b".into(),
            mean_ns: 1.0,
            throughput: None,
        };
        assert!(r.to_json().contains("g\\\"x"));
    }
}
