//! The PAG container: a self-describing, sharded on-disk graph format.
//!
//! Raw edge lists (see [`crate::io`]) lose everything but the edges. For
//! a generator whose outputs are meant to be archived and re-analyzed,
//! the container keeps the provenance alongside the data:
//!
//! ```text
//! magic "PAGRAPH1" | version u32 | n u64 | shard count u32
//! | attr count u32 | (key, value) length-prefixed UTF-8 pairs
//! | shard edge-counts u64 × shards
//! | shard payloads: little-endian u64 pairs
//! ```
//!
//! Shards map one-to-one to generator ranks, so a distributed run can be
//! written shard-by-shard and later re-read as a whole or inspected via
//! [`read_meta`] without touching the payload.

use crate::{EdgeList, Node};
use std::collections::BTreeMap;
use std::io::{self, BufReader, BufWriter, Read, Write};

const MAGIC: &[u8; 8] = b"PAGRAPH1";
const VERSION: u32 = 1;
/// Caps to reject corrupted headers before allocating.
const MAX_ATTRS: u32 = 10_000;
const MAX_SHARDS: u32 = 1 << 20;
const MAX_STRING: u32 = 1 << 20;

/// Container metadata: node count plus free-form provenance attributes
/// (model, seed, scheme, …).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Meta {
    /// Number of nodes in the graph.
    pub n: u64,
    /// Provenance attributes, sorted by key.
    pub attrs: BTreeMap<String, String>,
}

impl Meta {
    /// Metadata for a graph of `n` nodes.
    pub fn new(n: u64) -> Self {
        Self {
            n,
            attrs: BTreeMap::new(),
        }
    }

    /// Attach an attribute (builder style).
    pub fn with(mut self, key: &str, value: impl ToString) -> Self {
        self.attrs.insert(key.to_string(), value.to_string());
        self
    }
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    let bytes = s.as_bytes();
    if bytes.len() as u64 > MAX_STRING as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "attribute string too long",
        ));
    }
    write_u32(w, bytes.len() as u32)?;
    w.write_all(bytes)
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_str<R: Read>(r: &mut R) -> io::Result<String> {
    let len = read_u32(r)?;
    if len > MAX_STRING {
        return Err(bad("attribute string length out of bounds"));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| bad("attribute is not UTF-8"))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Write a container with the given metadata and per-shard edge lists.
pub fn write<W: Write>(w: W, meta: &Meta, shards: &[EdgeList]) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION)?;
    write_u64(&mut w, meta.n)?;
    write_u32(&mut w, shards.len() as u32)?;
    write_u32(&mut w, meta.attrs.len() as u32)?;
    for (k, v) in &meta.attrs {
        write_str(&mut w, k)?;
        write_str(&mut w, v)?;
    }
    for shard in shards {
        write_u64(&mut w, shard.len() as u64)?;
    }
    for shard in shards {
        for (u, v) in shard.iter() {
            write_u64(&mut w, u)?;
            write_u64(&mut w, v)?;
        }
    }
    w.flush()
}

/// Read only the header: metadata and per-shard edge counts.
pub fn read_meta<R: Read>(r: R) -> io::Result<(Meta, Vec<u64>)> {
    let mut r = BufReader::new(r);
    read_meta_inner(&mut r)
}

fn read_meta_inner<R: Read>(r: &mut R) -> io::Result<(Meta, Vec<u64>)> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a PAG container (bad magic)"));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(bad(&format!("unsupported container version {version}")));
    }
    let n = read_u64(r)?;
    let num_shards = read_u32(r)?;
    if num_shards > MAX_SHARDS {
        return Err(bad("shard count out of bounds"));
    }
    let num_attrs = read_u32(r)?;
    if num_attrs > MAX_ATTRS {
        return Err(bad("attribute count out of bounds"));
    }
    let mut meta = Meta::new(n);
    for _ in 0..num_attrs {
        let k = read_str(r)?;
        let v = read_str(r)?;
        meta.attrs.insert(k, v);
    }
    let mut counts = Vec::with_capacity(num_shards as usize);
    for _ in 0..num_shards {
        counts.push(read_u64(r)?);
    }
    Ok((meta, counts))
}

/// Read a whole container: metadata plus every shard.
pub fn read<R: Read>(r: R) -> io::Result<(Meta, Vec<EdgeList>)> {
    let mut r = BufReader::new(r);
    let (meta, counts) = read_meta_inner(&mut r)?;
    let mut shards = Vec::with_capacity(counts.len());
    for &count in &counts {
        let mut shard = EdgeList::with_capacity(count as usize);
        for _ in 0..count {
            let u: Node = read_u64(&mut r)?;
            let v: Node = read_u64(&mut r)?;
            if meta.n > 0 && (u >= meta.n || v >= meta.n) {
                return Err(bad("edge endpoint beyond declared node count"));
            }
            shard.push(u, v);
        }
        shards.push(shard);
    }
    // Trailing garbage indicates corruption.
    let mut probe = [0u8; 1];
    if r.read(&mut probe)? != 0 {
        return Err(bad("trailing bytes after final shard"));
    }
    Ok((meta, shards))
}

/// Convenience: write to a filesystem path.
pub fn write_file<P: AsRef<std::path::Path>>(
    path: P,
    meta: &Meta,
    shards: &[EdgeList],
) -> io::Result<()> {
    write(std::fs::File::create(path)?, meta, shards)
}

/// Convenience: read a container from a filesystem path.
pub fn read_file<P: AsRef<std::path::Path>>(path: P) -> io::Result<(Meta, Vec<EdgeList>)> {
    read(std::fs::File::open(path)?)
}

/// Convenience: read only the header from a filesystem path.
pub fn read_meta_file<P: AsRef<std::path::Path>>(path: P) -> io::Result<(Meta, Vec<u64>)> {
    read_meta(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Meta, Vec<EdgeList>) {
        let meta = Meta::new(10)
            .with("model", "preferential-attachment")
            .with("x", 4)
            .with("seed", 42);
        let shards = vec![
            EdgeList::from_vec(vec![(1, 0), (2, 1)]),
            EdgeList::from_vec(vec![(3, 0)]),
            EdgeList::new(),
        ];
        (meta, shards)
    }

    #[test]
    fn roundtrip() {
        let (meta, shards) = sample();
        let mut buf = Vec::new();
        write(&mut buf, &meta, &shards).unwrap();
        let (m2, s2) = read(&buf[..]).unwrap();
        assert_eq!(m2, meta);
        assert_eq!(s2, shards);
    }

    #[test]
    fn meta_only_read_skips_payload() {
        let (meta, shards) = sample();
        let mut buf = Vec::new();
        write(&mut buf, &meta, &shards).unwrap();
        let (m2, counts) = read_meta(&buf[..]).unwrap();
        assert_eq!(m2.attrs.get("model").unwrap(), "preferential-attachment");
        assert_eq!(counts, vec![2, 1, 0]);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read(&b"NOTAPAG0rest"[..]).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn rejects_wrong_version() {
        let (meta, shards) = sample();
        let mut buf = Vec::new();
        write(&mut buf, &meta, &shards).unwrap();
        buf[8] = 99; // clobber version
        assert!(read(&buf[..]).is_err());
    }

    #[test]
    fn rejects_truncated_payload() {
        let (meta, shards) = sample();
        let mut buf = Vec::new();
        write(&mut buf, &meta, &shards).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read(&buf[..]).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let (meta, shards) = sample();
        let mut buf = Vec::new();
        write(&mut buf, &meta, &shards).unwrap();
        buf.push(0);
        let err = read(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn rejects_out_of_range_endpoint() {
        let meta = Meta::new(2);
        let shards = vec![EdgeList::from_vec(vec![(0, 5)])];
        let mut buf = Vec::new();
        write(&mut buf, &meta, &shards).unwrap();
        let err = read(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("beyond declared"));
    }

    #[test]
    fn empty_container_roundtrips() {
        let meta = Meta::new(0);
        let mut buf = Vec::new();
        write(&mut buf, &meta, &[]).unwrap();
        let (m2, s2) = read(&buf[..]).unwrap();
        assert_eq!(m2.n, 0);
        assert!(s2.is_empty());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("pag_container_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.pag");
        let (meta, shards) = sample();
        write_file(&path, &meta, &shards).unwrap();
        let (m2, s2) = read_file(&path).unwrap();
        assert_eq!((m2, s2), (meta.clone(), shards));
        let (m3, counts) = read_meta_file(&path).unwrap();
        assert_eq!(m3, meta);
        assert_eq!(counts.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
