//! Compressed sparse row adjacency.

use crate::{EdgeList, Node, UnionFind};

/// Undirected graph in compressed-sparse-row form.
///
/// Each undirected edge `(u, v)` is stored twice (once in each endpoint's
/// neighbor range), so `adj.len() == 2 * num_edges`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// `offsets[v] .. offsets[v + 1]` indexes `adj` for node `v`.
    offsets: Vec<usize>,
    /// Concatenated neighbor lists.
    adj: Vec<Node>,
    num_edges: usize,
}

impl Csr {
    /// Build from an edge list over nodes `0 .. n`.
    ///
    /// Uses the classic two-pass counting-sort construction: O(n + m) time,
    /// no per-node allocation.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node `>= n`.
    pub fn from_edges(n: usize, edges: &EdgeList) -> Self {
        let mut counts = vec![0usize; n + 1];
        for (u, v) in edges.iter() {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u},{v}) out of bounds for n={n}"
            );
            counts[u as usize + 1] += 1;
            counts[v as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut adj = vec![0 as Node; 2 * edges.len()];
        for (u, v) in edges.iter() {
            adj[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            adj[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        Self {
            offsets,
            adj,
            num_edges: edges.len(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of `v` (counting multi-edges if present).
    #[inline]
    pub fn degree(&self, v: Node) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: Node) -> &[Node] {
        &self.adj[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Breadth-first search from `src`; returns the hop distance to every
    /// node (`u64::MAX` for unreachable nodes).
    pub fn bfs_distances(&self, src: Node) -> Vec<u64> {
        let n = self.num_nodes();
        let mut dist = vec![u64::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        dist[src as usize] = 0;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize];
            for &w in self.neighbors(u) {
                if dist[w as usize] == u64::MAX {
                    dist[w as usize] = du + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// Number of connected components (isolated nodes count as singleton
    /// components).
    pub fn connected_components(&self) -> usize {
        let mut uf = UnionFind::new(self.num_nodes());
        for v in 0..self.num_nodes() as Node {
            for &w in self.neighbors(v) {
                uf.union(v as usize, w as usize);
            }
        }
        uf.num_sets()
    }

    /// Local clustering coefficient of `v`: fraction of neighbor pairs
    /// that are themselves adjacent. Returns 0 for degree < 2.
    ///
    /// O(d² log d); intended for sampled estimates on scale-free graphs,
    /// not for exhaustive sweeps over hubs.
    pub fn clustering_coefficient(&self, v: Node) -> f64 {
        let neigh = self.neighbors(v);
        let d = neigh.len();
        if d < 2 {
            return 0.0;
        }
        let mut sorted: Vec<Node> = neigh.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let dd = sorted.len();
        if dd < 2 {
            return 0.0;
        }
        let mut links = 0usize;
        for &u in &sorted {
            for &w in self.neighbors(u) {
                if w > u && sorted.binary_search(&w).is_ok() {
                    links += 1;
                }
            }
        }
        2.0 * links as f64 / (dd as f64 * (dd - 1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeList;

    fn triangle_plus_tail() -> Csr {
        // 0-1, 1-2, 2-0 triangle; 2-3 tail; node 4 isolated.
        let el = EdgeList::from_vec(vec![(0, 1), (1, 2), (2, 0), (2, 3)]);
        Csr::from_edges(5, &el)
    }

    #[test]
    fn counts_and_degrees() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.degree(4), 0);
    }

    #[test]
    fn neighbors_are_complete() {
        let g = triangle_plus_tail();
        let mut n2: Vec<_> = g.neighbors(2).to_vec();
        n2.sort_unstable();
        assert_eq!(n2, vec![0, 1, 3]);
        assert!(g.neighbors(4).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_edge_panics() {
        let el = EdgeList::from_vec(vec![(0, 9)]);
        let _ = Csr::from_edges(3, &el);
    }

    #[test]
    fn bfs_distances_on_path() {
        let el = EdgeList::from_vec(vec![(0, 1), (1, 2), (2, 3)]);
        let g = Csr::from_edges(5, &el);
        assert_eq!(g.bfs_distances(0), vec![0, 1, 2, 3, u64::MAX]);
    }

    #[test]
    fn components_counts_isolated() {
        let g = triangle_plus_tail();
        assert_eq!(g.connected_components(), 2);
    }

    #[test]
    fn clustering_of_triangle_node() {
        let g = triangle_plus_tail();
        // Node 0's neighbors {1, 2} are adjacent: coefficient 1.
        assert_eq!(g.clustering_coefficient(0), 1.0);
        // Node 2's neighbors {0, 1, 3}: only (0,1) adjacent => 1/3.
        assert!((g.clustering_coefficient(2) - 1.0 / 3.0).abs() < 1e-12);
        // Degree-1 and isolated nodes have coefficient 0.
        assert_eq!(g.clustering_coefficient(3), 0.0);
        assert_eq!(g.clustering_coefficient(4), 0.0);
    }

    #[test]
    fn multi_edge_degree_counts_duplicates() {
        let el = EdgeList::from_vec(vec![(0, 1), (0, 1)]);
        let g = Csr::from_edges(2, &el);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.num_edges(), 2);
    }
}
