//! Degree sequences and degree histograms.
//!
//! The degree distribution is the paper's primary accuracy evidence
//! (Figure 4: log–log degree histogram of an n = 10⁹, x = 4 network with
//! power-law exponent γ ≈ 2.7). These helpers turn edge lists into the
//! raw data behind that figure.

use crate::EdgeList;
use std::collections::BTreeMap;

/// Degree of every node in `0 .. n`, counting both endpoints of each edge.
pub fn degree_sequence(n: usize, edges: &EdgeList) -> Vec<u64> {
    let mut deg = vec![0u64; n];
    for (u, v) in edges.iter() {
        deg[u as usize] += 1;
        deg[v as usize] += 1;
    }
    deg
}

/// Histogram `degree -> number of nodes with that degree`, sorted by
/// degree (BTreeMap keeps plotting order deterministic).
pub fn degree_histogram(degrees: &[u64]) -> BTreeMap<u64, u64> {
    let mut hist = BTreeMap::new();
    for &d in degrees {
        *hist.entry(d).or_insert(0) += 1;
    }
    hist
}

/// Empirical complementary CDF: for each observed degree `d`, the fraction
/// of nodes with degree ≥ d. Returned sorted by degree ascending.
///
/// The CCDF is the standard noise-robust way to plot heavy tails (a pure
/// power law `P(k) ∝ k^(−γ)` has CCDF slope `−(γ−1)` on log–log axes).
pub fn ccdf(degrees: &[u64]) -> Vec<(u64, f64)> {
    if degrees.is_empty() {
        return Vec::new();
    }
    let hist = degree_histogram(degrees);
    let total: u64 = hist.values().sum();
    let mut out = Vec::with_capacity(hist.len());
    let mut at_least = total;
    for (&d, &c) in hist.iter() {
        out.push((d, at_least as f64 / total as f64));
        at_least -= c;
    }
    out
}

/// Logarithmically binned histogram: bin `i` covers degrees
/// `[base^i, base^(i+1))` and reports `(geometric bin center,
/// count density per unit degree)`. Standard presentation for power-law
/// histograms, smoothing the noisy tail that plain histograms show.
///
/// # Panics
///
/// Panics if `base <= 1.0`.
pub fn log_binned_histogram(degrees: &[u64], base: f64) -> Vec<(f64, f64)> {
    assert!(base > 1.0, "log binning requires base > 1");
    let hist = degree_histogram(degrees);
    let mut bins: BTreeMap<u32, (f64, u64)> = BTreeMap::new();
    for (&d, &c) in hist.iter() {
        if d == 0 {
            continue;
        }
        let bin = (d as f64).log(base).floor() as u32;
        let e = bins.entry(bin).or_insert((0.0, 0));
        e.1 += c;
    }
    bins.into_iter()
        .map(|(bin, (_, count))| {
            let lo = base.powi(bin as i32);
            let hi = base.powi(bin as i32 + 1);
            let width = (hi.ceil() - lo.ceil()).max(1.0);
            let center = (lo * hi).sqrt();
            (center, count as f64 / width)
        })
        .collect()
}

/// Summary statistics of a degree sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: u64,
    /// Largest degree.
    pub max: u64,
    /// Arithmetic mean degree (2m / n).
    pub mean: f64,
    /// Number of nodes.
    pub n: usize,
}

/// Compute [`DegreeStats`]; `None` for an empty sequence.
pub fn degree_stats(degrees: &[u64]) -> Option<DegreeStats> {
    if degrees.is_empty() {
        return None;
    }
    let min = *degrees.iter().min().unwrap();
    let max = *degrees.iter().max().unwrap();
    let sum: u64 = degrees.iter().sum();
    Some(DegreeStats {
        min,
        max,
        mean: sum as f64 / degrees.len() as f64,
        n: degrees.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeList;

    fn star() -> (usize, EdgeList) {
        // Node 0 connected to 1..=4.
        (5, EdgeList::from_vec(vec![(0, 1), (0, 2), (0, 3), (0, 4)]))
    }

    #[test]
    fn degree_sequence_counts_both_endpoints() {
        let (n, el) = star();
        let deg = degree_sequence(n, &el);
        assert_eq!(deg, vec![4, 1, 1, 1, 1]);
        let handshake: u64 = deg.iter().sum();
        assert_eq!(handshake, 2 * el.len() as u64);
    }

    #[test]
    fn histogram_matches_sequence() {
        let (n, el) = star();
        let deg = degree_sequence(n, &el);
        let hist = degree_histogram(&deg);
        assert_eq!(hist.get(&1), Some(&4));
        assert_eq!(hist.get(&4), Some(&1));
        assert_eq!(hist.len(), 2);
    }

    #[test]
    fn ccdf_starts_at_one_and_decreases() {
        let deg = vec![1, 1, 2, 3, 3, 3];
        let c = ccdf(&deg);
        assert_eq!(c[0], (1, 1.0));
        for w in c.windows(2) {
            assert!(w[1].1 < w[0].1, "CCDF must strictly decrease");
        }
        // fraction with degree >= 3 is 3/6
        assert_eq!(c.last().unwrap(), &(3, 0.5));
    }

    #[test]
    fn ccdf_of_empty_is_empty() {
        assert!(ccdf(&[]).is_empty());
    }

    #[test]
    fn log_binning_conserves_mass() {
        let deg: Vec<u64> = (1..=1000).collect();
        let bins = log_binned_histogram(&deg, 2.0);
        // Total mass: sum over bins of density * width ~ 1000 nodes. The
        // density normalization uses integer bin widths, so the recon-
        // struction is exact when widths are exact.
        assert!(!bins.is_empty());
        for w in bins.windows(2) {
            assert!(w[1].0 > w[0].0, "bin centers increase");
        }
    }

    #[test]
    #[should_panic(expected = "base > 1")]
    fn log_binning_bad_base_panics() {
        let _ = log_binned_histogram(&[1, 2, 3], 1.0);
    }

    #[test]
    fn stats_basics() {
        let s = degree_stats(&[1, 2, 3, 4]).unwrap();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.n, 4);
        assert!(degree_stats(&[]).is_none());
    }

    #[test]
    fn zero_degrees_are_skipped_by_log_binning() {
        let bins = log_binned_histogram(&[0, 0, 1, 2], 2.0);
        let total: f64 = bins.iter().map(|b| b.1).sum();
        assert!(total > 0.0);
    }
}
