//! Flat edge-list representation.

use crate::{Edge, Node};

/// A flat list of undirected edges.
///
/// This is the interchange format between the distributed generators
/// (each rank produces the edge list of its partition) and the analysis /
/// I/O layers. Edges are stored as emitted; use
/// [`EdgeList::canonicalize`] to obtain a deterministic, order-independent
/// form for comparisons across rank counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeList {
    edges: Vec<Edge>,
}

impl EdgeList {
    /// An empty edge list.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty edge list with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            edges: Vec::with_capacity(cap),
        }
    }

    /// Wrap an existing edge vector.
    pub fn from_vec(edges: Vec<Edge>) -> Self {
        Self { edges }
    }

    /// Append one edge.
    #[inline]
    pub fn push(&mut self, u: Node, v: Node) {
        self.edges.push((u, v));
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when no edges are stored.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Borrow the raw edge slice.
    pub fn as_slice(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterate over the edges.
    pub fn iter(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edges.iter().copied()
    }

    /// Consume into the raw vector.
    pub fn into_vec(self) -> Vec<Edge> {
        self.edges
    }

    /// Concatenate the per-rank lists produced by a distributed run
    /// (rank order is preserved).
    pub fn concat(parts: impl IntoIterator<Item = EdgeList>) -> Self {
        let mut out = EdgeList::new();
        for p in parts {
            out.edges.extend(p.edges);
        }
        out
    }

    /// Append all edges of `other`.
    pub fn extend_from(&mut self, other: &EdgeList) {
        self.edges.extend_from_slice(&other.edges);
    }

    /// The largest node id appearing in the list, or `None` if empty.
    pub fn max_node(&self) -> Option<Node> {
        self.edges.iter().map(|&(u, v)| u.max(v)).max()
    }

    /// Sort each edge as `(min, max)` and sort the list: two lists that
    /// denote the same undirected graph canonicalize identically, no
    /// matter which rank emitted which edge in which order.
    pub fn canonicalize(&mut self) {
        for e in &mut self.edges {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        }
        self.edges.sort_unstable();
    }

    /// Canonicalized copy (see [`EdgeList::canonicalize`]).
    pub fn canonicalized(&self) -> Self {
        let mut c = self.clone();
        c.canonicalize();
        c
    }

    /// Reduce to a simple undirected graph: canonicalize, drop
    /// self-loops, and deduplicate parallel edges. Useful for models
    /// with multigraph semantics (e.g. R-MAT).
    pub fn simplify(&self) -> Self {
        let mut c = self.canonicalized();
        c.edges.retain(|&(u, v)| u != v);
        c.edges.dedup();
        c
    }
}

impl FromIterator<Edge> for EdgeList {
    fn from_iter<I: IntoIterator<Item = Edge>>(iter: I) -> Self {
        Self {
            edges: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a EdgeList {
    type Item = &'a Edge;
    type IntoIter = std::slice::Iter<'a, Edge>;
    fn into_iter(self) -> Self::IntoIter {
        self.edges.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_len() {
        let mut el = EdgeList::new();
        assert!(el.is_empty());
        el.push(0, 1);
        el.push(1, 2);
        assert_eq!(el.len(), 2);
        assert_eq!(el.as_slice(), &[(0, 1), (1, 2)]);
    }

    #[test]
    fn concat_preserves_rank_order() {
        let a = EdgeList::from_vec(vec![(0, 1)]);
        let b = EdgeList::from_vec(vec![(2, 3), (4, 5)]);
        let c = EdgeList::concat([a, b]);
        assert_eq!(c.as_slice(), &[(0, 1), (2, 3), (4, 5)]);
    }

    #[test]
    fn canonicalize_is_order_and_direction_invariant() {
        let a = EdgeList::from_vec(vec![(5, 2), (1, 0), (3, 4)]);
        let b = EdgeList::from_vec(vec![(0, 1), (4, 3), (2, 5)]);
        assert_eq!(a.canonicalized(), b.canonicalized());
    }

    #[test]
    fn max_node_handles_empty_and_nonempty() {
        assert_eq!(EdgeList::new().max_node(), None);
        let el = EdgeList::from_vec(vec![(0, 7), (3, 2)]);
        assert_eq!(el.max_node(), Some(7));
    }

    #[test]
    fn simplify_removes_loops_and_duplicates() {
        let el = EdgeList::from_vec(vec![(1, 0), (0, 1), (2, 2), (3, 1), (1, 3)]);
        let s = el.simplify();
        assert_eq!(s.as_slice(), &[(0, 1), (1, 3)]);
    }

    #[test]
    fn from_iterator_collects() {
        let el: EdgeList = [(0u64, 1u64), (1, 2)].into_iter().collect();
        assert_eq!(el.len(), 2);
    }
}
