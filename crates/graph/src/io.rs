//! Edge-list I/O.
//!
//! The paper's processors "have a shared file system and read-write data
//! files from the same external memory [...] independently". We mirror
//! that: each rank may write its own partition's edges with
//! [`write_text`] / [`write_binary`], and an analysis step reads the
//! concatenation back.

use crate::{EdgeList, Node};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Write edges as ASCII `u v` lines.
pub fn write_text<W: Write>(w: W, edges: &EdgeList) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    for (u, v) in edges.iter() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Read edges from ASCII `u v` lines. Blank lines and `#` comments are
/// skipped; malformed lines are an error.
pub fn read_text<R: Read>(r: R) -> io::Result<EdgeList> {
    let r = BufReader::new(r);
    let mut edges = EdgeList::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |s: Option<&str>| -> io::Result<Node> {
            s.and_then(|tok| tok.parse().ok()).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed edge on line {}", lineno + 1),
                )
            })
        };
        let u = parse(parts.next())?;
        let v = parse(parts.next())?;
        edges.push(u, v);
    }
    Ok(edges)
}

/// Write edges as little-endian `u64` pairs (16 bytes per edge).
pub fn write_binary<W: Write>(w: W, edges: &EdgeList) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    for (u, v) in edges.iter() {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Read edges written by [`write_binary`]. A trailing partial record is an
/// error.
pub fn read_binary<R: Read>(r: R) -> io::Result<EdgeList> {
    let mut r = BufReader::new(r);
    let mut edges = EdgeList::new();
    let mut buf = [0u8; 16];
    loop {
        match r.read(&mut buf[..1])? {
            0 => break,
            _ => {
                r.read_exact(&mut buf[1..]).map_err(|_| {
                    io::Error::new(io::ErrorKind::UnexpectedEof, "truncated edge record")
                })?;
                let u = Node::from_le_bytes(buf[..8].try_into().unwrap());
                let v = Node::from_le_bytes(buf[8..].try_into().unwrap());
                edges.push(u, v);
            }
        }
    }
    Ok(edges)
}

/// Convenience: write a text edge list to a path.
pub fn write_text_file<P: AsRef<Path>>(path: P, edges: &EdgeList) -> io::Result<()> {
    write_text(File::create(path)?, edges)
}

/// Convenience: read a text edge list from a path.
pub fn read_text_file<P: AsRef<Path>>(path: P) -> io::Result<EdgeList> {
    read_text(File::open(path)?)
}

/// Convenience: write a binary edge list to a path.
pub fn write_binary_file<P: AsRef<Path>>(path: P, edges: &EdgeList) -> io::Result<()> {
    write_binary(File::create(path)?, edges)
}

/// Convenience: read a binary edge list from a path.
pub fn read_binary_file<P: AsRef<Path>>(path: P) -> io::Result<EdgeList> {
    read_binary(File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        EdgeList::from_vec(vec![(0, 1), (7, 3), (u64::MAX - 1, 2)])
    }

    #[test]
    fn text_roundtrip() {
        let mut buf = Vec::new();
        write_text(&mut buf, &sample()).unwrap();
        let back = read_text(&buf[..]).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn text_skips_comments_and_blanks() {
        let input = "# header\n\n0 1\n  \n2 3\n";
        let el = read_text(input.as_bytes()).unwrap();
        assert_eq!(el.as_slice(), &[(0, 1), (2, 3)]);
    }

    #[test]
    fn text_rejects_malformed() {
        let err = read_text("0 x\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn binary_roundtrip() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        assert_eq!(buf.len(), 16 * sample().len());
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn binary_rejects_truncation() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf.pop();
        let err = read_binary(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn empty_roundtrips() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &EdgeList::new()).unwrap();
        assert!(read_binary(&buf[..]).unwrap().is_empty());
        let mut buf = Vec::new();
        write_text(&mut buf, &EdgeList::new()).unwrap();
        assert!(read_text(&buf[..]).unwrap().is_empty());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("pa_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("edges.bin");
        write_binary_file(&p, &sample()).unwrap();
        assert_eq!(read_binary_file(&p).unwrap(), sample());
        let p = dir.join("edges.txt");
        write_text_file(&p, &sample()).unwrap();
        assert_eq!(read_text_file(&p).unwrap(), sample());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
