//! Edge-list I/O.
//!
//! The paper's processors "have a shared file system and read-write data
//! files from the same external memory [...] independently". We mirror
//! that: each rank may write its own partition's edges with
//! [`write_text`] / [`write_binary`], and an analysis step reads the
//! concatenation back.

use crate::{EdgeList, Node};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Write edges as ASCII `u v` lines.
pub fn write_text<W: Write>(w: W, edges: &EdgeList) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    for (u, v) in edges.iter() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Read edges from ASCII `u v` lines. Blank lines and `#` comments are
/// skipped; malformed lines are an error.
pub fn read_text<R: Read>(r: R) -> io::Result<EdgeList> {
    let r = BufReader::new(r);
    let mut edges = EdgeList::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |s: Option<&str>| -> io::Result<Node> {
            s.and_then(|tok| tok.parse().ok()).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed edge on line {}", lineno + 1),
                )
            })
        };
        let u = parse(parts.next())?;
        let v = parse(parts.next())?;
        edges.push(u, v);
    }
    Ok(edges)
}

/// Write edges as little-endian `u64` pairs (16 bytes per edge).
pub fn write_binary<W: Write>(w: W, edges: &EdgeList) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    for (u, v) in edges.iter() {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Read edges written by [`write_binary`]. A trailing partial record is an
/// error.
pub fn read_binary<R: Read>(r: R) -> io::Result<EdgeList> {
    let mut r = BufReader::new(r);
    let mut edges = EdgeList::new();
    let mut buf = [0u8; 16];
    loop {
        match r.read(&mut buf[..1])? {
            0 => break,
            _ => {
                r.read_exact(&mut buf[1..]).map_err(|_| {
                    io::Error::new(io::ErrorKind::UnexpectedEof, "truncated edge record")
                })?;
                let u = Node::from_le_bytes(buf[..8].try_into().unwrap());
                let v = Node::from_le_bytes(buf[8..].try_into().unwrap());
                edges.push(u, v);
            }
        }
    }
    Ok(edges)
}

/// On-disk encoding of a streamed edge list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeFormat {
    /// ASCII `u v` lines, readable by [`read_text`].
    Text,
    /// Little-endian `u64` pairs (16 bytes/edge), readable by
    /// [`read_binary`].
    Binary,
}

impl EdgeFormat {
    /// Stable wire/checkpoint discriminant (a job descriptor must mean
    /// the same format on every build).
    pub fn id(self) -> u8 {
        match self {
            EdgeFormat::Text => 0,
            EdgeFormat::Binary => 1,
        }
    }

    /// Inverse of [`EdgeFormat::id`]; `None` for unknown discriminants.
    pub fn from_id(id: u8) -> Option<EdgeFormat> {
        match id {
            0 => Some(EdgeFormat::Text),
            1 => Some(EdgeFormat::Binary),
            _ => None,
        }
    }

    /// The format name as the CLI spells it (`txt` / `bin`).
    pub fn name(self) -> &'static str {
        match self {
            EdgeFormat::Text => "txt",
            EdgeFormat::Binary => "bin",
        }
    }
}

/// Streaming FNV-1a (64-bit) hasher.
///
/// The workspace's determinism suites pin generated outputs by FNV-1a
/// digests; the serve layer reuses the same function as an artifact
/// checksum so a resumed fetch can prove its stitched-together file
/// matches the server's copy byte for byte. Implements [`Write`], so a
/// file can be hashed with `io::copy(&mut file, &mut hasher)`.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// FNV-1a offset basis.
    pub const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    /// FNV-1a prime.
    pub const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Self(Self::OFFSET_BASIS)
    }

    /// Resume hashing from a previously computed digest — FNV-1a is a
    /// running fold, so the digest of a prefix (e.g. from
    /// [`hash_file_prefix`]) *is* the full hasher state.
    pub fn from_digest(digest: u64) -> Self {
        Self(digest)
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        }
    }

    /// The digest of everything absorbed so far.
    pub fn digest(&self) -> u64 {
        self.0
    }

    /// One-shot digest of a byte slice.
    pub fn hash(bytes: &[u8]) -> u64 {
        let mut h = Self::new();
        h.update(bytes);
        h.digest()
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Write for Fnv1a {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.update(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Hash the first `len` bytes of the file at `path` with [`Fnv1a`].
///
/// This is the resume-side integrity primitive: a client holding a
/// partial stream hashes its on-disk prefix, continues hashing the
/// re-streamed tail, and compares the combined digest against the
/// server's whole-artifact checksum.
///
/// # Errors
///
/// I/O errors opening or reading the file; `UnexpectedEof` if the file
/// holds fewer than `len` bytes.
pub fn hash_file_prefix<P: AsRef<Path>>(path: P, len: u64) -> io::Result<u64> {
    let file = File::open(path)?;
    let mut hasher = Fnv1a::new();
    let copied = io::copy(&mut file.take(len), &mut hasher)?;
    if copied < len {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("file holds {copied} bytes, cannot hash a {len}-byte prefix"),
        ));
    }
    Ok(hasher.digest())
}

/// Re-stream the file at `path` from byte `offset` in `chunk`-sized
/// pieces: `f(chunk_offset, bytes)` is called for each piece, in order,
/// with contiguous offsets. Returns the file length.
///
/// This is the serving side of the byte-watermark resume protocol: a
/// dropped transfer reconnects with the offset it durably received, and
/// the server re-streams exactly the missing suffix — the complement of
/// [`EdgeWriter::resume`], which *writes* from a watermark.
///
/// # Errors
///
/// I/O errors from opening, seeking, or reading, from the callback, or
/// `InvalidInput` when `offset` lies beyond the end of the file.
pub fn stream_file_from<P: AsRef<Path>>(
    path: P,
    offset: u64,
    chunk: usize,
    mut f: impl FnMut(u64, &[u8]) -> io::Result<()>,
) -> io::Result<u64> {
    assert!(chunk > 0, "chunk size must be positive");
    let mut file = File::open(path)?;
    let len = file.metadata()?.len();
    if offset > len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("resume offset {offset} beyond end of {len}-byte file"),
        ));
    }
    use std::io::Seek;
    file.seek(io::SeekFrom::Start(offset))?;
    let mut buf = vec![0u8; chunk];
    let mut pos = offset;
    while pos < len {
        let want = usize::try_from((len - pos).min(chunk as u64)).expect("chunk fits usize");
        file.read_exact(&mut buf[..want])?;
        f(pos, &buf[..want])?;
        pos += want as u64;
    }
    Ok(len)
}

/// Number of edges [`EdgeWriter`] buffers before writing a chunk out.
///
/// At 16 bytes per binary edge this is a 1 MiB write unit — large enough
/// to amortize syscalls, small enough that resident memory stays `O(1)`
/// in the number of edges streamed through.
pub const EDGE_WRITER_CHUNK: usize = 65_536;

/// A chunk-buffered streaming edge writer.
///
/// The generators deliver edges one at a time from hot per-node loops, so
/// [`EdgeWriter::push`] is infallible: edges accumulate in a fixed-size
/// chunk, full chunks are encoded and written in one call, and the first
/// I/O error is recorded and returned by [`EdgeWriter::finish`] (all
/// writes after a recorded error become no-ops). Peak resident memory is
/// one chunk, independent of how many edges pass through.
#[derive(Debug)]
pub struct EdgeWriter<W: Write> {
    w: W,
    format: EdgeFormat,
    chunk: Vec<(Node, Node)>,
    written: u64,
    bytes: u64,
    error: Option<io::Error>,
}

impl<W: Write> EdgeWriter<W> {
    /// Streaming writer over `w` in the given format.
    ///
    /// Callers pass the raw sink (e.g. a [`File`]); chunking makes an
    /// extra [`BufWriter`] layer unnecessary.
    pub fn new(w: W, format: EdgeFormat) -> Self {
        Self::resume(w, format, 0, 0)
    }

    /// Streaming writer continuing an interrupted stream: `w` must be
    /// positioned after `bytes` bytes holding `written` edges (e.g. a
    /// part file truncated to a checkpoint watermark and seeked to its
    /// end). Counts continue from the given values.
    pub fn resume(w: W, format: EdgeFormat, written: u64, bytes: u64) -> Self {
        Self {
            w,
            format,
            chunk: Vec::with_capacity(EDGE_WRITER_CHUNK),
            written,
            bytes,
            error: None,
        }
    }

    /// Append one edge. Never fails; I/O errors surface in
    /// [`EdgeWriter::finish`].
    #[inline]
    pub fn push(&mut self, u: Node, v: Node) {
        self.chunk.push((u, v));
        if self.chunk.len() >= EDGE_WRITER_CHUNK {
            self.write_chunk();
        }
    }

    /// Edges accepted so far (including any still in the chunk buffer).
    pub fn count(&self) -> u64 {
        self.written + self.chunk.len() as u64
    }

    /// Whether an I/O error has been recorded.
    pub fn has_error(&self) -> bool {
        self.error.is_some()
    }

    fn write_chunk(&mut self) {
        if self.error.is_some() {
            self.written += self.chunk.len() as u64;
            self.chunk.clear();
            return;
        }
        let res = match self.format {
            EdgeFormat::Binary => {
                let mut bytes = Vec::with_capacity(self.chunk.len() * 16);
                for &(u, v) in &self.chunk {
                    bytes.extend_from_slice(&u.to_le_bytes());
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
                self.w.write_all(&bytes).map(|()| bytes.len() as u64)
            }
            EdgeFormat::Text => {
                let mut text = String::with_capacity(self.chunk.len() * 12);
                for &(u, v) in &self.chunk {
                    text.push_str(&format!("{u} {v}\n"));
                }
                self.w
                    .write_all(text.as_bytes())
                    .map(|()| text.len() as u64)
            }
        };
        match res {
            Ok(n) => self.bytes += n,
            Err(e) => self.error = Some(e),
        }
        self.written += self.chunk.len() as u64;
        self.chunk.clear();
    }

    /// Flush everything through to the sink and report the durable
    /// `(edges, bytes)` watermark — the coordinates a checkpoint records
    /// so a restarted run can truncate the stream back to exactly this
    /// point (byte counts matter because the text encoding is
    /// variable-width). Unlike [`EdgeWriter::finish`] the writer stays
    /// usable; a previously recorded I/O error is surfaced (and kept, so
    /// `finish` still reports it).
    pub fn checkpoint(&mut self) -> io::Result<(u64, u64)> {
        self.write_chunk();
        if let Some(e) = &self.error {
            // io::Error is not Clone; surface a copy, keep the original.
            return Err(io::Error::new(e.kind(), e.to_string()));
        }
        self.w.flush()?;
        Ok((self.written, self.bytes))
    }

    /// Flush the final partial chunk and the sink; returns the total edge
    /// count, or the first error encountered anywhere in the stream.
    pub fn finish(mut self) -> io::Result<u64> {
        self.write_chunk();
        if let Some(e) = self.error {
            return Err(e);
        }
        self.w.flush()?;
        Ok(self.written)
    }
}

/// Convenience: write a text edge list to a path.
pub fn write_text_file<P: AsRef<Path>>(path: P, edges: &EdgeList) -> io::Result<()> {
    write_text(File::create(path)?, edges)
}

/// Convenience: read a text edge list from a path.
pub fn read_text_file<P: AsRef<Path>>(path: P) -> io::Result<EdgeList> {
    read_text(File::open(path)?)
}

/// Convenience: write a binary edge list to a path.
pub fn write_binary_file<P: AsRef<Path>>(path: P, edges: &EdgeList) -> io::Result<()> {
    write_binary(File::create(path)?, edges)
}

/// Convenience: read a binary edge list from a path.
pub fn read_binary_file<P: AsRef<Path>>(path: P) -> io::Result<EdgeList> {
    read_binary(File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        EdgeList::from_vec(vec![(0, 1), (7, 3), (u64::MAX - 1, 2)])
    }

    #[test]
    fn text_roundtrip() {
        let mut buf = Vec::new();
        write_text(&mut buf, &sample()).unwrap();
        let back = read_text(&buf[..]).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn text_skips_comments_and_blanks() {
        let input = "# header\n\n0 1\n  \n2 3\n";
        let el = read_text(input.as_bytes()).unwrap();
        assert_eq!(el.as_slice(), &[(0, 1), (2, 3)]);
    }

    #[test]
    fn text_rejects_malformed() {
        let err = read_text("0 x\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn binary_roundtrip() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        assert_eq!(buf.len(), 16 * sample().len());
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn binary_rejects_truncation() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf.pop();
        let err = read_binary(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn empty_roundtrips() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &EdgeList::new()).unwrap();
        assert!(read_binary(&buf[..]).unwrap().is_empty());
        let mut buf = Vec::new();
        write_text(&mut buf, &EdgeList::new()).unwrap();
        assert!(read_text(&buf[..]).unwrap().is_empty());
    }

    #[test]
    fn edge_writer_binary_matches_write_binary() {
        let edges = sample();
        let mut streamed = Vec::new();
        let mut w = EdgeWriter::new(&mut streamed, EdgeFormat::Binary);
        for (u, v) in edges.iter() {
            w.push(u, v);
        }
        assert_eq!(w.count(), edges.len() as u64);
        assert_eq!(w.finish().unwrap(), edges.len() as u64);
        let mut batch = Vec::new();
        write_binary(&mut batch, &edges).unwrap();
        assert_eq!(streamed, batch);
    }

    #[test]
    fn edge_writer_text_matches_write_text() {
        let edges = sample();
        let mut streamed = Vec::new();
        let mut w = EdgeWriter::new(&mut streamed, EdgeFormat::Text);
        for (u, v) in edges.iter() {
            w.push(u, v);
        }
        w.finish().unwrap();
        let mut batch = Vec::new();
        write_text(&mut batch, &edges).unwrap();
        assert_eq!(streamed, batch);
    }

    #[test]
    fn edge_writer_crosses_chunk_boundaries() {
        let n = EDGE_WRITER_CHUNK as u64 * 2 + 17;
        let mut streamed = Vec::new();
        let mut w = EdgeWriter::new(&mut streamed, EdgeFormat::Binary);
        for i in 0..n {
            w.push(i, i + 1);
        }
        assert_eq!(w.finish().unwrap(), n);
        let back = read_binary(&streamed[..]).unwrap();
        assert_eq!(back.len() as u64, n);
        assert_eq!(back.as_slice()[0], (0, 1));
        assert_eq!(back.as_slice()[n as usize - 1], (n - 1, n));
    }

    #[test]
    fn edge_writer_reports_first_io_error() {
        struct FailAfter(usize);
        impl Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.0 == 0 {
                    return Err(io::Error::other("disk full"));
                }
                self.0 -= 1;
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut w = EdgeWriter::new(FailAfter(1), EdgeFormat::Binary);
        for i in 0..(EDGE_WRITER_CHUNK as u64 * 3) {
            w.push(i, i); // keeps accepting pushes after the failure
        }
        assert!(w.has_error());
        let err = w.finish().unwrap_err();
        assert!(err.to_string().contains("disk full"));
    }

    #[test]
    fn edge_writer_checkpoint_reports_durable_watermark() {
        for format in [EdgeFormat::Binary, EdgeFormat::Text] {
            // Reference encoding of the first two edges alone.
            let mut prefix = Vec::new();
            let pw = {
                let mut pw = EdgeWriter::new(&mut prefix, format);
                pw.push(12, 3);
                pw.push(400, 9);
                pw.finish().unwrap()
            };
            assert_eq!(pw, 2);
            let mut streamed = Vec::new();
            let mut w = EdgeWriter::new(&mut streamed, format);
            w.push(12, 3);
            w.push(400, 9);
            let (edges, bytes) = w.checkpoint().unwrap();
            assert_eq!((edges, bytes), (2, prefix.len() as u64), "{format:?}");
            // The writer stays usable after a checkpoint.
            w.push(500, 12);
            assert_eq!(w.finish().unwrap(), 3);
        }
    }

    #[test]
    fn edge_writer_resume_continues_counts() {
        let mut first = Vec::new();
        let mut w = EdgeWriter::new(&mut first, EdgeFormat::Text);
        w.push(10, 2);
        let (edges, bytes) = w.checkpoint().unwrap();
        drop(w);
        // Second writer appends to the truncated stream.
        let mut tail = Vec::new();
        let mut w = EdgeWriter::resume(&mut tail, EdgeFormat::Text, edges, bytes);
        assert_eq!(w.count(), 1);
        w.push(11, 0);
        let (edges2, bytes2) = w.checkpoint().unwrap();
        assert_eq!(edges2, 2);
        assert_eq!(w.finish().unwrap(), 2);
        assert_eq!(bytes2, bytes + tail.len() as u64);
        first.extend_from_slice(&tail);
        let back = read_text(&first[..]).unwrap();
        assert_eq!(back.as_slice(), &[(10, 2), (11, 0)]);
    }

    #[test]
    fn edge_writer_checkpoint_surfaces_recorded_error() {
        struct AlwaysFail;
        impl Write for AlwaysFail {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut w = EdgeWriter::new(AlwaysFail, EdgeFormat::Binary);
        w.push(1, 0);
        let err = w.checkpoint().unwrap_err();
        assert!(err.to_string().contains("disk full"));
        // The original error is preserved for finish().
        assert!(w.finish().unwrap_err().to_string().contains("disk full"));
    }

    #[test]
    fn edge_format_ids_round_trip() {
        for f in [EdgeFormat::Text, EdgeFormat::Binary] {
            assert_eq!(EdgeFormat::from_id(f.id()), Some(f));
        }
        assert_eq!(EdgeFormat::from_id(9), None);
        assert_eq!(EdgeFormat::Text.name(), "txt");
        assert_eq!(EdgeFormat::Binary.name(), "bin");
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(Fnv1a::hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv1a::hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fnv1a::hash(b"foobar"), 0x85944171f73967e8);
        // Incremental updates equal one-shot hashing.
        let mut h = Fnv1a::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.digest(), Fnv1a::hash(b"foobar"));
        // The Write impl absorbs the same way.
        let mut w = Fnv1a::new();
        io::copy(&mut &b"foobar"[..], &mut w).unwrap();
        assert_eq!(w.digest(), Fnv1a::hash(b"foobar"));
    }

    #[test]
    fn stream_file_from_restreams_the_missing_suffix() {
        let dir = std::env::temp_dir().join("pa_graph_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("artifact.bin");
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&p, &data).unwrap();

        for offset in [0u64, 1, 4096, 9_999, 10_000] {
            let mut got = Vec::new();
            let mut expect_off = offset;
            let len = stream_file_from(&p, offset, 1_000, |off, bytes| {
                assert_eq!(off, expect_off, "chunks must be contiguous");
                expect_off += bytes.len() as u64;
                got.extend_from_slice(bytes);
                Ok(())
            })
            .unwrap();
            assert_eq!(len, data.len() as u64);
            assert_eq!(got, data[offset as usize..], "offset {offset}");
        }

        // An offset past the end is a named error, not an empty stream.
        let err = stream_file_from(&p, 10_001, 1_000, |_, _| Ok(())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("beyond end"), "{err}");

        // Prefix hashing: prefix digest continued over the suffix equals
        // the whole-file digest.
        let whole = Fnv1a::hash(&data);
        assert_eq!(hash_file_prefix(&p, data.len() as u64).unwrap(), whole);
        let cut = 2_500u64;
        let mut h = Fnv1a::from_digest(hash_file_prefix(&p, cut).unwrap());
        h.update(&data[cut as usize..]);
        assert_eq!(h.digest(), whole);
        assert!(hash_file_prefix(&p, data.len() as u64 + 1).is_err());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("pa_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("edges.bin");
        write_binary_file(&p, &sample()).unwrap();
        assert_eq!(read_binary_file(&p).unwrap(), sample());
        let p = dir.join("edges.txt");
        write_text_file(&p, &sample()).unwrap();
        assert_eq!(read_text_file(&p).unwrap(), sample());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
