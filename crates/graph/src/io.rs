//! Edge-list I/O.
//!
//! The paper's processors "have a shared file system and read-write data
//! files from the same external memory [...] independently". We mirror
//! that: each rank may write its own partition's edges with
//! [`write_text`] / [`write_binary`], and an analysis step reads the
//! concatenation back.

use crate::{EdgeList, Node};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Write edges as ASCII `u v` lines.
pub fn write_text<W: Write>(w: W, edges: &EdgeList) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    for (u, v) in edges.iter() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Read edges from ASCII `u v` lines. Blank lines and `#` comments are
/// skipped; malformed lines are an error.
pub fn read_text<R: Read>(r: R) -> io::Result<EdgeList> {
    let r = BufReader::new(r);
    let mut edges = EdgeList::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |s: Option<&str>| -> io::Result<Node> {
            s.and_then(|tok| tok.parse().ok()).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed edge on line {}", lineno + 1),
                )
            })
        };
        let u = parse(parts.next())?;
        let v = parse(parts.next())?;
        edges.push(u, v);
    }
    Ok(edges)
}

/// Write edges as little-endian `u64` pairs (16 bytes per edge).
pub fn write_binary<W: Write>(w: W, edges: &EdgeList) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    for (u, v) in edges.iter() {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Read edges written by [`write_binary`]. A trailing partial record is an
/// error.
pub fn read_binary<R: Read>(r: R) -> io::Result<EdgeList> {
    let mut r = BufReader::new(r);
    let mut edges = EdgeList::new();
    let mut buf = [0u8; 16];
    loop {
        match r.read(&mut buf[..1])? {
            0 => break,
            _ => {
                r.read_exact(&mut buf[1..]).map_err(|_| {
                    io::Error::new(io::ErrorKind::UnexpectedEof, "truncated edge record")
                })?;
                let u = Node::from_le_bytes(buf[..8].try_into().unwrap());
                let v = Node::from_le_bytes(buf[8..].try_into().unwrap());
                edges.push(u, v);
            }
        }
    }
    Ok(edges)
}

/// On-disk encoding of a streamed edge list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeFormat {
    /// ASCII `u v` lines, readable by [`read_text`].
    Text,
    /// Little-endian `u64` pairs (16 bytes/edge), readable by
    /// [`read_binary`].
    Binary,
}

/// Number of edges [`EdgeWriter`] buffers before writing a chunk out.
///
/// At 16 bytes per binary edge this is a 1 MiB write unit — large enough
/// to amortize syscalls, small enough that resident memory stays `O(1)`
/// in the number of edges streamed through.
pub const EDGE_WRITER_CHUNK: usize = 65_536;

/// A chunk-buffered streaming edge writer.
///
/// The generators deliver edges one at a time from hot per-node loops, so
/// [`EdgeWriter::push`] is infallible: edges accumulate in a fixed-size
/// chunk, full chunks are encoded and written in one call, and the first
/// I/O error is recorded and returned by [`EdgeWriter::finish`] (all
/// writes after a recorded error become no-ops). Peak resident memory is
/// one chunk, independent of how many edges pass through.
#[derive(Debug)]
pub struct EdgeWriter<W: Write> {
    w: W,
    format: EdgeFormat,
    chunk: Vec<(Node, Node)>,
    written: u64,
    bytes: u64,
    error: Option<io::Error>,
}

impl<W: Write> EdgeWriter<W> {
    /// Streaming writer over `w` in the given format.
    ///
    /// Callers pass the raw sink (e.g. a [`File`]); chunking makes an
    /// extra [`BufWriter`] layer unnecessary.
    pub fn new(w: W, format: EdgeFormat) -> Self {
        Self::resume(w, format, 0, 0)
    }

    /// Streaming writer continuing an interrupted stream: `w` must be
    /// positioned after `bytes` bytes holding `written` edges (e.g. a
    /// part file truncated to a checkpoint watermark and seeked to its
    /// end). Counts continue from the given values.
    pub fn resume(w: W, format: EdgeFormat, written: u64, bytes: u64) -> Self {
        Self {
            w,
            format,
            chunk: Vec::with_capacity(EDGE_WRITER_CHUNK),
            written,
            bytes,
            error: None,
        }
    }

    /// Append one edge. Never fails; I/O errors surface in
    /// [`EdgeWriter::finish`].
    #[inline]
    pub fn push(&mut self, u: Node, v: Node) {
        self.chunk.push((u, v));
        if self.chunk.len() >= EDGE_WRITER_CHUNK {
            self.write_chunk();
        }
    }

    /// Edges accepted so far (including any still in the chunk buffer).
    pub fn count(&self) -> u64 {
        self.written + self.chunk.len() as u64
    }

    /// Whether an I/O error has been recorded.
    pub fn has_error(&self) -> bool {
        self.error.is_some()
    }

    fn write_chunk(&mut self) {
        if self.error.is_some() {
            self.written += self.chunk.len() as u64;
            self.chunk.clear();
            return;
        }
        let res = match self.format {
            EdgeFormat::Binary => {
                let mut bytes = Vec::with_capacity(self.chunk.len() * 16);
                for &(u, v) in &self.chunk {
                    bytes.extend_from_slice(&u.to_le_bytes());
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
                self.w.write_all(&bytes).map(|()| bytes.len() as u64)
            }
            EdgeFormat::Text => {
                let mut text = String::with_capacity(self.chunk.len() * 12);
                for &(u, v) in &self.chunk {
                    text.push_str(&format!("{u} {v}\n"));
                }
                self.w
                    .write_all(text.as_bytes())
                    .map(|()| text.len() as u64)
            }
        };
        match res {
            Ok(n) => self.bytes += n,
            Err(e) => self.error = Some(e),
        }
        self.written += self.chunk.len() as u64;
        self.chunk.clear();
    }

    /// Flush everything through to the sink and report the durable
    /// `(edges, bytes)` watermark — the coordinates a checkpoint records
    /// so a restarted run can truncate the stream back to exactly this
    /// point (byte counts matter because the text encoding is
    /// variable-width). Unlike [`EdgeWriter::finish`] the writer stays
    /// usable; a previously recorded I/O error is surfaced (and kept, so
    /// `finish` still reports it).
    pub fn checkpoint(&mut self) -> io::Result<(u64, u64)> {
        self.write_chunk();
        if let Some(e) = &self.error {
            // io::Error is not Clone; surface a copy, keep the original.
            return Err(io::Error::new(e.kind(), e.to_string()));
        }
        self.w.flush()?;
        Ok((self.written, self.bytes))
    }

    /// Flush the final partial chunk and the sink; returns the total edge
    /// count, or the first error encountered anywhere in the stream.
    pub fn finish(mut self) -> io::Result<u64> {
        self.write_chunk();
        if let Some(e) = self.error {
            return Err(e);
        }
        self.w.flush()?;
        Ok(self.written)
    }
}

/// Convenience: write a text edge list to a path.
pub fn write_text_file<P: AsRef<Path>>(path: P, edges: &EdgeList) -> io::Result<()> {
    write_text(File::create(path)?, edges)
}

/// Convenience: read a text edge list from a path.
pub fn read_text_file<P: AsRef<Path>>(path: P) -> io::Result<EdgeList> {
    read_text(File::open(path)?)
}

/// Convenience: write a binary edge list to a path.
pub fn write_binary_file<P: AsRef<Path>>(path: P, edges: &EdgeList) -> io::Result<()> {
    write_binary(File::create(path)?, edges)
}

/// Convenience: read a binary edge list from a path.
pub fn read_binary_file<P: AsRef<Path>>(path: P) -> io::Result<EdgeList> {
    read_binary(File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        EdgeList::from_vec(vec![(0, 1), (7, 3), (u64::MAX - 1, 2)])
    }

    #[test]
    fn text_roundtrip() {
        let mut buf = Vec::new();
        write_text(&mut buf, &sample()).unwrap();
        let back = read_text(&buf[..]).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn text_skips_comments_and_blanks() {
        let input = "# header\n\n0 1\n  \n2 3\n";
        let el = read_text(input.as_bytes()).unwrap();
        assert_eq!(el.as_slice(), &[(0, 1), (2, 3)]);
    }

    #[test]
    fn text_rejects_malformed() {
        let err = read_text("0 x\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn binary_roundtrip() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        assert_eq!(buf.len(), 16 * sample().len());
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn binary_rejects_truncation() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf.pop();
        let err = read_binary(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn empty_roundtrips() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &EdgeList::new()).unwrap();
        assert!(read_binary(&buf[..]).unwrap().is_empty());
        let mut buf = Vec::new();
        write_text(&mut buf, &EdgeList::new()).unwrap();
        assert!(read_text(&buf[..]).unwrap().is_empty());
    }

    #[test]
    fn edge_writer_binary_matches_write_binary() {
        let edges = sample();
        let mut streamed = Vec::new();
        let mut w = EdgeWriter::new(&mut streamed, EdgeFormat::Binary);
        for (u, v) in edges.iter() {
            w.push(u, v);
        }
        assert_eq!(w.count(), edges.len() as u64);
        assert_eq!(w.finish().unwrap(), edges.len() as u64);
        let mut batch = Vec::new();
        write_binary(&mut batch, &edges).unwrap();
        assert_eq!(streamed, batch);
    }

    #[test]
    fn edge_writer_text_matches_write_text() {
        let edges = sample();
        let mut streamed = Vec::new();
        let mut w = EdgeWriter::new(&mut streamed, EdgeFormat::Text);
        for (u, v) in edges.iter() {
            w.push(u, v);
        }
        w.finish().unwrap();
        let mut batch = Vec::new();
        write_text(&mut batch, &edges).unwrap();
        assert_eq!(streamed, batch);
    }

    #[test]
    fn edge_writer_crosses_chunk_boundaries() {
        let n = EDGE_WRITER_CHUNK as u64 * 2 + 17;
        let mut streamed = Vec::new();
        let mut w = EdgeWriter::new(&mut streamed, EdgeFormat::Binary);
        for i in 0..n {
            w.push(i, i + 1);
        }
        assert_eq!(w.finish().unwrap(), n);
        let back = read_binary(&streamed[..]).unwrap();
        assert_eq!(back.len() as u64, n);
        assert_eq!(back.as_slice()[0], (0, 1));
        assert_eq!(back.as_slice()[n as usize - 1], (n - 1, n));
    }

    #[test]
    fn edge_writer_reports_first_io_error() {
        struct FailAfter(usize);
        impl Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.0 == 0 {
                    return Err(io::Error::other("disk full"));
                }
                self.0 -= 1;
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut w = EdgeWriter::new(FailAfter(1), EdgeFormat::Binary);
        for i in 0..(EDGE_WRITER_CHUNK as u64 * 3) {
            w.push(i, i); // keeps accepting pushes after the failure
        }
        assert!(w.has_error());
        let err = w.finish().unwrap_err();
        assert!(err.to_string().contains("disk full"));
    }

    #[test]
    fn edge_writer_checkpoint_reports_durable_watermark() {
        for format in [EdgeFormat::Binary, EdgeFormat::Text] {
            // Reference encoding of the first two edges alone.
            let mut prefix = Vec::new();
            let pw = {
                let mut pw = EdgeWriter::new(&mut prefix, format);
                pw.push(12, 3);
                pw.push(400, 9);
                pw.finish().unwrap()
            };
            assert_eq!(pw, 2);
            let mut streamed = Vec::new();
            let mut w = EdgeWriter::new(&mut streamed, format);
            w.push(12, 3);
            w.push(400, 9);
            let (edges, bytes) = w.checkpoint().unwrap();
            assert_eq!((edges, bytes), (2, prefix.len() as u64), "{format:?}");
            // The writer stays usable after a checkpoint.
            w.push(500, 12);
            assert_eq!(w.finish().unwrap(), 3);
        }
    }

    #[test]
    fn edge_writer_resume_continues_counts() {
        let mut first = Vec::new();
        let mut w = EdgeWriter::new(&mut first, EdgeFormat::Text);
        w.push(10, 2);
        let (edges, bytes) = w.checkpoint().unwrap();
        drop(w);
        // Second writer appends to the truncated stream.
        let mut tail = Vec::new();
        let mut w = EdgeWriter::resume(&mut tail, EdgeFormat::Text, edges, bytes);
        assert_eq!(w.count(), 1);
        w.push(11, 0);
        let (edges2, bytes2) = w.checkpoint().unwrap();
        assert_eq!(edges2, 2);
        assert_eq!(w.finish().unwrap(), 2);
        assert_eq!(bytes2, bytes + tail.len() as u64);
        first.extend_from_slice(&tail);
        let back = read_text(&first[..]).unwrap();
        assert_eq!(back.as_slice(), &[(10, 2), (11, 0)]);
    }

    #[test]
    fn edge_writer_checkpoint_surfaces_recorded_error() {
        struct AlwaysFail;
        impl Write for AlwaysFail {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut w = EdgeWriter::new(AlwaysFail, EdgeFormat::Binary);
        w.push(1, 0);
        let err = w.checkpoint().unwrap_err();
        assert!(err.to_string().contains("disk full"));
        // The original error is preserved for finish().
        assert!(w.finish().unwrap_err().to_string().contains("disk full"));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("pa_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("edges.bin");
        write_binary_file(&p, &sample()).unwrap();
        assert_eq!(read_binary_file(&p).unwrap(), sample());
        let p = dir.join("edges.txt");
        write_text_file(&p, &sample()).unwrap();
        assert_eq!(read_text_file(&p).unwrap(), sample());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
