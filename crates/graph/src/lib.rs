//! Graph substrate for the `prefattach` workspace.
//!
//! The generators in `pa-core` produce graphs as flat edge lists (each rank
//! emits the edges of its own nodes). This crate provides everything the
//! examples, tests and experiment harnesses need to *consume* those edges:
//!
//! * [`EdgeList`] — the interchange representation: a flat `(u, v)` list
//!   with concatenation and canonicalization helpers.
//! * [`Csr`] — compressed sparse row adjacency built from an edge list,
//!   for neighbor iteration and traversals.
//! * [`degrees`] — degree sequences and degree histograms (the raw data of
//!   the paper's Figure 4).
//! * [`validate`] — structural checking: node-id bounds, self-loops,
//!   parallel edges, expected edge counts (the invariants Algorithm 3.2
//!   must maintain).
//! * [`UnionFind`] + [`Csr::connected_components`]-style utilities — PA
//!   networks are connected by construction, which makes connectivity a
//!   strong end-to-end test.
//! * [`io`] — text and binary edge-list readers/writers.
//!
//! Node ids are `u64` throughout (the paper generates up to 10⁹ nodes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod container;
mod csr;
pub mod degrees;
mod edgelist;
pub mod io;
pub mod metrics;
mod unionfind;
pub mod validate;

pub use csr::Csr;
pub use edgelist::EdgeList;
pub use unionfind::UnionFind;

/// A node identifier.
pub type Node = u64;

/// An undirected edge; `(u, v)` and `(v, u)` denote the same edge.
pub type Edge = (Node, Node);
