//! Whole-graph structural metrics.
//!
//! Used by the examples and the model-comparison experiments to
//! characterize generated networks beyond their degree distribution:
//! triangle structure, degree assortativity, eccentricity estimates and
//! k-core decomposition — the standard toolkit the paper's introduction
//! alludes to when it motivates "large-scale network analysis".

use crate::{Csr, Node};

/// Count the triangles in the graph exactly.
///
/// Node-iterator algorithm over sorted adjacency with the standard
/// degree-ordering trick (each triangle is counted at its
/// lowest-degree-last corner), `O(Σ d_v²)` worst case but fast on
/// power-law graphs of this size. Multi-edges and self-loops must be
/// absent (validate first).
pub fn triangle_count(g: &Csr) -> u64 {
    let n = g.num_nodes();
    // Rank nodes by (degree, id) and orient edges from lower to higher
    // rank; counting wedges in the oriented graph counts each triangle
    // exactly once.
    let rank_of = |v: Node| (g.degree(v), v);
    let mut oriented: Vec<Vec<Node>> = vec![Vec::new(); n];
    for v in 0..n as Node {
        for &w in g.neighbors(v) {
            if rank_of(v) < rank_of(w) {
                oriented[v as usize].push(w);
            }
        }
    }
    for adj in &mut oriented {
        adj.sort_unstable();
    }
    let mut triangles = 0u64;
    for v in 0..n {
        let out = &oriented[v];
        for (i, &a) in out.iter().enumerate() {
            for &b in &out[i + 1..] {
                // Is there an oriented edge a->b or b->a? Both have
                // higher rank than v; the edge is oriented by rank.
                let (lo, hi) = if rank_of(a) < rank_of(b) {
                    (a, b)
                } else {
                    (b, a)
                };
                if oriented[lo as usize].binary_search(&hi).is_ok() {
                    triangles += 1;
                }
            }
        }
    }
    triangles
}

/// Global clustering coefficient (transitivity):
/// `3·triangles / number-of-wedges`.
///
/// Returns 0 for graphs with no wedge (no node of degree ≥ 2).
pub fn transitivity(g: &Csr) -> f64 {
    let wedges: u64 = (0..g.num_nodes() as Node)
        .map(|v| {
            let d = g.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        return 0.0;
    }
    3.0 * triangle_count(g) as f64 / wedges as f64
}

/// Degree assortativity: the Pearson correlation of the degrees at the
/// two ends of each edge (Newman 2002). Negative values mean hubs
/// preferentially connect to low-degree nodes — the signature of
/// preferential-attachment networks.
///
/// Returns `None` when undefined (no edges, or zero degree variance
/// across edge endpoints, e.g. regular graphs).
pub fn degree_assortativity(g: &Csr) -> Option<f64> {
    let mut m2 = 0u64; // twice the edge count, via the stub sum
    let (mut sum_prod, mut sum_side, mut sum_sq) = (0.0f64, 0.0f64, 0.0f64);
    for v in 0..g.num_nodes() as Node {
        let dv = g.degree(v) as f64;
        for &w in g.neighbors(v) {
            let dw = g.degree(w) as f64;
            // Each undirected edge contributes both (v,w) and (w,v),
            // which is exactly the symmetrized sum Newman's estimator
            // needs.
            sum_prod += dv * dw;
            sum_side += dv;
            sum_sq += dv * dv;
            m2 += 1;
        }
    }
    if m2 == 0 {
        return None;
    }
    let inv = 1.0 / m2 as f64;
    let num = inv * sum_prod - (inv * sum_side) * (inv * sum_side);
    let den = inv * sum_sq - (inv * sum_side) * (inv * sum_side);
    if den.abs() < 1e-15 {
        return None;
    }
    Some(num / den)
}

/// Lower-bound diameter estimate by the double-sweep heuristic: BFS from
/// `start`, then BFS again from the farthest node found. Exact on trees;
/// a tight lower bound in practice.
///
/// Returns `None` if `start` is isolated.
pub fn double_sweep_diameter(g: &Csr, start: Node) -> Option<u64> {
    let first = g.bfs_distances(start);
    let (far, d) = first
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != u64::MAX)
        .max_by_key(|&(_, &d)| d)?;
    if *d == 0 && g.degree(start) == 0 {
        return None;
    }
    let second = g.bfs_distances(far as Node);
    second.iter().filter(|&&d| d != u64::MAX).max().copied()
}

/// K-core decomposition: `out[v]` is the largest `k` such that `v`
/// belongs to a subgraph where every node has degree ≥ `k`.
///
/// Linear-time bucket peeling (Batagelj–Zaveršnik).
pub fn core_numbers(g: &Csr) -> Vec<u32> {
    let n = g.num_nodes();
    let mut deg: Vec<u32> = (0..n as Node).map(|v| g.degree(v) as u32).collect();
    let max_deg = deg.iter().copied().max().unwrap_or(0) as usize;
    // Bucket sort nodes by degree.
    let mut bins = vec![0usize; max_deg + 2];
    for &d in &deg {
        bins[d as usize + 1] += 1;
    }
    for i in 1..bins.len() {
        bins[i] += bins[i - 1];
    }
    let mut pos = vec![0usize; n];
    let mut order = vec![0 as Node; n];
    {
        let mut cursor = bins.clone();
        for v in 0..n {
            let d = deg[v] as usize;
            pos[v] = cursor[d];
            order[cursor[d]] = v as Node;
            cursor[d] += 1;
        }
    }
    // bins[d] = index of first node with degree >= d in `order`.
    let mut core = vec![0u32; n];
    for i in 0..n {
        let v = order[i];
        core[v as usize] = deg[v as usize];
        for &w in g.neighbors(v) {
            let w = w as usize;
            if deg[w] > deg[v as usize] {
                // Move w one bucket down: swap it with the first node of
                // its current bucket, then shrink the bucket boundary.
                let dw = deg[w] as usize;
                let pw = pos[w];
                let start = bins[dw];
                let u = order[start];
                if w as Node != u {
                    order.swap(pw, start);
                    pos[w] = start;
                    pos[u as usize] = pw;
                }
                bins[dw] += 1;
                deg[w] -= 1;
            }
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeList;

    fn graph(n: usize, edges: &[(Node, Node)]) -> Csr {
        Csr::from_edges(n, &EdgeList::from_vec(edges.to_vec()))
    }

    #[test]
    fn triangle_count_on_known_graphs() {
        // Triangle.
        assert_eq!(triangle_count(&graph(3, &[(0, 1), (1, 2), (2, 0)])), 1);
        // Square (no triangles).
        assert_eq!(
            triangle_count(&graph(4, &[(0, 1), (1, 2), (2, 3), (3, 0)])),
            0
        );
        // K4 has 4 triangles.
        assert_eq!(
            triangle_count(&graph(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])),
            4
        );
        // Two disjoint triangles.
        assert_eq!(
            triangle_count(&graph(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])),
            2
        );
    }

    #[test]
    fn transitivity_of_clique_is_one() {
        let k5: Vec<(Node, Node)> = (0..5).flat_map(|i| (0..i).map(move |j| (i, j))).collect();
        let g = graph(5, &k5);
        assert!((transitivity(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transitivity_of_star_is_zero() {
        let g = graph(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(transitivity(&g), 0.0);
    }

    #[test]
    fn assortativity_of_star_is_negative() {
        // A star is maximally disassortative.
        let g = graph(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let r = degree_assortativity(&g).unwrap();
        assert!((r + 1.0).abs() < 1e-9, "star assortativity = {r}");
    }

    #[test]
    fn assortativity_undefined_for_regular_graphs() {
        // A cycle: every endpoint degree is 2 — zero variance.
        let g = graph(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(degree_assortativity(&g).is_none());
        assert!(degree_assortativity(&graph(2, &[])).is_none());
    }

    #[test]
    fn double_sweep_on_path_is_exact() {
        let g = graph(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        // Starting anywhere, the double sweep finds the true diameter 4.
        for s in 0..5 {
            assert_eq!(double_sweep_diameter(&g, s), Some(4), "start {s}");
        }
    }

    #[test]
    fn double_sweep_isolated_start() {
        let g = graph(3, &[(0, 1)]);
        assert_eq!(double_sweep_diameter(&g, 2), None);
        assert_eq!(double_sweep_diameter(&g, 0), Some(1));
    }

    #[test]
    fn core_numbers_on_known_graph() {
        // K4 plus a pendant node attached to node 0.
        let g = graph(5, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (0, 4)]);
        let core = core_numbers(&g);
        assert_eq!(core, vec![3, 3, 3, 3, 1]);
    }

    #[test]
    fn core_numbers_of_tree_are_at_most_one() {
        let g = graph(6, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)]);
        let core = core_numbers(&g);
        assert!(core.iter().all(|&c| c == 1), "{core:?}");
    }

    #[test]
    fn core_numbers_of_cycle_are_two() {
        let g = graph(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert!(core_numbers(&g).iter().all(|&c| c == 2));
    }

    #[test]
    fn isolated_nodes_have_zero_core() {
        let g = graph(3, &[(0, 1)]);
        assert_eq!(core_numbers(&g)[2], 0);
    }
}
