//! Disjoint-set forest with union by rank and path halving.

/// Union–find over `0 .. n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `u32::MAX` elements (the paper-scale graphs
    /// analysed in-memory here stay well below that).
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "UnionFind limited to u32 ids");
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            num_sets: n,
        }
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let gp = self.parent[self.parent[x] as usize];
            self.parent[x] = gp;
            x = gp as usize;
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi as u32;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.num_sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Current number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when tracking zero elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_as_singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_sets(), 4);
        assert!(!uf.same(0, 1));
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert_eq!(uf.num_sets(), 2);
        assert!(uf.union(1, 2));
        assert_eq!(uf.num_sets(), 1);
        assert!(!uf.union(0, 3), "already merged");
        assert!(uf.same(0, 3));
    }

    #[test]
    fn chain_unions_compress() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_sets(), 1);
        let root = uf.find(0);
        for i in 0..n {
            assert_eq!(uf.find(i), root);
        }
    }

    #[test]
    fn empty_is_fine() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_sets(), 0);
    }
}
