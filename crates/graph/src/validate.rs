//! Structural validation of generated graphs.
//!
//! Algorithm 3.2's whole point is producing *simple* graphs under
//! concurrency: no self-loops, no parallel (duplicate) edges, exactly `x`
//! edges per non-seed node. These checks are the machine-verifiable form
//! of those guarantees and are used throughout the test suite.

use crate::{Edge, EdgeList, Node};
use std::collections::HashSet;

/// A structural defect found in a generated graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Defect {
    /// An edge `(v, v)`.
    SelfLoop(Node),
    /// The same undirected edge appears more than once.
    ParallelEdge(Edge),
    /// An endpoint is outside `0 .. n`.
    OutOfRange(Edge),
    /// Total edge count differs from expectation.
    WrongEdgeCount {
        /// Edges found in the list.
        found: usize,
        /// Edges the model should have produced.
        expected: usize,
    },
}

impl std::fmt::Display for Defect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Defect::SelfLoop(v) => write!(f, "self-loop at node {v}"),
            Defect::ParallelEdge((u, v)) => write!(f, "parallel edge ({u}, {v})"),
            Defect::OutOfRange((u, v)) => write!(f, "edge ({u}, {v}) out of node range"),
            Defect::WrongEdgeCount { found, expected } => {
                write!(f, "edge count {found}, expected {expected}")
            }
        }
    }
}

/// Check that `edges` is a simple undirected graph on nodes `0 .. n`.
///
/// Returns all defects found (empty = valid). Runs in O(m) expected time.
pub fn check_simple(n: u64, edges: &EdgeList) -> Vec<Defect> {
    let mut defects = Vec::new();
    let mut seen: HashSet<Edge> = HashSet::with_capacity(edges.len());
    for (u, v) in edges.iter() {
        if u >= n || v >= n {
            defects.push(Defect::OutOfRange((u, v)));
            continue;
        }
        if u == v {
            defects.push(Defect::SelfLoop(u));
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if !seen.insert(key) {
            defects.push(Defect::ParallelEdge(key));
        }
    }
    defects
}

/// Expected edge count of a PA network with `n` nodes and `x` edges per
/// node: the seed clique contributes `x(x-1)/2` edges, node `x` attaches
/// to all `x` seed nodes, and each node `t > x` adds `x` edges.
///
/// # Panics
///
/// Panics unless `n > x >= 1` (the model needs at least one non-seed node).
pub fn expected_pa_edges(n: u64, x: u64) -> usize {
    assert!(x >= 1 && n > x, "PA model requires n > x >= 1");
    (x * (x - 1) / 2 + (n - x) * x) as usize
}

/// Full PA-network validation: simplicity plus the exact edge count.
pub fn check_pa_network(n: u64, x: u64, edges: &EdgeList) -> Vec<Defect> {
    let mut defects = check_simple(n, edges);
    let expected = expected_pa_edges(n, x);
    if edges.len() != expected {
        defects.push(Defect::WrongEdgeCount {
            found: edges.len(),
            expected,
        });
    }
    defects
}

/// Assert-style helper for tests: panics with a readable report when the
/// graph is defective.
///
/// # Panics
///
/// Panics if any defect is found.
pub fn assert_valid_pa_network(n: u64, x: u64, edges: &EdgeList) {
    let defects = check_pa_network(n, x, edges);
    if !defects.is_empty() {
        let shown: Vec<String> = defects.iter().take(10).map(|d| d.to_string()).collect();
        panic!(
            "invalid PA network (n={n}, x={x}): {} defect(s), first: {}",
            defects.len(),
            shown.join("; ")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_graph_has_no_defects() {
        let el = EdgeList::from_vec(vec![(0, 1), (1, 2), (0, 2)]);
        assert!(check_simple(3, &el).is_empty());
    }

    #[test]
    fn detects_self_loop() {
        let el = EdgeList::from_vec(vec![(1, 1)]);
        assert_eq!(check_simple(3, &el), vec![Defect::SelfLoop(1)]);
    }

    #[test]
    fn detects_parallel_edges_in_both_directions() {
        let el = EdgeList::from_vec(vec![(0, 1), (1, 0)]);
        assert_eq!(check_simple(2, &el), vec![Defect::ParallelEdge((0, 1))]);
    }

    #[test]
    fn detects_out_of_range() {
        let el = EdgeList::from_vec(vec![(0, 5)]);
        assert_eq!(check_simple(3, &el), vec![Defect::OutOfRange((0, 5))]);
    }

    #[test]
    fn expected_edges_formula() {
        // x = 1: no clique edges; node 1 attaches to node 0; n-1 edges.
        assert_eq!(expected_pa_edges(10, 1), 9);
        // x = 3, n = 10: clique 3 + (10-3)*3 = 3 + 21 = 24.
        assert_eq!(expected_pa_edges(10, 3), 24);
    }

    #[test]
    #[should_panic(expected = "n > x")]
    fn expected_edges_rejects_degenerate() {
        let _ = expected_pa_edges(3, 3);
    }

    #[test]
    fn pa_check_flags_wrong_count() {
        let el = EdgeList::from_vec(vec![(0, 1)]);
        let defects = check_pa_network(3, 1, &el);
        assert_eq!(
            defects,
            vec![Defect::WrongEdgeCount {
                found: 1,
                expected: 2
            }]
        );
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Defect::SelfLoop(3).to_string(), "self-loop at node 3");
        assert_eq!(
            Defect::WrongEdgeCount {
                found: 1,
                expected: 2
            }
            .to_string(),
            "edge count 1, expected 2"
        );
    }
}
