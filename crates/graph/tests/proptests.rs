//! Property-based tests for pa-graph data structures.

use pa_graph::{degrees, io, validate, Csr, EdgeList, UnionFind};
use proptest::prelude::*;

/// Random edge list over `n` nodes (may contain self-loops/duplicates).
fn arb_edges(n: u64, max_m: usize) -> impl Strategy<Value = EdgeList> {
    prop::collection::vec((0..n, 0..n), 0..max_m).prop_map(EdgeList::from_vec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Binary and text I/O round-trip arbitrary edge lists.
    #[test]
    fn io_roundtrips(el in arb_edges(1_000, 200)) {
        let mut bin = Vec::new();
        io::write_binary(&mut bin, &el).unwrap();
        prop_assert_eq!(io::read_binary(&bin[..]).unwrap(), el.clone());
        let mut txt = Vec::new();
        io::write_text(&mut txt, &el).unwrap();
        prop_assert_eq!(io::read_text(&txt[..]).unwrap(), el);
    }

    /// Canonicalization is idempotent and direction-invariant.
    #[test]
    fn canonicalize_idempotent(el in arb_edges(100, 100)) {
        let c1 = el.canonicalized();
        prop_assert_eq!(c1.canonicalized(), c1.clone());
        // Flipping every edge yields the same canonical form.
        let flipped = EdgeList::from_vec(
            el.iter().map(|(u, v)| (v, u)).collect()
        );
        prop_assert_eq!(flipped.canonicalized(), c1);
    }

    /// CSR preserves the degree sequence and the handshake lemma.
    #[test]
    fn csr_matches_degree_sequence(el in arb_edges(50, 200)) {
        let n = 50usize;
        let csr = Csr::from_edges(n, &el);
        let deg = degrees::degree_sequence(n, &el);
        let mut total = 0u64;
        for v in 0..n as u64 {
            // Self-loops count twice in the degree sequence but appear
            // twice in CSR adjacency as well.
            prop_assert_eq!(csr.degree(v) as u64, deg[v as usize]);
            total += csr.degree(v) as u64;
        }
        prop_assert_eq!(total, 2 * el.len() as u64);
    }

    /// BFS distances satisfy the triangle property along edges.
    #[test]
    fn bfs_distances_are_consistent(el in arb_edges(40, 80)) {
        let n = 40usize;
        let csr = Csr::from_edges(n, &el);
        let dist = csr.bfs_distances(0);
        prop_assert_eq!(dist[0], 0);
        for (u, v) in el.iter() {
            let (du, dv) = (dist[u as usize], dist[v as usize]);
            match (du == u64::MAX, dv == u64::MAX) {
                (false, false) => prop_assert!(du.abs_diff(dv) <= 1),
                // An edge cannot bridge reached and unreached nodes.
                (a, b) => prop_assert_eq!(a, b),
            }
        }
    }

    /// Union–find agrees with CSR component counting.
    #[test]
    fn components_match_union_find(el in arb_edges(60, 60)) {
        let n = 60usize;
        let csr = Csr::from_edges(n, &el);
        let mut uf = UnionFind::new(n);
        for (u, v) in el.iter() {
            uf.union(u as usize, v as usize);
        }
        prop_assert_eq!(csr.connected_components(), uf.num_sets());
    }

    /// The simple-graph checker finds exactly the planted defects.
    #[test]
    fn validator_counts_planted_defects(
        base in 2u64..50,
        dups in 0usize..4,
        loops in 0usize..4,
    ) {
        // A clean path graph...
        let mut edges: Vec<(u64, u64)> = (0..base - 1).map(|i| (i, i + 1)).collect();
        // ...plus planted duplicates and self-loops.
        for i in 0..dups {
            edges.push((i as u64 % (base - 1), i as u64 % (base - 1) + 1));
        }
        for i in 0..loops {
            edges.push((i as u64 % base, i as u64 % base));
        }
        let defects = validate::check_simple(base, &EdgeList::from_vec(edges));
        prop_assert_eq!(defects.len(), dups + loops);
    }

    /// CCDF is a valid survival function for arbitrary degree data.
    #[test]
    fn ccdf_is_monotone_survival(degs in prop::collection::vec(0u64..500, 1..300)) {
        let c = degrees::ccdf(&degs);
        prop_assert!(!c.is_empty());
        prop_assert!((c[0].1 - 1.0).abs() < 1e-12, "starts at 1");
        for w in c.windows(2) {
            prop_assert!(w[1].0 > w[0].0);
            prop_assert!(w[1].1 < w[0].1);
            prop_assert!(w[1].1 > 0.0);
        }
    }

    /// Degree stats are internally consistent.
    #[test]
    fn degree_stats_consistent(degs in prop::collection::vec(0u64..100, 1..200)) {
        let s = degrees::degree_stats(&degs).unwrap();
        prop_assert!(s.min <= s.max);
        prop_assert!(s.mean >= s.min as f64 && s.mean <= s.max as f64);
        prop_assert_eq!(s.n, degs.len());
    }
}
