//! Message buffering (aggregation), §3.5 of the paper.
//!
//! "If a Processor i has multiple messages destined to the same processor
//! [...] Processor i can combine them into a single message by buffering
//! them instead of sending them individually. Each processor can do so by
//! maintaining P−1 buffers, one for each other processor."
//!
//! [`BufferedComm`] implements exactly that: `push` appends to the
//! per-destination buffer and transfers it as one packet when it reaches
//! the configured capacity. The flush discipline needed for deadlock
//! avoidance (flush request buffers at end of the generation sweep; flush
//! resolved buffers after every batch of processed incoming messages —
//! §3.5.2) is expressed by the caller via [`BufferedComm::flush`] /
//! [`BufferedComm::flush_all`].

use crate::transport::Transport;

/// A buffering layer over any [`Transport`], one buffer per destination
/// rank.
pub struct BufferedComm<M> {
    bufs: Vec<Vec<M>>,
    capacity: usize,
}

impl<M: Send> BufferedComm<M> {
    /// Create buffers for a world of `nranks` destinations, each flushing
    /// automatically at `capacity` messages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(nranks: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        Self {
            bufs: (0..nranks).map(|_| Vec::new()).collect(),
            capacity,
        }
    }

    /// The automatic flush threshold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Queue one logical message for `dest`, transferring the buffer as a
    /// single packet if it reaches capacity.
    ///
    /// The first push after a flush draws the backing buffer from `comm`'s
    /// packet pool, so steady-state buffered traffic recycles allocations
    /// between sender and receiver instead of growing the heap.
    #[inline]
    pub fn push<T: Transport<M>>(&mut self, comm: &mut T, dest: usize, msg: M) {
        if self.bufs[dest].capacity() == 0 {
            let mut pooled = comm.acquire_buffer(dest);
            pooled.reserve(self.capacity);
            self.bufs[dest] = pooled;
        }
        let buf = &mut self.bufs[dest];
        buf.push(msg);
        if buf.len() >= self.capacity {
            self.flush(comm, dest);
        }
    }

    /// Transfer any queued messages for `dest` immediately.
    pub fn flush<T: Transport<M>>(&mut self, comm: &mut T, dest: usize) {
        if !self.bufs[dest].is_empty() {
            let msgs = std::mem::take(&mut self.bufs[dest]);
            comm.send_batch(dest, msgs);
        }
    }

    /// Transfer every non-empty buffer (end-of-sweep flush and the RRP
    /// resolved-message rule both reduce to this).
    pub fn flush_all<T: Transport<M>>(&mut self, comm: &mut T) {
        for dest in 0..self.bufs.len() {
            self.flush(comm, dest);
        }
    }

    /// Number of messages currently queued for `dest`.
    pub fn pending(&self, dest: usize) -> usize {
        self.bufs[dest].len()
    }

    /// Total messages queued across all destinations.
    pub fn pending_total(&self) -> usize {
        self.bufs.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::World;
    use std::time::Duration;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BufferedComm::<u8>::new(2, 0);
    }

    #[test]
    fn auto_flush_at_capacity() {
        let world = World::new(2);
        let stats = world.run(|mut comm| {
            if comm.rank() == 0 {
                let mut buf = BufferedComm::new(comm.nranks(), 4);
                for i in 0..10u32 {
                    buf.push(&mut comm, 1, i);
                }
                assert_eq!(buf.pending(1), 2, "two messages left below threshold");
                buf.flush_all(&mut comm);
                assert_eq!(buf.pending_total(), 0);
            } else {
                let mut got = Vec::new();
                while got.len() < 10 {
                    let pkt = comm.recv_timeout(Duration::from_secs(5)).unwrap();
                    got.extend(pkt.msgs);
                }
                assert_eq!(got, (0..10u32).collect::<Vec<_>>());
            }
            comm.barrier();
            comm.into_stats()
        });
        // 10 messages in 3 packets: two full (4) + one flush (2).
        assert_eq!(stats[0].msgs_sent, 10);
        assert_eq!(stats[0].packets_sent, 3);
        assert_eq!(stats[1].packets_recv, 3);
    }

    #[test]
    fn flush_of_empty_buffer_sends_nothing() {
        let world = World::new(2);
        let stats = world.run(|mut comm: crate::Comm<u8>| {
            let mut buf = BufferedComm::new(comm.nranks(), 4);
            buf.flush_all(&mut comm);
            comm.barrier();
            comm.into_stats()
        });
        assert_eq!(stats[0].packets_sent, 0);
        assert_eq!(stats[1].packets_sent, 0);
    }

    #[test]
    fn push_draws_buffers_from_packet_pool() {
        // Receiver recycles every packet; after the first round trip the
        // sender's pushes are served by pooled buffers.
        let world = World::new(2);
        let stats = world.run(|mut comm: crate::Comm<u32>| {
            let rounds = 20u32;
            if comm.rank() == 0 {
                let mut buf = BufferedComm::new(comm.nranks(), 4);
                for r in 0..rounds {
                    for i in 0..4u32 {
                        buf.push(&mut comm, 1, r * 4 + i);
                    }
                    // Wait for the ack so the buffer is back in the pool.
                    let pkt = comm.recv_timeout(Duration::from_secs(5)).unwrap();
                    comm.recycle(pkt.src, pkt.msgs);
                }
            } else {
                for _ in 0..rounds {
                    let pkt = comm.recv_timeout(Duration::from_secs(5)).unwrap();
                    comm.recycle(pkt.src, pkt.msgs);
                    comm.send(0, 1);
                }
            }
            comm.barrier();
            comm.into_stats()
        });
        assert!(
            stats[0].pool_hits >= 15,
            "sender pool hits = {}",
            stats[0].pool_hits
        );
        assert!(stats[1].bufs_recycled >= 15);
    }

    #[test]
    fn pending_counts_per_destination() {
        let world = World::new(3);
        world.run(|mut comm: crate::Comm<u8>| {
            if comm.rank() == 0 {
                let mut buf = BufferedComm::new(comm.nranks(), 100);
                buf.push(&mut comm, 1, 1);
                buf.push(&mut comm, 1, 2);
                buf.push(&mut comm, 2, 3);
                assert_eq!(buf.pending(1), 2);
                assert_eq!(buf.pending(2), 1);
                assert_eq!(buf.pending_total(), 3);
                buf.flush_all(&mut comm);
            } else {
                let pkt = comm.recv_timeout(Duration::from_secs(5)).unwrap();
                assert_eq!(pkt.src, 0);
            }
            comm.barrier();
        });
    }
}
