//! Internal MPSC channel backing the data plane and the packet pool.
//!
//! A thin `Mutex<VecDeque>` + `Condvar` queue. Two properties matter to the
//! runtime and differ from `std::sync::mpsc`:
//!
//! * **Send never fails.** The queue lives as long as any endpoint handle,
//!   so late traffic (e.g. pool returns or hub broadcasts racing a rank's
//!   exit) is simply parked instead of erroring — mirroring MPI, where a
//!   send to a rank that has already hit `MPI_Finalize` is buffered by the
//!   library rather than reported at the sender.
//! * **Batched drain.** [`Receiver::drain_into`] moves every queued item
//!   out under a single lock acquisition, which is what makes
//!   `Comm::drain_recv` cheaper than a `try_recv` loop.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
}

/// Create a connected sender/receiver pair.
pub(crate) fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Producing endpoint; clonable so every rank can hold one per peer.
pub(crate) struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Sender<T> {
    /// Enqueue `item`. Infallible by design (see module docs).
    pub fn send(&self, item: T) {
        let mut q = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        q.push_back(item);
        drop(q);
        self.shared.ready.notify_one();
    }
}

/// Consuming endpoint (single consumer by convention, not enforced).
pub(crate) struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Pop the next item without blocking.
    pub fn try_recv(&self) -> Option<T> {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
    }

    /// Pop the next item, blocking up to `timeout`; `None` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline = Instant::now() + timeout;
        let mut q = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(item) = q.pop_front() {
                return Some(item);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _timed_out) = self
                .shared
                .ready
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
        }
    }

    /// Move every queued item into `out` under one lock; returns the count.
    pub fn drain_into(&self, out: &mut Vec<T>) -> usize {
        let mut q = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let n = q.len();
        out.extend(q.drain(..));
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let (tx, rx) = channel();
        for i in 0..100 {
            tx.send(i);
        }
        for i in 0..100 {
            assert_eq!(rx.try_recv(), Some(i));
        }
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn send_succeeds_after_receiver_dropped() {
        let (tx, rx) = channel();
        drop(rx);
        tx.send(7u64); // must not panic
    }

    #[test]
    fn recv_timeout_times_out_when_empty() {
        let (_tx, rx) = channel::<u8>();
        let start = Instant::now();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), None);
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn recv_timeout_wakes_on_send() {
        let (tx, rx) = channel();
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                tx.send(42u64);
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Some(42));
        });
    }

    #[test]
    fn drain_into_takes_everything_at_once() {
        let (tx, rx) = channel();
        for i in 0..10u32 {
            tx.send(i);
        }
        let mut out = Vec::new();
        assert_eq!(rx.drain_into(&mut out), 10);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert_eq!(rx.drain_into(&mut out), 0);
    }

    #[test]
    fn cloned_senders_share_queue() {
        let (tx, rx) = channel();
        let tx2 = tx.clone();
        tx.send(1u8);
        tx2.send(2u8);
        let mut out = Vec::new();
        rx.drain_into(&mut out);
        assert_eq!(out, vec![1, 2]);
    }
}
