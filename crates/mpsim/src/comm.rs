//! The world (rank spawner) and per-rank communicator.

use std::time::Duration;

use crate::channel::{channel, Receiver, Sender};
use crate::control::{ControlPlane, ReduceOp};
use crate::stats::CommStats;
use crate::TerminationHandle;

/// One physical transfer: a batch of logical messages from a single source.
#[derive(Debug, Clone)]
pub struct Packet<M> {
    /// Rank that sent the packet.
    pub src: usize,
    /// The logical messages aggregated into this packet (≥ 1).
    pub msgs: Vec<M>,
}

/// A world of `P` ranks.
///
/// `World` is the launcher: [`World::run`] spawns one thread per rank and
/// hands each a [`Comm`] wired to every other rank.
#[derive(Debug, Clone, Copy)]
pub struct World {
    nranks: usize,
}

impl World {
    /// Create a world with `nranks` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `nranks == 0`.
    pub fn new(nranks: usize) -> Self {
        assert!(nranks > 0, "world must have at least one rank");
        Self { nranks }
    }

    /// Number of ranks in the world.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Run `f` on every rank concurrently and collect the per-rank results
    /// in rank order.
    ///
    /// `M` is the message type exchanged over the data plane. Each rank's
    /// closure owns its [`Comm`]; no other state is shared, so the body is
    /// forced by the type system to keep rank memory private — the same
    /// discipline MPI imposes physically.
    pub fn run<M, T, F>(&self, f: F) -> Vec<T>
    where
        M: Send + 'static,
        T: Send,
        F: Fn(Comm<M>) -> T + Send + Sync,
    {
        let plane = ControlPlane::new(self.nranks);
        type Channels<M> = (Vec<Sender<Packet<M>>>, Vec<Receiver<Packet<M>>>);
        let (senders, receivers): Channels<M> = (0..self.nranks).map(|_| channel()).unzip();

        // Packet-pool freelists, one channel per ordered (src, dest) pair:
        // rank `src` *acquires* buffers destined for `dest` from its end,
        // and rank `dest` *returns* drained buffers to the same queue. Rank
        // `src` thus keeps the receiver for every pair it originates.
        let mut pool_rx_rows: Vec<Vec<Receiver<Vec<M>>>> = Vec::with_capacity(self.nranks);
        let mut pool_tx_cols: Vec<Vec<Sender<Vec<M>>>> =
            (0..self.nranks).map(|_| Vec::new()).collect();
        for _src in 0..self.nranks {
            let mut row = Vec::with_capacity(self.nranks);
            for col in pool_tx_cols.iter_mut() {
                let (tx, rx) = channel();
                row.push(rx);
                col.push(tx);
            }
            pool_rx_rows.push(row);
        }

        let mut results: Vec<Option<T>> = (0..self.nranks).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = receivers
                .into_iter()
                .zip(pool_rx_rows)
                .zip(pool_tx_cols)
                .enumerate()
                .map(|(rank, ((rx, pool_rx), pool_tx))| {
                    let comm = Comm {
                        rank,
                        senders: senders.clone(),
                        rx,
                        pool_rx,
                        pool_tx,
                        plane: plane.clone(),
                        stats: CommStats::new(self.nranks),
                    };
                    let f = &f;
                    scope.spawn(move || f(comm))
                })
                .collect();
            for (slot, h) in results.iter_mut().zip(handles) {
                // Propagate the original payload (not a generic join
                // error) so callers — notably stall-watchdog tests — can
                // `catch_unwind` and inspect the rank's panic message.
                match h.join() {
                    Ok(v) => *slot = Some(v),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        results.into_iter().map(|r| r.unwrap()).collect()
    }
}

/// Per-rank communicator: the only channel between rank memories.
///
/// Point-to-point operations are asynchronous and FIFO per (source,
/// destination) pair, matching MPI's non-overtaking guarantee. Collectives
/// must be called by *all* ranks (same rule as MPI); calling them from a
/// subset deadlocks, exactly as `MPI_Barrier` would.
pub struct Comm<M> {
    rank: usize,
    senders: Vec<Sender<Packet<M>>>,
    rx: Receiver<Packet<M>>,
    /// Freelist ends this rank draws send buffers from, indexed by dest.
    pool_rx: Vec<Receiver<Vec<M>>>,
    /// Freelist ends this rank returns received buffers to, indexed by src.
    pool_tx: Vec<Sender<Vec<M>>>,
    plane: std::sync::Arc<ControlPlane>,
    stats: CommStats,
}

impl<M: Send> Comm<M> {
    /// This rank's id in `[0, nranks)`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    #[inline]
    pub fn nranks(&self) -> usize {
        self.senders.len()
    }

    /// Send one logical message to `dest` as its own packet, drawing the
    /// packet buffer from the pool so ad-hoc sends don't allocate in steady
    /// state.
    ///
    /// For high-volume traffic prefer [`crate::BufferedComm`], which
    /// aggregates messages per destination (the paper's message buffering).
    pub fn send(&mut self, dest: usize, msg: M) {
        let mut buf = self.acquire_buffer(dest);
        buf.push(msg);
        self.send_batch(dest, buf);
    }

    /// Send a batch of logical messages to `dest` as a single packet.
    ///
    /// Empty batches are dropped (no packet is transferred or counted).
    /// Sends to a rank that already returned are parked, not errors —
    /// mirroring MPI, where the library buffers such traffic rather than
    /// failing the sender.
    pub fn send_batch(&mut self, dest: usize, msgs: Vec<M>) {
        if msgs.is_empty() {
            return;
        }
        self.stats.on_send(dest, msgs.len() as u64);
        self.senders[dest].send(Packet {
            src: self.rank,
            msgs,
        });
    }

    /// Take a recycled send buffer for `dest` from the packet pool, or
    /// allocate a fresh one on pool miss.
    pub fn acquire_buffer(&mut self, dest: usize) -> Vec<M> {
        match self.pool_rx[dest].try_recv() {
            Some(buf) => {
                debug_assert!(buf.is_empty());
                self.stats.pool_hits += 1;
                buf
            }
            None => {
                self.stats.pool_misses += 1;
                Vec::new()
            }
        }
    }

    /// Return a drained packet buffer to the rank it came from, making its
    /// allocation available to that rank's next send to us.
    ///
    /// Call this with `Packet::src` and the (consumed) `Packet::msgs` after
    /// processing a received packet. Zero-capacity buffers are dropped.
    pub fn recycle(&mut self, src: usize, mut buf: Vec<M>) {
        buf.clear();
        if buf.capacity() == 0 {
            return;
        }
        self.stats.bufs_recycled += 1;
        self.pool_tx[src].send(buf);
    }

    /// Non-blocking receive: the next pending packet, if any.
    pub fn try_recv(&mut self) -> Option<Packet<M>> {
        let pkt = self.rx.try_recv()?;
        self.stats.on_recv(pkt.src, pkt.msgs.len() as u64);
        Some(pkt)
    }

    /// Drain every packet currently queued into `out` under a single lock
    /// acquisition; returns how many packets were appended.
    ///
    /// This is the batched receive the engines use in their service loops:
    /// one lock per poll instead of one per packet.
    pub fn drain_recv(&mut self, out: &mut Vec<Packet<M>>) -> usize {
        let start = out.len();
        self.rx.drain_into(out);
        for pkt in &out[start..] {
            self.stats.on_recv(pkt.src, pkt.msgs.len() as u64);
        }
        out.len() - start
    }

    /// Blocking receive with a timeout; `None` on timeout.
    ///
    /// The PA engines use this instead of spinning when they run out of
    /// local work, so oversubscribed hosts don't burn cycles polling.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Option<Packet<M>> {
        let pkt = self.rx.recv_timeout(timeout)?;
        self.stats.on_recv(pkt.src, pkt.msgs.len() as u64);
        Some(pkt)
    }

    /// Global barrier: returns once every rank has entered.
    pub fn barrier(&self) {
        let _ = self.plane.collective(self.rank, 0, ReduceOp::Sum);
    }

    /// All-reduce a `u64` by summation; every rank gets the global sum.
    pub fn allreduce_sum(&self, val: u64) -> u64 {
        self.plane.collective(self.rank, val, ReduceOp::Sum).0
    }

    /// All-reduce a `u64` by maximum.
    pub fn allreduce_max(&self, val: u64) -> u64 {
        self.plane.collective(self.rank, val, ReduceOp::Max).0
    }

    /// All-reduce a `u64` by minimum.
    pub fn allreduce_min(&self, val: u64) -> u64 {
        self.plane.collective(self.rank, val, ReduceOp::Min).0
    }

    /// All-gather: every rank receives the vector of all contributions,
    /// indexed by rank.
    pub fn allgather_u64(&self, val: u64) -> Vec<u64> {
        self.plane.collective(self.rank, val, ReduceOp::Sum).1
    }

    /// Broadcast: every rank receives `root`'s contribution (non-root
    /// ranks' `val` is ignored, but they must still call).
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of range.
    pub fn broadcast_u64(&self, root: usize, val: u64) -> u64 {
        assert!(root < self.nranks(), "broadcast root out of range");
        self.plane.collective(self.rank, val, ReduceOp::Sum).1[root]
    }

    /// Exclusive prefix sum: the sum of the contributions of all ranks
    /// strictly below this one (rank 0 gets 0). The standard building
    /// block for assigning disjoint global id ranges.
    pub fn exclusive_prefix_sum(&self, val: u64) -> u64 {
        let snapshot = self.plane.collective(self.rank, val, ReduceOp::Sum).1;
        snapshot[..self.rank].iter().sum()
    }

    /// Handle to the global termination detector (see
    /// [`TerminationHandle`] for the substitution rationale).
    pub fn termination(&self) -> TerminationHandle {
        self.plane.termination()
    }

    /// Snapshot of this rank's communication statistics.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Consume the communicator, returning its final statistics.
    pub fn into_stats(self) -> CommStats {
        self.stats
    }
}

/// `Comm` is the threaded-channel implementation of the engine-facing
/// transport abstraction; every method delegates to the inherent one.
impl<M: Send> crate::Transport<M> for Comm<M> {
    fn rank(&self) -> usize {
        Comm::rank(self)
    }

    fn nranks(&self) -> usize {
        Comm::nranks(self)
    }

    fn send(&mut self, dest: usize, msg: M) {
        Comm::send(self, dest, msg)
    }

    fn send_batch(&mut self, dest: usize, msgs: Vec<M>) {
        Comm::send_batch(self, dest, msgs)
    }

    fn acquire_buffer(&mut self, dest: usize) -> Vec<M> {
        Comm::acquire_buffer(self, dest)
    }

    fn recycle(&mut self, src: usize, buf: Vec<M>) {
        Comm::recycle(self, src, buf)
    }

    fn try_recv(&mut self) -> Option<Packet<M>> {
        Comm::try_recv(self)
    }

    fn drain_recv(&mut self, out: &mut Vec<Packet<M>>) -> usize {
        Comm::drain_recv(self, out)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Option<Packet<M>> {
        Comm::recv_timeout(self, timeout)
    }

    fn barrier(&self) {
        Comm::barrier(self)
    }

    fn allreduce_sum(&self, val: u64) -> u64 {
        Comm::allreduce_sum(self, val)
    }

    fn allreduce_max(&self, val: u64) -> u64 {
        Comm::allreduce_max(self, val)
    }

    fn allreduce_min(&self, val: u64) -> u64 {
        Comm::allreduce_min(self, val)
    }

    fn allgather_u64(&self, val: u64) -> Vec<u64> {
        Comm::allgather_u64(self, val)
    }

    fn broadcast_u64(&self, root: usize, val: u64) -> u64 {
        Comm::broadcast_u64(self, root, val)
    }

    fn exclusive_prefix_sum(&self, val: u64) -> u64 {
        Comm::exclusive_prefix_sum(self, val)
    }

    fn termination(&self) -> crate::TerminationHandle {
        Comm::termination(self)
    }

    fn stats(&self) -> &CommStats {
        Comm::stats(self)
    }

    fn stats_mut(&mut self) -> &mut CommStats {
        &mut self.stats
    }

    fn into_stats(self) -> CommStats {
        Comm::into_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world_runs() {
        let world = World::new(1);
        let out: Vec<usize> = world.run(|comm: Comm<u64>| comm.rank() + comm.nranks());
        assert_eq!(out, vec![1]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_rank_world_panics() {
        let _ = World::new(0);
    }

    #[test]
    fn results_are_in_rank_order() {
        let world = World::new(6);
        let out: Vec<usize> = world.run(|comm: Comm<()>| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn ring_pass_delivers_in_order() {
        // Each rank sends 100 sequenced values to its right neighbour and
        // checks the sequence it receives from its left neighbour.
        let world = World::new(4);
        let ok = world.run(|mut comm: Comm<u64>| {
            let right = (comm.rank() + 1) % comm.nranks();
            for i in 0..100u64 {
                comm.send(right, i);
            }
            let mut expect = 0u64;
            while expect < 100 {
                if let Some(pkt) = comm.recv_timeout(Duration::from_secs(5)) {
                    for m in pkt.msgs {
                        assert_eq!(m, expect, "FIFO violated");
                        expect += 1;
                    }
                } else {
                    panic!("timed out waiting for ring traffic");
                }
            }
            comm.barrier();
            true
        });
        assert!(ok.iter().all(|&b| b));
    }

    #[test]
    fn batch_send_counts_one_packet() {
        let world = World::new(2);
        let stats = world.run(|mut comm: Comm<u8>| {
            if comm.rank() == 0 {
                comm.send_batch(1, vec![1, 2, 3]);
                comm.send_batch(1, vec![]); // dropped
            } else {
                let pkt = comm.recv_timeout(Duration::from_secs(5)).unwrap();
                assert_eq!(pkt.src, 0);
                assert_eq!(pkt.msgs, vec![1, 2, 3]);
            }
            comm.barrier();
            comm.into_stats()
        });
        assert_eq!(stats[0].msgs_sent, 3);
        assert_eq!(stats[0].packets_sent, 1);
        assert_eq!(stats[1].msgs_recv, 3);
        assert_eq!(stats[1].packets_recv, 1);
        assert_eq!(stats[1].recv_from[0], 3);
    }

    #[test]
    fn allreduce_and_allgather() {
        let world = World::new(5);
        let out = world.run(|comm: Comm<()>| {
            let r = comm.rank() as u64;
            let sum = comm.allreduce_sum(r + 1);
            let max = comm.allreduce_max(r);
            let min = comm.allreduce_min(r + 10);
            let gathered = comm.allgather_u64(r * r);
            (sum, max, min, gathered)
        });
        for (sum, max, min, gathered) in out {
            assert_eq!(sum, 15);
            assert_eq!(max, 4);
            assert_eq!(min, 10);
            assert_eq!(gathered, vec![0, 1, 4, 9, 16]);
        }
    }

    #[test]
    fn broadcast_delivers_roots_value() {
        let world = World::new(4);
        let out = world.run(|comm: Comm<()>| comm.broadcast_u64(2, (comm.rank() as u64 + 1) * 100));
        assert_eq!(out, vec![300, 300, 300, 300]);
    }

    #[test]
    fn exclusive_prefix_sum_assigns_ranges() {
        let world = World::new(4);
        let out = world.run(|comm: Comm<()>| {
            // Rank r contributes r+1 items; offsets are 0, 1, 3, 6.
            comm.exclusive_prefix_sum(comm.rank() as u64 + 1)
        });
        assert_eq!(out, vec![0, 1, 3, 6]);
    }

    #[test]
    fn try_recv_returns_none_when_empty() {
        let world = World::new(1);
        let got = world.run(|mut comm: Comm<u32>| comm.try_recv().is_none());
        assert!(got[0]);
    }

    #[test]
    fn termination_counter_coordinates_shutdown() {
        // Rank 0 seeds work; workers complete it; all ranks spin on the
        // detector and exit together without any explicit "stop" message.
        let world = World::new(3);
        let out = world.run(|mut comm: Comm<u64>| {
            let term = comm.termination();
            if comm.rank() == 0 {
                term.add(20);
                for i in 0..20u64 {
                    comm.send(1 + (i as usize % 2), i);
                }
            }
            comm.barrier(); // ensure work registered before anyone checks
            let mut handled = 0u64;
            while !term.is_done() {
                if let Some(pkt) = comm.recv_timeout(Duration::from_millis(1)) {
                    let n = pkt.msgs.len() as u64;
                    handled += n;
                    term.complete(n);
                }
            }
            handled
        });
        assert_eq!(out[0], 0);
        assert_eq!(out[1] + out[2], 20);
    }

    #[test]
    fn pool_recycles_buffers_back_to_sender() {
        // Ping-pong: rank 0 sends, rank 1 drains and recycles, so rank 0's
        // later sends must find pooled buffers (hits) instead of allocating.
        let world = World::new(2);
        let stats = world.run(|mut comm: Comm<u64>| {
            let rounds = 50u64;
            if comm.rank() == 0 {
                for i in 0..rounds {
                    comm.send(1, i);
                    // Wait for the ack so the recycled buffer is back.
                    let pkt = comm.recv_timeout(Duration::from_secs(5)).unwrap();
                    comm.recycle(pkt.src, pkt.msgs);
                }
            } else {
                let mut got = 0u64;
                let mut inbox = Vec::new();
                while got < rounds {
                    if comm.drain_recv(&mut inbox) == 0 {
                        if let Some(pkt) = comm.recv_timeout(Duration::from_secs(5)) {
                            inbox.push(pkt);
                        }
                    }
                    for pkt in inbox.drain(..) {
                        assert_eq!(pkt.msgs, vec![got]);
                        got += 1;
                        comm.send(0, 1); // ack
                        comm.recycle(pkt.src, pkt.msgs);
                    }
                }
            }
            comm.barrier();
            comm.into_stats()
        });
        // Round 1 allocates; nearly every later acquire must hit the pool.
        assert!(
            stats[0].pool_hits >= 40,
            "rank 0 pool hits = {}",
            stats[0].pool_hits
        );
        assert!(stats[1].bufs_recycled >= 40);
        assert_eq!(stats[0].msgs_sent, 50);
    }

    #[test]
    fn drain_recv_takes_all_pending_packets() {
        let world = World::new(2);
        let out = world.run(|mut comm: Comm<u64>| {
            if comm.rank() == 0 {
                for i in 0..10u64 {
                    comm.send(1, i);
                }
                comm.barrier(); // traffic is in flight before rank 1 drains
                0
            } else {
                comm.barrier();
                let mut inbox = Vec::new();
                let mut got = 0usize;
                while got < 10 {
                    let n = comm.drain_recv(&mut inbox);
                    if n == 0 {
                        std::thread::yield_now();
                    }
                    got += n;
                }
                let stats = comm.stats();
                assert_eq!(stats.packets_recv, 10);
                assert_eq!(stats.msgs_recv, 10);
                inbox.iter().map(|p| p.msgs.len()).sum()
            }
        });
        assert_eq!(out[1], 10);
    }

    #[test]
    fn send_to_finished_rank_is_parked_not_fatal() {
        // Rank 1 exits immediately; rank 0's late send must not panic.
        let world = World::new(2);
        let out = world.run(|mut comm: Comm<u8>| {
            if comm.rank() == 0 {
                std::thread::sleep(Duration::from_millis(10));
                comm.send(1, 1);
            }
            comm.rank()
        });
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn many_to_one_stress() {
        let world = World::new(8);
        let n_each = 500u64;
        let sums = world.run(|mut comm: Comm<u64>| {
            if comm.rank() == 0 {
                let expect_msgs = (comm.nranks() as u64 - 1) * n_each;
                let mut got = 0u64;
                let mut sum = 0u64;
                while got < expect_msgs {
                    let pkt = comm
                        .recv_timeout(Duration::from_secs(10))
                        .expect("stress traffic timed out");
                    got += pkt.msgs.len() as u64;
                    sum += pkt.msgs.iter().sum::<u64>();
                }
                sum
            } else {
                for i in 0..n_each {
                    comm.send(0, i);
                }
                0
            }
        });
        let per_rank_sum = n_each * (n_each - 1) / 2;
        assert_eq!(sums[0], per_rank_sum * 7);
    }
}
