//! Reusable conformance checks for the [`Transport`] contract.
//!
//! The `transport` module docs promise two things every implementation
//! must honour: `drain_recv` is the polling receive (returns immediately,
//! even empty-handed) and `recv_timeout` is the parking receive (blocks
//! until arrival or timeout, wakes promptly when traffic is already
//! queued or arrives mid-wait) — plus per-pair FIFO delivery and
//! world-wide collectives. These checks encode those assertions once so
//! every backend runs the *same* suite: [`crate::Comm`] in a threaded
//! world, [`crate::LoopbackTransport`], [`crate::FaultTransport`] over
//! both, and out-of-crate backends such as `pa-net`'s `TcpTransport` —
//! a new transport is conformance-tested by calling one function per
//! rank.
//!
//! The functions panic (via `assert!`) on any contract violation, so
//! they slot directly into `#[test]` bodies.

use std::time::{Duration, Instant};

use crate::Transport;

/// Generous bound for "returns immediately / wakes promptly": far above
/// scheduler jitter, far below the parking timeouts used here.
const PROMPT: Duration = Duration::from_millis(500);

/// Single-rank half of the contract: self-sends loop back in FIFO order
/// via the polling receive, the parking receive never blocks longer than
/// its timeout, and collectives of one rank are identities.
///
/// # Panics
///
/// Panics on any contract violation.
pub fn check_single_rank<T: Transport<u64>>(mut t: T) {
    assert_eq!(t.rank(), 0);
    assert_eq!(t.nranks(), 1);

    // drain_recv on an empty queue: returns 0, immediately.
    let mut out = Vec::new();
    let start = Instant::now();
    assert_eq!(t.drain_recv(&mut out), 0);
    assert!(start.elapsed() < PROMPT, "drain_recv blocked while empty");

    // Self-sends come back in order. A fault-injecting wrapper may hold
    // packets for a few receive calls, so poll until everything arrived.
    const N: u64 = 200;
    for i in 0..N {
        t.send(0, i);
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut got = Vec::new();
    while got.len() < N as usize {
        assert!(Instant::now() < deadline, "delivery stalled: {got:?}");
        let start = Instant::now();
        t.drain_recv(&mut out);
        assert!(start.elapsed() < PROMPT, "drain_recv blocked");
        for pkt in out.drain(..) {
            assert_eq!(pkt.src, 0);
            got.extend_from_slice(&pkt.msgs);
            t.recycle(pkt.src, pkt.msgs);
        }
    }
    assert_eq!(got, (0..N).collect::<Vec<_>>(), "per-pair FIFO violated");

    // Parking receive with nothing in flight: None, within the timeout
    // (loopback documents an immediate return — the contract is only an
    // upper bound).
    let start = Instant::now();
    assert!(t.recv_timeout(Duration::from_millis(50)).is_none());
    assert!(
        start.elapsed() < Duration::from_millis(50) + PROMPT,
        "recv_timeout overslept its timeout"
    );

    // Parking receive with traffic already queued: must deliver promptly,
    // not sleep out the full timeout.
    t.send(0, 777);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(Instant::now() < deadline, "queued packet never delivered");
        let start = Instant::now();
        if let Some(pkt) = t.recv_timeout(Duration::from_secs(5)) {
            assert!(
                start.elapsed() < Duration::from_secs(2),
                "recv_timeout poll-slept with traffic queued"
            );
            assert_eq!(pkt.msgs, vec![777]);
            break;
        }
    }

    // Collectives of one rank are identities, through any wrapper.
    t.barrier();
    assert_eq!(t.allreduce_sum(4), 4);
    assert_eq!(t.allgather_u64(9), vec![9]);
    assert_eq!(t.exclusive_prefix_sum(8), 0);
}

/// Multi-rank half of the contract, for worlds of two or more ranks.
/// Call from *every* rank with that rank's transport.
///
/// Every rank above 0 floods rank 0 with numbered messages; rank 0
/// checks non-blocking drains and per-source FIFO delivery. A second
/// stage checks that a parked receive wakes on arrival instead of
/// sleeping out its timeout, and the collectives are exercised
/// world-wide throughout.
///
/// # Panics
///
/// Panics on any contract violation.
pub fn check_multi_rank<T: Transport<u64>>(mut t: T) {
    const N: u64 = 500;
    let world = t.nranks();
    assert!(world >= 2, "multi-rank check needs at least two ranks");
    assert!(t.rank() < world);

    // Stage 1: FIFO under load. Collectives must also agree world-wide.
    let expect: u64 = (1..=world as u64).sum();
    assert_eq!(t.allreduce_sum(t.rank() as u64 + 1), expect);
    assert_eq!(t.allreduce_max(t.rank() as u64), world as u64 - 1);
    assert_eq!(
        t.allgather_u64(t.rank() as u64 * 10),
        (0..world as u64).map(|r| r * 10).collect::<Vec<_>>()
    );
    assert_eq!(
        t.broadcast_u64(world - 1, t.rank() as u64 + 7),
        world as u64 + 6
    );
    assert_eq!(
        t.exclusive_prefix_sum(1),
        t.rank() as u64,
        "prefix sum must count the ranks below"
    );
    if t.rank() > 0 {
        for i in 0..N {
            t.send(0, i);
        }
        // Batches keep their internal order too.
        t.send_batch(0, vec![N, N + 1, N + 2]);
    } else {
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut got = vec![Vec::new(); world];
        let mut out = Vec::new();
        let mut total = 0usize;
        while total < (world - 1) * (N + 3) as usize {
            assert!(
                Instant::now() < deadline,
                "delivery stalled after {total} messages"
            );
            let start = Instant::now();
            t.drain_recv(&mut out);
            assert!(start.elapsed() < PROMPT, "drain_recv blocked");
            if out.is_empty() {
                // Quiescent: park (the idiomatic completion loop never
                // spins on drain_recv).
                if let Some(pkt) = t.recv_timeout(Duration::from_millis(5)) {
                    out.push(pkt);
                }
            }
            for pkt in out.drain(..) {
                assert!(pkt.src > 0, "only ranks above 0 send in this stage");
                total += pkt.msgs.len();
                got[pkt.src].extend_from_slice(&pkt.msgs);
                t.recycle(pkt.src, pkt.msgs);
            }
        }
        let reference: Vec<u64> = (0..N + 3).collect();
        for (src, seq) in got.iter().enumerate().skip(1) {
            assert_eq!(seq, &reference, "per-pair FIFO violated from rank {src}");
        }
    }
    t.barrier();

    // Stage 2: wake-on-arrival. Rank 0 parks with a long timeout before
    // rank 1 sends; the park must end on arrival, not at the timeout.
    if t.rank() == 0 {
        let start = Instant::now();
        let deadline = start + Duration::from_secs(30);
        loop {
            assert!(Instant::now() < deadline, "parked receive never woke");
            if let Some(pkt) = t.recv_timeout(Duration::from_secs(30)) {
                assert_eq!(pkt.msgs, vec![41]);
                assert!(
                    start.elapsed() < Duration::from_secs(10),
                    "recv_timeout slept through an arrival"
                );
                t.recycle(pkt.src, pkt.msgs);
                break;
            }
        }
    } else if t.rank() == 1 {
        // Let rank 0 actually park first.
        std::thread::sleep(Duration::from_millis(50));
        t.send(0, 41);
    }
    t.barrier();

    // Stage 3: the termination detector reaches quiescence world-wide.
    // Rank 0 registers work, publishes it through the barrier, and every
    // rank completes its delivered share — the add → barrier → observe
    // pattern the engine driver uses.
    let term = t.termination();
    if t.rank() == 0 {
        term.add((world as u64 - 1) * 2);
    }
    t.barrier();
    assert!(
        !term.is_done() || world == 1,
        "registered work must be visible after the barrier"
    );
    if t.rank() == 0 {
        for dest in 1..world {
            t.send_batch(dest, vec![1, 2]);
        }
    } else {
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut handled = 0u64;
        while handled < 2 {
            assert!(Instant::now() < deadline, "termination traffic stalled");
            if let Some(pkt) = t.recv_timeout(Duration::from_millis(5)) {
                handled += pkt.msgs.len() as u64;
                term.complete(pkt.msgs.len() as u64);
                t.recycle(pkt.src, pkt.msgs);
            }
        }
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while !term.is_done() {
        assert!(Instant::now() < deadline, "termination never detected");
        // Poll the receive path: distributed backends propagate their
        // completion ledger through it.
        let mut out = Vec::new();
        t.drain_recv(&mut out);
        assert!(out.is_empty(), "unexpected traffic during termination");
        std::thread::sleep(Duration::from_millis(1));
    }
    t.barrier();
}
