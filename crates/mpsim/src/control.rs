//! The shared control plane: collectives and termination detection.
//!
//! MPI provides global operations (`MPI_Barrier`, `MPI_Allreduce`,
//! `MPI_Allgather`) whose *semantics* are "a value computed from every
//! rank's contribution, visible to every rank". We implement them over a
//! shared, generation-counted rendezvous rather than over the data-plane
//! channels; this keeps algorithm state strictly rank-private while giving
//! the same observable behaviour as the MPI calls (see DESIGN.md §2).

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Reduction operators supported by [`ControlPlane::allreduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReduceOp {
    Sum,
    Max,
    Min,
}

struct Rendezvous {
    /// Per-rank contribution slots for the current round.
    slots: Vec<u64>,
    /// Number of ranks that have deposited a value this round.
    arrived: usize,
    /// Number of ranks that have picked up the result this round.
    departed: usize,
    /// Combined value for the round, valid once `arrived == nranks`.
    result: u64,
    /// Full slot snapshot for allgather.
    snapshot: Vec<u64>,
    /// Round parity: ranks may not start round r+1 until all left round r.
    round: u64,
}

/// Shared rendezvous state used to implement barrier/allreduce/allgather.
pub(crate) struct ControlPlane {
    nranks: usize,
    inner: Mutex<Rendezvous>,
    cv: Condvar,
    outstanding: AtomicI64,
}

impl ControlPlane {
    pub(crate) fn new(nranks: usize) -> Arc<Self> {
        Arc::new(Self {
            nranks,
            inner: Mutex::new(Rendezvous {
                slots: vec![0; nranks],
                arrived: 0,
                departed: 0,
                result: 0,
                snapshot: vec![0; nranks],
                round: 0,
            }),
            cv: Condvar::new(),
            outstanding: AtomicI64::new(0),
        })
    }

    /// One collective round: deposit `val`, wait for everyone, read the
    /// combined result, and wait until everyone has read it before the
    /// next round can start. All ranks must call with the same `op`.
    pub(crate) fn collective(&self, rank: usize, val: u64, op: ReduceOp) -> (u64, Vec<u64>) {
        let mut g = lock(&self.inner);
        // A rank may only enter while the round is in its gathering phase;
        // if the previous round is still draining (some ranks have not yet
        // read the result), wait for it to complete.
        while g.departed != 0 {
            g = wait(&self.cv, g);
        }
        let my_round = g.round;
        g.slots[rank] = val;
        g.arrived += 1;
        if g.arrived == self.nranks {
            g.result = match op {
                ReduceOp::Sum => g.slots.iter().copied().fold(0u64, u64::wrapping_add),
                ReduceOp::Max => g.slots.iter().copied().max().unwrap_or(0),
                ReduceOp::Min => g.slots.iter().copied().min().unwrap_or(u64::MAX),
            };
            let slots = std::mem::take(&mut g.slots);
            g.snapshot.clone_from(&slots);
            g.slots = slots;
            self.cv.notify_all();
        } else {
            while g.arrived != self.nranks && g.round == my_round {
                g = wait(&self.cv, g);
            }
        }
        let out = (g.result, g.snapshot.clone());
        g.departed += 1;
        if g.departed == self.nranks {
            g.arrived = 0;
            g.departed = 0;
            g.round = g.round.wrapping_add(1);
            self.cv.notify_all();
        }
        out
    }

    pub(crate) fn termination(self: &Arc<Self>) -> TerminationHandle {
        TerminationHandle::from_backend(Arc::clone(self) as Arc<dyn TerminationBackend>)
    }
}

impl TerminationBackend for ControlPlane {
    fn add(&self, n: u64) {
        self.outstanding.fetch_add(n as i64, Ordering::AcqRel);
    }

    fn complete(&self, n: u64) {
        let prev = self.outstanding.fetch_sub(n as i64, Ordering::AcqRel);
        debug_assert!(prev >= n as i64, "termination counter went negative");
    }

    fn is_done(&self) -> bool {
        self.outstanding.load(Ordering::Acquire) == 0
    }

    fn outstanding(&self) -> i64 {
        self.outstanding.load(Ordering::Acquire)
    }
}

/// Lock, shrugging off poisoning: a panicking rank already fails the run
/// via its joined thread, so cascading poison panics only obscure it.
fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(PoisonError::into_inner)
}

/// The state a [`TerminationHandle`] delegates to.
///
/// The shared-memory runtime backs the handle with a single atomic
/// counter (the private `ControlPlane`); a distributed transport (e.g. the TCP
/// backend in `pa-net`) backs it with a per-rank ledger kept current by
/// control traffic. The *observable* semantics every backend must honour:
///
/// * `add`/`complete` adjust the global outstanding-work count;
/// * `is_done` eventually returns `true` on every rank once adds and
///   completes balance world-wide, and never returns `true` while
///   registered work remains;
/// * adds are only guaranteed *globally* visible after the next
///   transport barrier (the registration pattern is always
///   `add → barrier → observe`; see the `Transport` contract). The
///   shared-memory backend happens to publish immediately, but callers
///   must not rely on that.
pub trait TerminationBackend: Send + Sync {
    /// Register `n` units of outstanding work.
    fn add(&self, n: u64);
    /// Mark `n` units of work resolved.
    fn complete(&self, n: u64);
    /// True when no outstanding work remains anywhere in the world.
    fn is_done(&self) -> bool;
    /// Current outstanding-work count (diagnostic; may lag on
    /// distributed backends).
    fn outstanding(&self) -> i64;
}

/// A global outstanding-work counter shared by all ranks.
///
/// In the paper's algorithm, a `request` in flight always corresponds to an
/// unresolved `F_t(e)` slot at the requesting rank, so "no unresolved slots
/// anywhere" implies no meaningful traffic remains and every rank may stop
/// its receive loop. A production MPI code detects that condition with a
/// nonblocking-allreduce loop; this handle exposes the identical predicate
/// directly. Ranks *add* work when they create unresolved slots and
/// *complete* it when a slot is finally resolved.
///
/// The handle is a thin clonable front over a [`TerminationBackend`]:
/// an atomic counter for the in-process runtimes, a distributed ledger
/// for socket transports.
#[derive(Clone)]
pub struct TerminationHandle {
    backend: Arc<dyn TerminationBackend>,
}

impl TerminationHandle {
    /// Wrap a backend. Transport implementations outside this crate use
    /// this to plug their own (e.g. distributed) detector into the
    /// engine-facing handle.
    pub fn from_backend(backend: Arc<dyn TerminationBackend>) -> Self {
        Self { backend }
    }

    /// Register `n` units of outstanding work.
    #[inline]
    pub fn add(&self, n: u64) {
        self.backend.add(n);
    }

    /// Mark `n` units of work resolved.
    #[inline]
    pub fn complete(&self, n: u64) {
        self.backend.complete(n);
    }

    /// True when no outstanding work remains anywhere in the world.
    #[inline]
    pub fn is_done(&self) -> bool {
        self.backend.is_done()
    }

    /// Current outstanding-work count (diagnostic).
    #[inline]
    pub fn outstanding(&self) -> i64 {
        self.backend.outstanding()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn collective_sum_across_threads() {
        let plane = ControlPlane::new(4);
        thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|r| {
                    let plane = Arc::clone(&plane);
                    s.spawn(move || plane.collective(r, (r as u64 + 1) * 10, ReduceOp::Sum))
                })
                .collect();
            for h in handles {
                let (sum, snap) = h.join().unwrap();
                assert_eq!(sum, 10 + 20 + 30 + 40);
                assert_eq!(snap, vec![10, 20, 30, 40]);
            }
        });
    }

    #[test]
    fn collective_rounds_do_not_interleave() {
        // Run many back-to-back rounds; every rank must observe the same
        // per-round result even with heavy contention.
        let plane = ControlPlane::new(3);
        thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|r| {
                    let plane = Arc::clone(&plane);
                    s.spawn(move || {
                        let mut results = Vec::new();
                        for round in 0..200u64 {
                            let (sum, _) = plane.collective(r, round + r as u64, ReduceOp::Sum);
                            results.push(sum);
                        }
                        results
                    })
                })
                .collect();
            let all: Vec<Vec<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            for round in 0..200usize {
                let expect = (round as u64) * 3 + 3; // sum of (round + r) for r in 0..3
                for res in &all {
                    assert_eq!(res[round], expect, "round {round}");
                }
            }
        });
    }

    #[test]
    fn max_and_min_ops() {
        let plane = ControlPlane::new(2);
        thread::scope(|s| {
            let p1 = Arc::clone(&plane);
            let a = s.spawn(move || p1.collective(0, 7, ReduceOp::Max).0);
            let p2 = Arc::clone(&plane);
            let b = s.spawn(move || p2.collective(1, 3, ReduceOp::Max).0);
            assert_eq!(a.join().unwrap(), 7);
            assert_eq!(b.join().unwrap(), 7);
        });
        thread::scope(|s| {
            let p1 = Arc::clone(&plane);
            let a = s.spawn(move || p1.collective(0, 7, ReduceOp::Min).0);
            let p2 = Arc::clone(&plane);
            let b = s.spawn(move || p2.collective(1, 3, ReduceOp::Min).0);
            assert_eq!(a.join().unwrap(), 3);
            assert_eq!(b.join().unwrap(), 3);
        });
    }

    #[test]
    fn termination_counter_tracks_work() {
        let plane = ControlPlane::new(1);
        let t = plane.termination();
        assert!(t.is_done());
        t.add(3);
        assert!(!t.is_done());
        assert_eq!(t.outstanding(), 3);
        t.complete(2);
        assert!(!t.is_done());
        t.complete(1);
        assert!(t.is_done());
    }

    #[test]
    fn termination_shared_across_clones() {
        let plane = ControlPlane::new(2);
        let a = plane.termination();
        let b = plane.termination();
        a.add(1);
        assert!(!b.is_done());
        b.complete(1);
        assert!(a.is_done());
    }
}
