//! Deterministic fault injection over any [`Transport`].
//!
//! The SC'13 engines are written against reliable FIFO MPI delivery, but
//! their correctness argument (deferred `F_k` resolution along dependency
//! chains, Lemmas 3.1–3.4) silently assumes every `request`/`resolved`
//! message arrives *exactly once and in order*. [`FaultTransport`] is the
//! adversary that checks the assumption: it wraps an inner transport and
//! perturbs the receive path according to a seeded [`FaultPlan`] —
//!
//! * **delay**: hold a packet for `delay_polls` receive calls;
//! * **reorder**: let a packet from another source overtake this one
//!   (per-pair FIFO is *preserved* — only cross-pair order, which MPI
//!   never promised, is shuffled);
//! * **duplicate**: deliver the packet twice, the clone a few polls
//!   later — the engine must be idempotent against it;
//! * **drop**: simulate a lost wire transfer. With
//!   [`FaultPlan::recover`] the internal ack/retransmit sublayer
//!   re-delivers it after `retransmit_polls` (counted in
//!   [`CommStats::retransmitted`]); without recovery the packet is gone
//!   for good, which must trip the driver's stall watchdog rather than
//!   hang the run;
//! * **ack loss**: the packet arrives, but its (simulated) acknowledgement
//!   does not, so the sender retransmits — the redundant copy is caught by
//!   per-source sequence numbers and discarded *below* the engine
//!   (counted in [`CommStats::deduped`]).
//!
//! Every decision is a pure function of `(plan.seed, src, dst, seq)`, so a
//! fault schedule is reproducible run-to-run regardless of thread timing.
//! Countdowns are measured in *polls* (receive calls on this rank), not
//! wall time, which keeps schedules meaningful under arbitrary scheduler
//! jitter and lets the parking receive honour the [`Transport`] contract:
//! [`FaultTransport::recv_timeout`] parks on the inner transport in short
//! slices while deliveries are pending and delegates the full wait when
//! nothing is staged.
//!
//! The send path, packet pool, collectives, and termination detector pass
//! straight through to the inner transport.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use crate::comm::Packet;
use crate::stats::CommStats;
use crate::transport::Transport;
use crate::TerminationHandle;

/// How long [`FaultTransport::recv_timeout`] parks on the inner transport
/// per slice while staged deliveries are counting down. Short enough that
/// a countdown of a few polls resolves in ~1 ms; long enough not to spin.
const TICK_SLICE: Duration = Duration::from_micros(200);

/// A seeded, per-packet fault schedule.
///
/// Probabilities are evaluated once per arriving packet, mutually
/// exclusively (their sum must be ≤ 1); the remainder delivers clean.
/// `*_polls` fields measure countdowns in receive calls on the destination
/// rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the schedule. Two runs with the same seed (and the same
    /// per-pair packet sequence) draw identical faults.
    pub seed: u64,
    /// Probability a packet is held back `delay_polls` receive calls.
    pub p_delay: f64,
    /// How many polls a delayed packet waits.
    pub delay_polls: u32,
    /// Probability a packet lets one packet from a *different* source
    /// overtake it (cross-pair reorder; per-pair FIFO is preserved).
    pub p_reorder: f64,
    /// Probability a packet is delivered twice (the engine sees both).
    pub p_dup: f64,
    /// How many polls after the original the duplicate arrives.
    pub dup_polls: u32,
    /// Probability the wire transfer is lost.
    pub p_drop: f64,
    /// Probability the transfer succeeds but its acknowledgement is lost,
    /// provoking a spurious retransmission (deduplicated below the
    /// engine).
    pub p_ack_loss: f64,
    /// How many polls the retransmit timer runs before a dropped or
    /// unacknowledged packet is re-delivered.
    pub retransmit_polls: u32,
    /// Whether the ack/retransmit sublayer recovers dropped packets.
    /// `false` models an unreliable transport with no recovery: dropped
    /// packets stay lost, and a run that depended on one must be caught
    /// by the stall watchdog instead of hanging.
    pub recover: bool,
}

impl FaultPlan {
    /// A schedule with every fault disabled (useful as a baseline).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            p_delay: 0.0,
            delay_polls: 0,
            p_reorder: 0.0,
            p_dup: 0.0,
            dup_polls: 0,
            p_drop: 0.0,
            p_ack_loss: 0.0,
            retransmit_polls: 0,
            recover: true,
        }
    }

    /// Mild background noise: a few percent of packets delayed,
    /// reordered, duplicated, dropped-and-recovered, or spuriously
    /// retransmitted.
    pub fn light(seed: u64) -> Self {
        Self {
            p_delay: 0.05,
            delay_polls: 2,
            p_reorder: 0.03,
            p_dup: 0.02,
            dup_polls: 2,
            p_drop: 0.02,
            p_ack_loss: 0.02,
            retransmit_polls: 4,
            ..Self::none(seed)
        }
    }

    /// Heavy weather: roughly half of all packets suffer some fault.
    pub fn aggressive(seed: u64) -> Self {
        Self {
            p_delay: 0.15,
            delay_polls: 4,
            p_reorder: 0.10,
            p_dup: 0.08,
            dup_polls: 3,
            p_drop: 0.10,
            p_ack_loss: 0.05,
            retransmit_polls: 6,
            ..Self::none(seed)
        }
    }

    /// Pure loss with the recovery sublayer switched off: every fourth
    /// packet vanishes permanently. Runs under this plan are *expected*
    /// to stall — it exists to test the watchdog path.
    pub fn drop_without_recovery(seed: u64) -> Self {
        Self {
            p_drop: 0.25,
            recover: false,
            ..Self::none(seed)
        }
    }

    /// Check internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any probability lies outside `[0, 1]` or the
    /// probabilities sum above 1 (fault kinds are mutually exclusive per
    /// packet).
    pub fn validate(&self) {
        for (name, p) in [
            ("p_delay", self.p_delay),
            ("p_reorder", self.p_reorder),
            ("p_dup", self.p_dup),
            ("p_drop", self.p_drop),
            ("p_ack_loss", self.p_ack_loss),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} = {p} must lie in [0, 1]");
        }
        let total = self.p_delay + self.p_reorder + self.p_dup + self.p_drop + self.p_ack_loss;
        assert!(
            total <= 1.0 + 1e-9,
            "fault probabilities sum to {total} > 1 (they are mutually exclusive per packet)"
        );
    }

    /// The fault drawn for the `seq`-th packet of the `(src, dst)` pair —
    /// a pure function of the plan seed and the packet's identity.
    fn draw(&self, src: usize, dst: usize, seq: u64) -> FaultKind {
        // splitmix64 over the packet identity: decorrelates consecutive
        // sequence numbers and (src, dst) pairs.
        let mut z = self
            .seed
            .wrapping_add((src as u64) << 40)
            .wrapping_add((dst as u64) << 20)
            .wrapping_add(seq)
            .wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64;
        let mut cum = self.p_drop;
        if u < cum {
            return FaultKind::Drop;
        }
        cum += self.p_delay;
        if u < cum {
            return FaultKind::Delay;
        }
        cum += self.p_reorder;
        if u < cum {
            return FaultKind::Reorder;
        }
        cum += self.p_dup;
        if u < cum {
            return FaultKind::Dup;
        }
        cum += self.p_ack_loss;
        if u < cum {
            return FaultKind::AckLoss;
        }
        FaultKind::None
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum FaultKind {
    None,
    Delay,
    Reorder,
    Dup,
    Drop,
    AckLoss,
}

/// A packet staged in its source queue, waiting for its release poll.
struct Staged<M> {
    pkt: Packet<M>,
    /// This packet's position in its (src, dst) sequence.
    seq: u64,
    /// Deliverable once the rank's poll counter reaches this value.
    release_at: u64,
    /// Remaining chances to let another source's packet overtake this one.
    skip_budget: u8,
    /// Whether delivering this packet counts as a retransmission.
    retransmit: bool,
}

/// A clone parked outside the FIFO queues: an engine-visible duplicate or
/// a spurious (ack-loss) retransmission awaiting dedup.
struct SideEntry<M> {
    pkt: Packet<M>,
    seq: u64,
    ready_at: u64,
    /// `true`: bypass dedup and deliver to the engine (duplicate fault).
    /// `false`: run the sequence-number dedup check (ack-loss
    /// retransmission — must be discarded).
    engine_visible: bool,
}

/// A [`Transport`] decorator that perturbs packet delivery under a seeded
/// [`FaultPlan`]; see the [module docs](self).
///
/// Wraps any inner transport. Sends, the packet pool, collectives, and
/// termination pass through untouched; the receive path stages arriving
/// packets per source (preserving per-pair FIFO), applies the drawn fault
/// and releases packets as the poll counter advances.
pub struct FaultTransport<M, T: Transport<M>> {
    inner: T,
    plan: FaultPlan,
    /// Receive calls on this rank — the clock faults count down against.
    polls: u64,
    /// Next sequence number per source (first packet of a pair is seq 1).
    seqs: Vec<u64>,
    /// Highest sequence number delivered per source, for retransmit dedup.
    delivered_seq: Vec<u64>,
    /// Per-source staging queues (head-of-line order is FIFO per pair).
    srcq: Vec<VecDeque<Staged<M>>>,
    /// Duplicates and spurious retransmissions, outside FIFO order.
    side: Vec<SideEntry<M>>,
    /// Packets released to the engine, in delivery order.
    ready: VecDeque<Packet<M>>,
    /// Reusable scratch for draining the inner transport.
    rx_buf: Vec<Packet<M>>,
}

impl<M: Clone + Send, T: Transport<M>> FaultTransport<M, T> {
    /// Wrap `inner`, perturbing its receive path according to `plan`.
    ///
    /// # Panics
    ///
    /// Panics if `plan` is invalid (see [`FaultPlan::validate`]).
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        plan.validate();
        let nranks = inner.nranks();
        Self {
            inner,
            plan,
            polls: 0,
            seqs: vec![0; nranks],
            delivered_seq: vec![0; nranks],
            srcq: (0..nranks).map(|_| VecDeque::new()).collect(),
            side: Vec::new(),
            ready: VecDeque::new(),
            rx_buf: Vec::new(),
        }
    }

    /// The active fault schedule.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Unwrap, discarding any still-staged packets (only duplicates or
    /// late traffic can remain staged once a run has terminated).
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Pull everything the inner transport has queued into the staging
    /// area, drawing one fault decision per packet.
    fn pump(&mut self) {
        let mut buf = std::mem::take(&mut self.rx_buf);
        self.inner.drain_recv(&mut buf);
        for pkt in buf.drain(..) {
            self.stage(pkt);
        }
        self.rx_buf = buf;
    }

    /// Apply the drawn fault to one arriving packet.
    fn stage(&mut self, pkt: Packet<M>) {
        let src = pkt.src;
        let dst = self.inner.rank();
        self.seqs[src] += 1;
        let seq = self.seqs[src];
        let kind = self.plan.draw(src, dst, seq);
        if kind != FaultKind::None {
            self.inner.stats_mut().faults_injected += 1;
        }
        let mut staged = Staged {
            pkt,
            seq,
            release_at: self.polls,
            skip_budget: 0,
            retransmit: false,
        };
        match kind {
            FaultKind::None => {}
            FaultKind::Delay => {
                staged.release_at = self.polls + u64::from(self.plan.delay_polls);
            }
            FaultKind::Reorder => {
                staged.skip_budget = 1;
            }
            FaultKind::Dup => {
                self.side.push(SideEntry {
                    pkt: clone_packet(&staged.pkt),
                    seq,
                    ready_at: self.polls + u64::from(self.plan.dup_polls),
                    engine_visible: true,
                });
            }
            FaultKind::Drop => {
                if !self.plan.recover {
                    // No recovery sublayer: the packet is gone. Account
                    // the loss so a post-mortem can see what vanished.
                    return;
                }
                // The retransmit timer re-delivers the original after its
                // timeout; FIFO order within the pair is preserved
                // because the queue head blocks successors.
                staged.release_at = self.polls + u64::from(self.plan.retransmit_polls);
                staged.retransmit = true;
            }
            FaultKind::AckLoss => {
                // Delivery succeeds now; the lost ack provokes a
                // retransmission that the dedup layer must swallow.
                self.side.push(SideEntry {
                    pkt: clone_packet(&staged.pkt),
                    seq,
                    ready_at: self.polls + u64::from(self.plan.retransmit_polls),
                    engine_visible: false,
                });
            }
        }
        self.srcq[src].push_back(staged);
    }

    /// Move every deliverable staged packet into the ready queue.
    ///
    /// Sweeps the per-source queues repeatedly until no sweep makes
    /// progress: a queue head releases once its poll countdown has run
    /// out, except that a reorder-marked head with skip budget left defers
    /// to a ready head of *another* source (cross-pair overtaking — the
    /// only reordering MPI semantics permit us to inject).
    fn release(&mut self) {
        loop {
            let ready_head: Vec<bool> = self
                .srcq
                .iter()
                .map(|q| q.front().is_some_and(|s| s.release_at <= self.polls))
                .collect();
            let mut progressed = false;
            for s in 0..self.srcq.len() {
                while let Some(head) = self.srcq[s].front_mut() {
                    if head.release_at > self.polls {
                        break;
                    }
                    if head.skip_budget > 0
                        && ready_head.iter().enumerate().any(|(o, &r)| o != s && r)
                    {
                        head.skip_budget -= 1;
                        break; // let the other source's head go first
                    }
                    let staged = self.srcq[s].pop_front().expect("head checked above");
                    self.delivered_seq[s] = self.delivered_seq[s].max(staged.seq);
                    if staged.retransmit {
                        self.inner.stats_mut().retransmitted += 1;
                    }
                    self.ready.push_back(staged.pkt);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        // Side-channel deliveries: duplicates go to the engine, spurious
        // retransmissions die against the delivered-sequence ledger.
        let mut i = 0;
        while i < self.side.len() {
            if self.side[i].ready_at > self.polls {
                i += 1;
                continue;
            }
            let entry = self.side.swap_remove(i);
            if entry.engine_visible {
                self.ready.push_back(entry.pkt);
            } else {
                debug_assert!(
                    entry.seq <= self.delivered_seq[entry.pkt.src]
                        || self.srcq[entry.pkt.src].iter().any(|s| s.seq == entry.seq),
                    "retransmission for a packet that was never staged"
                );
                if entry.seq <= self.delivered_seq[entry.pkt.src] {
                    self.inner.stats_mut().retransmitted += 1;
                    self.inner.stats_mut().deduped += 1;
                } else {
                    // Original not delivered yet — the retransmission is
                    // still in flight behind it; try again later.
                    self.side.push(SideEntry {
                        ready_at: self.polls + u64::from(self.plan.retransmit_polls).max(1),
                        ..entry
                    });
                }
            }
        }
    }

    /// Advance the poll clock one tick and collect deliverable packets.
    fn tick(&mut self) {
        self.polls += 1;
        self.pump();
        self.release();
    }

    /// Anything staged that still needs poll ticks to become deliverable?
    fn has_pending(&self) -> bool {
        !self.side.is_empty() || self.srcq.iter().any(|q| !q.is_empty())
    }

    /// Final statistics of the wrapped transport.
    pub fn into_stats(self) -> CommStats {
        self.inner.into_stats()
    }
}

fn clone_packet<M: Clone>(pkt: &Packet<M>) -> Packet<M> {
    Packet {
        src: pkt.src,
        msgs: pkt.msgs.clone(),
    }
}

impl<M: Clone + Send, T: Transport<M>> Transport<M> for FaultTransport<M, T> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn nranks(&self) -> usize {
        self.inner.nranks()
    }

    fn send(&mut self, dest: usize, msg: M) {
        self.inner.send(dest, msg);
    }

    fn send_batch(&mut self, dest: usize, msgs: Vec<M>) {
        self.inner.send_batch(dest, msgs);
    }

    fn acquire_buffer(&mut self, dest: usize) -> Vec<M> {
        self.inner.acquire_buffer(dest)
    }

    fn recycle(&mut self, src: usize, buf: Vec<M>) {
        self.inner.recycle(src, buf);
    }

    fn try_recv(&mut self) -> Option<Packet<M>> {
        self.tick();
        self.ready.pop_front()
    }

    fn drain_recv(&mut self, out: &mut Vec<Packet<M>>) -> usize {
        self.tick();
        let n = self.ready.len();
        out.extend(self.ready.drain(..));
        n
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Option<Packet<M>> {
        let deadline = Instant::now() + timeout;
        loop {
            self.tick();
            if let Some(pkt) = self.ready.pop_front() {
                return Some(pkt);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let remaining = deadline - now;
            if self.has_pending() {
                // Staged countdowns need poll ticks to progress: park in
                // short slices so a held packet releases promptly.
                let slice = remaining.min(TICK_SLICE);
                if let Some(pkt) = self.inner.recv_timeout(slice) {
                    self.stage(pkt);
                }
            } else {
                // Nothing staged: delegate the whole wait. The inner
                // transport wakes promptly on arrival (its contract), and
                // an inner timeout means genuinely nothing arrived.
                match self.inner.recv_timeout(remaining) {
                    Some(pkt) => self.stage(pkt),
                    None => return None,
                }
            }
        }
    }

    fn barrier(&self) {
        self.inner.barrier();
    }

    fn allreduce_sum(&self, val: u64) -> u64 {
        self.inner.allreduce_sum(val)
    }

    fn allreduce_max(&self, val: u64) -> u64 {
        self.inner.allreduce_max(val)
    }

    fn allreduce_min(&self, val: u64) -> u64 {
        self.inner.allreduce_min(val)
    }

    fn allgather_u64(&self, val: u64) -> Vec<u64> {
        self.inner.allgather_u64(val)
    }

    fn broadcast_u64(&self, root: usize, val: u64) -> u64 {
        self.inner.broadcast_u64(root, val)
    }

    fn exclusive_prefix_sum(&self, val: u64) -> u64 {
        self.inner.exclusive_prefix_sum(val)
    }

    fn termination(&self) -> TerminationHandle {
        self.inner.termination()
    }

    fn stats(&self) -> &CommStats {
        self.inner.stats()
    }

    fn stats_mut(&mut self) -> &mut CommStats {
        self.inner.stats_mut()
    }

    fn into_stats(self) -> CommStats {
        FaultTransport::into_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopback::LoopbackTransport;

    fn faulty(plan: FaultPlan) -> FaultTransport<u64, LoopbackTransport<u64>> {
        FaultTransport::new(LoopbackTransport::new(), plan)
    }

    /// Drive the transport's receive side until `n` messages came out (or
    /// a generous tick budget is exhausted), returning them in order.
    fn drain_n(t: &mut FaultTransport<u64, LoopbackTransport<u64>>, n: usize) -> Vec<u64> {
        let mut got = Vec::new();
        for _ in 0..10_000 {
            if let Some(pkt) = t.try_recv() {
                got.extend(pkt.msgs);
            }
            if got.len() >= n {
                break;
            }
        }
        got
    }

    #[test]
    fn draw_is_deterministic_and_covers_all_kinds() {
        let plan = FaultPlan::aggressive(1);
        let mut seen = std::collections::HashSet::new();
        for seq in 0..10_000u64 {
            let a = plan.draw(0, 1, seq);
            assert_eq!(a, plan.draw(0, 1, seq), "same key, same fault");
            seen.insert(a);
        }
        for kind in [
            FaultKind::None,
            FaultKind::Delay,
            FaultKind::Reorder,
            FaultKind::Dup,
            FaultKind::Drop,
            FaultKind::AckLoss,
        ] {
            assert!(seen.contains(&kind), "{kind:?} never drawn in 10k packets");
        }
    }

    #[test]
    fn clean_plan_is_transparent() {
        let mut t = faulty(FaultPlan::none(3));
        for i in 0..100u64 {
            t.send(0, i);
        }
        assert_eq!(drain_n(&mut t, 100), (0..100).collect::<Vec<_>>());
        assert_eq!(t.stats().faults_injected, 0);
    }

    #[test]
    fn fifo_per_pair_is_preserved_under_all_recovering_faults() {
        // A single source can never be overtaken (reorder is cross-pair
        // only), so even an aggressive plan must keep the sequence intact
        // once duplicates are tolerated.
        let mut t = faulty(FaultPlan {
            p_dup: 0.0, // duplicates repeat values; exclude for strictness
            ..FaultPlan::aggressive(7)
        });
        for i in 0..500u64 {
            t.send(0, i);
        }
        let got = drain_n(&mut t, 500);
        assert_eq!(got, (0..500).collect::<Vec<_>>(), "per-pair FIFO broken");
        let stats = t.into_stats();
        assert!(
            stats.faults_injected > 0,
            "aggressive plan injected nothing"
        );
        assert!(stats.retransmitted > 0, "no drop was recovered");
        assert!(stats.deduped > 0, "no spurious retransmission was deduped");
    }

    #[test]
    fn duplicates_surface_to_the_engine() {
        let plan = FaultPlan {
            p_dup: 1.0,
            dup_polls: 1,
            ..FaultPlan::none(5)
        };
        let mut t = faulty(plan);
        t.send(0, 42);
        let got = drain_n(&mut t, 2);
        assert_eq!(got, vec![42, 42], "duplicate fault must deliver twice");
        assert_eq!(t.stats().faults_injected, 1);
    }

    #[test]
    fn unrecovered_drops_vanish() {
        let plan = FaultPlan {
            p_drop: 1.0,
            recover: false,
            ..FaultPlan::none(5)
        };
        let mut t = faulty(plan);
        t.send(0, 9);
        for _ in 0..50 {
            assert!(t.try_recv().is_none(), "dropped packet must stay lost");
        }
        assert_eq!(t.stats().faults_injected, 1);
        assert_eq!(t.stats().retransmitted, 0);
    }

    #[test]
    fn recovered_drop_is_redelivered_and_counted() {
        let plan = FaultPlan {
            p_drop: 1.0,
            retransmit_polls: 3,
            ..FaultPlan::none(5)
        };
        let mut t = faulty(plan);
        t.send(0, 77);
        let got = drain_n(&mut t, 1);
        assert_eq!(got, vec![77]);
        assert_eq!(t.stats().retransmitted, 1);
        assert_eq!(t.stats().deduped, 0);
    }

    #[test]
    fn delayed_packet_released_after_its_countdown() {
        let plan = FaultPlan {
            p_delay: 1.0,
            delay_polls: 4,
            ..FaultPlan::none(5)
        };
        let mut t = faulty(plan);
        t.send(0, 1);
        // The packet is staged on the first tick and held for 4 more.
        assert!(t.try_recv().is_none());
        let mut waited = 0;
        let val = loop {
            waited += 1;
            if let Some(pkt) = t.try_recv() {
                break pkt.msgs[0];
            }
            assert!(waited < 100, "delayed packet never released");
        };
        assert_eq!(val, 1);
        assert!(waited >= 3, "released before the countdown ran out");
    }

    #[test]
    fn recv_timeout_delivers_pending_delayed_packets() {
        let plan = FaultPlan {
            p_delay: 1.0,
            delay_polls: 5,
            ..FaultPlan::none(9)
        };
        let mut t = faulty(plan);
        t.send(0, 8);
        let start = Instant::now();
        let pkt = t
            .recv_timeout(Duration::from_secs(30))
            .expect("delayed packet must be delivered, not time out");
        assert_eq!(pkt.msgs, vec![8]);
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn recv_timeout_with_nothing_staged_inherits_inner_semantics() {
        // Over a loopback inner (which returns immediately — its only
        // sender is this thread), an empty fault transport must not spin.
        let mut t = faulty(FaultPlan::aggressive(1));
        let start = Instant::now();
        assert!(t.recv_timeout(Duration::from_secs(60)).is_none());
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn ack_loss_retransmission_is_deduped_below_the_engine() {
        let plan = FaultPlan {
            p_ack_loss: 1.0,
            retransmit_polls: 2,
            ..FaultPlan::none(5)
        };
        let mut t = faulty(plan);
        t.send(0, 13);
        let got = drain_n(&mut t, 1);
        assert_eq!(got, vec![13]);
        // Let the spurious retransmission fire and be swallowed.
        for _ in 0..20 {
            assert!(t.try_recv().is_none(), "retransmission leaked to engine");
        }
        let stats = t.into_stats();
        assert_eq!(stats.deduped, 1);
        assert_eq!(stats.retransmitted, 1);
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed: u64| {
            let mut t = faulty(FaultPlan::aggressive(seed));
            for i in 0..300u64 {
                t.send(0, i);
            }
            let got = drain_n(&mut t, 300);
            let stats = t.into_stats();
            (got, stats.faults_injected, stats.retransmitted)
        };
        assert_eq!(run(11), run(11), "fault schedule must be reproducible");
        let kinds = |seed: u64| {
            let plan = FaultPlan::aggressive(seed);
            (0..300u64).map(|s| plan.draw(0, 0, s)).collect::<Vec<_>>()
        };
        assert_ne!(
            kinds(11),
            kinds(12),
            "different seeds should draw different schedules"
        );
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn invalid_probability_rejected() {
        let _ = faulty(FaultPlan {
            p_drop: 1.5,
            ..FaultPlan::none(0)
        });
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn probabilities_summing_above_one_rejected() {
        let _ = faulty(FaultPlan {
            p_drop: 0.6,
            p_delay: 0.6,
            ..FaultPlan::none(0)
        });
    }

    #[test]
    fn collectives_and_pool_pass_through() {
        let mut t = faulty(FaultPlan::light(2));
        assert_eq!(t.rank(), 0);
        assert_eq!(t.nranks(), 1);
        assert_eq!(t.allreduce_sum(4), 4);
        assert_eq!(t.broadcast_u64(0, 9), 9);
        t.barrier();
        let buf = t.acquire_buffer(0);
        t.recycle(0, buf);
        let term = t.termination();
        assert!(term.is_done());
    }
}
