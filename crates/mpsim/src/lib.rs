//! A distributed-memory message-passing runtime for reproducing MPI
//! algorithms on a single machine.
//!
//! The SC'13 preferential-attachment generator of Alam, Khan & Marathe is
//! an MPI program: `P` processors with private memories exchanging
//! `request` / `resolved` messages. This crate provides the equivalent
//! substrate in safe Rust:
//!
//! * [`World::run`] spawns one OS thread per rank; each rank receives a
//!   [`Comm`] handle. Rank state is strictly private — the only data paths
//!   between ranks are typed channels (point-to-point, per-pair FIFO,
//!   asynchronous), mirroring MPI two-sided semantics.
//! * [`Comm`] offers point-to-point sends ([`Comm::send`],
//!   [`Comm::send_batch`]) and receives ([`Comm::try_recv`],
//!   [`Comm::recv_timeout`], batched [`Comm::drain_recv`]), plus
//!   collectives ([`Comm::barrier`], [`Comm::allreduce_sum`],
//!   [`Comm::allgather_u64`]) implemented on a shared control plane —
//!   semantically the same global operations MPI provides, kept separate
//!   from the data plane so they cannot leak algorithm state.
//! * A **packet pool** recycles send-buffer allocations between each
//!   (sender, receiver) pair: receivers hand drained packet buffers back
//!   via [`Comm::recycle`] and senders reuse them through
//!   [`Comm::acquire_buffer`], so steady-state traffic runs
//!   allocation-free. [`CommStats`] counts pool hits and misses.
//! * [`Transport`] abstracts the communicator surface the engines are
//!   written against (see the [`transport`] module docs for the receive
//!   contract). [`Comm`] is the threaded implementation;
//!   [`LoopbackTransport`] is a single-rank, thread-free one used for
//!   `P = 1` runs and deterministic unit tests; `pa-net`'s `TcpTransport`
//!   runs ranks as separate OS processes over sockets (messages cross it
//!   via the [`Wire`] encoding); a real MPI binding would be a fourth.
//!   The [`conformance`] module holds the shared contract suite every
//!   backend must pass.
//! * [`FaultTransport`] wraps any [`Transport`] and perturbs packet
//!   delivery — delays, cross-pair reorders, duplicates, drops — under a
//!   seeded [`FaultPlan`], with an ack/retransmit sublayer recovering
//!   drops so the engine surface stays oblivious (see the [`fault`]
//!   module docs). The chaos test suite runs the generators through it to
//!   prove their output does not depend on delivery timing.
//! * [`TerminationHandle`] is a global outstanding-work counter, standing
//!   in for the nonblocking-allreduce termination loop a production MPI
//!   code would run (see DESIGN.md §2 for the substitution argument).
//! * [`BufferedComm`] implements the paper's *message buffering*: logical
//!   messages destined for the same rank are aggregated into one packet
//!   (one "MPI send"), with explicit flush points so the deadlock-avoidance
//!   rules of §3.5.2 can be expressed.
//! * [`CommStats`] counts logical messages and physical packets per rank —
//!   exactly the quantities Figure 7 of the paper plots — and
//!   [`cost::CostModel`] converts per-rank load into a virtual-time
//!   makespan for the scaling experiments (Figures 5 and 6), since real
//!   wall-clock speedup cannot be observed on a single-core host.
//!
//! # Example
//!
//! ```
//! use pa_mpsim::World;
//!
//! // Every rank sends its rank number to rank 0, which sums them.
//! let world = World::new(4);
//! let results: Vec<u64> = world.run(|mut comm| {
//!     if comm.rank() == 0 {
//!         let mut sum = 0;
//!         let mut seen = 1; // itself
//!         while seen < comm.nranks() {
//!             if let Some(pkt) = comm.try_recv() {
//!                 sum += pkt.msgs.iter().sum::<u64>();
//!                 seen += 1;
//!             }
//!         }
//!         sum
//!     } else {
//!         comm.send(0, comm.rank() as u64);
//!         0
//!     }
//! });
//! assert_eq!(results[0], 1 + 2 + 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod channel;
mod comm;
pub mod conformance;
mod control;
pub mod cost;
pub mod fault;
mod loopback;
mod stats;
pub mod transport;
pub mod wire;

pub use buffer::BufferedComm;
pub use comm::{Comm, Packet, World};
pub use control::{TerminationBackend, TerminationHandle};
pub use fault::{FaultPlan, FaultTransport};
pub use loopback::LoopbackTransport;
pub use stats::CommStats;
pub use transport::Transport;
pub use wire::Wire;
