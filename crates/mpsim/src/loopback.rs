//! A single-rank, thread-free transport.
//!
//! `P = 1` runs of the parallel engines have no remote traffic at all:
//! every lookup is local, so the transport exists only to satisfy the
//! engine's interface. Spawning a [`crate::World`] of one OS thread for
//! that is pure overhead (thread spawn/join, channel locks, condvars).
//! [`LoopbackTransport`] instead runs the engine *on the calling thread*:
//! sends to rank 0 loop back into a local queue, the packet pool is a
//! plain freelist, collectives are identities, and the termination
//! counter is a private [`ControlPlane`] of one rank.
//!
//! It is also the natural transport for unit tests that want to drive a
//! message-handling path deterministically without any concurrency.

use std::collections::VecDeque;
use std::time::Duration;

use crate::comm::Packet;
use crate::control::ControlPlane;
use crate::stats::CommStats;
use crate::transport::Transport;
use crate::TerminationHandle;

/// Transport for a world of exactly one rank; see the `transport` module docs.
pub struct LoopbackTransport<M> {
    queue: VecDeque<Packet<M>>,
    pool: Vec<Vec<M>>,
    plane: std::sync::Arc<ControlPlane>,
    stats: CommStats,
}

impl<M> LoopbackTransport<M> {
    /// Create the single-rank transport.
    pub fn new() -> Self {
        Self {
            queue: VecDeque::new(),
            pool: Vec::new(),
            plane: ControlPlane::new(1),
            stats: CommStats::new(1),
        }
    }

    /// Consume the transport, returning its final statistics.
    pub fn into_stats(self) -> CommStats {
        self.stats
    }
}

impl<M> Default for LoopbackTransport<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Transport<M> for LoopbackTransport<M> {
    fn rank(&self) -> usize {
        0
    }

    fn nranks(&self) -> usize {
        1
    }

    fn send(&mut self, dest: usize, msg: M) {
        let mut buf = self.acquire_buffer(dest);
        buf.push(msg);
        self.send_batch(dest, buf);
    }

    fn send_batch(&mut self, dest: usize, msgs: Vec<M>) {
        assert_eq!(dest, 0, "loopback world has a single rank");
        if msgs.is_empty() {
            return;
        }
        self.stats.on_send(dest, msgs.len() as u64);
        self.queue.push_back(Packet { src: 0, msgs });
    }

    fn acquire_buffer(&mut self, _dest: usize) -> Vec<M> {
        match self.pool.pop() {
            Some(buf) => {
                debug_assert!(buf.is_empty());
                self.stats.pool_hits += 1;
                buf
            }
            None => {
                self.stats.pool_misses += 1;
                Vec::new()
            }
        }
    }

    fn recycle(&mut self, _src: usize, mut buf: Vec<M>) {
        buf.clear();
        if buf.capacity() == 0 {
            return;
        }
        self.stats.bufs_recycled += 1;
        self.pool.push(buf);
    }

    fn try_recv(&mut self) -> Option<Packet<M>> {
        let pkt = self.queue.pop_front()?;
        self.stats.on_recv(pkt.src, pkt.msgs.len() as u64);
        Some(pkt)
    }

    fn drain_recv(&mut self, out: &mut Vec<Packet<M>>) -> usize {
        let n = self.queue.len();
        for pkt in self.queue.drain(..) {
            self.stats.on_recv(pkt.src, pkt.msgs.len() as u64);
            out.push(pkt);
        }
        n
    }

    fn recv_timeout(&mut self, _timeout: Duration) -> Option<Packet<M>> {
        // The only sender is this same thread: if the queue is empty now
        // it stays empty for the full timeout, so return immediately
        // instead of sleeping.
        self.try_recv()
    }

    fn barrier(&self) {}

    fn allreduce_sum(&self, val: u64) -> u64 {
        val
    }

    fn allreduce_max(&self, val: u64) -> u64 {
        val
    }

    fn allreduce_min(&self, val: u64) -> u64 {
        val
    }

    fn allgather_u64(&self, val: u64) -> Vec<u64> {
        vec![val]
    }

    fn broadcast_u64(&self, root: usize, val: u64) -> u64 {
        assert_eq!(root, 0, "broadcast root out of range");
        val
    }

    fn exclusive_prefix_sum(&self, _val: u64) -> u64 {
        0
    }

    fn termination(&self) -> TerminationHandle {
        self.plane.termination()
    }

    fn stats(&self) -> &CommStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut CommStats {
        &mut self.stats
    }

    fn into_stats(self) -> CommStats {
        LoopbackTransport::into_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_send_loops_back_in_fifo_order() {
        let mut t: LoopbackTransport<u64> = LoopbackTransport::new();
        t.send(0, 1);
        t.send_batch(0, vec![2, 3]);
        let a = t.try_recv().unwrap();
        assert_eq!((a.src, a.msgs.as_slice()), (0, &[1u64][..]));
        let b = t.try_recv().unwrap();
        assert_eq!(b.msgs, vec![2, 3]);
        assert!(t.try_recv().is_none());
        assert_eq!(t.stats().msgs_sent, 3);
        assert_eq!(t.stats().packets_recv, 2);
    }

    #[test]
    fn recv_timeout_never_sleeps() {
        let mut t: LoopbackTransport<u8> = LoopbackTransport::new();
        let start = std::time::Instant::now();
        assert!(t.recv_timeout(Duration::from_secs(60)).is_none());
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn pool_recycles_buffers() {
        let mut t: LoopbackTransport<u32> = LoopbackTransport::new();
        t.send(0, 7);
        let pkt = t.try_recv().unwrap();
        t.recycle(pkt.src, pkt.msgs);
        // The freelist can only serve a recycled buffer with capacity.
        let buf = t.acquire_buffer(0);
        assert!(buf.capacity() > 0);
        assert_eq!(t.stats().pool_hits, 1);
        assert_eq!(t.stats().bufs_recycled, 1);
    }

    #[test]
    fn collectives_are_identities() {
        let t: LoopbackTransport<()> = LoopbackTransport::new();
        t.barrier();
        assert_eq!(t.allreduce_sum(5), 5);
        assert_eq!(t.allreduce_max(5), 5);
        assert_eq!(t.allreduce_min(5), 5);
        assert_eq!(t.allgather_u64(9), vec![9]);
        assert_eq!(t.broadcast_u64(0, 3), 3);
        assert_eq!(t.exclusive_prefix_sum(8), 0);
    }

    #[test]
    fn termination_counts_down_to_done() {
        let t: LoopbackTransport<()> = LoopbackTransport::new();
        let term = t.termination();
        assert!(term.is_done());
        term.add(2);
        assert!(!term.is_done());
        term.complete(2);
        assert!(term.is_done());
    }

    #[test]
    fn drain_recv_moves_everything() {
        let mut t: LoopbackTransport<u8> = LoopbackTransport::new();
        t.send(0, 1);
        t.send(0, 2);
        let mut out = Vec::new();
        assert_eq!(t.drain_recv(&mut out), 2);
        assert_eq!(t.drain_recv(&mut out), 0);
        assert_eq!(out.len(), 2);
    }
}
