//! Per-rank communication accounting.

/// Communication statistics for a single rank.
///
/// A *message* is one logical unit handed to [`crate::Comm::send`] or
/// aggregated by [`crate::BufferedComm`]; a *packet* is one physical
/// channel transfer (one "MPI send" in the paper's terms). The paper's
/// load-balance study (Figure 7) plots, per processor, the number of
/// outgoing and incoming messages together with the node count; this
/// struct captures the message/packet half of that.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Logical messages sent to other ranks.
    pub msgs_sent: u64,
    /// Logical messages received from other ranks.
    pub msgs_recv: u64,
    /// Physical packets (channel transfers) sent.
    pub packets_sent: u64,
    /// Physical packets received.
    pub packets_recv: u64,
    /// Logical messages sent, broken down by destination rank.
    pub sent_to: Vec<u64>,
    /// Logical messages received, broken down by source rank.
    pub recv_from: Vec<u64>,
    /// Send-buffer acquisitions served from the packet pool.
    pub pool_hits: u64,
    /// Send-buffer acquisitions that had to allocate (pool empty).
    pub pool_misses: u64,
    /// Received packet buffers returned to their sender's pool.
    pub bufs_recycled: u64,
    /// Faults injected by a perturbing transport layer (delays, reorders,
    /// duplicates, drops) — zero on a clean transport.
    pub faults_injected: u64,
    /// Packets re-delivered by the ack/retransmit recovery sublayer after
    /// a simulated drop or lost acknowledgement.
    pub retransmitted: u64,
    /// Redundant retransmissions discarded by sequence-number
    /// deduplication before the engine could observe them.
    pub deduped: u64,
}

impl CommStats {
    /// Empty statistics for a world of `nranks` ranks.
    pub fn new(nranks: usize) -> Self {
        Self {
            sent_to: vec![0; nranks],
            recv_from: vec![0; nranks],
            ..Default::default()
        }
    }

    /// Record `n` logical messages leaving in one packet towards `dest`.
    /// Public so out-of-crate backends (`pa-net`) account traffic in the
    /// same ledger as the in-crate transports.
    #[inline]
    pub fn on_send(&mut self, dest: usize, n: u64) {
        self.msgs_sent += n;
        self.packets_sent += 1;
        self.sent_to[dest] += n;
    }

    /// Record a received packet of `n` logical messages from `src`.
    #[inline]
    pub fn on_recv(&mut self, src: usize, n: u64) {
        self.msgs_recv += n;
        self.packets_recv += 1;
        self.recv_from[src] += n;
    }

    /// Total logical message traffic (sent + received); the communication
    /// part of the paper's per-processor load measure (§4.6.3).
    pub fn total_msgs(&self) -> u64 {
        self.msgs_sent + self.msgs_recv
    }

    /// Merge another rank's statistics into this one (used when
    /// aggregating whole-world totals).
    pub fn merge(&mut self, other: &CommStats) {
        self.msgs_sent += other.msgs_sent;
        self.msgs_recv += other.msgs_recv;
        self.packets_sent += other.packets_sent;
        self.packets_recv += other.packets_recv;
        self.pool_hits += other.pool_hits;
        self.pool_misses += other.pool_misses;
        self.bufs_recycled += other.bufs_recycled;
        self.faults_injected += other.faults_injected;
        self.retransmitted += other.retransmitted;
        self.deduped += other.deduped;
        if self.sent_to.len() < other.sent_to.len() {
            self.sent_to.resize(other.sent_to.len(), 0);
            self.recv_from.resize(other.recv_from.len(), 0);
        }
        for (a, b) in self.sent_to.iter_mut().zip(&other.sent_to) {
            *a += b;
        }
        for (a, b) in self.recv_from.iter_mut().zip(&other.recv_from) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_recv_accumulate() {
        let mut s = CommStats::new(3);
        s.on_send(1, 5);
        s.on_send(1, 2);
        s.on_send(2, 1);
        s.on_recv(0, 4);
        assert_eq!(s.msgs_sent, 8);
        assert_eq!(s.packets_sent, 3);
        assert_eq!(s.sent_to, vec![0, 7, 1]);
        assert_eq!(s.msgs_recv, 4);
        assert_eq!(s.packets_recv, 1);
        assert_eq!(s.recv_from, vec![4, 0, 0]);
        assert_eq!(s.total_msgs(), 12);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = CommStats::new(2);
        a.on_send(0, 1);
        let mut b = CommStats::new(2);
        b.on_send(1, 3);
        b.on_recv(0, 2);
        a.merge(&b);
        assert_eq!(a.msgs_sent, 4);
        assert_eq!(a.packets_sent, 2);
        assert_eq!(a.msgs_recv, 2);
        assert_eq!(a.sent_to, vec![1, 3]);
    }

    #[test]
    fn merge_sums_fault_counters() {
        let mut a = CommStats::new(1);
        a.faults_injected = 3;
        let mut b = CommStats::new(1);
        b.faults_injected = 2;
        b.retransmitted = 5;
        b.deduped = 1;
        a.merge(&b);
        assert_eq!(a.faults_injected, 5);
        assert_eq!(a.retransmitted, 5);
        assert_eq!(a.deduped, 1);
    }

    #[test]
    fn merge_grows_vectors() {
        let mut a = CommStats::new(1);
        let mut b = CommStats::new(4);
        b.on_send(3, 9);
        a.merge(&b);
        assert_eq!(a.sent_to.len(), 4);
        assert_eq!(a.sent_to[3], 9);
    }
}
