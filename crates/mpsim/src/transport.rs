//! The transport abstraction the engines are written against.
//!
//! [`crate::Comm`] (threaded channel world) is one implementation;
//! [`crate::LoopbackTransport`] (single rank, no threads) is another. A
//! real MPI backend would be a third: the trait surface is deliberately
//! the subset of two-sided MPI the SC'13 algorithms need — asynchronous
//! FIFO point-to-point sends, batched receives, a handful of `u64`
//! collectives, and the outstanding-work termination predicate.
//!
//! # Receive contract: `drain_recv` vs `recv_timeout`
//!
//! The two receive calls serve different phases of the engine loop and
//! implementations must honour their contract:
//!
//! * [`Transport::drain_recv`] is the **polling** receive: it moves every
//!   packet that is already queued and returns immediately — it never
//!   blocks, even when it returns `0`. It is meant for the generation
//!   sweep, where the rank has local work to overlap with servicing.
//! * [`Transport::recv_timeout`] is the **parking** receive: when a rank
//!   has run out of local work, calling `drain_recv` in a tight loop
//!   would busy-wait, burning the core other ranks need (the failure mode
//!   on oversubscribed hosts). `recv_timeout` must instead *block* until
//!   a packet arrives or the timeout elapses, whichever is first. A
//!   conforming implementation wakes promptly on arrival; it must not
//!   poll-sleep for the full timeout when traffic is already queued.
//!
//! The idiomatic completion loop therefore drains while progress lasts
//! and parks when quiescent — never spins:
//!
//! ```
//! use pa_mpsim::{Transport, World};
//! use std::time::Duration;
//!
//! let world = World::new(2);
//! let done = world.run(|mut comm| {
//!     let term = comm.termination();
//!     if comm.rank() == 0 {
//!         term.add(1);
//!         comm.send(1, 42u64);
//!     }
//!     comm.barrier(); // work registered before anyone may observe 0
//!     let mut inbox = Vec::new();
//!     while !term.is_done() {
//!         // Phase 1: drain everything already here (non-blocking).
//!         if comm.drain_recv(&mut inbox) > 0 {
//!             for pkt in inbox.drain(..) {
//!                 term.complete(pkt.msgs.len() as u64);
//!                 comm.recycle(pkt.src, pkt.msgs);
//!             }
//!             continue; // progress: poll again before parking
//!         }
//!         // Phase 2: quiescent — park instead of spinning.
//!         if let Some(pkt) = comm.recv_timeout(Duration::from_millis(1)) {
//!             term.complete(pkt.msgs.len() as u64);
//!             comm.recycle(pkt.src, pkt.msgs);
//!         }
//!     }
//!     true
//! });
//! assert!(done.iter().all(|&d| d));
//! ```

use std::time::Duration;

use crate::comm::Packet;
use crate::stats::CommStats;
use crate::TerminationHandle;

/// Two-sided message transport between the ranks of a world.
///
/// Guarantees every implementation must provide:
///
/// * **Asynchronous sends.** [`Transport::send`] / [`Transport::send_batch`]
///   enqueue and return; they never block on the receiver and never fail
///   (late traffic to a finished rank is parked, as MPI buffers sends to a
///   rank at `MPI_Finalize`).
/// * **Per-pair FIFO.** Packets from rank `a` to rank `b` are received in
///   send order (MPI's non-overtaking rule). No ordering is implied
///   between different sources.
/// * **Collectives are world-wide.** [`Transport::barrier`] and the
///   `allreduce`/`allgather`/`broadcast` family must be called by *all*
///   ranks; calling them from a subset deadlocks, exactly as
///   `MPI_Barrier` would.
/// * **Blocking vs polling receive** — see the [module docs](self) for
///   the `drain_recv` / `recv_timeout` contract.
/// * **Termination registration is published by a barrier.** Work
///   registered through [`Transport::termination`]'s handle is only
///   guaranteed *globally* visible after the next [`Transport::barrier`];
///   the driver's `add → barrier → observe` registration pattern is part
///   of the contract. Shared-memory implementations happen to publish
///   adds immediately, but distributed ones (a socket or MPI backend)
///   may defer them to the barrier's collective, and callers must not
///   observe `is_done` across ranks before it.
pub trait Transport<M> {
    /// This rank's id in `[0, nranks)`.
    fn rank(&self) -> usize;

    /// Number of ranks in the world.
    fn nranks(&self) -> usize;

    /// Send one logical message to `dest` as its own packet.
    ///
    /// For high-volume traffic prefer [`crate::BufferedComm`], which
    /// aggregates messages per destination (the paper's message
    /// buffering, §3.5).
    fn send(&mut self, dest: usize, msg: M);

    /// Send a batch of logical messages to `dest` as a single packet.
    /// Empty batches are dropped (no packet transferred or counted).
    fn send_batch(&mut self, dest: usize, msgs: Vec<M>);

    /// Take a recycled send buffer for `dest` from the packet pool, or
    /// allocate a fresh one on pool miss.
    fn acquire_buffer(&mut self, dest: usize) -> Vec<M>;

    /// Return a drained packet buffer to the rank it came from (call with
    /// [`Packet::src`] and the consumed [`Packet::msgs`]).
    fn recycle(&mut self, src: usize, buf: Vec<M>);

    /// Non-blocking receive: the next pending packet, if any.
    fn try_recv(&mut self) -> Option<Packet<M>>;

    /// Move every packet currently queued into `out`; returns how many
    /// were appended. **Never blocks** (the polling receive).
    fn drain_recv(&mut self, out: &mut Vec<Packet<M>>) -> usize;

    /// Blocking receive: park until a packet arrives or `timeout`
    /// elapses; `None` on timeout. **Must not busy-wait** (the parking
    /// receive — see the [module docs](self)).
    fn recv_timeout(&mut self, timeout: Duration) -> Option<Packet<M>>;

    /// Global barrier: returns once every rank has entered.
    fn barrier(&self);

    /// All-reduce a `u64` by summation; every rank gets the global sum.
    fn allreduce_sum(&self, val: u64) -> u64;

    /// All-reduce a `u64` by maximum.
    fn allreduce_max(&self, val: u64) -> u64;

    /// All-reduce a `u64` by minimum.
    fn allreduce_min(&self, val: u64) -> u64;

    /// All-gather: every rank receives all contributions, by rank.
    fn allgather_u64(&self, val: u64) -> Vec<u64>;

    /// Broadcast: every rank receives `root`'s contribution.
    fn broadcast_u64(&self, root: usize, val: u64) -> u64;

    /// Exclusive prefix sum of the ranks' contributions.
    fn exclusive_prefix_sum(&self, val: u64) -> u64;

    /// Handle to the global outstanding-work termination detector.
    fn termination(&self) -> TerminationHandle;

    /// Snapshot of this rank's communication statistics.
    fn stats(&self) -> &CommStats;

    /// Mutable access to this rank's statistics. Exists for *wrapping*
    /// transports (e.g. [`crate::FaultTransport`]) that account layer
    /// events — injected faults, retransmissions, deduplications — in the
    /// same ledger as the wire traffic; engines should treat statistics
    /// as read-only.
    fn stats_mut(&mut self) -> &mut CommStats;

    /// Consume the transport, returning its final statistics.
    fn into_stats(self) -> CommStats
    where
        Self: Sized;
}
