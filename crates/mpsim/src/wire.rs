//! Explicit little-endian (de)serialization for wire messages.
//!
//! The in-process transports move typed values between threads, so they
//! never serialize anything. A socket transport must: this trait is the
//! contract a message type signs so a byte-stream backend (the TCP
//! transport in `pa-net`, eventually a real MPI binding) can carry it.
//!
//! The encoding is deliberately boring — fixed little-endian fields, a
//! one-byte tag for enums, no implicit padding — so the format is
//! identical on every host and a frame can be decoded without knowing
//! the sender's architecture. `decode` must consume exactly the bytes
//! `encode` produced and reject anything else with `None` (a corrupt or
//! truncated frame must never silently decode to a different message).

/// A message that can cross a byte-stream transport.
///
/// Laws, checked by the round-trip tests of every implementation:
///
/// * **Round trip:** `decode(encode(m)) == Some(m)` with the cursor
///   advanced past exactly the encoded bytes.
/// * **Self-delimiting:** `decode` never reads past the bytes `encode`
///   wrote for one value (messages are concatenated back-to-back inside
///   a data frame).
/// * **Total rejection:** truncated input yields `None`, not a panic.
pub trait Wire: Sized {
    /// Append this value's little-endian encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode one value from the front of `input`, advancing the slice
    /// past the consumed bytes. `None` when the bytes are truncated or
    /// malformed.
    fn decode(input: &mut &[u8]) -> Option<Self>;
}

/// Split `n` bytes off the front of `input`, or `None` if short.
#[inline]
pub fn take<'a>(input: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if input.len() < n {
        return None;
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Some(head)
}

/// Decode a little-endian `u8`.
#[inline]
pub fn get_u8(input: &mut &[u8]) -> Option<u8> {
    take(input, 1).map(|b| b[0])
}

/// Decode a little-endian `u32`.
#[inline]
pub fn get_u32(input: &mut &[u8]) -> Option<u32> {
    take(input, 4).map(|b| u32::from_le_bytes(b.try_into().expect("4-byte slice")))
}

/// Decode a little-endian `u64`.
#[inline]
pub fn get_u64(input: &mut &[u8]) -> Option<u64> {
    take(input, 8).map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
}

impl Wire for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        get_u64(input)
    }
}

impl Wire for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        get_u32(input)
    }
}

impl Wire for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        get_u8(input)
    }
}

impl Wire for (u64, u64) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some((get_u64(input)?, get_u64(input)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut cursor = buf.as_slice();
        assert_eq!(T::decode(&mut cursor), Some(v));
        assert!(cursor.is_empty(), "decode left bytes behind");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(0xdead_beefu32);
        round_trip(u64::MAX);
        round_trip((7u64, u64::MAX));
    }

    #[test]
    fn encoding_is_little_endian() {
        let mut buf = Vec::new();
        0x0102_0304u32.encode(&mut buf);
        assert_eq!(buf, vec![0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut short: &[u8] = &[1, 2, 3];
        assert_eq!(u32::decode(&mut short), None);
        let mut empty: &[u8] = &[];
        assert_eq!(u8::decode(&mut empty), None);
    }

    #[test]
    fn values_concatenate_back_to_back() {
        let mut buf = Vec::new();
        for i in 0..10u64 {
            i.encode(&mut buf);
        }
        let mut cursor = buf.as_slice();
        for i in 0..10u64 {
            assert_eq!(u64::decode(&mut cursor), Some(i));
        }
        assert!(cursor.is_empty());
    }
}
