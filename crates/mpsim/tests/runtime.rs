//! Integration and property tests for the message-passing runtime:
//! randomized traffic patterns, collective stress, and cost-model
//! properties.

use pa_mpsim::cost::{CostModel, RankLoad};
use pa_mpsim::{BufferedComm, Comm, World};
use pa_rng::{Rng64, Xoshiro256pp};
use proptest::prelude::*;
use std::time::Duration;

#[test]
fn randomized_all_to_all_traffic_is_lossless() {
    // Every rank sends a random number of sequenced messages to every
    // other rank through a buffered communicator; all must arrive, in
    // per-pair order.
    let nranks = 6;
    let world = World::new(nranks);
    let ok = world.run(|mut comm: Comm<(usize, u64)>| {
        let me = comm.rank();
        let mut rng = Xoshiro256pp::seed_from(99, me as u64);
        let mut buf = BufferedComm::new(nranks, 7);
        let mut sent = vec![0u64; nranks];
        for _ in 0..2_000 {
            let dest = rng.gen_below(nranks as u64) as usize;
            if dest == me {
                continue;
            }
            buf.push(&mut comm, dest, (me, sent[dest]));
            sent[dest] += 1;
        }
        buf.flush_all(&mut comm);
        // Publish how much each destination should expect from us.
        let mut expected_from = vec![0u64; nranks];
        for (peer, &sent_to_peer) in sent.iter().enumerate() {
            // allgather per peer: how many messages peer receives from each rank
            let counts = comm.allgather_u64(sent_to_peer);
            if peer == me {
                expected_from = counts;
            }
        }
        let total_expected: u64 = expected_from.iter().sum();
        let mut got = vec![0u64; nranks];
        let mut received = 0u64;
        while received < total_expected {
            let pkt = comm
                .recv_timeout(Duration::from_secs(10))
                .expect("lost traffic");
            for (src, seq) in pkt.msgs {
                assert_eq!(src, pkt.src, "source label mismatch");
                assert_eq!(seq, got[src], "per-pair FIFO violated");
                got[src] += 1;
                received += 1;
            }
        }
        comm.barrier();
        got == expected_from
    });
    assert!(ok.iter().all(|&b| b));
}

#[test]
fn collectives_stress_interleaved_with_traffic() {
    let world = World::new(5);
    let sums = world.run(|mut comm: Comm<u64>| {
        let mut acc = 0u64;
        for round in 0..50u64 {
            // Point-to-point: ring shift.
            let right = (comm.rank() + 1) % comm.nranks();
            comm.send(right, round);
            let pkt = comm.recv_timeout(Duration::from_secs(10)).unwrap();
            acc += pkt.msgs[0];
            // Collective between rounds.
            let s = comm.allreduce_sum(round);
            assert_eq!(s, round * 5);
        }
        acc
    });
    let expect: u64 = (0..50).sum();
    assert!(sums.iter().all(|&s| s == expect));
}

#[test]
fn termination_with_work_stealing_pattern() {
    // Work items bounce between ranks until "resolved"; the termination
    // counter must catch the global fixpoint exactly.
    let nranks = 4;
    let world = World::new(nranks);
    let handled = world.run(|mut comm: Comm<u32>| {
        let term = comm.termination();
        let me = comm.rank();
        let mut rng = Xoshiro256pp::seed_from(7, me as u64);
        // Each rank seeds 100 items with random remaining-hop counts.
        term.add(100);
        comm.barrier();
        let mut outbox: Vec<(usize, u32)> = (0..100)
            .map(|_| {
                (
                    rng.gen_below(nranks as u64) as usize,
                    rng.gen_below(8) as u32,
                )
            })
            .collect();
        let mut handled = 0u64;
        loop {
            for (dest, hops) in outbox.drain(..) {
                if hops == 0 {
                    term.complete(1);
                    handled += 1;
                } else {
                    comm.send(dest, hops);
                }
            }
            if term.is_done() {
                break;
            }
            if let Some(pkt) = comm.recv_timeout(Duration::from_micros(200)) {
                for hops in pkt.msgs {
                    let dest = rng.gen_below(nranks as u64) as usize;
                    outbox.push((dest, hops - 1));
                }
            }
        }
        handled
    });
    assert_eq!(handled.iter().sum::<u64>(), 400);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Makespan is monotone in every load component.
    #[test]
    fn makespan_is_monotone(
        nodes in 0u64..1_000_000,
        msgs in 0u64..1_000_000,
        pkts in 0u64..10_000,
    ) {
        let m = CostModel::default();
        let base = RankLoad { nodes, msgs_out: msgs, msgs_in: msgs, packets_out: pkts, packets_in: pkts };
        let bigger = RankLoad { nodes: nodes + 1, ..base };
        prop_assert!(m.rank_time(&bigger) > m.rank_time(&base));
        let noisier = RankLoad { msgs_out: msgs + 1, ..base };
        prop_assert!(m.rank_time(&noisier) > m.rank_time(&base));
    }

    /// Speedup never exceeds the rank count under non-negative overheads
    /// when work is conserved (sum of rank nodes == total nodes).
    #[test]
    fn speedup_bounded_by_p(
        split in prop::collection::vec(1u64..100_000, 1..32),
    ) {
        let m = CostModel { t_node: 1.0, t_msg: 0.5, t_packet: 10.0, t_collective: 25.0 };
        let total: u64 = split.iter().sum();
        let loads: Vec<RankLoad> = split
            .iter()
            .map(|&nodes| RankLoad { nodes, ..Default::default() })
            .collect();
        let s = m.speedup(total, &loads);
        prop_assert!(s <= loads.len() as f64 + 1e-9, "s = {s}");
        prop_assert!(s > 0.0);
    }

    /// Buffered transfers deliver exactly the pushed messages for any
    /// capacity.
    #[test]
    fn buffering_is_lossless(capacity in 1usize..64, count in 0usize..200) {
        let world = World::new(2);
        let ok = world.run(move |mut comm: Comm<usize>| {
            if comm.rank() == 0 {
                let mut buf = BufferedComm::new(2, capacity);
                for i in 0..count {
                    buf.push(&mut comm, 1, i);
                }
                buf.flush_all(&mut comm);
                comm.barrier();
                true
            } else {
                let mut got = Vec::new();
                while got.len() < count {
                    let pkt = comm.recv_timeout(Duration::from_secs(5)).unwrap();
                    got.extend(pkt.msgs);
                }
                comm.barrier();
                got == (0..count).collect::<Vec<_>>()
            }
        });
        prop_assert!(ok.iter().all(|&b| b));
    }
}
