//! Conformance suite for the [`Transport`] receive contract.
//!
//! The `transport` module docs promise two things every implementation
//! must honour: `drain_recv` is the polling receive (returns immediately,
//! even empty-handed), and `recv_timeout` is the parking receive (blocks
//! until arrival or timeout, wakes promptly when traffic is already
//! queued or arrives mid-wait). These tests run the *same* assertions
//! over every implementation in the crate — [`Comm`] in a threaded
//! world, [`LoopbackTransport`], and [`FaultTransport`] wrapped around
//! both — so a new backend (e.g. real MPI bindings) can be dropped in
//! and checked by adding one function call.
//!
//! The fault-wrapped runs use a *recovering* plan with duplication
//! disabled: delay, cross-pair reorder, drop-with-retransmit and ack
//! loss may shuffle timing at will, but per-pair FIFO and eventual
//! exactly-once delivery must survive.

use std::time::{Duration, Instant};

use pa_mpsim::{FaultPlan, FaultTransport, LoopbackTransport, Transport, World};

/// Generous bound for "returns immediately / wakes promptly": far above
/// scheduler jitter, far below the parking timeouts used here.
const PROMPT: Duration = Duration::from_millis(500);

/// A recovering fault plan with `p_dup = 0`, so every logical packet is
/// delivered exactly once and per-pair FIFO must hold end to end.
fn fifo_preserving_faults(seed: u64) -> FaultPlan {
    FaultPlan {
        p_dup: 0.0,
        ..FaultPlan::aggressive(seed)
    }
}

/// Single-rank half of the contract, shared by [`LoopbackTransport`] and
/// [`FaultTransport`] over it: self-sends loop back in FIFO order via
/// the polling receive, and the parking receive never blocks longer than
/// its timeout.
fn check_single_rank<T: Transport<u64>>(mut t: T) {
    assert_eq!(t.rank(), 0);
    assert_eq!(t.nranks(), 1);

    // drain_recv on an empty queue: returns 0, immediately.
    let mut out = Vec::new();
    let start = Instant::now();
    assert_eq!(t.drain_recv(&mut out), 0);
    assert!(start.elapsed() < PROMPT, "drain_recv blocked while empty");

    // Self-sends come back in order. A fault-injecting wrapper may hold
    // packets for a few receive calls, so poll until everything arrived.
    const N: u64 = 200;
    for i in 0..N {
        t.send(0, i);
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut got = Vec::new();
    while got.len() < N as usize {
        assert!(Instant::now() < deadline, "delivery stalled: {got:?}");
        let start = Instant::now();
        t.drain_recv(&mut out);
        assert!(start.elapsed() < PROMPT, "drain_recv blocked");
        for pkt in out.drain(..) {
            assert_eq!(pkt.src, 0);
            got.extend_from_slice(&pkt.msgs);
            t.recycle(pkt.src, pkt.msgs);
        }
    }
    assert_eq!(got, (0..N).collect::<Vec<_>>(), "per-pair FIFO violated");

    // Parking receive with nothing in flight: None, within the timeout
    // (loopback documents an immediate return — the contract is only an
    // upper bound).
    let start = Instant::now();
    assert!(t.recv_timeout(Duration::from_millis(50)).is_none());
    assert!(
        start.elapsed() < Duration::from_millis(50) + PROMPT,
        "recv_timeout overslept its timeout"
    );

    // Parking receive with traffic already queued: must deliver promptly,
    // not sleep out the full timeout.
    t.send(0, 777);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(Instant::now() < deadline, "queued packet never delivered");
        let start = Instant::now();
        if let Some(pkt) = t.recv_timeout(Duration::from_secs(5)) {
            assert!(
                start.elapsed() < Duration::from_secs(2),
                "recv_timeout poll-slept with traffic queued"
            );
            assert_eq!(pkt.msgs, vec![777]);
            break;
        }
    }

    // Collectives of one rank are identities, through any wrapper.
    t.barrier();
    assert_eq!(t.allreduce_sum(4), 4);
    assert_eq!(t.allgather_u64(9), vec![9]);
    assert_eq!(t.exclusive_prefix_sum(8), 0);
}

/// Two-rank half of the contract, shared by [`Comm`] and
/// [`FaultTransport`] over it. Rank 1 floods rank 0 with numbered
/// messages; rank 0 checks non-blocking drains, FIFO delivery, and that
/// a parked receive wakes on arrival instead of sleeping out its
/// timeout.
fn check_two_ranks<T: Transport<u64>>(mut t: T) {
    const N: u64 = 500;
    assert_eq!(t.nranks(), 2);

    // Stage 1: FIFO under load. Collectives must also agree world-wide.
    assert_eq!(t.allreduce_sum(t.rank() as u64 + 1), 3);
    if t.rank() == 1 {
        for i in 0..N {
            t.send(0, i);
        }
        // Batches keep their internal order too.
        t.send_batch(0, vec![N, N + 1, N + 2]);
    } else {
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut got = Vec::new();
        let mut out = Vec::new();
        while got.len() < (N + 3) as usize {
            assert!(
                Instant::now() < deadline,
                "delivery stalled after {} messages",
                got.len()
            );
            let start = Instant::now();
            t.drain_recv(&mut out);
            assert!(start.elapsed() < PROMPT, "drain_recv blocked");
            if out.is_empty() {
                // Quiescent: park (the idiomatic completion loop never
                // spins on drain_recv).
                if let Some(pkt) = t.recv_timeout(Duration::from_millis(5)) {
                    out.push(pkt);
                }
            }
            for pkt in out.drain(..) {
                assert_eq!(pkt.src, 1, "only rank 1 sends in this stage");
                got.extend_from_slice(&pkt.msgs);
                t.recycle(pkt.src, pkt.msgs);
            }
        }
        assert_eq!(
            got,
            (0..N + 3).collect::<Vec<_>>(),
            "per-pair FIFO violated between ranks"
        );
    }
    t.barrier();

    // Stage 2: wake-on-arrival. Rank 0 parks with a long timeout before
    // rank 1 sends; the park must end on arrival, not at the timeout.
    if t.rank() == 0 {
        let start = Instant::now();
        let deadline = start + Duration::from_secs(30);
        loop {
            assert!(Instant::now() < deadline, "parked receive never woke");
            if let Some(pkt) = t.recv_timeout(Duration::from_secs(30)) {
                assert_eq!(pkt.msgs, vec![41]);
                assert!(
                    start.elapsed() < Duration::from_secs(10),
                    "recv_timeout slept through an arrival"
                );
                t.recycle(pkt.src, pkt.msgs);
                break;
            }
        }
    } else {
        // Let rank 0 actually park first.
        std::thread::sleep(Duration::from_millis(50));
        t.send(0, 41);
    }
    t.barrier();
}

#[test]
fn loopback_conforms() {
    check_single_rank(LoopbackTransport::new());
}

#[test]
fn fault_transport_over_loopback_conforms() {
    check_single_rank(FaultTransport::new(
        LoopbackTransport::new(),
        fifo_preserving_faults(11),
    ));
}

#[test]
fn comm_conforms() {
    let world = World::new(2);
    world.run(check_two_ranks);
}

#[test]
fn fault_transport_over_comm_conforms() {
    let world = World::new(2);
    world.run(|comm| check_two_ranks(FaultTransport::new(comm, fifo_preserving_faults(23))));
}

#[test]
fn fault_free_plan_is_transparent() {
    // FaultPlan::none must behave exactly like the inner transport,
    // including zeroed fault counters.
    let mut t = FaultTransport::new(LoopbackTransport::new(), FaultPlan::none(0));
    t.send(0, 5u64);
    assert_eq!(t.try_recv().unwrap().msgs, vec![5]);
    let stats = t.into_stats();
    assert_eq!(stats.faults_injected, 0);
    assert_eq!(stats.retransmitted, 0);
    assert_eq!(stats.deduped, 0);
}
