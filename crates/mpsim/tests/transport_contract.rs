//! Conformance suite for the [`Transport`](pa_mpsim::Transport) receive
//! contract, over every in-crate implementation.
//!
//! The assertions themselves live in [`pa_mpsim::conformance`], so any
//! backend — in this crate or out of it (`pa-net`'s `TcpTransport`) —
//! runs the *same* suite; a new backend is checked by adding one
//! function call per rank.
//!
//! The fault-wrapped runs use a *recovering* plan with duplication
//! disabled: delay, cross-pair reorder, drop-with-retransmit and ack
//! loss may shuffle timing at will, but per-pair FIFO and eventual
//! exactly-once delivery must survive.

use pa_mpsim::conformance::{check_multi_rank, check_single_rank};
use pa_mpsim::{FaultPlan, FaultTransport, LoopbackTransport, Transport, World};

/// A recovering fault plan with `p_dup = 0`, so every logical packet is
/// delivered exactly once and per-pair FIFO must hold end to end.
fn fifo_preserving_faults(seed: u64) -> FaultPlan {
    FaultPlan {
        p_dup: 0.0,
        ..FaultPlan::aggressive(seed)
    }
}

#[test]
fn loopback_conforms() {
    check_single_rank(LoopbackTransport::new());
}

#[test]
fn fault_transport_over_loopback_conforms() {
    check_single_rank(FaultTransport::new(
        LoopbackTransport::new(),
        fifo_preserving_faults(11),
    ));
}

#[test]
fn comm_conforms() {
    let world = World::new(2);
    world.run(check_multi_rank);
}

#[test]
fn comm_conforms_at_four_ranks() {
    let world = World::new(4);
    world.run(check_multi_rank);
}

#[test]
fn fault_transport_over_comm_conforms() {
    let world = World::new(2);
    world.run(|comm| check_multi_rank(FaultTransport::new(comm, fifo_preserving_faults(23))));
}

#[test]
fn fault_free_plan_is_transparent() {
    // FaultPlan::none must behave exactly like the inner transport,
    // including zeroed fault counters.
    let mut t = FaultTransport::new(LoopbackTransport::new(), FaultPlan::none(0));
    t.send(0, 5u64);
    assert_eq!(t.try_recv().unwrap().msgs, vec![5]);
    let stats = t.into_stats();
    assert_eq!(stats.faults_injected, 0);
    assert_eq!(stats.retransmitted, 0);
    assert_eq!(stats.deduped, 0);
}
