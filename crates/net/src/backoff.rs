//! Capped exponential backoff with optional deterministic jitter.
//!
//! Every long-lived-connection loop in the workspace retries the same
//! way: start with a short delay, double it on each failure, stop
//! growing at a cap. Three call sites share this one schedule —
//! [`bootstrap`](crate::bootstrap)'s peer dial (which turns exhaustion
//! into [`NetError::Unreachable`](crate::NetError)), `palaunch`'s
//! whole-world restart loop, and the [`serve`](crate::serve) fetch
//! client's reconnect — so the shape is tested once, here, instead of
//! re-derived (subtly differently) at each site.
//!
//! Jitter is *deterministic*: a pure function of `(seed, attempt)`, so
//! tests can pin the exact schedule while a fleet of clients with
//! distinct seeds still spreads its reconnect stampede.

use std::time::Duration;

/// A capped exponential backoff schedule.
///
/// [`Backoff::next_delay`] returns `initial << attempt`, saturating at
/// `cap`; with a jitter seed, a deterministic extra delay in
/// `[0, base/4]` is added on top (the cap applies to the *base*, so the
/// jittered delay may exceed it by at most 25%).
///
/// ```
/// use std::time::Duration;
/// use pa_net::Backoff;
///
/// let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(500));
/// let delays: Vec<u64> = (0..8).map(|_| b.next_delay().as_millis() as u64).collect();
/// assert_eq!(delays, [10, 20, 40, 80, 160, 320, 500, 500]);
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    initial: Duration,
    cap: Duration,
    attempt: u32,
    jitter_seed: Option<u64>,
}

impl Backoff {
    /// Schedule starting at `initial`, doubling per attempt, capped at
    /// `cap`, without jitter.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is zero (the schedule could never grow) or
    /// `cap < initial` (the first delay would already overshoot the cap).
    pub fn new(initial: Duration, cap: Duration) -> Self {
        assert!(!initial.is_zero(), "backoff initial delay must be positive");
        assert!(
            cap >= initial,
            "backoff cap {cap:?} must be at least the initial delay {initial:?}"
        );
        Self {
            initial,
            cap,
            attempt: 0,
            jitter_seed: None,
        }
    }

    /// Add deterministic jitter derived from `seed`: attempt `k` gains
    /// an extra `hash(seed, k) mod (base/4 + 1)` delay. Two schedules
    /// with the same seed are identical; different seeds de-synchronize.
    #[must_use]
    pub fn with_jitter(mut self, seed: u64) -> Self {
        self.jitter_seed = Some(seed);
        self
    }

    /// How many delays have been handed out since the last reset.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Restart the schedule from the initial delay (e.g. after a
    /// successful connection, so the *next* outage starts fast again).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// The delay to sleep before the next retry, advancing the schedule.
    pub fn next_delay(&mut self) -> Duration {
        let shift = self.attempt.min(30);
        self.attempt = self.attempt.saturating_add(1);
        let base = self.initial.saturating_mul(1u32 << shift).min(self.cap);
        match self.jitter_seed {
            None => base,
            Some(seed) => {
                let span = base.as_millis() as u64 / 4 + 1;
                let extra = splitmix64(seed ^ u64::from(self.attempt)) % span;
                base + Duration::from_millis(extra)
            }
        }
    }
}

/// SplitMix64 finalizer — the standard 64-bit avalanche mix, used here
/// only to spread jitter; no statistical quality beyond that is needed.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_and_caps() {
        let mut b = Backoff::new(Duration::from_millis(200), Duration::from_secs(2));
        let delays: Vec<u64> = (0..6).map(|_| b.next_delay().as_millis() as u64).collect();
        assert_eq!(delays, [200, 400, 800, 1600, 2000, 2000]);
        assert_eq!(b.attempt(), 6);
    }

    #[test]
    fn reset_restarts_the_schedule() {
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(500));
        let first: Vec<Duration> = (0..4).map(|_| b.next_delay()).collect();
        b.reset();
        assert_eq!(b.attempt(), 0);
        let second: Vec<Duration> = (0..4).map(|_| b.next_delay()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let mut a = Backoff::new(Duration::from_millis(100), Duration::from_secs(1)).with_jitter(7);
        let mut b = Backoff::new(Duration::from_millis(100), Duration::from_secs(1)).with_jitter(7);
        let mut base = Backoff::new(Duration::from_millis(100), Duration::from_secs(1));
        for _ in 0..12 {
            let (da, db, dbase) = (a.next_delay(), b.next_delay(), base.next_delay());
            assert_eq!(da, db, "same seed must give the same schedule");
            assert!(da >= dbase, "jitter only adds delay");
            // Jitter is at most a quarter of the un-jittered base delay.
            assert!(da <= dbase + dbase.div_f64(4.0) + Duration::from_millis(1));
        }
    }

    #[test]
    fn different_seeds_desynchronize() {
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut b =
                Backoff::new(Duration::from_millis(100), Duration::from_secs(10)).with_jitter(seed);
            (0..8).map(|_| b.next_delay()).collect()
        };
        assert_ne!(
            schedule(1),
            schedule(2),
            "distinct seeds should not produce identical jitter"
        );
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_secs(1));
        for _ in 0..100 {
            assert!(b.next_delay() <= Duration::from_secs(1));
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_initial_rejected() {
        let _ = Backoff::new(Duration::ZERO, Duration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "must be at least")]
    fn cap_below_initial_rejected() {
        let _ = Backoff::new(Duration::from_secs(1), Duration::from_millis(10));
    }
}
