//! World bootstrap: how `P` independent processes become a wired mesh.
//!
//! Every rank knows the full peer table (`peers[r]` is rank `r`'s listen
//! address — the launcher distributes it). Bootstrap is then symmetric
//! and deadlock-free by construction:
//!
//! 1. **Bind.** Rank `r` binds a listener on `peers[r]` first, so dials
//!    from other ranks land in the accept backlog even before `accept`
//!    is called.
//! 2. **Dial down.** Rank `r` dials every rank *below* itself,
//!    retrying with capped exponential backoff (10 ms doubling to
//!    500 ms) under [`TcpConfig::connect_timeout`]; a peer that never
//!    answers yields [`NetError::Unreachable`] naming the rank — a clean
//!    nonzero exit, not a hang. Each established connection exchanges
//!    `HELLO` frames (magic, protocol version, world size, rank) in both
//!    directions before it counts.
//! 3. **Accept up.** Rank `r` then accepts the dials from every rank
//!    *above* itself, validating their `HELLO`s the same way, until the
//!    mesh is complete or the timeout expires
//!    ([`NetError::AcceptTimeout`] lists who is missing).
//!
//! Ranks only ever *wait* on lower ranks (rank 0 waits on nobody to
//! dial), so the wait graph is acyclic and the whole mesh settles in one
//! pass.

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use pa_mpsim::Wire;

use crate::backoff::Backoff;
use crate::error::NetError;
use crate::frame;
use crate::transport::TcpTransport;

/// How one rank joins a TCP world.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// This rank's id in `[0, world)`.
    pub rank: usize,
    /// Number of ranks in the world.
    pub world: usize,
    /// `host:port` listen address of every rank, by rank;
    /// `peers[rank]` is this rank's own listen address.
    pub peers: Vec<String>,
    /// Total budget for the dial-and-accept bootstrap. An unreachable
    /// peer fails the rank with [`NetError::Unreachable`] once this
    /// expires.
    pub connect_timeout: Duration,
    /// Backstop timeout for a single collective once the mesh is up; a
    /// peer that is alive but wedged fails the round loudly instead of
    /// hanging it forever.
    pub collective_timeout: Duration,
    /// Restart-attempt generation, exchanged in the `HELLO` handshake: a
    /// fresh launch is epoch 0 and every gang restart bumps it, so a
    /// straggler process from a previous attempt cannot wire into the
    /// restarted world.
    pub epoch: u64,
}

impl TcpConfig {
    /// A config with the default timeouts (30 s connect, 120 s
    /// collective) at restart epoch 0.
    pub fn new(rank: usize, world: usize, peers: Vec<String>) -> Self {
        TcpConfig {
            rank,
            world,
            peers,
            connect_timeout: Duration::from_secs(30),
            collective_timeout: Duration::from_secs(120),
            epoch: 0,
        }
    }

    /// Bind a loopback listener (ephemeral port) for every rank of a
    /// `world`-sized job and return the matching configs. The listeners
    /// are handed back so in-process multi-rank tests can pass them to
    /// [`TcpTransport::connect_with_listener`] with no bind/dial race.
    ///
    /// # Errors
    ///
    /// [`NetError::LoopbackSetup`] naming the rank whose listener could
    /// not be bound or inspected (e.g. file-descriptor exhaustion).
    pub fn local_world(world: usize) -> Result<Vec<(TcpConfig, TcpListener)>, NetError> {
        let fail = |rank: usize, detail: String| NetError::LoopbackSetup { rank, detail };
        let mut listeners = Vec::with_capacity(world);
        let mut peers = Vec::with_capacity(world);
        for rank in 0..world {
            let listener = TcpListener::bind("127.0.0.1:0")
                .map_err(|e| fail(rank, format!("bind loopback listener: {e}")))?;
            let addr = listener
                .local_addr()
                .map_err(|e| fail(rank, format!("read listener address: {e}")))?;
            peers.push(addr.to_string());
            listeners.push(listener);
        }
        Ok(listeners
            .into_iter()
            .enumerate()
            .map(|(rank, l)| (TcpConfig::new(rank, world, peers.clone()), l))
            .collect())
    }

    fn validate(&self) -> Result<(), NetError> {
        if self.world == 0 {
            return Err(NetError::Config("world size must be at least 1".into()));
        }
        if self.rank >= self.world {
            return Err(NetError::Config(format!(
                "rank {} out of range for world size {}",
                self.rank, self.world
            )));
        }
        if self.peers.len() != self.world {
            return Err(NetError::Config(format!(
                "peer list has {} entries for world size {}",
                self.peers.len(),
                self.world
            )));
        }
        Ok(())
    }
}

fn resolve(spec: &str) -> Result<SocketAddr, NetError> {
    spec.to_socket_addrs()
        .map_err(|e| NetError::Address {
            spec: spec.to_string(),
            detail: e.to_string(),
        })?
        .next()
        .ok_or_else(|| NetError::Address {
            spec: spec.to_string(),
            detail: "resolved to no addresses".into(),
        })
}

/// The shared dial schedule: 10 ms doubling to a 500 ms cap (see
/// [`Backoff`]). The serve-layer fetch client reuses the same shape
/// (with jitter) for its reconnects.
pub(crate) fn dial_backoff() -> Backoff {
    Backoff::new(Duration::from_millis(10), Duration::from_millis(500))
}

/// Dial `peer` with capped exponential backoff until `deadline`.
fn dial(peer: usize, spec: &str, deadline: Instant) -> Result<TcpStream, NetError> {
    let addr = resolve(spec)?;
    let start = Instant::now();
    let mut backoff = dial_backoff();
    let mut last_err = String::from("never attempted");
    loop {
        let now = Instant::now();
        if now >= deadline {
            return Err(NetError::Unreachable {
                rank: peer,
                addr: spec.to_string(),
                waited: now - start,
                detail: last_err,
            });
        }
        let attempt_budget = (deadline - now).min(Duration::from_secs(1));
        match TcpStream::connect_timeout(&addr, attempt_budget) {
            Ok(stream) => return Ok(stream),
            Err(e) => last_err = e.to_string(),
        }
        let delay = backoff.next_delay();
        std::thread::sleep(delay.min(deadline.saturating_duration_since(Instant::now())));
    }
}

/// Exchange `HELLO`s on a dialed connection (we speak first) and check
/// the peer answers as the rank we dialed.
fn handshake_out(
    stream: &mut TcpStream,
    cfg: &TcpConfig,
    expect_rank: usize,
    deadline: Instant,
) -> Result<(), NetError> {
    let peer_name = format!("rank {expect_rank}");
    let fail = |detail: String| NetError::Handshake {
        peer: peer_name.clone(),
        detail,
    };
    stream
        .set_read_timeout(Some(remaining(deadline)))
        .map_err(|e| fail(e.to_string()))?;
    frame::write_hello(stream, cfg.world as u32, cfg.rank as u32, cfg.epoch)
        .map_err(|e| fail(format!("sending HELLO: {e}")))?;
    let (_, rank) =
        frame::read_hello(stream, cfg.world as u32, cfg.epoch).map_err(|e| fail(e.to_string()))?;
    if rank as usize != expect_rank {
        return Err(fail(format!(
            "peer at {} answered as rank {rank}, expected rank {expect_rank} — \
             peer table mismatch?",
            cfg.peers[expect_rank]
        )));
    }
    stream
        .set_read_timeout(None)
        .map_err(|e| fail(e.to_string()))?;
    Ok(())
}

/// Validate the `HELLO` of an accepted connection (the dialer speaks
/// first) and answer it; returns the peer's rank.
fn handshake_in(
    stream: &mut TcpStream,
    cfg: &TcpConfig,
    deadline: Instant,
) -> Result<usize, NetError> {
    let peer_name = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "<unknown>".into());
    let fail = |detail: String| NetError::Handshake {
        peer: peer_name.clone(),
        detail,
    };
    stream
        .set_read_timeout(Some(remaining(deadline)))
        .map_err(|e| fail(e.to_string()))?;
    let (_, rank) =
        frame::read_hello(stream, cfg.world as u32, cfg.epoch).map_err(|e| fail(e.to_string()))?;
    let rank = rank as usize;
    if rank <= cfg.rank || rank >= cfg.world {
        return Err(fail(format!(
            "claimed rank {rank}, but rank {} only accepts dials from ranks {}..{}",
            cfg.rank,
            cfg.rank + 1,
            cfg.world
        )));
    }
    frame::write_hello(stream, cfg.world as u32, cfg.rank as u32, cfg.epoch)
        .map_err(|e| fail(format!("answering HELLO: {e}")))?;
    stream
        .set_read_timeout(None)
        .map_err(|e| fail(e.to_string()))?;
    Ok(rank)
}

/// Time left until `deadline`, floored at 1 ms so socket timeouts stay
/// valid (`set_read_timeout` rejects zero).
fn remaining(deadline: Instant) -> Duration {
    deadline
        .saturating_duration_since(Instant::now())
        .max(Duration::from_millis(1))
}

impl<M: Wire + Send + 'static> TcpTransport<M> {
    /// Join the world described by `cfg`: bind `peers[rank]`, run the
    /// dial/accept bootstrap (see the [module docs](crate::bootstrap)),
    /// and return the wired transport.
    pub fn connect(cfg: TcpConfig) -> Result<Self, NetError> {
        cfg.validate()?;
        let addr = resolve(&cfg.peers[cfg.rank])?;
        let listener = TcpListener::bind(addr).map_err(|e| NetError::Bind {
            addr: cfg.peers[cfg.rank].clone(),
            detail: e.to_string(),
        })?;
        Self::connect_with_listener(cfg, listener)
    }

    /// Like [`TcpTransport::connect`], but with the listen socket
    /// already bound (in-process tests bind every rank's listener up
    /// front, which makes ephemeral-port worlds race-free).
    pub fn connect_with_listener(cfg: TcpConfig, listener: TcpListener) -> Result<Self, NetError> {
        cfg.validate()?;
        let deadline = Instant::now() + cfg.connect_timeout;
        let start = Instant::now();
        let mut streams: Vec<Option<TcpStream>> = (0..cfg.world).map(|_| None).collect();

        // Dial down.
        for (peer, slot) in streams.iter_mut().enumerate().take(cfg.rank) {
            let mut stream = dial(peer, &cfg.peers[peer], deadline)?;
            handshake_out(&mut stream, &cfg, peer, deadline)?;
            *slot = Some(stream);
        }

        // Accept up.
        listener.set_nonblocking(true).map_err(|e| NetError::Bind {
            addr: cfg.peers[cfg.rank].clone(),
            detail: format!("set_nonblocking: {e}"),
        })?;
        let mut missing = cfg.world - cfg.rank - 1;
        while missing > 0 {
            match listener.accept() {
                Ok((mut stream, _)) => {
                    stream
                        .set_nonblocking(false)
                        .map_err(|e| NetError::Handshake {
                            peer: "<accepted connection>".into(),
                            detail: format!("set_nonblocking: {e}"),
                        })?;
                    let rank = handshake_in(&mut stream, &cfg, deadline)?;
                    if streams[rank].is_some() {
                        return Err(NetError::Handshake {
                            peer: format!("rank {rank}"),
                            detail: "rank connected twice — duplicate launch?".into(),
                        });
                    }
                    streams[rank] = Some(stream);
                    missing -= 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        let absent: Vec<usize> = (cfg.rank + 1..cfg.world)
                            .filter(|&r| streams[r].is_none())
                            .collect();
                        return Err(NetError::AcceptTimeout {
                            missing: absent,
                            waited: start.elapsed(),
                        });
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    return Err(NetError::Bind {
                        addr: cfg.peers[cfg.rank].clone(),
                        detail: format!("accept: {e}"),
                    })
                }
            }
        }

        Self::from_streams(cfg.rank, cfg.world, streams, cfg.collective_timeout)
            .map_err(|e| NetError::Config(format!("wiring accepted connections failed: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_catches_bad_worlds() {
        assert!(TcpConfig::new(0, 0, vec![]).validate().is_err());
        assert!(TcpConfig::new(2, 2, vec!["a".into(), "b".into()])
            .validate()
            .is_err());
        assert!(TcpConfig::new(0, 2, vec!["a".into()]).validate().is_err());
        assert!(TcpConfig::new(1, 2, vec!["a".into(), "b".into()])
            .validate()
            .is_ok());
    }

    #[test]
    fn local_world_hands_out_distinct_ports() {
        let world = TcpConfig::local_world(3).unwrap();
        assert_eq!(world.len(), 3);
        let peers = &world[0].0.peers;
        assert_eq!(peers.len(), 3);
        for (rank, (cfg, listener)) in world.iter().enumerate() {
            assert_eq!(cfg.rank, rank);
            assert_eq!(&cfg.peers, peers, "all ranks must share one peer table");
            assert_eq!(
                listener.local_addr().unwrap().to_string(),
                cfg.peers[rank],
                "listener must sit on the advertised address"
            );
        }
        let mut unique = peers.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 3, "ports must be distinct");
    }

    #[test]
    fn dial_times_out_with_a_named_rank() {
        // A bound-then-dropped port is (almost certainly) refusing
        // connections; the dial must give up at the deadline, not hang.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let start = Instant::now();
        let err = dial(3, &addr, Instant::now() + Duration::from_millis(300)).unwrap_err();
        assert!(start.elapsed() < Duration::from_secs(10), "dial hung");
        match err {
            NetError::Unreachable { rank, .. } => assert_eq!(rank, 3),
            other => panic!("expected Unreachable, got {other}"),
        }
    }
}
