//! Bootstrap-time errors.
//!
//! Everything that can go wrong *after* the world is wired up is a crash
//! of the job (a peer died mid-run) and surfaces as a panic with a
//! diagnostic naming the peer; see the module docs of
//! [`crate::transport`]. Bootstrap failures, by contrast, are ordinary
//! recoverable errors the launcher turns into a clean nonzero exit.

use std::fmt;
use std::time::Duration;

/// Why a rank could not join the world.
#[derive(Debug)]
pub enum NetError {
    /// The world description itself is unusable (rank out of range,
    /// wrong peer-list length, ...).
    Config(String),
    /// A peer address failed to parse or resolve.
    Address {
        /// The `host:port` spec as given.
        spec: String,
        /// Resolution failure detail.
        detail: String,
    },
    /// This rank could not bind its own listen address.
    Bind {
        /// The listen address.
        addr: String,
        /// OS-level failure detail.
        detail: String,
    },
    /// A lower-ranked peer never became reachable: every dial attempt
    /// within the connect timeout failed.
    Unreachable {
        /// The rank that never answered.
        rank: usize,
        /// Its advertised address.
        addr: String,
        /// How long this rank kept retrying.
        waited: Duration,
        /// The last dial failure.
        detail: String,
    },
    /// Higher-ranked peers never dialed in before the connect timeout.
    AcceptTimeout {
        /// The ranks still missing when the deadline passed.
        missing: Vec<usize>,
        /// How long this rank waited.
        waited: Duration,
    },
    /// An in-process loopback world (`TcpConfig::local_world`) could not
    /// set up one rank's listener.
    LoopbackSetup {
        /// The rank whose listener failed.
        rank: usize,
        /// OS-level failure detail.
        detail: String,
    },
    /// A connection was established but the `HELLO` exchange failed:
    /// wrong magic or protocol version, mismatched world size, a rank
    /// claimed twice, or a peer that hung up mid-handshake.
    Handshake {
        /// Which connection misbehaved (an address or rank).
        peer: String,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Config(detail) => write!(f, "invalid world configuration: {detail}"),
            NetError::Address { spec, detail } => {
                write!(f, "cannot resolve peer address {spec:?}: {detail}")
            }
            NetError::Bind { addr, detail } => {
                write!(f, "cannot bind listen address {addr}: {detail}")
            }
            NetError::Unreachable {
                rank,
                addr,
                waited,
                detail,
            } => write!(
                f,
                "peer rank {rank} unreachable at {addr} after {waited:?}: {detail}"
            ),
            NetError::AcceptTimeout { missing, waited } => write!(
                f,
                "peer rank(s) {missing:?} never connected within {waited:?}"
            ),
            NetError::LoopbackSetup { rank, detail } => {
                write!(
                    f,
                    "cannot set up loopback listener for rank {rank}: {detail}"
                )
            }
            NetError::Handshake { peer, detail } => {
                write!(f, "handshake with {peer} failed: {detail}")
            }
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unreachable_names_the_rank_and_address() {
        let e = NetError::Unreachable {
            rank: 3,
            addr: "10.0.0.7:9103".into(),
            waited: Duration::from_secs(5),
            detail: "connection refused".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("rank 3"), "{msg}");
        assert!(msg.contains("10.0.0.7:9103"), "{msg}");
        assert!(msg.contains("connection refused"), "{msg}");
    }

    #[test]
    fn loopback_setup_names_the_rank() {
        let e = NetError::LoopbackSetup {
            rank: 2,
            detail: "too many open files".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("rank 2"), "{msg}");
        assert!(msg.contains("too many open files"), "{msg}");
    }

    #[test]
    fn accept_timeout_names_the_missing_ranks() {
        let e = NetError::AcceptTimeout {
            missing: vec![2, 3],
            waited: Duration::from_secs(30),
        };
        let msg = e.to_string();
        assert!(msg.contains("[2, 3]"), "{msg}");
    }
}
