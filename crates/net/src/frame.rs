//! The wire framing shared by every `pa-net` connection.
//!
//! A connection is a byte stream of *frames*:
//!
//! ```text
//! frame := len:u32  kind:u8  payload:[u8; len - 1]
//! ```
//!
//! `len` is little-endian and counts the kind byte plus the payload, so a
//! reader always knows exactly how many bytes to pull before it can
//! dispatch — no frame is ever split across dispatches and no scanning
//! for delimiters is needed. Every multi-byte field in every payload is
//! little-endian, explicitly serialized (nothing is memory-dumped), so
//! the format is identical on every host.

use std::io::{self, Read, Write};

/// Handshake magic: `"PANT"` as a little-endian `u32`.
pub(crate) const MAGIC: u32 = 0x544e_4150;

/// Wire protocol version; bumped on any incompatible format change.
/// v2 added the restart epoch to `HELLO` so a stale rank from a previous
/// launch attempt cannot wire into a restarted world.
pub(crate) const VERSION: u32 = 2;

/// Upper bound on a single frame, as a corruption tripwire: a garbled
/// length prefix would otherwise ask the reader to allocate gigabytes.
pub(crate) const MAX_FRAME: usize = 256 << 20;

/// Frame kinds. The discriminants are the on-wire kind bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    /// Bootstrap handshake:
    /// `magic:u32 version:u32 world:u32 rank:u32 epoch:u64`, where
    /// `epoch` is the launcher's restart-attempt generation.
    Hello = 1,
    /// Engine traffic: `count:u32` followed by `count` `Wire`-encoded
    /// messages.
    Data = 2,
    /// Termination ledger broadcast: `completed_total:u64`, the sender's
    /// monotone count of completed work items.
    Term = 3,
    /// Collective up-phase (child → parent): `round:u64 count:u32`
    /// followed by `count` `(rank:u32, val:u64)` contributions — the
    /// sender's whole subtree.
    CollUp = 4,
    /// Collective down-phase (parent → child): `round:u64 count:u32`
    /// followed by the `count` per-rank values of the finished snapshot.
    CollDown = 5,
    /// Orderly goodbye: the peer is done and will close its end; an EOF
    /// *without* a preceding `Bye` is a crash.
    Bye = 6,
}

impl Kind {
    pub(crate) fn from_byte(b: u8) -> Option<Kind> {
        match b {
            1 => Some(Kind::Hello),
            2 => Some(Kind::Data),
            3 => Some(Kind::Term),
            4 => Some(Kind::CollUp),
            5 => Some(Kind::CollDown),
            6 => Some(Kind::Bye),
            _ => None,
        }
    }
}

/// Start a frame of `kind` in `buf` (clearing it first). The length
/// prefix is left as a placeholder; [`finish_frame`] patches it once the
/// payload is in place, so the frame goes out in one `write_all`.
pub(crate) fn begin_frame(buf: &mut Vec<u8>, kind: Kind) {
    buf.clear();
    buf.extend_from_slice(&[0, 0, 0, 0, kind as u8]);
}

/// Patch the length prefix of a frame started with [`begin_frame`].
pub(crate) fn finish_frame(buf: &mut [u8]) {
    let len = (buf.len() - 4) as u32;
    buf[0..4].copy_from_slice(&len.to_le_bytes());
}

/// Build a complete frame in `buf` from a closure that appends the
/// payload, ready for a single `write_all`.
pub(crate) fn build_frame(buf: &mut Vec<u8>, kind: Kind, payload: impl FnOnce(&mut Vec<u8>)) {
    begin_frame(buf, kind);
    payload(buf);
    finish_frame(buf);
}

/// Read one frame without interpreting the kind byte: returns the raw
/// kind and fills `payload` with the bytes after it. Errors on EOF,
/// short reads, and length prefixes outside `1..=max` (`max` lets the
/// serve layer cap client requests far below the transport's
/// [`MAX_FRAME`]). Shared by the transport kinds ([`read_frame`]) and
/// the serve protocol, which owns a disjoint kind-byte space.
pub(crate) fn read_raw_frame(
    r: &mut impl Read,
    payload: &mut Vec<u8>,
    max: usize,
) -> io::Result<u8> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len == 0 || len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame length {len} (limit {max})"),
        ));
    }
    let mut kind = [0u8; 1];
    r.read_exact(&mut kind)?;
    payload.clear();
    payload.resize(len - 1, 0);
    r.read_exact(payload)?;
    Ok(kind[0])
}

/// Read one frame: returns its kind and fills `payload` with the bytes
/// after the kind byte. Errors on EOF, short reads, unknown kinds, and
/// length prefixes outside `1..=MAX_FRAME`.
pub(crate) fn read_frame(r: &mut impl Read, payload: &mut Vec<u8>) -> io::Result<Kind> {
    let kind = read_raw_frame(r, payload, MAX_FRAME)?;
    Kind::from_byte(kind).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown frame kind {kind}"),
        )
    })
}

/// [`build_frame`] for a raw kind byte (the serve protocol's kinds live
/// outside the transport's [`Kind`] enum).
pub(crate) fn build_raw_frame(buf: &mut Vec<u8>, kind: u8, payload: impl FnOnce(&mut Vec<u8>)) {
    buf.clear();
    buf.extend_from_slice(&[0, 0, 0, 0, kind]);
    payload(buf);
    finish_frame(buf);
}

/// Write a `Hello` frame identifying this end of the connection;
/// `epoch` is the launcher's restart-attempt generation (0 on a first
/// launch).
pub(crate) fn write_hello(w: &mut impl Write, world: u32, rank: u32, epoch: u64) -> io::Result<()> {
    let mut buf = Vec::with_capacity(29);
    build_frame(&mut buf, Kind::Hello, |b| {
        b.extend_from_slice(&MAGIC.to_le_bytes());
        b.extend_from_slice(&VERSION.to_le_bytes());
        b.extend_from_slice(&world.to_le_bytes());
        b.extend_from_slice(&rank.to_le_bytes());
        b.extend_from_slice(&epoch.to_le_bytes());
    });
    w.write_all(&buf)
}

/// Read and validate a `Hello` frame; returns the peer's claimed
/// `(world, rank)`. Magic, version, world, or restart-epoch mismatches
/// are `InvalidData` — they mean the socket is not (this version of) a
/// `pa-net` peer of the same job *attempt*: after a gang restart, a
/// straggler from the previous attempt still carries the old epoch and
/// must be turned away instead of wired into the new world.
pub(crate) fn read_hello(
    r: &mut impl Read,
    expect_world: u32,
    expect_epoch: u64,
) -> io::Result<(u32, u32)> {
    let mut payload = Vec::new();
    let kind = read_frame(r, &mut payload)?;
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    if kind != Kind::Hello {
        return Err(bad(format!("expected HELLO, got {kind:?}")));
    }
    if payload.len() != 24 {
        return Err(bad(format!("HELLO payload of {} bytes", payload.len())));
    }
    let word = |i: usize| u32::from_le_bytes(payload[i * 4..i * 4 + 4].try_into().unwrap());
    let (magic, version, world, rank) = (word(0), word(1), word(2), word(3));
    let epoch = u64::from_le_bytes(payload[16..24].try_into().unwrap());
    if magic != MAGIC {
        return Err(bad(format!("bad magic {magic:#x} (not a pa-net peer?)")));
    }
    if version != VERSION {
        return Err(bad(format!(
            "protocol version mismatch: peer speaks v{version}, this build v{VERSION}"
        )));
    }
    if world != expect_world {
        return Err(bad(format!(
            "world-size mismatch: peer launched with -p {world}, this rank with -p {expect_world}"
        )));
    }
    if epoch != expect_epoch {
        return Err(bad(format!(
            "restart-epoch mismatch: peer is from launch attempt {epoch}, this rank from \
             attempt {expect_epoch} — stale rank from a previous attempt?"
        )));
    }
    Ok((world, rank))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let mut buf = Vec::new();
        build_frame(&mut buf, Kind::Term, |b| {
            b.extend_from_slice(&42u64.to_le_bytes());
        });
        assert_eq!(buf.len(), 4 + 1 + 8);
        assert_eq!(u32::from_le_bytes(buf[..4].try_into().unwrap()), 9);
        let mut cursor = &buf[..];
        let mut payload = Vec::new();
        assert_eq!(read_frame(&mut cursor, &mut payload).unwrap(), Kind::Term);
        assert_eq!(payload, 42u64.to_le_bytes());
        assert!(cursor.is_empty());
    }

    #[test]
    fn read_frame_rejects_garbage_lengths() {
        let zero = [0u8; 4];
        assert!(read_frame(&mut &zero[..], &mut Vec::new()).is_err());
        let mut huge = Vec::new();
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        huge.push(Kind::Data as u8);
        assert!(read_frame(&mut &huge[..], &mut Vec::new()).is_err());
    }

    #[test]
    fn read_frame_rejects_truncation_and_unknown_kinds() {
        let mut buf = Vec::new();
        build_frame(&mut buf, Kind::Bye, |_| {});
        for cut in 0..buf.len() {
            assert!(
                read_frame(&mut &buf[..cut], &mut Vec::new()).is_err(),
                "accepted truncation at {cut}"
            );
        }
        let unknown = [2u8, 0, 0, 0, 99, 0];
        assert!(read_frame(&mut &unknown[..], &mut Vec::new()).is_err());
    }

    #[test]
    fn hello_round_trips_and_validates() {
        let mut buf = Vec::new();
        write_hello(&mut buf, 4, 2, 7).unwrap();
        assert_eq!(read_hello(&mut &buf[..], 4, 7).unwrap(), (4, 2));
        // World mismatch is a handshake failure.
        let mut buf2 = Vec::new();
        write_hello(&mut buf2, 8, 2, 7).unwrap();
        assert!(read_hello(&mut &buf2[..], 4, 7).is_err());
        // Corrupt magic is rejected.
        let mut bad = buf.clone();
        bad[5] ^= 0xff;
        assert!(read_hello(&mut &bad[..], 4, 7).is_err());
    }

    #[test]
    fn hello_rejects_stale_restart_epochs() {
        let mut buf = Vec::new();
        write_hello(&mut buf, 4, 2, 0).unwrap();
        let err = read_hello(&mut &buf[..], 4, 1).unwrap_err();
        assert!(err.to_string().contains("restart-epoch"), "{err}");
    }
}
