//! Multi-process TCP backend for the prefattach engines.
//!
//! The in-tree transports ([`pa_mpsim::Comm`],
//! [`pa_mpsim::LoopbackTransport`]) keep every rank inside one process.
//! This crate provides the third deployment shape the
//! [`Transport`](pa_mpsim::Transport) abstraction was designed for:
//! **one rank per OS process**, wired over TCP sockets, so a generation
//! job can span processes on one host (the `palaunch` helper in
//! `pa-cli`) or hosts on a network (a manual peer table).
//!
//! * [`TcpConfig`] describes the world: this rank's id, the world size,
//!   and the `host:port` listen address of every rank.
//! * [`TcpTransport::connect`] runs the deadlock-free dial/accept
//!   bootstrap (see [`bootstrap`]) with capped-exponential-backoff
//!   retries, so start-order does not matter and an unreachable peer is
//!   a clean [`NetError`] naming the rank instead of a hang.
//! * The wired [`TcpTransport`] implements the full
//!   [`Transport`](pa_mpsim::Transport) contract — pooled batched
//!   sends, the polling/parking receive pair, tree-based collectives,
//!   and distributed termination detection — and passes the same
//!   [`pa_mpsim::conformance`] suite as the in-process backends. See
//!   [`transport`] for the wire format and failure semantics.
//!
//! Messages cross the wire via [`pa_mpsim::Wire`] (explicit
//! little-endian framing), so a world of mixed-endian hosts still
//! agrees byte-for-byte.
//!
//! # Example: a two-rank world in one process
//!
//! ```
//! use pa_mpsim::Transport;
//! use pa_net::{TcpConfig, TcpTransport};
//!
//! let mut world = TcpConfig::local_world(2).unwrap();
//! let (cfg1, l1) = world.pop().unwrap();
//! let (cfg0, l0) = world.pop().unwrap();
//! let peer = std::thread::spawn(move || {
//!     let mut t: TcpTransport<u64> = TcpTransport::connect_with_listener(cfg1, l1).unwrap();
//!     t.send(0, 42);
//!     t.barrier();
//! });
//! let mut t: TcpTransport<u64> = TcpTransport::connect_with_listener(cfg0, l0).unwrap();
//! let pkt = t.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
//! assert_eq!(pkt.msgs, vec![42]);
//! t.barrier();
//! peer.join().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backoff;
pub mod bootstrap;
mod error;
mod frame;
pub mod serve;
pub mod transport;

pub use backoff::Backoff;
pub use bootstrap::TcpConfig;
pub use error::NetError;
pub use transport::TcpTransport;
